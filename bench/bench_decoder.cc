/**
 * @file
 * Decode-throughput benchmark: scalar per-shot decoding vs the packed
 * batch pipeline vs the lane-parallel wave kernel on the paper's
 * [[72,12,6]] BB code.
 *
 * Each benchmark iteration samples one chunk with a fresh
 * deterministic seed and decodes it — exactly the work a campaign
 * worker does per chunk — and reports shots/second plus the batch
 * fast-path counters. Two physical error rates bracket the regimes:
 * near the paper's operating point (p = 1e-3) most syndromes are
 * non-empty so the wave kernel's SIMD lanes carry the speedup, while
 * sub-threshold (p = 1e-4) ~70% of shots are resolved by the
 * zero-syndrome wave sweep and the duplicate memo before BP runs at
 * all.
 *
 * All three paths are bit-identical by construction (enforced by
 * tests/test_shot_batch.cc and tests/test_wave_decoder.cc); this
 * benchmark exists so their speed can't silently rot. Besides the
 * console table it always distills the measured rates into a
 * machine-readable BENCH_decoder.json (override the path with
 * CYCLONE_BENCH_JSON) so CI can track the perf trajectory across PRs
 * and fail if the wave path ever drops below the scalar one.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decoder/bp_wave_decoder.h"
#include "decoder/decoder_backend.h"
#include "decoder/osd.h"

namespace cyclone {
namespace bench {
namespace {

constexpr size_t kChunkShots = 512;

/** Lazily built bb72 memory DEM shared by every benchmark row. */
const DetectorErrorModel&
bb72Dem(double p)
{
    struct Entry
    {
        double p;
        std::unique_ptr<DetectorErrorModel> dem;
    };
    static std::mutex mutex;
    static std::vector<Entry> cache;
    std::lock_guard<std::mutex> lock(mutex);
    for (const Entry& e : cache) {
        if (e.p == p)
            return *e.dem;
    }
    const CssCode code = catalog::bb72();
    const SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = code.nominalDistance();
    opts.noise = NoiseModel::uniform(p);
    const Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    cache.push_back(
        {p, std::make_unique<DetectorErrorModel>(
                buildDetectorErrorModel(circuit))});
    return *cache.back().dem;
}

BpOptions
benchBp(size_t wave_lanes)
{
    BpOptions bp;
    bp.variant = BpOptions::Variant::MinSum;
    bp.waveLanes = wave_lanes;
    return bp;
}

void
attachDecoderCounters(benchmark::State& state, const BpOsdStats& stats)
{
    state.counters["shots_per_sec"] = benchmark::Counter(
        static_cast<double>(stats.decodes),
        benchmark::Counter::kIsRate);
    state.counters["trivial_frac"] = stats.trivialFraction();
    state.counters["memo_rate"] = stats.memoHitRate();
    state.counters["mean_bp_iters"] = stats.meanBpIterations();
    state.counters["wave_occupancy"] = stats.waveLaneOccupancy();
}

void
BM_DecodeScalar(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp(1));
    DemShots shots;
    uint64_t chunk = 0;
    for (auto _ : state) {
        Rng rng(chunkSeed(0xbe7c4ULL, chunk++));
        sampleDemInto(dem, kChunkShots, rng, shots);
        uint64_t failures = 0;
        for (size_t s = 0; s < kChunkShots; ++s) {
            if (decoder.decode(shots.syndromes[s]) !=
                shots.observables[s])
                ++failures;
        }
        benchmark::DoNotOptimize(failures);
    }
    attachDecoderCounters(state, decoder.stats());
}

/** Batched pipeline; wave_lanes == 1 is the scalar-core batch path. */
void
BM_DecodeBatch(benchmark::State& state, double p, size_t wave_lanes)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp(wave_lanes));
    ShotBatch batch;
    std::vector<uint64_t> predicted;
    uint64_t chunk = 0;
    for (auto _ : state) {
        ChunkPlan plan;
        plan.index = chunk;
        plan.shots = kChunkShots;
        plan.seed = chunkSeed(0xbe7c4ULL, chunk++);
        const ChunkOutcome outcome =
            runChunk(dem, plan, decoder, batch, predicted);
        benchmark::DoNotOptimize(outcome.failures);
    }
    attachDecoderCounters(state, decoder.stats());
}

/** The wave pipeline forced onto one rung of the SIMD ladder. */
void
BM_DecodeBatchForcedBackend(benchmark::State& state, double p,
                            const DecoderBackend* backend)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    ::setenv(kWaveBackendEnv, backend->name, 1);
    BpOsdDecoder decoder(dem, benchBp(0));
    ::unsetenv(kWaveBackendEnv);
    ShotBatch batch;
    std::vector<uint64_t> predicted;
    uint64_t chunk = 0;
    for (auto _ : state) {
        ChunkPlan plan;
        plan.index = chunk;
        plan.shots = kChunkShots;
        plan.seed = chunkSeed(0xbe7c4ULL, chunk++);
        const ChunkOutcome outcome =
            runChunk(dem, plan, decoder, batch, predicted);
        benchmark::DoNotOptimize(outcome.failures);
    }
    attachDecoderCounters(state, decoder.stats());
    state.counters["wave_lanes"] =
        static_cast<double>(decoder.waveLaneWidth());
}

/** The wave BP kernel alone — no OSD, no memo, no batch pipeline —
 *  decoding full waves from a fixed pool of non-empty syndromes. This
 *  is the row the SIMD-ladder rung ratio is computed from: the
 *  end-to-end rows above share the width-independent OSD stage, which
 *  dilutes the kernel ratio they were meant to track. */
void
BM_WaveKernelForcedBackend(benchmark::State& state, double p,
                           const DecoderBackend* backend)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    auto graph = std::make_shared<BpGraph>(dem);
    BpWaveDecoder decoder(graph, benchBp(0), *backend);
    const size_t lanes = decoder.laneWidth();
    std::vector<BitVec> pool;
    DemShots shots;
    uint64_t chunk = 0;
    while (pool.size() < 256 && chunk < 64) {
        Rng rng(chunkSeed(0xbe7c4ULL, chunk++));
        sampleDemInto(dem, kChunkShots, rng, shots);
        for (const BitVec& syndrome : shots.syndromes) {
            if (!syndrome.isZero())
                pool.push_back(syndrome);
        }
    }
    std::vector<const BitVec*> wave(lanes);
    size_t next = 0;
    size_t decoded = 0;
    uint64_t iters = 0;
    for (auto _ : state) {
        for (size_t l = 0; l < lanes; ++l) {
            wave[l] = &pool[next];
            next = (next + 1) % pool.size();
        }
        decoder.decodeWave(wave.data(), lanes);
        decoded += lanes;
        for (size_t l = 0; l < lanes; ++l)
            iters += decoder.laneIterations(l);
    }
    state.counters["shots_per_sec"] = benchmark::Counter(
        static_cast<double>(decoded), benchmark::Counter::kIsRate);
    state.counters["mean_bp_iters"] = decoded == 0
        ? 0.0
        : static_cast<double>(iters) / static_cast<double>(decoded);
    state.counters["wave_lanes"] = static_cast<double>(lanes);
}

constexpr size_t kSmallChunkShots = 64;
constexpr size_t kStagingGroup = 8;

/** A campaign worker decoding 64-shot chunks one at a time — the
 *  baseline the cross-chunk staging pool is measured against. */
void
BM_DecodeChunk64(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp(0));
    ShotBatch batch;
    std::vector<uint64_t> predicted;
    uint64_t chunk = 0;
    for (auto _ : state) {
        for (size_t k = 0; k < kStagingGroup; ++k) {
            ChunkPlan plan;
            plan.index = chunk;
            plan.shots = kSmallChunkShots;
            plan.seed = chunkSeed(0x57a6edULL, chunk++);
            const ChunkOutcome outcome =
                runChunk(dem, plan, decoder, batch, predicted);
            benchmark::DoNotOptimize(outcome.failures);
        }
    }
    attachDecoderCounters(state, decoder.stats());
}

/** The same 64-shot chunks pooled through the staged decode group, so
 *  wave lanes and OSD slabs fill across chunk boundaries. */
void
BM_DecodeStaged(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp(0));
    std::vector<ShotBatch> batches;
    std::vector<ChunkPlan> plans(kStagingGroup);
    uint64_t chunk = 0;
    for (auto _ : state) {
        for (size_t k = 0; k < kStagingGroup; ++k) {
            plans[k].index = chunk;
            plans[k].shots = kSmallChunkShots;
            plans[k].seed = chunkSeed(0x57a6edULL, chunk++);
        }
        const ChunkOutcome outcome = runChunkGroup(
            dem, plans.data(), plans.size(), decoder, batches);
        benchmark::DoNotOptimize(outcome.failures);
    }
    attachDecoderCounters(state, decoder.stats());
    state.counters["staged_chunks"] =
        static_cast<double>(decoder.stats().stagedChunks);
}

/** Non-converged (syndrome, posterior) workload for the OSD rows. */
struct OsdWorkload
{
    std::vector<BitVec> syndromes;
    std::vector<std::vector<float>> posteriors;
    /** Fraction of sampled shots whose BP run did not converge. */
    double nonConvergedFrac = 0.0;
};

/** Lazily collected once: the shots of several deterministic chunks
 *  that reach the OSD stage at p, with their BP posteriors. */
const OsdWorkload&
osdWorkload(double p)
{
    static std::mutex mutex;
    static std::map<double, OsdWorkload> cache;
    std::lock_guard<std::mutex> lock(mutex);
    OsdWorkload& work = cache[p];
    if (!work.syndromes.empty())
        return work;
    const DetectorErrorModel& dem = bb72Dem(p);
    BpDecoder bp(dem, benchBp(1));
    DemShots shots;
    size_t total = 0;
    uint64_t chunk = 0;
    while (work.syndromes.size() < 192 && chunk < 32) {
        Rng rng(chunkSeed(0x05dbe7cULL, chunk++));
        sampleDemInto(dem, kChunkShots, rng, shots);
        for (const BitVec& syndrome : shots.syndromes) {
            ++total;
            if (syndrome.isZero())
                continue;
            if (!bp.decode(syndrome)) {
                work.syndromes.push_back(syndrome);
                work.posteriors.push_back(bp.posteriorLlr());
            }
        }
    }
    work.nonConvergedFrac = total == 0
        ? 0.0
        : static_cast<double>(work.syndromes.size()) /
            static_cast<double>(total);
    return work;
}

/** The OSD stage alone, via the scalar per-shot reference path. */
void
BM_OsdScalar(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    const OsdWorkload& work = osdWorkload(p);
    OsdDecoder osd(dem);
    std::vector<uint8_t> errors;
    size_t solves = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < work.syndromes.size(); ++i) {
            benchmark::DoNotOptimize(
                osd.decode(work.syndromes[i], work.posteriors[i],
                           errors));
        }
        solves += work.syndromes.size();
    }
    state.counters["syndromes_per_sec"] = benchmark::Counter(
        static_cast<double>(solves), benchmark::Counter::kIsRate);
    state.counters["nonconv_frac"] = work.nonConvergedFrac;
}

/** The OSD stage alone, via solveBatch in 64-shot slabs — the same
 *  work the wave pipeline's batched OSD stage performs. */
void
BM_OsdBatch(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    const OsdWorkload& work = osdWorkload(p);
    OsdDecoder osd(dem);
    OsdBatchResult result;
    std::vector<OsdShotRequest> requests;
    size_t solves = 0;
    size_t groups = 0;
    for (auto _ : state) {
        for (size_t base = 0; base < work.syndromes.size();
             base += 64) {
            const size_t count =
                std::min<size_t>(64, work.syndromes.size() - base);
            requests.resize(count);
            for (size_t i = 0; i < count; ++i) {
                requests[i].syndrome = &work.syndromes[base + i];
                requests[i].posteriorLlr =
                    work.posteriors[base + i].data();
            }
            osd.solveBatch(requests.data(), count, result);
            groups += result.stats.groups;
        }
        solves += work.syndromes.size();
    }
    state.counters["syndromes_per_sec"] = benchmark::Counter(
        static_cast<double>(solves), benchmark::Counter::kIsRate);
    state.counters["nonconv_frac"] = work.nonConvergedFrac;
    state.counters["groups_per_solve"] = solves == 0
        ? 0.0
        : static_cast<double>(groups) / static_cast<double>(solves);
}

/** One registered row of the summary JSON. */
struct RowSpec
{
    std::string name;
    std::string path; ///< "scalar", "batch", "wave", "wave_<backend>",
                      ///< "chunk64", "staged", "osd_*".
    double p;
};

std::vector<RowSpec>&
rowSpecs()
{
    static std::vector<RowSpec> specs;
    return specs;
}

/** Console reporter that also captures final counter values. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            std::map<std::string, double>& row =
                captured_[run.benchmark_name()];
            for (const auto& [key, counter] : run.counters)
                row[key] = static_cast<double>(counter);
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /** Counter value of a named run, or 0 when absent. */
    double
    value(const std::string& name, const std::string& key) const
    {
        auto row = captured_.find(name);
        if (row == captured_.end())
            return 0.0;
        auto it = row->second.find(key);
        return it == row->second.end() ? 0.0 : it->second;
    }

    bool
    has(const std::string& name) const
    {
        return captured_.count(name) != 0;
    }

  private:
    std::map<std::string, std::map<std::string, double>> captured_;
};

/** Distill the captured rows into BENCH_decoder.json. */
void
writeBenchJson(const CaptureReporter& reporter)
{
    // Default to an untracked file: BENCH_decoder.json is the
    // committed CI perf-gate baseline, so refreshing it is an
    // explicit CYCLONE_BENCH_JSON=BENCH_decoder.json opt-in rather
    // than a side effect of any local bench run.
    const char* env = std::getenv("CYCLONE_BENCH_JSON");
    const std::string path = env != nullptr && env[0] != '\0'
        ? env
        : "BENCH_decoder.local.json";

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_decoder: cannot write %s\n",
                     path.c_str());
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_decoder\",\n";
    out << "  \"code\": \"bb72\",\n";
    out << "  \"bp_variant\": \"min-sum\",\n";
    out << "  \"chunk_shots\": " << kChunkShots << ",\n";
    out << "  \"wave_lane_width\": "
        << BpWaveDecoder::resolveLaneWidth(0) << ",\n";
    out << "  \"rows\": [\n";
    bool first = true;
    for (const RowSpec& spec : rowSpecs()) {
        if (!reporter.has(spec.name))
            continue;
        if (!first)
            out << ",\n";
        first = false;
        char buf[512];
        if (spec.path.rfind("osd", 0) == 0) {
            std::snprintf(
                buf, sizeof buf,
                "    {\"name\": \"%s\", \"path\": \"%s\", \"p\": %g, "
                "\"syndromes_per_sec\": %.6g, \"nonconv_frac\": %.6g, "
                "\"groups_per_solve\": %.6g}",
                spec.name.c_str(), spec.path.c_str(), spec.p,
                reporter.value(spec.name, "syndromes_per_sec"),
                reporter.value(spec.name, "nonconv_frac"),
                reporter.value(spec.name, "groups_per_solve"));
        } else {
            std::snprintf(
                buf, sizeof buf,
                "    {\"name\": \"%s\", \"path\": \"%s\", \"p\": %g, "
                "\"shots_per_sec\": %.6g, \"trivial_frac\": %.6g, "
                "\"memo_rate\": %.6g, \"mean_bp_iters\": %.6g, "
                "\"wave_occupancy\": %.6g}",
                spec.name.c_str(), spec.path.c_str(), spec.p,
                reporter.value(spec.name, "shots_per_sec"),
                reporter.value(spec.name, "trivial_frac"),
                reporter.value(spec.name, "memo_rate"),
                reporter.value(spec.name, "mean_bp_iters"),
                reporter.value(spec.name, "wave_occupancy"));
        }
        out << buf;
    }
    out << "\n  ],\n";
    out << "  \"speedups\": {";
    bool first_p = true;
    for (const RowSpec& spec : rowSpecs()) {
        if (spec.path != "scalar")
            continue;
        char suffix[32];
        std::snprintf(suffix, sizeof suffix, "p%g", spec.p);
        const std::string scalar = spec.name;
        const std::string batch = "decode_batch/bb72_" + std::string(suffix);
        const std::string wave = "decode_wave/bb72_" + std::string(suffix);
        if (!reporter.has(batch) || !reporter.has(wave))
            continue;
        const double s = reporter.value(scalar, "shots_per_sec");
        const double b = reporter.value(batch, "shots_per_sec");
        const double w = reporter.value(wave, "shots_per_sec");
        if (s <= 0.0 || b <= 0.0)
            continue;
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "%s\n    \"%s\": {\"batch_over_scalar\": %.4g, "
                      "\"wave_over_batch\": %.4g, "
                      "\"wave_over_scalar\": %.4g",
                      first_p ? "" : ",", suffix, b / s, w / b, w / s);
        out << buf;
        // OSD-stage speedup and its share of the wave decode path:
        // time per shot spent in OSD = nonconv_frac / osd_rate, so
        // share = wave_rate x nonconv_frac / osd_rate.
        const std::string osd_scalar =
            "decode_wave_osd_scalar/bb72_" + std::string(suffix);
        const std::string osd_batch =
            "decode_wave_osd/bb72_" + std::string(suffix);
        if (reporter.has(osd_scalar) && reporter.has(osd_batch)) {
            const double os =
                reporter.value(osd_scalar, "syndromes_per_sec");
            const double ob =
                reporter.value(osd_batch, "syndromes_per_sec");
            const double frac =
                reporter.value(osd_batch, "nonconv_frac");
            if (os > 0.0 && ob > 0.0) {
                std::snprintf(buf, sizeof buf,
                              ", \"osd_batch_over_scalar\": %.4g, "
                              "\"wave_osd_share\": %.4g",
                              ob / os, w * frac / ob);
                out << buf;
            }
        }
        out << "}";
        first_p = false;
    }
    // SIMD-ladder rung ratio at the operating point: the L=16 AVX-512
    // kernel against the L=8 AVX2 kernel (present only on hosts that
    // support both). l16_over_l8 is the BP wave kernel alone — the
    // quantity the ladder actually widens; l16_over_l8_e2e is the
    // full chunk pipeline, whose shared OSD stage dilutes the ratio.
    {
        const std::string k8 = "wave_kernel_avx2/bb72_p0.001";
        const std::string k16 = "wave_kernel_avx512/bb72_p0.001";
        if (reporter.has(k8) && reporter.has(k16)) {
            const double w8 = reporter.value(k8, "shots_per_sec");
            const double w16 = reporter.value(k16, "shots_per_sec");
            const double e8 = reporter.value(
                "decode_wave_avx2/bb72_p0.001", "shots_per_sec");
            const double e16 = reporter.value(
                "decode_wave_avx512/bb72_p0.001", "shots_per_sec");
            if (w8 > 0.0) {
                char buf[200];
                std::snprintf(buf, sizeof buf,
                              "%s\n    \"ladder\": "
                              "{\"l16_over_l8\": %.4g",
                              first_p ? "" : ",", w16 / w8);
                out << buf;
                if (e8 > 0.0) {
                    std::snprintf(buf, sizeof buf,
                                  ", \"l16_over_l8_e2e\": %.4g",
                                  e16 / e8);
                    out << buf;
                }
                out << "}";
                first_p = false;
            }
        }
    }
    // Cross-chunk staging against per-chunk decoding of the same
    // 64-shot chunks, with the lane occupancy each achieves.
    {
        const std::string per = "decode_chunk64/bb72_p0.001";
        const std::string pool = "decode_staged/bb72_p0.001";
        if (reporter.has(per) && reporter.has(pool)) {
            const double r = reporter.value(per, "shots_per_sec");
            const double s = reporter.value(pool, "shots_per_sec");
            if (r > 0.0) {
                char buf[240];
                std::snprintf(
                    buf, sizeof buf,
                    "%s\n    \"staging\": "
                    "{\"staged_over_chunk64\": %.4g, "
                    "\"staged_occupancy\": %.4g, "
                    "\"chunk64_occupancy\": %.4g}",
                    first_p ? "" : ",", s / r,
                    reporter.value(pool, "wave_occupancy"),
                    reporter.value(per, "wave_occupancy"));
                out << buf;
                first_p = false;
            }
        }
    }
    out << "\n  }\n";
    out << "}\n";
    std::fprintf(stderr, "bench_decoder: wrote %s\n", path.c_str());
}

void
registerRows()
{
    for (double p : {1e-3, 1e-4}) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "/bb72_p%g", p);
        const std::string suffix = buf;
        const std::string scalar_name = "decode_scalar" + suffix;
        const std::string batch_name = "decode_batch" + suffix;
        const std::string wave_name = "decode_wave" + suffix;
        rowSpecs().push_back({scalar_name, "scalar", p});
        rowSpecs().push_back({batch_name, "batch", p});
        rowSpecs().push_back({wave_name, "wave", p});
        benchmark::RegisterBenchmark(
            scalar_name.c_str(),
            [p](benchmark::State& state) { BM_DecodeScalar(state, p); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            batch_name.c_str(),
            [p](benchmark::State& state) {
                BM_DecodeBatch(state, p, 1);
            })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            wave_name.c_str(),
            [p](benchmark::State& state) {
                BM_DecodeBatch(state, p, 0);
            })
            ->Unit(benchmark::kMillisecond);
    }

    // Every supported rung of the SIMD ladder, forced through the
    // dispatch override at the operating point. Rows exist only for
    // rungs this host can run, so CI gates must key off presence.
    for (const DecoderBackend* b : decoderBackendRegistry()) {
        if (b->kernels == nullptr || !b->supported())
            continue;
        const std::string name =
            std::string("decode_wave_") + b->name + "/bb72_p0.001";
        rowSpecs().push_back(
            {name, std::string("wave_") + b->name, 1e-3});
        benchmark::RegisterBenchmark(
            name.c_str(),
            [b](benchmark::State& state) {
                BM_DecodeBatchForcedBackend(state, 1e-3, b);
            })
            ->Unit(benchmark::kMillisecond);
        const std::string kernel_name =
            std::string("wave_kernel_") + b->name + "/bb72_p0.001";
        rowSpecs().push_back(
            {kernel_name, std::string("kernel_") + b->name, 1e-3});
        benchmark::RegisterBenchmark(
            kernel_name.c_str(),
            [b](benchmark::State& state) {
                BM_WaveKernelForcedBackend(state, 1e-3, b);
            })
            ->Unit(benchmark::kMillisecond);
    }

    // Cross-chunk staging: 64-shot chunks decoded one at a time vs
    // pooled kStagingGroup at a time.
    {
        const std::string per = "decode_chunk64/bb72_p0.001";
        const std::string pool = "decode_staged/bb72_p0.001";
        rowSpecs().push_back({per, "chunk64", 1e-3});
        rowSpecs().push_back({pool, "staged", 1e-3});
        benchmark::RegisterBenchmark(
            per.c_str(),
            [](benchmark::State& state) {
                BM_DecodeChunk64(state, 1e-3);
            })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            pool.c_str(),
            [](benchmark::State& state) {
                BM_DecodeStaged(state, 1e-3);
            })
            ->Unit(benchmark::kMillisecond);
    }

    // The OSD stage in isolation, at the operating point where it is
    // a quarter of wave-path decode time. Tracks the batched stage's
    // speedup over the scalar reference and, combined with the wave
    // row, the OSD share of the decode path.
    const double p = 1e-3;
    const std::string osd_scalar = "decode_wave_osd_scalar/bb72_p0.001";
    const std::string osd_batch = "decode_wave_osd/bb72_p0.001";
    rowSpecs().push_back({osd_scalar, "osd_scalar", p});
    rowSpecs().push_back({osd_batch, "osd_batch", p});
    benchmark::RegisterBenchmark(
        osd_scalar.c_str(),
        [p](benchmark::State& state) { BM_OsdScalar(state, p); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        osd_batch.c_str(),
        [p](benchmark::State& state) { BM_OsdBatch(state, p); })
        ->Unit(benchmark::kMillisecond);
}

} // namespace
} // namespace bench
} // namespace cyclone

int
main(int argc, char** argv)
{
    using namespace cyclone::bench;
    registerRows();
    benchmark::Initialize(&argc, argv);
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    writeBenchJson(reporter);
    return 0;
}
