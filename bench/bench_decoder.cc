/**
 * @file
 * Decode-throughput benchmark: scalar per-shot decoding vs the packed
 * batch pipeline on the paper's [[72,12,6]] BB code.
 *
 * Each benchmark iteration samples one chunk with a fresh
 * deterministic seed and decodes it — exactly the work a campaign
 * worker does per chunk — and reports shots/second plus the batch
 * fast-path counters. Two physical error rates bracket the regimes:
 * near the paper's operating point (p = 1e-3) most syndromes are
 * non-empty so the two paths mostly measure the shared BP+OSD core,
 * while sub-threshold (p = 1e-4) ~70% of shots are resolved by the
 * zero-syndrome wave sweep and the duplicate memo, which is where the
 * batched pipeline's multiplier lives.
 *
 * Both paths are bit-identical by construction (enforced by
 * tests/test_shot_batch.cc); this benchmark exists so the speed of
 * the batch path can't silently rot.
 */

#include <memory>
#include <mutex>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cyclone {
namespace bench {
namespace {

constexpr size_t kChunkShots = 512;

/** Lazily built bb72 memory DEM shared by every benchmark row. */
const DetectorErrorModel&
bb72Dem(double p)
{
    struct Entry
    {
        double p;
        std::unique_ptr<DetectorErrorModel> dem;
    };
    static std::mutex mutex;
    static std::vector<Entry> cache;
    std::lock_guard<std::mutex> lock(mutex);
    for (const Entry& e : cache) {
        if (e.p == p)
            return *e.dem;
    }
    const CssCode code = catalog::bb72();
    const SyndromeSchedule sched = makeXThenZSchedule(code);
    MemoryCircuitOptions opts;
    opts.rounds = code.nominalDistance();
    opts.noise = NoiseModel::uniform(p);
    const Circuit circuit = buildZMemoryCircuit(code, sched, opts);
    cache.push_back(
        {p, std::make_unique<DetectorErrorModel>(
                buildDetectorErrorModel(circuit))});
    return *cache.back().dem;
}

BpOptions
benchBp()
{
    BpOptions bp;
    bp.variant = BpOptions::Variant::MinSum;
    return bp;
}

void
attachDecoderCounters(benchmark::State& state, const BpOsdStats& stats)
{
    state.counters["shots_per_sec"] = benchmark::Counter(
        static_cast<double>(stats.decodes),
        benchmark::Counter::kIsRate);
    state.counters["trivial_frac"] = stats.trivialFraction();
    state.counters["memo_rate"] = stats.memoHitRate();
    state.counters["mean_bp_iters"] = stats.meanBpIterations();
}

void
BM_DecodeScalar(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp());
    DemShots shots;
    uint64_t chunk = 0;
    for (auto _ : state) {
        Rng rng(chunkSeed(0xbe7c4ULL, chunk++));
        sampleDemInto(dem, kChunkShots, rng, shots);
        uint64_t failures = 0;
        for (size_t s = 0; s < kChunkShots; ++s) {
            if (decoder.decode(shots.syndromes[s]) !=
                shots.observables[s])
                ++failures;
        }
        benchmark::DoNotOptimize(failures);
    }
    attachDecoderCounters(state, decoder.stats());
}

void
BM_DecodeBatch(benchmark::State& state, double p)
{
    const DetectorErrorModel& dem = bb72Dem(p);
    BpOsdDecoder decoder(dem, benchBp());
    ShotBatch batch;
    std::vector<uint64_t> predicted;
    uint64_t chunk = 0;
    for (auto _ : state) {
        ChunkPlan plan;
        plan.index = chunk;
        plan.shots = kChunkShots;
        plan.seed = chunkSeed(0xbe7c4ULL, chunk++);
        const ChunkOutcome outcome =
            runChunk(dem, plan, decoder, batch, predicted);
        benchmark::DoNotOptimize(outcome.failures);
    }
    attachDecoderCounters(state, decoder.stats());
}

} // namespace
} // namespace bench
} // namespace cyclone

int
main(int argc, char** argv)
{
    using namespace cyclone::bench;
    for (double p : {1e-3, 1e-4}) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "/bb72_p%g", p);
        const std::string suffix = buf;
        benchmark::RegisterBenchmark(
            ("decode_scalar" + suffix).c_str(),
            [p](benchmark::State& state) { BM_DecodeScalar(state, p); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("decode_batch" + suffix).c_str(),
            [p](benchmark::State& state) { BM_DecodeBatch(state, p); })
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
