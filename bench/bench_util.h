/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks.
 *
 * Every binary regenerates one data figure of the paper: each
 * benchmark row is one point of the figure, with the figure's values
 * exposed as benchmark counters. Monte-Carlo depth is tuned for a
 * complete run in minutes; set CYCLONE_SHOTS to override the per-point
 * shot count and CYCLONE_FULL=1 to enable the full code list and
 * denser sweeps used for EXPERIMENTS.md.
 */

#ifndef CYCLONE_BENCH_BENCH_UTIL_H
#define CYCLONE_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "core/cyclone.h"

namespace cyclone {
namespace bench {

/** Per-point Monte-Carlo shots (CYCLONE_SHOTS overrides). */
inline size_t
shots(size_t fallback)
{
    if (const char* env = std::getenv("CYCLONE_SHOTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

/** Whether the full (slow) sweep was requested. */
inline bool
fullMode()
{
    const char* env = std::getenv("CYCLONE_FULL");
    return env != nullptr && env[0] == '1';
}

/** Compile one round under an architecture with default options. */
inline CompileResult
compileArch(const CssCode& code, const SyndromeSchedule& schedule,
            Architecture arch)
{
    CodesignConfig config;
    config.architecture = arch;
    return compileCodesign(code, schedule, config);
}

/**
 * Run a latency-coupled memory experiment and attach LER counters to
 * a benchmark state.
 */
inline MemoryExperimentResult
runPoint(const CssCode& code, const SyndromeSchedule& schedule,
         double p, double latency_us, size_t n_shots,
         uint64_t seed = 0xc0de)
{
    MemoryExperimentConfig exp;
    exp.physicalError = p;
    exp.roundLatencyUs = latency_us;
    exp.shots = n_shots;
    exp.seed = seed;
    // Min-sum BP is ~5x faster than product-sum and, with the OSD
    // order-lambda sweep, decodes the catalog's qLDPC codes with the
    // same single-fault accuracy (see tests + EXPERIMENTS.md).
    exp.bp.variant = BpOptions::Variant::MinSum;
    return runZMemoryExperiment(code, schedule, exp);
}

/** Attach the standard LER counters to a state. */
inline void
setLerCounters(benchmark::State& state,
               const MemoryExperimentResult& r)
{
    state.counters["LER"] = r.logicalErrorRate.rate;
    state.counters["LER_err"] = wilsonHalfWidth(
        r.logicalErrorRate.successes, r.logicalErrorRate.trials);
    state.counters["shots"] =
        static_cast<double>(r.logicalErrorRate.trials);
    state.counters["rounds"] = static_cast<double>(r.rounds);
}

} // namespace bench
} // namespace cyclone

#endif // CYCLONE_BENCH_BENCH_UTIL_H
