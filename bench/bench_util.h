/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks.
 *
 * Every binary regenerates one data figure of the paper: each
 * benchmark row is one point of the figure, with the figure's values
 * exposed as benchmark counters. Monte-Carlo depth is tuned for a
 * complete run in minutes; set CYCLONE_SHOTS to override the per-point
 * shot count and CYCLONE_FULL=1 to enable the full code list and
 * denser sweeps used for EXPERIMENTS.md.
 */

#ifndef CYCLONE_BENCH_BENCH_UTIL_H
#define CYCLONE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "core/cyclone.h"

namespace cyclone {
namespace bench {

/** Per-point Monte-Carlo shots (CYCLONE_SHOTS overrides). */
inline size_t
shots(size_t fallback)
{
    if (const char* env = std::getenv("CYCLONE_SHOTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

/** Whether the full (slow) sweep was requested. */
inline bool
fullMode()
{
    const char* env = std::getenv("CYCLONE_FULL");
    return env != nullptr && env[0] == '1';
}

/** Compile one round under an architecture with default options. */
inline CompileResult
compileArch(const CssCode& code, const SyndromeSchedule& schedule,
            Architecture arch)
{
    CodesignConfig config;
    config.architecture = arch;
    return compileCodesign(code, schedule, config);
}

/**
 * Run a latency-coupled memory experiment and attach LER counters to
 * a benchmark state.
 */
inline MemoryExperimentResult
runPoint(const CssCode& code, const SyndromeSchedule& schedule,
         double p, double latency_us, size_t n_shots,
         uint64_t seed = 0xc0de)
{
    MemoryExperimentConfig exp;
    exp.physicalError = p;
    exp.roundLatencyUs = latency_us;
    exp.shots = n_shots;
    exp.seed = seed;
    // Min-sum BP is ~5x faster than product-sum and, with the OSD
    // order-lambda sweep, decodes the catalog's qLDPC codes with the
    // same single-fault accuracy (see tests + EXPERIMENTS.md).
    exp.bp.variant = BpOptions::Variant::MinSum;
    return runZMemoryExperiment(code, schedule, exp);
}

/** Attach the standard LER counters to a state. */
inline void
setLerCounters(benchmark::State& state,
               const MemoryExperimentResult& r)
{
    state.counters["LER"] = r.logicalErrorRate.rate;
    state.counters["LER_err"] = wilsonHalfWidth(
        r.logicalErrorRate.successes, r.logicalErrorRate.trials);
    state.counters["shots"] =
        static_cast<double>(r.logicalErrorRate.trials);
    state.counters["rounds"] = static_cast<double>(r.rounds);
}

/** Campaign-task flavour of the standard LER counters. */
inline void
setLerCounters(benchmark::State& state, const TaskResult& r)
{
    state.counters["LER"] = r.logicalErrorRate.rate;
    state.counters["LER_err"] = r.wilson;
    state.counters["shots"] =
        static_cast<double>(r.logicalErrorRate.trials);
    state.counters["rounds"] = static_cast<double>(r.rounds);
}

/**
 * Default stopping rule of the campaign-driven figures: the fallback
 * (or CYCLONE_SHOTS) is the per-point cap, and a 10% relative-error
 * target lets easy points stop at a wave boundary well before it.
 */
inline StoppingRule
figureRule(size_t fallback)
{
    StoppingRule rule;
    rule.chunkShots = 64;
    rule.chunksPerWave = 2;
    rule.maxShots = shots(fallback);
    rule.targetRelErr = 0.1;
    rule.minFailures = 8;
    return rule;
}

/**
 * One-line stderr summary of a figure campaign: realized shots vs the
 * fixed budget the pre-campaign loops would have burned, plus cache
 * activity.
 */
inline void
reportCampaignSummary(const CampaignResult& result, size_t fixed_budget);

/**
 * A figure campaign that runs on first use, so --benchmark_list_tests
 * and --help stay instant: benchmark rows are registered from the
 * spec alone and the campaign executes once when the first selected
 * row actually runs.
 */
class LazyCampaign
{
  public:
    LazyCampaign(CampaignSpec spec, size_t fixed_budget)
        : spec_(std::move(spec)), fixedBudget_(fixed_budget)
    {}

    const TaskResult&
    task(size_t index)
    {
        std::call_once(once_, [&] {
            result_ = runCampaign(spec_);
            reportCampaignSummary(result_, fixedBudget_);
        });
        return result_.tasks[index];
    }

  private:
    CampaignSpec spec_;
    size_t fixedBudget_ = 0;
    std::once_flag once_;
    CampaignResult result_;
};

/**
 * Register one benchmark row per campaign task. Each row reports the
 * standard LER counters; `extra` adds figure-specific ones. Tasks
 * that failed to build or sample surface as skipped-with-error rows
 * instead of silent LER=0 points.
 */
inline void
registerCampaignBenchmarks(
    CampaignSpec spec, size_t fixed_budget,
    std::function<void(benchmark::State&, const TaskResult&, size_t)>
        extra = nullptr)
{
    auto campaign =
        std::make_shared<LazyCampaign>(spec, fixed_budget);
    for (size_t i = 0; i < spec.tasks.size(); ++i) {
        benchmark::RegisterBenchmark(
            spec.tasks[i].id.c_str(),
            [campaign, extra, i](benchmark::State& state) {
                const TaskResult& r = campaign->task(i);
                if (!r.error.empty()) {
                    state.SkipWithError(r.error.c_str());
                    return;
                }
                for (auto _ : state) {
                }
                setLerCounters(state, r);
                if (extra)
                    extra(state, r, i);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

inline void
reportCampaignSummary(const CampaignResult& r, size_t fixed_budget)
{
    const size_t used = r.totalShots();
    const double saved = fixed_budget > 0
        ? 100.0 * (1.0 - static_cast<double>(used) /
                       static_cast<double>(fixed_budget))
        : 0.0;
    std::fprintf(stderr,
                 "[%s] %zu tasks, %zu shots (fixed budget %zu, saved "
                 "%.0f%%), wall %.1fs, compile cache %zu hit / %zu "
                 "miss, dem cache %zu hit / %zu miss\n",
                 r.name.c_str(), r.tasks.size(), used, fixed_budget,
                 saved, r.wallSeconds, r.cache.compileHits,
                 r.cache.compileMisses, r.cache.demHits,
                 r.cache.demMisses);
}

} // namespace bench
} // namespace cyclone

#endif // CYCLONE_BENCH_BENCH_UTIL_H
