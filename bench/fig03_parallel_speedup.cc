/**
 * @file
 * Figure 3: speedup of the maximally parallel schedule over the fully
 * serial schedule, for every HGP and BB code in the paper.
 *
 * HGP codes use the interleaved (edge-colored) schedule; BB codes are
 * not edge colorable and use X-then-Z, exactly as in Section III-A.
 * Counters: serial_ms, parallel_ms, speedup, depth, gates.
 */

#include "bench_util.h"

using namespace cyclone;

namespace {

void
runCode(benchmark::State& state, const std::string& name, bool hgp)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = hgp ? makeInterleavedSchedule(code)
                                    : makeXThenZSchedule(code);
    for (auto _ : state) {
        IdealLatency lat = idealLatencies(code, schedule);
        state.counters["serial_ms"] = lat.serialUs / 1000.0;
        state.counters["parallel_ms"] = lat.parallelUs / 1000.0;
        state.counters["speedup"] = lat.speedup;
        state.counters["depth"] = static_cast<double>(lat.depth);
        state.counters["gates"] = static_cast<double>(lat.gates);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    for (const char* name : {"hgp225", "hgp400", "hgp625"}) {
        benchmark::RegisterBenchmark(
            (std::string("fig03/hgp/") + name).c_str(),
            [name](benchmark::State& s) { runCode(s, name, true); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const char* name : {"bb72", "bb90", "bb108", "bb144",
                             "bb288"}) {
        benchmark::RegisterBenchmark(
            (std::string("fig03/bb/") + name).c_str(),
            [name](benchmark::State& s) { runCode(s, name, false); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
