/**
 * @file
 * Figure 19: raw execution times of the alternate grid, the baseline
 * grid, and Cyclone across HGP and BB codes.
 *
 * Counters: exec_ms per architecture plus the speedups over the
 * baseline. The expected ordering is cyclone < alternate < baseline.
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runCode(benchmark::State& state, const std::string& name)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        const double baseline =
            compileArch(code, schedule, Architecture::BaselineGrid)
                .execTimeUs;
        const double alternate =
            compileArch(code, schedule, Architecture::AlternateGrid)
                .execTimeUs;
        const double cyc =
            compileArch(code, schedule, Architecture::Cyclone)
                .execTimeUs;
        state.counters["baseline_ms"] = baseline / 1000.0;
        state.counters["alternate_ms"] = alternate / 1000.0;
        state.counters["cyclone_ms"] = cyc / 1000.0;
        state.counters["alt_speedup"] = baseline / alternate;
        state.counters["cyclone_speedup"] = baseline / cyc;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> codes{"hgp225", "bb72", "bb144"};
    if (fullMode())
        codes = catalog::names();
    for (const auto& name : codes) {
        benchmark::RegisterBenchmark(
            ("fig19/" + name).c_str(),
            [name](benchmark::State& s) { runCode(s, name); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
