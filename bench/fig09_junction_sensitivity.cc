/**
 * @file
 * Figure 9: sensitivity of the mesh junction network to junction
 * crossing time, on [[225,9,6]] at p = 5e-4.
 *
 * The crossing time is reduced by r% (Durations::junctionScale); the
 * paper finds the mesh becomes temporally competitive with the
 * baseline grid around a 70% reduction. Counters: exec_ms, LER,
 * LER_err (LER points only on the reduced sweep to bound runtime).
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

CompileResult
compileMeshAt(const CssCode& code, const SyndromeSchedule& schedule,
              double reduction_percent)
{
    EjfOptions options;
    options.durations.junctionScale = 1.0 - reduction_percent / 100.0;
    return compileMeshJunction(code, schedule, options);
}

void
runExecPoint(benchmark::State& state, double reduction)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        CompileResult mesh = compileMeshAt(code, schedule, reduction);
        CompileResult base =
            compileArch(code, schedule, Architecture::BaselineGrid);
        state.counters["mesh_exec_ms"] = mesh.execTimeUs / 1000.0;
        state.counters["baseline_exec_ms"] = base.execTimeUs / 1000.0;
        state.counters["reduction_pct"] = reduction;
        state.counters["junction_roadblocks"] =
            static_cast<double>(mesh.junctionRoadblocks);
    }
}

void
runLerPoint(benchmark::State& state, double reduction)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    CompileResult mesh = compileMeshAt(code, schedule, reduction);
    for (auto _ : state) {
        auto result = runPoint(code, schedule, 5e-4, mesh.execTimeUs,
                               shots(150));
        setLerCounters(state, result);
        state.counters["exec_ms"] = mesh.execTimeUs / 1000.0;
        state.counters["reduction_pct"] = reduction;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<double> reductions = fullMode()
        ? std::vector<double>{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
        : std::vector<double>{0, 30, 50, 70, 90};
    for (double r : reductions) {
        benchmark::RegisterBenchmark(
            ("fig09/exec/reduce:" + std::to_string(int(r)) + "%").c_str(),
            [r](benchmark::State& s) { runExecPoint(s, r); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (double r : {50.0, 90.0}) {
        benchmark::RegisterBenchmark(
            ("fig09/ler/reduce:" + std::to_string(int(r)) + "%").c_str(),
            [r](benchmark::State& s) { runLerPoint(s, r); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
