/**
 * @file
 * Figure 6: the software x hardware confusion matrix on [[225,9,6]].
 *
 * Rows: software policy (static interaction-DAG EJF vs dynamic
 * timeslices); columns: topology (grid vs circle). Only the
 * coordinated dynamic-on-circle corner — Cyclone — is fast; static on
 * a circle is disastrous. Counters: exec_ms, trap_roadblocks,
 * junction_roadblocks.
 */

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runCell(benchmark::State& state, Architecture arch)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        CompileResult r = compileArch(code, schedule, arch);
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["trap_roadblocks"] =
            static_cast<double>(r.trapRoadblocks);
        state.counters["junction_roadblocks"] =
            static_cast<double>(r.junctionRoadblocks);
        state.counters["rebalances"] =
            static_cast<double>(r.rebalances);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::RegisterBenchmark(
            "fig06/static_grid(baseline)", [](benchmark::State& s) {
            runCell(s, Architecture::BaselineGrid);
        })->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
            "fig06/dynamic_grid", [](benchmark::State& s) {
            runCell(s, Architecture::DynamicGrid);
        })->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
            "fig06/static_circle", [](benchmark::State& s) {
            runCell(s, Architecture::RingEjf);
        })->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
            "fig06/dynamic_circle(cyclone)", [](benchmark::State& s) {
            runCell(s, Architecture::Cyclone);
        })->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
