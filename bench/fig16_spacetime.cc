/**
 * @file
 * Figure 16: spacetime cost (traps x execution time x ancilla count)
 * of the baseline grid relative to Cyclone, for every code. Execution
 * times and utilizations are read from the TimedSchedule IR.
 *
 * Counters: baseline_st, cyclone_st, ratio (the paper reports up to
 * ~20x overall improvement), plus per-design gate utilization and
 * roadblock wait totals from the IR.
 */

#include <string>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runCode(benchmark::State& state, const std::string& name)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        CompileResult bl =
            compileArch(code, schedule, Architecture::BaselineGrid);
        CompileResult cy =
            compileArch(code, schedule, Architecture::Cyclone);
        // execTimeUs is the IR makespan (deriveTimingFromSchedule),
        // so spacetimeCost already reads from the IR.
        const double bl_st = bl.spacetimeCost();
        const double cy_st = cy.spacetimeCost();
        state.counters["baseline_st"] = bl_st;
        state.counters["cyclone_st"] = cy_st;
        state.counters["ratio"] = bl_st / cy_st;
        state.counters["exec_ratio"] =
            bl.schedule.makespan() / cy.schedule.makespan();
        state.counters["trap_ratio"] =
            static_cast<double>(bl.numTraps) / cy.numTraps;
        state.counters["baseline_gate_util"] =
            bl.schedule.utilization(OpCategory::Gate);
        state.counters["cyclone_gate_util"] =
            cy.schedule.utilization(OpCategory::Gate);
        state.counters["baseline_wait_ms"] =
            bl.schedule.waitHistogram().totalWaitUs / 1000.0;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    for (const std::string& name : catalog::names()) {
        benchmark::RegisterBenchmark(
            ("fig16/" + name).c_str(),
            [name](benchmark::State& s) { runCode(s, name); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
