/**
 * @file
 * Figure 16: spacetime cost (traps x execution time x ancilla count)
 * of the baseline grid relative to Cyclone, for every code.
 *
 * Counters: baseline_st, cyclone_st, ratio (the paper reports up to
 * ~20x overall improvement).
 */

#include <string>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runCode(benchmark::State& state, const std::string& name)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        CompileResult bl =
            compileArch(code, schedule, Architecture::BaselineGrid);
        CompileResult cy =
            compileArch(code, schedule, Architecture::Cyclone);
        state.counters["baseline_st"] = bl.spacetimeCost();
        state.counters["cyclone_st"] = cy.spacetimeCost();
        state.counters["ratio"] =
            bl.spacetimeCost() / cy.spacetimeCost();
        state.counters["exec_ratio"] = bl.execTimeUs / cy.execTimeUs;
        state.counters["trap_ratio"] =
            static_cast<double>(bl.numTraps) / cy.numTraps;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    for (const std::string& name : catalog::names()) {
        benchmark::RegisterBenchmark(
            ("fig16/" + name).c_str(),
            [name](benchmark::State& s) { runCode(s, name); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
