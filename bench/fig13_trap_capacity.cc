/**
 * @file
 * Figure 13: sensitivity to trap/ion arrangements on [[225,9,6]] at
 * p = 1e-4, over "tight" Cyclone configurations (capacity =
 * ceil(225/x) + ceil(216/x)).
 *
 * Counters: exec_ms, analytic_ms, capacity for the full trap-count
 * sweep; LER for three representative configurations (dense, the
 * paper's optimum at 64 traps, and the base form).
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runExecPoint(benchmark::State& state, size_t traps)
{
    CssCode code = catalog::hgp225();
    for (auto _ : state) {
        auto points = sweepCycloneTrapCounts(code, {traps});
        state.counters["exec_ms"] = points[0].execTimeUs / 1000.0;
        state.counters["analytic_ms"] = points[0].analyticUs / 1000.0;
        state.counters["capacity"] =
            static_cast<double>(points[0].capacity);
    }
}

void
runLerPoint(benchmark::State& state, size_t traps)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    auto points = sweepCycloneTrapCounts(code, {traps});
    for (auto _ : state) {
        auto result = runPoint(code, schedule, 1e-4,
                               points[0].execTimeUs, shots(150));
        setLerCounters(state, result);
        state.counters["exec_ms"] = points[0].execTimeUs / 1000.0;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<size_t> sweep = fullMode()
        ? std::vector<size_t>{1, 3, 5, 9, 15, 25, 45, 64, 75, 90, 108}
        : std::vector<size_t>{1, 9, 25, 45, 64, 75, 108};
    for (size_t x : sweep) {
        benchmark::RegisterBenchmark(
            ("fig13/exec/traps:" + std::to_string(x)).c_str(),
            [x](benchmark::State& s) { runExecPoint(s, x); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (size_t x : {size_t(3), size_t(9), size_t(64), size_t(108)}) {
        benchmark::RegisterBenchmark(
            ("fig13/ler/traps:" + std::to_string(x)).c_str(),
            [x](benchmark::State& s) { runLerPoint(s, x); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
