/**
 * @file
 * Figure 20: total and unrolled (component-wise serialized) execution
 * times for the three baseline compilers on [[225,9,6]], plus the
 * realized % parallelization (actual / serialized; lower = more
 * parallel), with Cyclone for reference. All aggregates are read from
 * the TimedSchedule IR rather than pre-accumulated counters.
 *
 * Counters: exec_ms, serial_gate_ms, serial_shuttle_ms,
 * serial_junction_ms, serial_swap_ms, serial_measure_ms,
 * parallel_pct, roadblock_waits, roadblock_wait_ms.
 */

#include <functional>
#include <string>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
report(benchmark::State& state, const CompileResult& r)
{
    const TimedSchedule& ir = r.schedule;
    const double exec_us = ir.makespan();
    const TimeBreakdown serial = ir.breakdown();
    state.counters["exec_ms"] = exec_us / 1000.0;
    state.counters["serial_gate_ms"] = serial.gateUs / 1000.0;
    state.counters["serial_shuttle_ms"] = serial.shuttleUs / 1000.0;
    state.counters["serial_junction_ms"] = serial.junctionUs / 1000.0;
    state.counters["serial_swap_ms"] = serial.swapUs / 1000.0;
    state.counters["serial_measure_ms"] = serial.measureUs / 1000.0;
    state.counters["parallel_pct"] = 100.0 * r.parallelFraction();
    const WaitHistogram waits = ir.waitHistogram();
    state.counters["roadblock_waits"] =
        static_cast<double>(waits.waits);
    state.counters["roadblock_wait_ms"] = waits.totalWaitUs / 1000.0;
}

void
runCompiler(benchmark::State& state, int which)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const size_t side = 15;
    Topology grid = buildBaselineGrid(side, side, 5);
    for (auto _ : state) {
        CompileResult r;
        switch (which) {
          case 0:
            r = compileEjf(code, schedule, grid, {});
            break;
          case 1:
            r = compileBaseline2(code, schedule, grid, {});
            break;
          case 2:
            r = compileBaseline3(code, schedule, grid, {});
            break;
          default:
            r = compileCyclone(code);
            break;
        }
        report(state, r);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const char* names[] = {"baseline1-ejf", "baseline2-muzzle",
                           "baseline3-moveless", "cyclone"};
    for (int i = 0; i < 4; ++i) {
        benchmark::RegisterBenchmark(
            (std::string("fig20/") + names[i]).c_str(),
            [i](benchmark::State& s) { runCompiler(s, i); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
