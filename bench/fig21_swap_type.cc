/**
 * @file
 * Figure 21: IonSwap vs GateSwap sensitivity on [[225,9,6]] for the
 * baseline grid and for Cyclone.
 *
 * IonSwap scales with the ion's distance from the chain end, so the
 * baseline (which mostly exits through the port it entered) prefers
 * it, while Cyclone's fixed-direction rotation crosses the whole
 * chain every step and prefers the constant-cost GateSwap. Counters:
 * exec_ms, swap_ops, serial_swap_ms.
 */

#include <string>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runCell(benchmark::State& state, Architecture arch, SwapKind swap)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    CodesignConfig config;
    config.architecture = arch;
    config.ejf.swap = swap;
    config.cyclone.swap = swap;
    for (auto _ : state) {
        CompileResult r = compileCodesign(code, schedule, config);
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["swap_ops"] = static_cast<double>(r.swapOps);
        state.counters["serial_swap_ms"] =
            r.serialized.swapUs / 1000.0;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    struct Cell
    {
        const char* label;
        Architecture arch;
        SwapKind swap;
    };
    const Cell cells[] = {
        {"fig21/baseline/GateSwap", Architecture::BaselineGrid,
         SwapKind::GateSwap},
        {"fig21/baseline/IonSwap", Architecture::BaselineGrid,
         SwapKind::IonSwap},
        {"fig21/cyclone/GateSwap", Architecture::Cyclone,
         SwapKind::GateSwap},
        {"fig21/cyclone/IonSwap", Architecture::Cyclone,
         SwapKind::IonSwap},
    };
    for (const Cell& c : cells) {
        benchmark::RegisterBenchmark(
            c.label, [c](benchmark::State& s) {
                runCell(s, c.arch, c.swap);
            })->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
