/**
 * @file
 * Figure 18: sensitivity to uniform reduction of gate and shuttling
 * times by r% on [[225,9,6]] at p = 1e-4.
 *
 * As operations speed up, decoherence stops dominating and the
 * baseline-vs-Cyclone LER gap narrows toward the code's intrinsic
 * error floor. Counters: exec_ms for both architectures (all points),
 * LER at selected points.
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

double
compileAt(const CssCode& code, const SyndromeSchedule& schedule,
          Architecture arch, double reduction_pct)
{
    CodesignConfig config;
    config.architecture = arch;
    config.ejf.durations.scale = 1.0 - reduction_pct / 100.0;
    config.cyclone.durations.scale = 1.0 - reduction_pct / 100.0;
    return compileCodesign(code, schedule, config).execTimeUs;
}

void
runExec(benchmark::State& state, double reduction)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    for (auto _ : state) {
        state.counters["baseline_ms"] =
            compileAt(code, schedule, Architecture::BaselineGrid,
                      reduction) / 1000.0;
        state.counters["cyclone_ms"] =
            compileAt(code, schedule, Architecture::Cyclone,
                      reduction) / 1000.0;
        state.counters["reduction_pct"] = reduction;
    }
}

void
runLer(benchmark::State& state, Architecture arch, double reduction)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double latency =
        compileAt(code, schedule, arch, reduction);
    for (auto _ : state) {
        auto result = runPoint(code, schedule, 1e-4, latency,
                               shots(150));
        setLerCounters(state, result);
        state.counters["exec_ms"] = latency / 1000.0;
        state.counters["reduction_pct"] = reduction;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<double> reductions = fullMode()
        ? std::vector<double>{0, 10, 25, 40, 50, 65, 75, 90}
        : std::vector<double>{0, 25, 50, 75};
    for (double r : reductions) {
        benchmark::RegisterBenchmark(
            ("fig18/exec/reduce:" + std::to_string(int(r)) + "%").c_str(),
            [r](benchmark::State& s) { runExec(s, r); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (double r : {0.0, 50.0}) {
        for (Architecture arch :
             {Architecture::Cyclone, Architecture::BaselineGrid}) {
            const char tag =
                arch == Architecture::Cyclone ? 'C' : 'B';
            benchmark::RegisterBenchmark(
            (std::string("fig18/ler/") + tag + "/reduce:" +
                    std::to_string(int(r)) + "%").c_str(),
                [arch, r](benchmark::State& s) { runLer(s, arch, r); })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
