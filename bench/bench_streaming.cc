/**
 * @file
 * Streaming decode service benchmark: serving latency and slab
 * occupancy of the sliding-window front-end on the paper's
 * [[72,12,6]] BB code under the Cyclone architecture at p = 5e-4.
 *
 * Like bench_campaign this is a plain main(): rows pace real
 * wall-clock round arrivals (Google Benchmark's timing loop cannot
 * express a fixed-rate open-loop workload). The round period is the
 * compiled Cyclone makespan of one syndrome round — the same number
 * the campaign engine reports next to the latency percentiles — and
 * the paced rows emit one detector slice per stream per period at
 * absolute deadlines (sleep_until), so backlog from a slow flush
 * shows up in the next windows' latencies instead of silently
 * stretching the clock.
 *
 * The sweep crosses flush policy x stream count, paced at the round
 * period; one unpaced max-rate row measures the cross-stream batch
 * formation at full throttle (the slab-occupancy gate). Every row
 * verifies bit-identity: each committed correction must equal the
 * offline batch decode of the same window, or the bench exits
 * non-zero.
 *
 * Always distills BENCH_streaming.json (override the path with
 * CYCLONE_BENCH_STREAMING_JSON). CI re-runs the bench and gates the
 * reference row's latency_p99_us against the round period and the
 * max-rate row's slab occupancy; the committed copy records the last
 * measured numbers. CYCLONE_SHOTS overrides the max-rate window
 * budget.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/cyclone.h"

using namespace cyclone;

namespace {

size_t
windowBudget()
{
    if (const char* env = std::getenv("CYCLONE_SHOTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return 1024;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Decoder configuration for the serving rows AND the offline
 * bit-identity reference (they must match exactly). BP is capped at
 * 16 iterations: one wave iteration costs the same however few lanes
 * are occupied, so a straggler lane running to the default cap of 32
 * holds a small deadline flush for most of the round period. Capping
 * BP and letting OSD pick up the non-converged lanes is the standard
 * real-time trade and is what gives the p99 gate its headroom.
 */
BpOptions
servingBpOptions()
{
    BpOptions bp;
    bp.variant = BpOptions::Variant::MinSum;
    bp.maxIterations = 16;
    return bp;
}

struct Row
{
    std::string name;
    bool deadline = false;
    bool paced = false;
    bool reference = false;
    size_t streams = 0;
    size_t windows = 0;
    StreamDecodeStats stats;
    double wallSeconds = 0.0;
    size_t mismatches = 0;
};

/**
 * Drive `windows` windows (cohorts of one window per stream) through
 * a fresh StreamDecoder, verifying every commit against `expected`.
 * Paced rows arrive one round slice per stream per `periodUs` at
 * absolute deadlines and poll at ~period/8 granularity in between,
 * so deadline flushes fire close to their timeout rather than on the
 * next round tick.
 */
Row
runRow(const std::string& name, const DetectorErrorModel& dem,
       const ShotBatch& batch, const std::vector<uint64_t>& expected,
       size_t streams, size_t rounds, bool deadlinePolicy, bool paced,
       bool reference, double periodUs, size_t windows,
       size_t capacityChunks)
{
    BpOptions bp = servingBpOptions();
    BpOsdDecoder decoder(dem, bp);

    StreamDecoderOptions options;
    options.streams = streams;
    options.roundsPerWindow = rounds;
    options.capacityChunks = capacityChunks;
    options.policy = deadlinePolicy ? FlushPolicy::Deadline
                                    : FlushPolicy::FullWave;
    // The serving target: commit within one round period of a window
    // becoming ready. The deadline policy flushes at an eighth of
    // that, leaving the decode the rest of the budget.
    options.deadlineUs = periodUs;
    options.flushAfterUs = deadlinePolicy ? periodUs * 0.125 : 0.0;
    StreamDecoder stream(decoder, dem.numDetectors, options);

    Row row;
    row.name = name;
    row.deadline = deadlinePolicy;
    row.paced = paced;
    row.reference = reference;
    row.streams = streams;
    row.windows = windows;

    auto drain = [&] {
        for (const CommittedWindow& c : stream.committed()) {
            const size_t flat = c.windowIndex * streams + c.stream;
            if (flat >= expected.size() ||
                c.prediction != expected[flat])
                ++row.mismatches;
        }
        stream.committed().clear();
    };

    const size_t cohorts = (windows + streams - 1) / streams;
    std::vector<BitVec> sources(streams);
    const auto t0 = std::chrono::steady_clock::now();
    const std::chrono::duration<double, std::micro> period(periodUs);
    const std::chrono::duration<double, std::micro> pollStep(periodUs /
                                                             16.0);
    for (size_t c = 0; c < cohorts; ++c) {
        for (size_t r = 0; r < rounds; ++r) {
            if (paced) {
                const auto tickDeadline = t0 +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        period * static_cast<double>(c * rounds + r));
                // Poll while waiting so deadline flushes fire near
                // their timeout, not on the next round tick.
                while (std::chrono::steady_clock::now() <
                       tickDeadline) {
                    stream.poll();
                    drain();
                    const auto remaining =
                        tickDeadline - std::chrono::steady_clock::now();
                    std::this_thread::sleep_for(std::min<
                        std::chrono::steady_clock::duration>(
                        remaining,
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            pollStep)));
                }
            }
            for (size_t s = 0; s < streams; ++s) {
                const size_t flat = c * streams + s;
                if (flat >= windows)
                    continue;
                if (r == 0)
                    sources[s] = batch.syndromeOf(flat);
                stream.pushRound(s, sources[s]);
            }
            stream.poll();
            drain();
        }
    }
    stream.finish();
    drain();
    row.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    row.stats = stream.stats();
    row.stats.computePercentiles();
    if (row.stats.windows != windows) {
        std::fprintf(stderr, "%s: committed %zu of %zu windows\n",
                     name.c_str(), row.stats.windows, windows);
        std::exit(1);
    }
    return row;
}

void
printRow(const Row& r, double periodUs)
{
    std::fprintf(
        stderr,
        "%-22s %6zu win  p50 %8.1fus  p99 %8.1fus  max %8.1fus  "
        "miss %5.1f%%  occ %5.1f%%  (%4.2fx period)\n",
        r.name.c_str(), r.windows, r.stats.p50Us, r.stats.p99Us,
        r.stats.latencyMaxUs, 100.0 * r.stats.deadlineMissFraction(),
        100.0 * r.stats.slabOccupancy(),
        periodUs > 0.0 ? r.stats.p99Us / periodUs : 0.0);
}

} // namespace

int
main()
{
    // Resolve and compile the reference operating point exactly as a
    // campaign task would: bb72 under Cyclone, p = 1e-3, rounds =
    // nominal distance, round period = compiled makespan.
    CampaignSpec spec;
    spec.seed = 99;
    TaskSpec task;
    task.codeName = "bb72";
    task.architecture = Architecture::Cyclone;
    // Reference operating point: p = 5e-4, comfortably below
    // threshold. At p = 1e-3 a partial-slab decode costs most of the
    // 52.8ms round period (BP runs near its iteration cap on a third
    // of the shots), leaving no CI headroom for the p99 <= period
    // gate; at 5e-4 the decode fits with margin while the workload
    // stays non-trivial.
    task.physicalError = 5e-4;
    spec.tasks.push_back(task);
    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    ArtifactCache cache;
    buildTaskArtifacts(resolved[0], cache);
    const DetectorErrorModel& dem = *resolved[0].dem;
    const size_t rounds = resolved[0].rounds;
    // latencyUs is the compiled makespan of ONE syndrome round.
    const double periodUs = resolved[0].latencyUs;

    // One deterministic shot set serves every row; the offline batch
    // decode of it is the bit-identity reference.
    const size_t budget = windowBudget();
    // Max-rate row: a multiple of the 128-window slab so full-wave
    // occupancy is measured on whole slabs.
    const size_t maxrateWindows = std::max<size_t>(
        size_t{128}, budget - budget % 128);
    // Paced rows run in real time (cohorts x rounds x 52.8ms each),
    // so the cohort count is kept CI-sized.
    const size_t pacedCohorts =
        std::clamp<size_t>(budget / 64, size_t{8}, size_t{32});
    const size_t totalShots =
        std::max(maxrateWindows, pacedCohorts * 16);

    ShotBatch batch;
    Rng rng(chunkSeed(0x57e11a5ULL, 0));
    sampleDemBatch(dem, totalShots, rng, batch);
    std::vector<uint64_t> expected;
    {
        BpOsdDecoder reference(dem, servingBpOptions());
        reference.decodeBatch(batch, expected);
    }

    std::fprintf(stderr,
                 "bb72/cyclone: %zu detectors, %zu rounds/window, "
                 "round period %.1fus (window %.1fus)\n",
                 dem.numDetectors, rounds, periodUs,
                 periodUs * static_cast<double>(rounds));

    std::vector<Row> rows;
    for (const bool deadline : {false, true}) {
        for (const size_t S : {size_t{1}, size_t{4}, size_t{8},
                               size_t{16}}) {
            const std::string name = std::string("paced_") +
                (deadline ? "deadline" : "fullwave") + "_s" +
                std::to_string(S);
            const bool reference = deadline && S == 8;
            rows.push_back(runRow(name, dem, batch, expected, S,
                                  rounds, deadline, true, reference,
                                  periodUs, pacedCohorts * S, 1));
            printRow(rows.back(), periodUs);
        }
    }
    // Full-throttle batch formation: 8 streams feeding 128-window
    // slabs with no pacing. Latency here is meaningless (every
    // window waits for slab formation at max rate); the point is
    // occupancy and throughput.
    rows.push_back(runRow("maxrate_fullwave_s8", dem, batch, expected,
                          8, rounds, false, false, false, periodUs,
                          maxrateWindows, 2));
    printRow(rows.back(), periodUs);

    size_t mismatches = 0;
    for (const Row& r : rows)
        mismatches += r.mismatches;
    if (mismatches > 0) {
        std::fprintf(stderr,
                     "FAIL: %zu streamed corrections differ from "
                     "offline decoding\n",
                     mismatches);
        return 1;
    }
    std::fprintf(stderr,
                 "bit-identity: every streamed correction matches "
                 "offline decoding\n");

    const char* env = std::getenv("CYCLONE_BENCH_STREAMING_JSON");
    const std::string path =
        env != nullptr ? env : "BENCH_streaming.json";
    std::FILE* out = std::fopen((path + ".tmp").c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_streaming\",\n"
                 "  \"code\": \"bb72\",\n  \"arch\": \"cyclone\",\n"
                 "  \"p\": 5e-4,\n  \"detectors\": %zu,\n"
                 "  \"rounds_per_window\": %zu,\n"
                 "  \"round_period_us\": %.4g,\n"
                 "  \"bit_identical\": true,\n  \"rows\": [\n",
                 dem.numDetectors, rounds, periodUs);
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        const StreamDecodeStats& s = r.stats;
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"policy\": \"%s\", "
            "\"paced\": %s, \"reference\": %s, \"streams\": %zu, "
            "\"windows\": %zu,\n     \"latency_p50_us\": %.6g, "
            "\"latency_p99_us\": %.6g, \"latency_p999_us\": %.6g, "
            "\"latency_max_us\": %.6g, \"latency_mean_us\": %.6g,\n"
            "     \"deadline_misses\": %zu, \"miss_fraction\": %.6g, "
            "\"slab_occupancy\": %.6g, \"flushes_full\": %zu, "
            "\"flushes_deadline\": %zu, \"flushes_final\": %zu,\n"
            "     \"wall_seconds\": %.4g, "
            "\"windows_per_sec\": %.6g}%s\n",
            r.name.c_str(), r.deadline ? "deadline" : "full-wave",
            r.paced ? "true" : "false",
            r.reference ? "true" : "false", r.streams, r.windows,
            s.p50Us, s.p99Us, s.p999Us, s.latencyMaxUs,
            s.meanLatencyUs(), s.deadlineMisses,
            s.deadlineMissFraction(), s.slabOccupancy(),
            s.flushesFull, s.flushesDeadline, s.flushesFinal,
            r.wallSeconds,
            r.wallSeconds > 0.0
                ? static_cast<double>(r.windows) / r.wallSeconds
                : 0.0,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    if (std::rename((path + ".tmp").c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "cannot publish %s\n", path.c_str());
        return 1;
    }
    return 0;
}
