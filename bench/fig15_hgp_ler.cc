/**
 * @file
 * Figure 15: logical error rates of Cyclone (C) vs the baseline grid
 * (B) on hypergraph product codes.
 *
 * One campaign per run: compiles cached per (code, architecture),
 * sampling on the shared work-stealing pool with adaptive stopping.
 * Default code: [[225,9,6]]; CYCLONE_FULL=1 adds [[400,16,6]] and
 * [[625,25,8]] over a denser p sweep. Counters: LER, LER_err,
 * latency_ms, p, shots.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

int
main(int argc, char** argv)
{
    std::vector<std::string> codes{"hgp225"};
    std::vector<double> ps{5e-4, 1e-3, 2e-3};
    size_t n_shots = 250;
    if (fullMode()) {
        codes = {"hgp225", "hgp400", "hgp625"};
        ps = {2e-4, 5e-4, 1e-3, 2e-3};
        n_shots = 400;
    }

    CampaignSpec spec;
    spec.name = "fig15";
    spec.seed = 0xc0de;
    size_t fixed_budget = 0;
    for (const auto& name : codes) {
        for (Architecture arch :
             {Architecture::Cyclone, Architecture::BaselineGrid}) {
            const char tag = arch == Architecture::Cyclone ? 'C' : 'B';
            for (double p : ps) {
                char label[96];
                std::snprintf(label, sizeof label, "fig15/%s/%c/p:%.1e",
                              name.c_str(), tag, p);
                TaskSpec task;
                task.id = label;
                task.codeName = name;
                task.architecture = arch;
                task.physicalError = p;
                task.bp.variant = BpOptions::Variant::MinSum;
                task.stop = figureRule(n_shots);
                fixed_budget += task.stop.maxShots;
                spec.tasks.push_back(std::move(task));
            }
        }
    }

    registerCampaignBenchmarks(
        std::move(spec), fixed_budget,
        [](benchmark::State& state, const TaskResult& r, size_t) {
            state.counters["latency_ms"] = r.roundLatencyUs / 1000.0;
            state.counters["p"] = r.physicalError;
        });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
