/**
 * @file
 * Figure 15: logical error rates of Cyclone (C) vs the baseline grid
 * (B) on hypergraph product codes.
 *
 * Default code: [[225,9,6]]; CYCLONE_FULL=1 adds [[400,16,6]] and
 * [[625,25,8]] over a denser p sweep. Counters: LER, LER_err,
 * latency_ms, p.
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

double
cachedLatency(const std::string& name, Architecture arch)
{
    static std::map<std::string, double> cache;
    const std::string key = name + "/" + architectureName(arch);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double latency =
        compileArch(code, schedule, arch).execTimeUs;
    cache[key] = latency;
    return latency;
}

void
runLer(benchmark::State& state, const std::string& name,
       Architecture arch, double p, size_t n_shots)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double latency = cachedLatency(name, arch);
    for (auto _ : state) {
        auto result = runPoint(code, schedule, p, latency, n_shots);
        setLerCounters(state, result);
        state.counters["latency_ms"] = latency / 1000.0;
        state.counters["p"] = p;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> codes{"hgp225"};
    std::vector<double> ps{5e-4, 1e-3, 2e-3};
    size_t n_shots = shots(250);
    if (fullMode()) {
        codes = {"hgp225", "hgp400", "hgp625"};
        ps = {2e-4, 5e-4, 1e-3, 2e-3};
        n_shots = shots(400);
    }
    for (const auto& name : codes) {
        for (Architecture arch :
             {Architecture::Cyclone, Architecture::BaselineGrid}) {
            const char tag =
                arch == Architecture::Cyclone ? 'C' : 'B';
            for (double p : ps) {
                char label[96];
                std::snprintf(label, sizeof label,
                              "fig15/%s/%c/p:%.1e", name.c_str(), tag,
                              p);
                benchmark::RegisterBenchmark(
                    label,
                    [name, arch, p, n_shots](benchmark::State& s) {
                        runLer(s, name, arch, p, n_shots);
                    })
                    ->Iterations(1)->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
