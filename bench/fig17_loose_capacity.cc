/**
 * @file
 * Figure 17: baseline LER under loosely fitting trap capacities on
 * [[225,9,6]] at p = 1e-4.
 *
 * The paper's experiments use capacity 5; granting the baseline more
 * room changes performance only marginally, confirming the grid is
 * contention-bound rather than capacity-bound. Counters: exec_ms,
 * LER, LER_err.
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

CompileResult
compileWithCapacity(const CssCode& code,
                    const SyndromeSchedule& schedule, size_t capacity)
{
    CodesignConfig config;
    config.architecture = Architecture::BaselineGrid;
    config.gridCapacity = capacity;
    return compileCodesign(code, schedule, config);
}

void
runCapacity(benchmark::State& state, size_t capacity, bool with_ler)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    CompileResult r = compileWithCapacity(code, schedule, capacity);
    for (auto _ : state) {
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["capacity"] = static_cast<double>(capacity);
        state.counters["rebalances"] =
            static_cast<double>(r.rebalances);
        if (with_ler) {
            // The paper samples at p = 1e-4; at the default shot
            // budget the baseline LER there sits below the resolvable
            // floor, so also report p = 5e-4 where flatness across
            // capacities is measurable.
            auto fine = runPoint(code, schedule, 1e-4, r.execTimeUs,
                                 shots(150));
            setLerCounters(state, fine);
            auto coarse = runPoint(code, schedule, 5e-4, r.execTimeUs,
                                   shots(150));
            state.counters["LER_5e4"] = coarse.logicalErrorRate.rate;
            state.counters["LER_5e4_err"] = wilsonHalfWidth(
                coarse.logicalErrorRate.successes,
                coarse.logicalErrorRate.trials);
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<size_t> capacities = fullMode()
        ? std::vector<size_t>{5, 6, 7, 8, 10, 12}
        : std::vector<size_t>{5, 8, 12};
    for (size_t cap : capacities) {
        const bool with_ler = !fullMode() || cap % 2 == 0 || cap == 5;
        benchmark::RegisterBenchmark(
            ("fig17/capacity:" + std::to_string(cap)).c_str(),
            [cap, with_ler](benchmark::State& s) {
                runCapacity(s, cap, with_ler);
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
