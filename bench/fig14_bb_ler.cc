/**
 * @file
 * Figure 14: logical error rates of Cyclone (C) vs the baseline grid
 * (B) on bivariate bicycle codes.
 *
 * Each point compiles one round under the architecture, couples the
 * latency into the noise model, and Monte-Carlo decodes. Default
 * codes: [[72,12,6]] and one [[144,12,12]] point; CYCLONE_FULL=1
 * runs all five BB codes over the dense p sweep.
 * Counters: LER, LER_err, latency_ms.
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

double
cachedLatency(const std::string& name, Architecture arch)
{
    static std::map<std::string, double> cache;
    const std::string key =
        name + "/" + architectureName(arch);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double latency =
        compileArch(code, schedule, arch).execTimeUs;
    cache[key] = latency;
    return latency;
}

void
runLer(benchmark::State& state, const std::string& name,
       Architecture arch, double p, size_t n_shots)
{
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    const double latency = cachedLatency(name, arch);
    for (auto _ : state) {
        auto result = runPoint(code, schedule, p, latency, n_shots);
        setLerCounters(state, result);
        state.counters["latency_ms"] = latency / 1000.0;
        state.counters["p"] = p;
    }
}

void
registerCode(const std::string& name, const std::vector<double>& ps,
             size_t n_shots)
{
    for (Architecture arch :
         {Architecture::Cyclone, Architecture::BaselineGrid}) {
        const char tag = arch == Architecture::Cyclone ? 'C' : 'B';
        for (double p : ps) {
            char label[96];
            std::snprintf(label, sizeof label, "fig14/%s/%c/p:%.1e",
                          name.c_str(), tag, p);
            benchmark::RegisterBenchmark(
                label,
                [name, arch, p, n_shots](benchmark::State& s) {
                    runLer(s, name, arch, p, n_shots);
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (fullMode()) {
        for (const char* name :
             {"bb72", "bb90", "bb108", "bb144", "bb288"}) {
            registerCode(name, {5e-4, 1e-3, 2e-3, 4e-3}, shots(400));
        }
    } else {
        registerCode("bb72", {1e-3, 2e-3, 4e-3}, shots(600));
        registerCode("bb144", {2e-3}, shots(120));
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
