/**
 * @file
 * Figure 14: logical error rates of Cyclone (C) vs the baseline grid
 * (B) on bivariate bicycle codes.
 *
 * The whole figure is one campaign: per-architecture compiles are
 * cached across the p sweep, every point samples on the shared
 * work-stealing pool, and adaptive stopping trims shots from points
 * whose confidence interval converges early. Default codes:
 * [[72,12,6]] and one [[144,12,12]] point; CYCLONE_FULL=1 runs all
 * five BB codes over the dense p sweep.
 * Counters: LER, LER_err, latency_ms, p, shots.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
addCode(CampaignSpec& spec, size_t& fixed_budget,
        const std::string& name, const std::vector<double>& ps,
        size_t n_shots)
{
    for (Architecture arch :
         {Architecture::Cyclone, Architecture::BaselineGrid}) {
        const char tag = arch == Architecture::Cyclone ? 'C' : 'B';
        for (double p : ps) {
            char label[96];
            std::snprintf(label, sizeof label, "fig14/%s/%c/p:%.1e",
                          name.c_str(), tag, p);
            TaskSpec task;
            task.id = label;
            task.codeName = name;
            task.architecture = arch;
            task.physicalError = p;
            task.bp.variant = BpOptions::Variant::MinSum;
            task.stop = figureRule(n_shots);
            fixed_budget += task.stop.maxShots;
            spec.tasks.push_back(std::move(task));
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    CampaignSpec spec;
    spec.name = "fig14";
    spec.seed = 0xc0de;
    size_t fixed_budget = 0;
    if (fullMode()) {
        for (const char* name :
             {"bb72", "bb90", "bb108", "bb144", "bb288"}) {
            addCode(spec, fixed_budget, name, {5e-4, 1e-3, 2e-3, 4e-3},
                    400);
        }
    } else {
        addCode(spec, fixed_budget, "bb72", {1e-3, 2e-3, 4e-3}, 600);
        addCode(spec, fixed_budget, "bb144", {2e-3}, 120);
    }

    registerCampaignBenchmarks(
        std::move(spec), fixed_budget,
        [](benchmark::State& state, const TaskResult& r, size_t) {
            state.counters["latency_ms"] = r.roundLatencyUs / 1000.0;
            state.counters["p"] = r.physicalError;
        });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
