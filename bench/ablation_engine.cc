/**
 * @file
 * Ablation study over the compiler-engine design choices DESIGN.md
 * calls out (not a paper figure; supports the modelling decisions):
 *
 *  - EJF candidate window: 1 is the faithful Earliest-Job-First
 *    policy; wider windows add lookahead and quantify how much of the
 *    baseline's slowness is greed vs. topology.
 *  - Cluster-mapping density (data qubits per trap).
 *  - Gate-time knee exponent: how strongly long chains penalize dense
 *    Cyclone configurations (drives the Fig. 13 optimum).
 *  - Conservative vs. incremental routing on the junction mesh.
 *
 * All rows are compile-only (no Monte Carlo) on [[225,9,6]].
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runWindow(benchmark::State& state, size_t window)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    EjfOptions options;
    options.candidateWindow = window;
    for (auto _ : state) {
        CompileResult r = compileEjf(code, sched, grid, options);
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["trap_roadblocks"] =
            static_cast<double>(r.trapRoadblocks);
    }
}

void
runDensity(benchmark::State& state, size_t data_per_trap)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    EjfOptions options;
    options.dataPerTrap = data_per_trap;
    for (auto _ : state) {
        CompileResult r = compileEjf(code, sched, grid, options);
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["rebalances"] =
            static_cast<double>(r.rebalances);
        state.counters["shuttles"] =
            static_cast<double>(r.shuttleOps);
    }
}

void
runKnee(benchmark::State& state, double knee_exponent)
{
    CssCode code = catalog::hgp225();
    CycloneOptions options;
    options.durations.gate.kneeExponent = knee_exponent;
    for (auto _ : state) {
        // Where does the trap-count optimum land under this knee?
        auto points = sweepCycloneTrapCounts(
            code, {9, 25, 45, 64, 75, 108}, options);
        const CycloneDesignPoint& best = bestDesignPoint(points);
        state.counters["best_traps"] =
            static_cast<double>(best.traps);
        state.counters["best_exec_ms"] = best.execTimeUs / 1000.0;
        state.counters["dense9_exec_ms"] =
            points[0].execTimeUs / 1000.0;
    }
}

void
runRouting(benchmark::State& state, bool conservative)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    EjfOptions options;
    for (auto _ : state) {
        CompileResult r;
        if (conservative) {
            r = compileMeshJunction(code, sched, options);
        } else {
            Topology mesh = buildJunctionMesh(code.numQubits(), 3);
            EjfOptions incremental = options;
            incremental.dataPerTrap = 1;
            incremental.name = "mesh-incremental";
            r = compileEjf(code, sched, mesh, incremental);
        }
        state.counters["exec_ms"] = r.execTimeUs / 1000.0;
        state.counters["junction_roadblocks"] =
            static_cast<double>(r.junctionRoadblocks);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    for (size_t w : {1, 4, 16, 64}) {
        benchmark::RegisterBenchmark(
            ("ablation/ejf_window:" + std::to_string(w)).c_str(),
            [w](benchmark::State& s) { runWindow(s, w); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (size_t d : {1, 2, 4}) {
        benchmark::RegisterBenchmark(
            ("ablation/data_per_trap:" + std::to_string(d)).c_str(),
            [d](benchmark::State& s) { runDensity(s, d); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    for (double k : {1.0, 2.0, 3.0}) {
        benchmark::RegisterBenchmark(
            ("ablation/gate_knee_exp:" +
             std::to_string(int(k))).c_str(),
            [k](benchmark::State& s) { runKnee(s, k); })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        "ablation/mesh_routing:conservative",
        [](benchmark::State& s) { runRouting(s, true); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "ablation/mesh_routing:incremental",
        [](benchmark::State& s) { runRouting(s, false); })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
