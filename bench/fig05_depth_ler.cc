/**
 * @file
 * Figure 5: logical error rate improvement from speeding up the
 * baseline on HGP codes at a fixed physical error rate p = 5e-4.
 *
 * Each point divides the compiled baseline round latency by a speedup
 * factor and reruns the latency-coupled memory experiment; a 2x depth
 * reduction should already cut LER by roughly an order of magnitude
 * (Section II-C2). Counters: LER, LER_err, latency_ms.
 */

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

namespace {

void
runPointAtSpeedup(benchmark::State& state, const std::string& name,
                  double speedup)
{
    static std::map<std::string, double> latency_cache;
    CssCode code = catalog::byName(name);
    SyndromeSchedule schedule = makeXThenZSchedule(code);
    if (!latency_cache.count(name)) {
        latency_cache[name] =
            compileArch(code, schedule, Architecture::BaselineGrid)
                .execTimeUs;
    }
    const double latency = latency_cache[name] / speedup;
    const double p = 5e-4;
    for (auto _ : state) {
        auto result = runPoint(code, schedule, p, latency,
                               shots(200));
        setLerCounters(state, result);
        state.counters["latency_ms"] = latency / 1000.0;
        state.counters["speedup"] = speedup;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> codes{"hgp225"};
    if (fullMode()) {
        codes.push_back("hgp400");
        codes.push_back("hgp625");
    }
    const std::vector<double> speedups = fullMode()
        ? std::vector<double>{1.0, 1.25, 1.5, 2.0, 3.0, 4.0}
        : std::vector<double>{1.0, 2.0, 4.0};
    for (const auto& name : codes) {
        for (double s : speedups) {
            benchmark::RegisterBenchmark(
            ("fig05/" + name + "/speedup:" +
                    std::to_string(s).substr(0, 4)).c_str(),
                [name, s](benchmark::State& st) {
                    runPointAtSpeedup(st, name, s);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
