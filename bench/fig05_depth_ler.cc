/**
 * @file
 * Figure 5: logical error rate improvement from speeding up the
 * baseline on HGP codes at a fixed physical error rate p = 5e-4.
 *
 * Each point divides the compiled baseline round latency by a speedup
 * factor and reruns the latency-coupled memory experiment; a 2x depth
 * reduction should already cut LER by roughly an order of magnitude
 * (Section II-C2). All points run as one campaign on a shared
 * work-stealing pool: the baseline compile is cached across the
 * speedup sweep and the adaptive sampler stops easy (high-LER) points
 * early. Counters: LER, LER_err, latency_ms, speedup, shots.
 */

#include <string>
#include <vector>

#include "bench_util.h"

using namespace cyclone;
using namespace cyclone::bench;

int
main(int argc, char** argv)
{
    std::vector<std::string> codes{"hgp225"};
    if (fullMode()) {
        codes.push_back("hgp400");
        codes.push_back("hgp625");
    }
    const std::vector<double> speedups = fullMode()
        ? std::vector<double>{1.0, 1.25, 1.5, 2.0, 3.0, 4.0}
        : std::vector<double>{1.0, 2.0, 4.0};

    CampaignSpec spec;
    spec.name = "fig05";
    spec.seed = 0xc0de;
    std::vector<double> task_speedups;
    for (const auto& name : codes) {
        for (double s : speedups) {
            TaskSpec task;
            task.id = "fig05/" + name + "/speedup:" +
                std::to_string(s).substr(0, 4);
            task.codeName = name;
            task.architecture = Architecture::BaselineGrid;
            task.compileLatency = true;
            task.latencyScale = 1.0 / s;
            task.physicalError = 5e-4;
            task.bp.variant = BpOptions::Variant::MinSum;
            task.stop = figureRule(200);
            spec.tasks.push_back(std::move(task));
            task_speedups.push_back(s);
        }
    }

    registerCampaignBenchmarks(
        std::move(spec), task_speedups.size() * figureRule(200).maxShots,
        [task_speedups](benchmark::State& state, const TaskResult& r,
                        size_t i) {
            state.counters["latency_ms"] = r.roundLatencyUs / 1000.0;
            state.counters["speedup"] = task_speedups[i];
        });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
