/**
 * @file
 * Campaign scale-out benchmark: spool-distributed execution with 1 vs
 * 2 single-threaded worker processes on the paper's [[72,12,6]] BB
 * code, plus a plain in-process run as the no-spool baseline.
 *
 * Unlike the other benches this is a plain main(): it forks real
 * worker processes (pinned to disjoint cores when the host has
 * them), which Google Benchmark's in-process timing loop cannot
 * express. Every configuration decodes the identical deterministic
 * shot set — the spool protocol guarantees bit-identical results at
 * any worker count — so the only thing that varies is wall-clock
 * time, reported as shots/second per row.
 *
 * Always distills BENCH_campaign.json (override the path with
 * CYCLONE_BENCH_CAMPAIGN_JSON). The committed copy records the last
 * measured numbers with the host's core count; CI re-runs the bench
 * on a multi-core runner and gates two_workers_over_one against an
 * absolute scale-out floor, skipping the gate on single-core hosts
 * where two workers cannot physically overlap. CYCLONE_SHOTS
 * overrides the per-configuration shot budget.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/cyclone.h"

using namespace cyclone;

namespace {

size_t
shotBudget()
{
    if (const char* env = std::getenv("CYCLONE_SHOTS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return 8000;
}

std::string
benchSpec(size_t shots)
{
    // One decode-heavy task: chunks large enough that spool latency
    // is negligible against decode time, waves wide enough that two
    // workers always have disjoint shards to claim (auto sharding
    // slices each 16-chunk wave into four 4-chunk shards).
    std::string text = "name = bench-scaleout\nseed = 99\n\n[task]\n"
                       "id = bb72\ncode = bb72\narch = none\n"
                       "latency_us = 100\np = 1e-3\n"
                       "chunk_shots = 250\nchunks_per_wave = 16\n"
                       "staging_chunks = 2\nbp = minsum\n";
    text += "max_shots = " + std::to_string(shots) + "\n";
    return text;
}

/** Pin the calling process to one core (no-op on failure). */
void
pinToCore(size_t core)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % static_cast<size_t>(CPU_SETSIZE), &set);
    sched_setaffinity(0, sizeof set, &set);
}

struct Row
{
    std::string name;
    size_t workers = 0;
    size_t shots = 0;
    double wallSeconds = 0.0;
    double shotsPerSec = 0.0;
};

Row
runSpoolConfig(const std::string& specText, size_t workers,
               size_t cores)
{
    CampaignSpec spec = parseCampaignSpec(specText);
    char dir[] = "/tmp/cyclone-bench-spool-XXXXXX";
    if (::mkdtemp(dir) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        std::exit(1);
    }
    spec.spool = dir;

    std::vector<pid_t> pids;
    for (size_t w = 0; w < workers; ++w) {
        const pid_t pid = ::fork();
        if (pid == 0) {
            if (cores >= 2)
                pinToCore(w);
            WorkerOptions opts;
            opts.spool = spec.spool;
            opts.threads = 1;
            opts.workerId = "bench" + std::to_string(w);
            opts.pollSeconds = 0.002;
            try {
                runSpoolWorker(opts);
            } catch (const std::exception& ex) {
                std::fprintf(stderr, "worker error: %s\n", ex.what());
                ::_exit(1);
            }
            ::_exit(0);
        }
        pids.push_back(pid);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const CampaignResult result =
        runDistributedCampaign(spec, specText);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    for (const pid_t pid : pids)
        ::waitpid(pid, nullptr, 0);
    std::string cleanup = std::string("rm -rf '") + dir + "'";
    std::system(cleanup.c_str());

    for (const TaskResult& t : result.tasks) {
        if (!t.error.empty()) {
            std::fprintf(stderr, "task failed: %s\n",
                         t.error.c_str());
            std::exit(1);
        }
    }

    Row row;
    row.name = "spool_" + std::to_string(workers) + "worker";
    row.workers = workers;
    row.shots = result.totalShots();
    row.wallSeconds = wall;
    row.shotsPerSec = wall > 0.0
        ? static_cast<double>(row.shots) / wall
        : 0.0;
    return row;
}

Row
runLocalConfig(const std::string& specText)
{
    CampaignSpec spec = parseCampaignSpec(specText);
    spec.threads = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const CampaignResult result = runCampaign(spec);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    Row row;
    row.name = "local_1thread";
    row.shots = result.totalShots();
    row.wallSeconds = wall;
    row.shotsPerSec = wall > 0.0
        ? static_cast<double>(row.shots) / wall
        : 0.0;
    return row;
}

} // namespace

int
main()
{
    const size_t cores = std::thread::hardware_concurrency();
    const size_t shots = shotBudget();
    const std::string spec = benchSpec(shots);

    std::vector<Row> rows;
    rows.push_back(runLocalConfig(spec));
    std::fprintf(stderr, "%-16s %8zu shots  %6.2fs  %8.1f shots/s\n",
                 rows.back().name.c_str(), rows.back().shots,
                 rows.back().wallSeconds, rows.back().shotsPerSec);
    for (const size_t workers : {size_t{1}, size_t{2}}) {
        rows.push_back(runSpoolConfig(spec, workers, cores));
        std::fprintf(stderr,
                     "%-16s %8zu shots  %6.2fs  %8.1f shots/s\n",
                     rows.back().name.c_str(), rows.back().shots,
                     rows.back().wallSeconds, rows.back().shotsPerSec);
    }

    const double one = rows[1].shotsPerSec;
    const double two = rows[2].shotsPerSec;
    const double scaleout = one > 0.0 ? two / one : 0.0;
    const double spoolOverhead =
        rows[0].shotsPerSec > 0.0 ? one / rows[0].shotsPerSec : 0.0;
    std::fprintf(stderr,
                 "two_workers_over_one %.3fx (cores=%zu), "
                 "spool_over_local %.3fx\n",
                 scaleout, cores, spoolOverhead);

    const char* env = std::getenv("CYCLONE_BENCH_CAMPAIGN_JSON");
    const std::string path =
        env != nullptr ? env : "BENCH_campaign.json";
    std::FILE* out = std::fopen((path + ".tmp").c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_campaign\",\n"
                 "  \"code\": \"bb72\",\n  \"cores\": %zu,\n"
                 "  \"shot_budget\": %zu,\n  \"rows\": [\n",
                 cores, shots);
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"workers\": %zu, "
                     "\"threads_per_worker\": 1, \"shots\": %zu, "
                     "\"wall_seconds\": %.4g, "
                     "\"shots_per_sec\": %.6g}%s\n",
                     r.name.c_str(), r.workers, r.shots,
                     r.wallSeconds, r.shotsPerSec,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"speedups\": {\n"
                 "    \"two_workers_over_one\": %.4g,\n"
                 "    \"spool_over_local\": %.4g\n  }\n}\n",
                 scaleout, spoolOverhead);
    std::fclose(out);
    if (std::rename((path + ".tmp").c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "cannot publish %s\n", path.c_str());
        return 1;
    }
    return 0;
}
