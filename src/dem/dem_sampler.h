/**
 * @file
 * Fast sampler of detector/observable outcomes from a DEM.
 *
 * Each mechanism fires independently with its probability; geometric
 * skip sampling makes the cost proportional to the number of fired
 * events rather than shots x mechanisms.
 */

#ifndef CYCLONE_DEM_DEM_SAMPLER_H
#define CYCLONE_DEM_DEM_SAMPLER_H

#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "dem/dem.h"

namespace cyclone {

/** A batch of sampled shots. */
struct DemShots
{
    /** Detector outcomes, one BitVec per shot. */
    std::vector<BitVec> syndromes;
    /** Observable flip masks, one per shot. */
    std::vector<uint64_t> observables;
};

/** Sample `shots` independent shots from the model. */
DemShots sampleDem(const DetectorErrorModel& dem, size_t shots, Rng& rng);

/**
 * Sample into a reusable buffer.
 *
 * Resizes and zeroes `out` without releasing its storage, so a chunked
 * sampling loop (e.g. the campaign engine's adaptive sampler) reuses
 * one allocation per worker instead of churning a fresh vector of
 * BitVecs per batch.
 */
void sampleDemInto(const DetectorErrorModel& dem, size_t shots, Rng& rng,
                   DemShots& out);

} // namespace cyclone

#endif // CYCLONE_DEM_DEM_SAMPLER_H
