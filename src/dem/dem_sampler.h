/**
 * @file
 * Fast sampler of detector/observable outcomes from a DEM.
 *
 * Each mechanism fires independently with its probability; geometric
 * skip sampling makes the cost proportional to the number of fired
 * events rather than shots x mechanisms.
 */

#ifndef CYCLONE_DEM_DEM_SAMPLER_H
#define CYCLONE_DEM_DEM_SAMPLER_H

#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "dem/dem.h"
#include "dem/shot_batch.h"

namespace cyclone {

/** A batch of sampled shots. */
struct DemShots
{
    /** Detector outcomes, one BitVec per shot. */
    std::vector<BitVec> syndromes;
    /** Observable flip masks, one per shot. */
    std::vector<uint64_t> observables;
};

/** Sample `shots` independent shots from the model. */
DemShots sampleDem(const DetectorErrorModel& dem, size_t shots, Rng& rng);

/**
 * Sample into a reusable buffer.
 *
 * Resizes and zeroes `out` without releasing its storage, so a chunked
 * sampling loop (e.g. the campaign engine's adaptive sampler) reuses
 * one allocation per worker instead of churning a fresh vector of
 * BitVecs per batch.
 */
void sampleDemInto(const DetectorErrorModel& dem, size_t shots, Rng& rng,
                   DemShots& out);

/**
 * Sample straight into a packed, detector-major ShotBatch.
 *
 * Consumes the RNG stream in exactly the same order as sampleDemInto
 * (mechanisms outer, geometric skips inner), so for a given seed the
 * packed batch holds bit-for-bit the same outcomes as the per-shot
 * BitVecs of the scalar sampler — the batched decode pipeline stays
 * bit-identical to the scalar one. Reuses `out`'s storage.
 */
void sampleDemBatch(const DetectorErrorModel& dem, size_t shots, Rng& rng,
                    ShotBatch& out);

} // namespace cyclone

#endif // CYCLONE_DEM_DEM_SAMPLER_H
