/**
 * @file
 * Bit-packed batch of sampled shots, detector-major.
 *
 * A ShotBatch stores the detector outcomes of up to `numShots` Monte
 * Carlo shots packed 64 per uint64_t word: word w of detector d holds
 * shots 64w .. 64w+63 (LSB first). The layout matches the write
 * pattern of the geometric-skip sampler (whole mechanisms at a time,
 * one XOR per touched detector word) and lets the decoder test a whole
 * 64-shot wave for detection events with one OR sweep — the
 * sub-threshold fast path of the batched decode pipeline.
 */

#ifndef CYCLONE_DEM_SHOT_BATCH_H
#define CYCLONE_DEM_SHOT_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace cyclone {

/** Packed detector outcomes + observable masks of a batch of shots. */
struct ShotBatch
{
    size_t numDetectors = 0;
    size_t numShots = 0;

    /**
     * Detector-major packed outcomes: word `d * wordsPerDetector() + w`
     * holds shots 64w .. 64w+63 of detector d. Bits at shot indices
     * >= numShots are always zero.
     */
    std::vector<uint64_t> words;

    /** Observable flip mask of each shot. */
    std::vector<uint64_t> observables;

    /** Words per detector row: one per 64-shot wave. */
    size_t
    wordsPerDetector() const
    {
        return (numShots + 63) / 64;
    }

    /** Number of 64-shot waves (last one may be partial). */
    size_t
    numWaves() const
    {
        return (numShots + 63) / 64;
    }

    /**
     * Resize to `detectors` x `shots` and zero all contents, keeping
     * existing storage (chunk loops reuse one batch per worker).
     */
    void reset(size_t detectors, size_t shots);

    /** Mutable word row of detector d (wordsPerDetector() words). */
    uint64_t*
    row(size_t d)
    {
        return words.data() + d * wordsPerDetector();
    }

    const uint64_t*
    row(size_t d) const
    {
        return words.data() + d * wordsPerDetector();
    }

    /** Read the outcome of one detector for one shot. */
    bool
    detector(size_t shot, size_t det) const
    {
        return (words[det * wordsPerDetector() + (shot >> 6)] >>
                (shot & 63)) &
            1;
    }

    /** Flip the outcome of one detector for one shot. */
    void
    flipDetector(size_t shot, size_t det)
    {
        words[det * wordsPerDetector() + (shot >> 6)] ^=
            uint64_t(1) << (shot & 63);
    }

    /** Mask of shot indices that exist in wave w (partial last wave). */
    uint64_t waveMask(size_t wave) const;

    /**
     * Mask of shots in wave w with at least one detection event: the
     * OR of every detector's wave word. O(numDetectors) words.
     */
    uint64_t activeMask(size_t wave) const;

    /** Words needed to hold one shot's syndrome bit-packed. */
    size_t
    syndromeWords() const
    {
        return (numDetectors + 63) / 64;
    }

    /**
     * Shot-major view of wave w: `out` is resized to 64 syndrome rows
     * of syndromeWords() words each; row s holds the packed syndrome
     * of shot 64w + s, zero-padded past numDetectors (the BitVec tail
     * invariant, so rows can be adopted via BitVec::assignWords).
     */
    void extractWave(size_t wave, std::vector<uint64_t>& out) const;

    /** Unpack one shot's syndrome as a BitVec (tests, slow paths). */
    BitVec syndromeOf(size_t shot) const;
};

} // namespace cyclone

#endif // CYCLONE_DEM_SHOT_BATCH_H
