#include "dem/dem_builder.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/logging.h"

namespace cyclone {

namespace {

/** An elementary Pauli injection at one circuit position. */
struct Injection
{
    size_t opIndex;   ///< Error op this injection belongs to.
    uint32_t qubit;
    bool zPart;       ///< false = X flip, true = Z flip.
};

/** Detector/observable signature of an injection or mechanism. */
struct Signature
{
    std::vector<uint32_t> detectors; // sorted
    uint64_t observables = 0;

    bool
    empty() const
    {
        return detectors.empty() && observables == 0;
    }

    uint64_t
    hash() const
    {
        uint64_t h = 0xcbf29ce484222325ull;
        for (uint32_t d : detectors) {
            h ^= d;
            h *= 0x100000001b3ull;
        }
        h ^= observables;
        h *= 0x100000001b3ull;
        h ^= h >> 29;
        return h;
    }

    bool
    operator==(const Signature& other) const
    {
        return observables == other.observables &&
               detectors == other.detectors;
    }
};

/** Symmetric difference of two sorted index vectors. */
std::vector<uint32_t>
symmetricDifference(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b)
{
    std::vector<uint32_t> out;
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            out.push_back(a[i++]);
        } else if (b[j] < a[i]) {
            out.push_back(b[j++]);
        } else {
            ++i;
            ++j;
        }
    }
    out.insert(out.end(), a.begin() + i, a.end());
    out.insert(out.end(), b.begin() + j, b.end());
    return out;
}

Signature
xorSignatures(const Signature& a, const Signature& b)
{
    Signature out;
    out.detectors = symmetricDifference(a.detectors, b.detectors);
    out.observables = a.observables ^ b.observables;
    return out;
}

/** Number of elementary injections an error op contributes. */
size_t
injectionCount(const Op& op)
{
    switch (op.kind) {
      case OpKind::XError:
      case OpKind::ZError:
        return 1;
      case OpKind::Depolarize1:
      case OpKind::Pauli1:
        return 2;
      case OpKind::Depolarize2:
        return 4;
      default:
        return 0;
    }
}

} // namespace

DetectorErrorModel
buildDetectorErrorModel(const Circuit& circuit)
{
    // ---- Enumerate elementary injections. ----
    std::vector<Injection> injections;
    std::vector<size_t> op_first_injection(circuit.ops().size(), SIZE_MAX);
    for (size_t i = 0; i < circuit.ops().size(); ++i) {
        const Op& op = circuit.ops()[i];
        const size_t count = injectionCount(op);
        if (count == 0)
            continue;
        op_first_injection[i] = injections.size();
        switch (op.kind) {
          case OpKind::XError:
            injections.push_back({i, op.targets[0], false});
            break;
          case OpKind::ZError:
            injections.push_back({i, op.targets[0], true});
            break;
          case OpKind::Depolarize1:
          case OpKind::Pauli1:
            injections.push_back({i, op.targets[0], false});
            injections.push_back({i, op.targets[0], true});
            break;
          case OpKind::Depolarize2:
            injections.push_back({i, op.targets[0], false});
            injections.push_back({i, op.targets[0], true});
            injections.push_back({i, op.targets[1], false});
            injections.push_back({i, op.targets[1], true});
            break;
          default:
            break;
        }
    }

    // ---- Propagate injections in 64-lane waves. ----
    std::vector<std::vector<uint32_t>> meas_flips(injections.size());
    const size_t num_qubits = circuit.numQubits();
    std::vector<uint64_t> x_frame(num_qubits), z_frame(num_qubits);

    for (size_t wave = 0; wave < injections.size(); wave += 64) {
        const size_t wave_end = std::min(wave + 64, injections.size());
        std::fill(x_frame.begin(), x_frame.end(), 0);
        std::fill(z_frame.begin(), z_frame.end(), 0);
        size_t meas_index = 0;

        for (size_t i = 0; i < circuit.ops().size(); ++i) {
            const Op& op = circuit.ops()[i];
            // Inject faults belonging to this op and wave.
            const size_t first = op_first_injection[i];
            if (first != SIZE_MAX) {
                const size_t last = first + injectionCount(op);
                for (size_t inj = std::max(first, wave);
                     inj < std::min(last, wave_end); ++inj) {
                    const Injection& in = injections[inj];
                    const uint64_t bit = uint64_t(1) << (inj - wave);
                    if (in.zPart)
                        z_frame[in.qubit] |= bit;
                    else
                        x_frame[in.qubit] |= bit;
                }
            }
            switch (op.kind) {
              case OpKind::ResetZ:
              case OpKind::ResetX:
                for (uint32_t q : op.targets) {
                    x_frame[q] = 0;
                    z_frame[q] = 0;
                }
                break;
              case OpKind::Cx: {
                const uint32_t c = op.targets[0];
                const uint32_t t = op.targets[1];
                x_frame[t] ^= x_frame[c];
                z_frame[c] ^= z_frame[t];
                break;
              }
              case OpKind::MeasureZ:
              case OpKind::MeasureX: {
                const uint32_t q = op.targets[0];
                uint64_t word = op.kind == OpKind::MeasureZ
                    ? x_frame[q] : z_frame[q];
                while (word) {
                    const int lane = std::countr_zero(word);
                    word &= word - 1;
                    meas_flips[wave + static_cast<size_t>(lane)]
                        .push_back(static_cast<uint32_t>(meas_index));
                }
                ++meas_index;
                break;
              }
              default:
                break;
            }
        }
    }

    // ---- Map measurements to detectors / observables. ----
    std::vector<std::vector<uint32_t>> meas_to_dets(
        circuit.numMeasurements());
    std::vector<uint64_t> meas_to_obs(circuit.numMeasurements(), 0);
    {
        size_t det_index = 0;
        for (const Op& op : circuit.ops()) {
            if (op.kind == OpKind::Detector) {
                for (uint32_t m : op.targets) {
                    meas_to_dets[m].push_back(
                        static_cast<uint32_t>(det_index));
                }
                ++det_index;
            } else if (op.kind == OpKind::Observable) {
                const auto id = static_cast<uint64_t>(op.params[0]);
                for (uint32_t m : op.targets)
                    meas_to_obs[m] ^= uint64_t(1) << id;
            }
        }
    }

    // ---- Per-injection signatures. ----
    std::vector<Signature> inj_sig(injections.size());
    for (size_t inj = 0; inj < injections.size(); ++inj) {
        Signature& sig = inj_sig[inj];
        std::vector<uint32_t> dets;
        for (uint32_t m : meas_flips[inj]) {
            dets.insert(dets.end(), meas_to_dets[m].begin(),
                        meas_to_dets[m].end());
            sig.observables ^= meas_to_obs[m];
        }
        std::sort(dets.begin(), dets.end());
        // Keep indices with odd multiplicity.
        for (size_t i = 0; i < dets.size();) {
            size_t j = i;
            while (j < dets.size() && dets[j] == dets[i])
                ++j;
            if ((j - i) & 1)
                sig.detectors.push_back(dets[i]);
            i = j;
        }
    }

    // ---- Synthesize mechanisms and merge identical signatures. ----
    DetectorErrorModel dem;
    dem.numDetectors = circuit.numDetectors();
    dem.numObservables = circuit.numObservables();

    std::unordered_map<uint64_t, std::vector<size_t>> sig_index;
    auto add_mechanism = [&](const Signature& sig, double p) {
        if (p <= 0.0 || sig.empty())
            return;
        const uint64_t h = sig.hash();
        auto& bucket = sig_index[h];
        for (size_t idx : bucket) {
            DemMechanism& m = dem.mechanisms[idx];
            if (m.observables == sig.observables &&
                m.detectors == sig.detectors) {
                // Independent-OR combination of the two events.
                m.probability = m.probability * (1.0 - p) +
                    p * (1.0 - m.probability);
                return;
            }
        }
        DemMechanism m;
        m.probability = p;
        m.detectors = sig.detectors;
        m.observables = sig.observables;
        bucket.push_back(dem.mechanisms.size());
        dem.mechanisms.push_back(std::move(m));
    };

    for (size_t i = 0; i < circuit.ops().size(); ++i) {
        const Op& op = circuit.ops()[i];
        const size_t first = op_first_injection[i];
        if (first == SIZE_MAX)
            continue;
        switch (op.kind) {
          case OpKind::XError:
          case OpKind::ZError:
            add_mechanism(inj_sig[first], op.params[0]);
            break;
          case OpKind::Depolarize1: {
            const double p = op.params[0] / 3.0;
            add_mechanism(inj_sig[first], p);                    // X
            add_mechanism(inj_sig[first + 1], p);                // Z
            add_mechanism(
                xorSignatures(inj_sig[first], inj_sig[first + 1]),
                p);                                              // Y
            break;
          }
          case OpKind::Pauli1: {
            add_mechanism(inj_sig[first], op.params[0]);         // X
            add_mechanism(
                xorSignatures(inj_sig[first], inj_sig[first + 1]),
                op.params[1]);                                   // Y
            add_mechanism(inj_sig[first + 1], op.params[2]);     // Z
            break;
          }
          case OpKind::Depolarize2: {
            const double p = op.params[0] / 15.0;
            // Bits of the combo index: Xa, Za, Xb, Zb.
            for (unsigned combo = 1; combo < 16; ++combo) {
                Signature sig;
                for (unsigned bit = 0; bit < 4; ++bit) {
                    if (combo & (1u << bit))
                        sig = xorSignatures(sig, inj_sig[first + bit]);
                }
                add_mechanism(sig, p);
            }
            break;
          }
          default:
            break;
        }
    }
    return dem;
}

} // namespace cyclone
