/**
 * @file
 * Detector error model (DEM): the decoding-graph representation of a
 * noisy circuit.
 *
 * Each mechanism is an independent Bernoulli error event with a
 * probability, a set of detectors it flips, and a mask of logical
 * observables it flips. Mechanisms with identical signatures are
 * merged with probability combination p = p1 (1 - p2) + p2 (1 - p1),
 * exactly as Stim does when folding a circuit into a DEM.
 */

#ifndef CYCLONE_DEM_DEM_H
#define CYCLONE_DEM_DEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cyclone {

/** One independent error mechanism. */
struct DemMechanism
{
    double probability = 0.0;
    /** Sorted detector indices flipped by this mechanism. */
    std::vector<uint32_t> detectors;
    /** Bit mask of flipped logical observables. */
    uint64_t observables = 0;
};

/** A complete detector error model. */
struct DetectorErrorModel
{
    size_t numDetectors = 0;
    size_t numObservables = 0;
    std::vector<DemMechanism> mechanisms;

    /** Sum of mechanism probabilities (expected error count/shot). */
    double expectedErrorsPerShot() const;

    /** Largest number of detectors any mechanism flips. */
    size_t maxMechanismDegree() const;
};

} // namespace cyclone

#endif // CYCLONE_DEM_DEM_H
