#include "dem/dem.h"

#include <algorithm>

namespace cyclone {

double
DetectorErrorModel::expectedErrorsPerShot() const
{
    double total = 0.0;
    for (const DemMechanism& m : mechanisms)
        total += m.probability;
    return total;
}

size_t
DetectorErrorModel::maxMechanismDegree() const
{
    size_t deg = 0;
    for (const DemMechanism& m : mechanisms)
        deg = std::max(deg, m.detectors.size());
    return deg;
}

} // namespace cyclone
