#include "dem/dem_sampler.h"

namespace cyclone {

void
sampleDemInto(const DetectorErrorModel& dem, size_t shots, Rng& rng,
              DemShots& out)
{
    // Reuse existing BitVec storage: resize() keeps capacity and
    // clear() only zeroes words.
    out.syndromes.resize(shots);
    for (BitVec& v : out.syndromes) {
        if (v.size() != dem.numDetectors)
            v.resize(dem.numDetectors);
        v.clear();
    }
    out.observables.assign(shots, 0);

    for (const DemMechanism& m : dem.mechanisms) {
        uint64_t shot = rng.geometricSkip(m.probability);
        while (shot < shots) {
            for (uint32_t d : m.detectors)
                out.syndromes[shot].flip(d);
            out.observables[shot] ^= m.observables;
            const uint64_t skip = rng.geometricSkip(m.probability);
            if (skip == ~0ull)
                break;
            shot += 1 + skip;
        }
    }
}

void
sampleDemBatch(const DetectorErrorModel& dem, size_t shots, Rng& rng,
               ShotBatch& out)
{
    out.reset(dem.numDetectors, shots);
    const size_t stride = out.wordsPerDetector();
    uint64_t* words = out.words.data();
    for (const DemMechanism& m : dem.mechanisms) {
        uint64_t shot = rng.geometricSkip(m.probability);
        while (shot < shots) {
            const size_t word = shot >> 6;
            const uint64_t bit = uint64_t(1) << (shot & 63);
            for (uint32_t d : m.detectors)
                words[d * stride + word] ^= bit;
            out.observables[shot] ^= m.observables;
            const uint64_t skip = rng.geometricSkip(m.probability);
            if (skip == ~0ull)
                break;
            shot += 1 + skip;
        }
    }
}

DemShots
sampleDem(const DetectorErrorModel& dem, size_t shots, Rng& rng)
{
    DemShots out;
    sampleDemInto(dem, shots, rng, out);
    return out;
}

} // namespace cyclone
