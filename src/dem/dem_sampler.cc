#include "dem/dem_sampler.h"

namespace cyclone {

DemShots
sampleDem(const DetectorErrorModel& dem, size_t shots, Rng& rng)
{
    DemShots out;
    out.syndromes.assign(shots, BitVec(dem.numDetectors));
    out.observables.assign(shots, 0);

    for (const DemMechanism& m : dem.mechanisms) {
        uint64_t shot = rng.geometricSkip(m.probability);
        while (shot < shots) {
            for (uint32_t d : m.detectors)
                out.syndromes[shot].flip(d);
            out.observables[shot] ^= m.observables;
            const uint64_t skip = rng.geometricSkip(m.probability);
            if (skip == ~0ull)
                break;
            shot += 1 + skip;
        }
    }
    return out;
}

} // namespace cyclone
