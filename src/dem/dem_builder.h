/**
 * @file
 * Extracts a detector error model from a circuit.
 *
 * Every error channel is decomposed into elementary Pauli injections
 * (an X or Z flip on one qubit at one circuit position). Injections
 * are propagated through the remainder of the circuit in batches of 64
 * (one bit lane per injection) to find which measurements each one
 * flips; channel components (e.g. the 15 Paulis of DEPOLARIZE2) are
 * then synthesized as XOR combinations of their injections'
 * detector/observable signatures. Identical signatures are merged.
 */

#ifndef CYCLONE_DEM_DEM_BUILDER_H
#define CYCLONE_DEM_DEM_BUILDER_H

#include "circuit/circuit.h"
#include "dem/dem.h"

namespace cyclone {

/** Build the detector error model of a noisy circuit. */
DetectorErrorModel buildDetectorErrorModel(const Circuit& circuit);

} // namespace cyclone

#endif // CYCLONE_DEM_DEM_BUILDER_H
