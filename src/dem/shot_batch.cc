#include "dem/shot_batch.h"

#include <algorithm>

#include "common/bit_transpose.h"
#include "common/logging.h"

namespace cyclone {

void
ShotBatch::reset(size_t detectors, size_t shots)
{
    numDetectors = detectors;
    numShots = shots;
    const size_t total = detectors * wordsPerDetector();
    if (words.size() != total)
        words.resize(total);
    std::fill(words.begin(), words.end(), 0);
    observables.assign(shots, 0);
}

uint64_t
ShotBatch::waveMask(size_t wave) const
{
    CYCLONE_ASSERT(wave < numWaves(), "wave " << wave << " out of range");
    const size_t base = wave * 64;
    const size_t count = std::min<size_t>(64, numShots - base);
    return count == 64 ? ~uint64_t(0) : (uint64_t(1) << count) - 1;
}

uint64_t
ShotBatch::activeMask(size_t wave) const
{
    const size_t stride = wordsPerDetector();
    uint64_t any = 0;
    for (size_t d = 0; d < numDetectors; ++d)
        any |= words[d * stride + wave];
    return any;
}

void
ShotBatch::extractWave(size_t wave, std::vector<uint64_t>& out) const
{
    CYCLONE_ASSERT(wave < numWaves(), "wave " << wave << " out of range");
    const size_t rows = syndromeWords();
    out.resize(64 * rows);
    transposeWave64(words.data() + wave, numDetectors,
                    wordsPerDetector(), out.data(), rows);
}

BitVec
ShotBatch::syndromeOf(size_t shot) const
{
    CYCLONE_ASSERT(shot < numShots, "shot " << shot << " out of range");
    BitVec syndrome(numDetectors);
    const size_t stride = wordsPerDetector();
    const size_t w = shot >> 6;
    const uint64_t bit = uint64_t(1) << (shot & 63);
    for (size_t d = 0; d < numDetectors; ++d) {
        if (words[d * stride + w] & bit)
            syndrome.set(d, true);
    }
    return syndrome;
}

} // namespace cyclone
