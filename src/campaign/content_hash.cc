#include "campaign/content_hash.h"

#include "compiler/timed_schedule.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

uint64_t
hashCode(const CssCode& code)
{
    HashStream h;
    h.absorb(uint64_t{code.numQubits()});
    const SparseGF2* mats[] = {&code.hx(), &code.hz()};
    for (const SparseGF2* m : mats) {
        h.absorb(uint64_t{m->rows()}).absorb(uint64_t{m->cols()});
        for (size_t r = 0; r < m->rows(); ++r) {
            for (size_t c : m->rowSupport(r))
                h.absorb(uint64_t{c});
            h.absorb(uint64_t{0xffffffffffffffffull});
        }
    }
    return h.digest();
}

uint64_t
hashTimedSchedule(const TimedSchedule& schedule)
{
    HashStream h;
    h.absorb(uint64_t{schedule.numResources});
    h.absorb(uint64_t{schedule.numIons});
    h.absorb(uint64_t{schedule.ops.size()});
    for (const TimedOp& op : schedule.ops) {
        h.absorb(uint64_t{static_cast<unsigned>(op.category)});
        h.absorb(uint64_t{op.resource});
        h.absorb(uint64_t{op.ionA}).absorb(uint64_t{op.ionB});
        h.absorb(op.startUs).absorb(op.durationUs);
        h.absorb(uint64_t{op.counted ? 1u : 0u});
    }
    return h.digest();
}

uint64_t
hashSchedule(const SyndromeSchedule& schedule)
{
    HashStream h;
    h.absorb(schedule.policy());
    for (const auto& slice : schedule.slices()) {
        for (const ScheduledGate& g : slice) {
            h.absorb(uint64_t{g.kind == StabKind::X ? 1u : 2u});
            h.absorb(uint64_t{g.stabIndex});
            h.absorb(uint64_t{g.data});
        }
        h.absorb(uint64_t{0xffffffffffffffffull});
    }
    return h.digest();
}

} // namespace cyclone
