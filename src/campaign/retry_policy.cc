#include "campaign/retry_policy.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "campaign/content_hash.h"

namespace cyclone {

double
RetryPolicy::delayFor(size_t attempt) const
{
    if (attempt == 0)
        attempt = 1;
    const double base = std::max(0.0, baseDelaySeconds);
    const double cap = std::max(base, maxDelaySeconds);
    // Exponential growth, capped; the exponent is clamped so huge
    // attempt numbers cannot overflow to inf before the cap applies.
    const double exp2k =
        std::pow(2.0, static_cast<double>(std::min<size_t>(
                          attempt - 1, 60)));
    double delay = std::min(cap, base * exp2k);
    // Deterministic jitter in [-jitterFraction, +jitterFraction]:
    // hash (seed, attempt) to a uniform in [0, 1).
    const double j = std::clamp(jitterFraction, 0.0, 1.0);
    if (j > 0.0) {
        const uint64_t h = HashStream()
                               .absorb(seed)
                               .absorb(static_cast<uint64_t>(attempt))
                               .digest();
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
        delay *= 1.0 + j * (2.0 * u - 1.0);
    }
    return std::max(0.0, delay);
}

void
retrySleep(double seconds)
{
    if (seconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
}

} // namespace cyclone
