/**
 * @file
 * Work-stealing thread pool shared by every campaign.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (hot
 * caches) and steals FIFO from victims when empty (oldest work first,
 * which tends to be the largest remaining subtree). External threads
 * submit round-robin across worker deques so a campaign's chunk jobs
 * spread immediately even before stealing kicks in.
 *
 * The pool never executes jobs on the submitting thread; campaign
 * coordination stays on the caller while all sampling, compiling and
 * DEM building runs on workers.
 */

#ifndef CYCLONE_CAMPAIGN_THREAD_POOL_H
#define CYCLONE_CAMPAIGN_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cyclone {

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    /** @param threads worker count (0 = hardware concurrency). */
    explicit ThreadPool(size_t threads = 0);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /** Enqueue a job; never runs inline on the calling thread. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void waitIdle();

    /**
     * Index of the current pool worker in [0, size()), or -1 when
     * called from a thread the pool does not own. Lets jobs address
     * per-worker scratch state (decoders, sample buffers) without
     * locking.
     */
    static int workerIndex();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void workerLoop(size_t self);
    bool tryPop(size_t self, std::function<void()>& job);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleepMutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::atomic<size_t> pending_{0};
    std::atomic<size_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_THREAD_POOL_H
