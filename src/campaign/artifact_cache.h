/**
 * @file
 * Content-hash keyed cache of compiled artifacts shared across tasks
 * — and, optionally, across processes through an attached disk store.
 *
 * The two expensive non-sampling stages of an LER point are compiling
 * one syndrome round to a device (CompileResult) and folding the noisy
 * memory circuit into a detector error model. Across a figure suite
 * most tasks repeat both: every p of a (code, architecture) sweep
 * shares the compile, and repeated points share the DEM. The cache
 * keys each artifact by a content hash of exactly what determines it
 * and dedupes concurrent builds, so one shared instance serves every
 * campaign on the pool.
 *
 * With attachStore(dir) the cache additionally persists every artifact
 * under its content hash as a binary file (atomic rename publish) and
 * consults the directory before building. N coordinator/worker
 * processes pointing at one store directory therefore compile each
 * distinct (code, architecture) point once fleet-wide: whichever
 * process resolves it first publishes the bytes, everyone else
 * deserializes them. Serialization round-trips every double bit-
 * exactly (including the TimedSchedule IR, whose content hash keys
 * per-qubit idle DEMs), so a loaded artifact is indistinguishable from
 * a locally built one.
 *
 * Accounting: a *miss* is a lookup that had to leave the in-memory
 * map; a *store hit* is a miss satisfied by deserializing the store
 * instead of running the builder; a *hit* reused a completed or
 * in-flight in-memory build. Byte counters sum the serialized size of
 * every artifact that entered this cache (built or loaded), giving
 * campaign output a measure of artifact volume.
 */

#ifndef CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H
#define CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "compiler/compile_result.h"
#include "dem/dem.h"

namespace cyclone {

/** Hit/miss/byte counters for both cache layers. */
struct CacheStats
{
    size_t compileHits = 0;
    size_t compileMisses = 0;
    size_t demHits = 0;
    size_t demMisses = 0;

    /** Misses satisfied by deserializing the attached store. */
    size_t compileStoreHits = 0;
    size_t demStoreHits = 0;

    /** Serialized bytes of artifacts built or loaded into this cache. */
    size_t compileBytes = 0;
    size_t demBytes = 0;

    /** Store blobs that failed their checksum/framing and were moved
     *  to <store>/quarantine/ before a local rebuild republished
     *  fresh bytes. */
    size_t quarantinedBlobs = 0;
};

/**
 * Serialize a CompileResult — summary fields plus the full
 * TimedSchedule IR — to a self-describing binary blob. Doubles are
 * stored bit-exactly; deserialization reproduces the original to the
 * last bit (hashTimedSchedule of the round-trip matches).
 */
std::string serializeCompileResult(const CompileResult& result);

/** Inverse of serializeCompileResult; throws std::runtime_error on a
 *  malformed or foreign-endian blob. */
CompileResult deserializeCompileResult(const std::string& bytes);

/** Serialize a detector error model bit-exactly. */
std::string serializeDem(const DetectorErrorModel& dem);

/** Inverse of serializeDem; throws std::runtime_error on bad input. */
DetectorErrorModel deserializeDem(const std::string& bytes);

/** Thread-safe cache of CompileResults and DetectorErrorModels. */
class ArtifactCache
{
  public:
    /**
     * Return the compile result for `key`, running `build` if absent.
     * Concurrent callers with the same key block until the first
     * caller's build completes and then share its result.
     */
    std::shared_ptr<const CompileResult>
    getOrBuildCompile(uint64_t key,
                      const std::function<CompileResult()>& build);

    /** Same contract for detector error models. */
    std::shared_ptr<const DetectorErrorModel>
    getOrBuildDem(uint64_t key,
                  const std::function<DetectorErrorModel()>& build);

    /**
     * Attach a shared artifact store directory (created if missing).
     * Subsequent misses first try to deserialize
     * `dir/compile-<hash>.bin` / `dir/dem-<hash>.bin`; builds publish
     * their bytes there via atomic rename, so concurrent processes
     * never observe a partial file. Blobs carry a payload CRC-32 in
     * their header; a blob that fails its checksum (or framing) is
     * moved to `dir/quarantine/`, counted in
     * CacheStats::quarantinedBlobs, and rebuilt — the rebuild
     * republishes fresh bytes under the original name. Pass "" to
     * detach.
     */
    void attachStore(const std::string& dir);

    /** Attached store directory ("" when detached). */
    std::string storeDir() const;

    /** Snapshot of the accounting counters. */
    CacheStats stats() const;

    /** Number of completed entries in both layers. */
    size_t entryCount() const;

    /** Drop all in-memory entries and reset the counters (the
     *  attached store, if any, is left untouched). */
    void clear();

  private:
    template <typename T>
    struct Slot
    {
        std::shared_ptr<const T> value;
        std::exception_ptr error;
        bool ready = false;
    };

    template <typename T>
    std::shared_ptr<const T>
    getOrBuild(std::unordered_map<uint64_t, std::shared_ptr<Slot<T>>>& map,
               uint64_t key, const std::function<T()>& build,
               const char* kind, size_t& hits, size_t& misses,
               size_t& storeHits, size_t& bytes,
               std::string (*serialize)(const T&),
               T (*deserialize)(const std::string&));

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::unordered_map<uint64_t, std::shared_ptr<Slot<CompileResult>>>
        compiles_;
    std::unordered_map<uint64_t, std::shared_ptr<Slot<DetectorErrorModel>>>
        dems_;
    CacheStats stats_;
    std::string storeDir_;
};

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H
