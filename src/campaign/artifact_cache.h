/**
 * @file
 * Content-hash keyed cache of compiled artifacts shared across tasks.
 *
 * The two expensive non-sampling stages of an LER point are compiling
 * one syndrome round to a device (CompileResult) and folding the noisy
 * memory circuit into a detector error model. Across a figure suite
 * most tasks repeat both: every p of a (code, architecture) sweep
 * shares the compile, and repeated points share the DEM. The cache
 * keys each artifact by a content hash of exactly what determines it
 * and dedupes concurrent builds, so one shared instance serves every
 * campaign on the pool.
 *
 * Accounting: a *miss* is a lookup that had to run the builder; a
 * *hit* reused a completed or in-flight build.
 */

#ifndef CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H
#define CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "compiler/compile_result.h"
#include "dem/dem.h"

namespace cyclone {

/** Hit/miss counters for both cache layers. */
struct CacheStats
{
    size_t compileHits = 0;
    size_t compileMisses = 0;
    size_t demHits = 0;
    size_t demMisses = 0;
};

/** Thread-safe cache of CompileResults and DetectorErrorModels. */
class ArtifactCache
{
  public:
    /**
     * Return the compile result for `key`, running `build` if absent.
     * Concurrent callers with the same key block until the first
     * caller's build completes and then share its result.
     */
    std::shared_ptr<const CompileResult>
    getOrBuildCompile(uint64_t key,
                      const std::function<CompileResult()>& build);

    /** Same contract for detector error models. */
    std::shared_ptr<const DetectorErrorModel>
    getOrBuildDem(uint64_t key,
                  const std::function<DetectorErrorModel()>& build);

    /** Snapshot of the accounting counters. */
    CacheStats stats() const;

    /** Number of completed entries in both layers. */
    size_t entryCount() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    template <typename T>
    struct Slot
    {
        std::shared_ptr<const T> value;
        std::exception_ptr error;
        bool ready = false;
    };

    template <typename T>
    std::shared_ptr<const T>
    getOrBuild(std::unordered_map<uint64_t, std::shared_ptr<Slot<T>>>& map,
               uint64_t key, const std::function<T()>& build,
               size_t& hits, size_t& misses);

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::unordered_map<uint64_t, std::shared_ptr<Slot<CompileResult>>>
        compiles_;
    std::unordered_map<uint64_t, std::shared_ptr<Slot<DetectorErrorModel>>>
        dems_;
    CacheStats stats_;
};

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_ARTIFACT_CACHE_H
