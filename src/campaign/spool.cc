#include "campaign/spool.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "campaign/content_hash.h"
#include "campaign/fault_plan.h"
#include "common/crc32.h"

namespace cyclone {

namespace {

constexpr const char* kDescriptorMagic = "cyclone-shard v2";
constexpr const char* kRecordMagic = "cyclone-shard-result v2";
constexpr const char* kManifestMagic = "cyclone-spool v1";
constexpr const char* kLeaseFile = "coord.lease";
constexpr const char* kJournalFile = "journal.txt";

/** Decoder counters on a record line, in fixed order. */
constexpr size_t kDecoderFields = 13;

/** Errno values worth retrying: the transient I/O family (flaky
 *  disks, NFS hiccups, brief out-of-space). */
bool
transientErrno(int err)
{
    return err == EIO || err == ENOSPC || err == EAGAIN ||
           err == EINTR || err == ESTALE
#ifdef EDQUOT
           || err == EDQUOT
#endif
        ;
}

[[noreturn]] void
throwIo(const std::string& message, int err)
{
    std::string full = message;
    if (err != 0)
        full += " (" + std::string(std::strerror(err)) + ")";
    if (transientErrno(err))
        throw TransientIoError(full);
    throw std::runtime_error(full);
}

void
makeDir(const std::string& path)
{
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        throw std::runtime_error("cannot create directory: " + path +
                                 " (" + std::strerror(errno) + ")");
}

std::vector<std::string>
listDir(const std::string& path)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr)
        return names;
    while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        // Skip in-flight tmp files from concurrent atomic writers.
        // spoolWriteAtomic dot-prefixes its temp names, but match
        // anywhere so a stray suffix-style tmp can never be claimed
        // and executed as if it were a published shard.
        if (name.find(".tmp-") != std::string::npos ||
            name.rfind(".", 0) == 0)
            continue;
        names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        tokens.push_back(tok);
    return tokens;
}

uint64_t
parseU64(const std::string& tok, const char* what)
{
    try {
        return std::stoull(tok, nullptr, 10);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

uint64_t
parseHex(const std::string& tok, const char* what)
{
    try {
        return std::stoull(tok, nullptr, 16);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

double
parseDouble(const std::string& tok, const char* what)
{
    try {
        return std::stod(tok);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

std::string
hex(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
dbl(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** First line must equal `magic`; returns the remaining lines. */
std::vector<std::string>
splitChecked(const std::string& text, const char* magic,
             const char* what)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    if (lines.empty() || lines.front() != magic)
        throw std::runtime_error(std::string("not a ") + what +
                                 " file (bad magic line)");
    lines.erase(lines.begin());
    return lines;
}

double
monotonicSeconds()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

} // namespace

std::string
shardId(size_t task, size_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "t%04zu-s%05zu", task, shard);
    return buf;
}

std::string
withCrcLine(std::string text)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", crc32(text));
    text += "crc ";
    text += buf;
    text += "\n";
    return text;
}

std::string
checkCrcLine(const std::string& text, const char* what)
{
    size_t pos = text.rfind("\ncrc ");
    if (pos != std::string::npos) {
        pos += 1;
    } else if (text.rfind("crc ", 0) == 0) {
        pos = 0;
    } else {
        throw CorruptSpoolError(std::string(what) +
                                ": missing crc line (truncated?)");
    }
    const auto tok = tokenize(text.substr(pos));
    uint32_t want = 0;
    bool parsed = tok.size() == 2;
    if (parsed) {
        try {
            want = static_cast<uint32_t>(
                std::stoul(tok[1], nullptr, 16));
        } catch (...) {
            parsed = false;
        }
    }
    if (!parsed)
        throw CorruptSpoolError(std::string(what) +
                                ": malformed crc line");
    const std::string payload = text.substr(0, pos);
    if (crc32(payload) != want)
        throw CorruptSpoolError(std::string(what) +
                                ": checksum mismatch");
    return payload;
}

std::string
formatShardDescriptor(const ShardDescriptor& d)
{
    std::ostringstream out;
    out << kDescriptorMagic << "\n"
        << "shard " << d.task << " " << d.shard << " " << d.firstChunk
        << " " << d.numChunks << " " << d.chunkShots << " "
        << hex(d.contentHash) << " " << hex(d.taskSeed) << "\n";
    return withCrcLine(out.str());
}

ShardDescriptor
parseShardDescriptor(const std::string& text)
{
    const std::string payload = checkCrcLine(text, "shard descriptor");
    const auto lines =
        splitChecked(payload, kDescriptorMagic, "shard descriptor");
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] != "shard")
            continue;
        if (tok.size() != 8)
            throw std::runtime_error(
                "shard descriptor: expected 7 fields, got " +
                std::to_string(tok.size() - 1));
        ShardDescriptor d;
        d.task = parseU64(tok[1], "task");
        d.shard = parseU64(tok[2], "shard");
        d.firstChunk = parseU64(tok[3], "firstChunk");
        d.numChunks = parseU64(tok[4], "numChunks");
        d.chunkShots = parseU64(tok[5], "chunkShots");
        d.contentHash = parseHex(tok[6], "contentHash");
        d.taskSeed = parseHex(tok[7], "taskSeed");
        return d;
    }
    throw std::runtime_error("shard descriptor: missing shard line");
}

std::string
formatShardRecord(const ShardRecord& r)
{
    std::ostringstream out;
    out << kRecordMagic << "\n"
        << "shard " << r.task << " " << r.shard << " "
        << hex(r.contentHash) << " " << r.shots << " " << r.failures
        << " " << dbl(r.seconds) << "\n";
    const BpOsdStats& s = r.decoder;
    out << "decoder " << s.decodes << " " << s.bpConverged << " "
        << s.osdInvocations << " " << s.osdFailures << " "
        << s.trivialShots << " " << s.memoHits << " " << s.bpIterations
        << " " << s.waveGroups << " " << s.waveLaneSlots << " "
        << s.waveLanesFilled << " " << s.osdBatchGroups << " "
        << s.osdSharedPivots << " " << s.stagedChunks << "\n";
    if (!s.backend.empty())
        out << "backend " << s.backend << "\n";
    return withCrcLine(out.str());
}

ShardRecord
parseShardRecord(const std::string& text)
{
    const std::string payload = checkCrcLine(text, "shard record");
    const auto lines =
        splitChecked(payload, kRecordMagic, "shard record");
    ShardRecord r;
    bool haveShard = false;
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] == "shard") {
            if (tok.size() != 7)
                throw std::runtime_error(
                    "shard record: expected 6 shard fields, got " +
                    std::to_string(tok.size() - 1));
            r.task = parseU64(tok[1], "task");
            r.shard = parseU64(tok[2], "shard");
            r.contentHash = parseHex(tok[3], "contentHash");
            r.shots = parseU64(tok[4], "shots");
            r.failures = parseU64(tok[5], "failures");
            r.seconds = parseDouble(tok[6], "seconds");
            haveShard = true;
        } else if (tok[0] == "decoder") {
            // Field-counted like the checkpoint format: accept short
            // (old) decoder lines zero-filled, reject long (future)
            // ones so new counters force a deliberate version bump.
            const size_t n = tok.size() - 1;
            if (n < 4 || n > kDecoderFields)
                throw std::runtime_error(
                    "shard record: unsupported decoder field count " +
                    std::to_string(n));
            uint64_t v[kDecoderFields] = {};
            for (size_t i = 0; i < n; ++i)
                v[i] = parseU64(tok[i + 1], "decoder");
            BpOsdStats& s = r.decoder;
            s.decodes = v[0];
            s.bpConverged = v[1];
            s.osdInvocations = v[2];
            s.osdFailures = v[3];
            s.trivialShots = v[4];
            s.memoHits = v[5];
            s.bpIterations = v[6];
            s.waveGroups = v[7];
            s.waveLaneSlots = v[8];
            s.waveLanesFilled = v[9];
            s.osdBatchGroups = v[10];
            s.osdSharedPivots = v[11];
            s.stagedChunks = v[12];
        } else if (tok[0] == "backend") {
            if (tok.size() >= 2)
                r.decoder.backend = tok[1];
        }
    }
    if (!haveShard)
        throw std::runtime_error("shard record: missing shard line");
    return r;
}

std::string
formatManifest(const SpoolManifest& m)
{
    std::ostringstream out;
    out << kManifestMagic << "\n"
        << "name " << m.name << "\n"
        << "seed " << hex(m.seed) << "\n"
        << "spec " << hex(m.specHash) << "\n"
        << "lease " << dbl(m.leaseSeconds) << "\n"
        << "retry_attempts " << m.retryAttempts << "\n"
        << "retry_base_ms " << dbl(m.retryBaseMs) << "\n";
    return out.str();
}

SpoolManifest
parseManifest(const std::string& text)
{
    const auto lines =
        splitChecked(text, kManifestMagic, "spool manifest");
    SpoolManifest m;
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] == "name") {
            const size_t at = line.find(' ');
            m.name = at == std::string::npos ? "" : line.substr(at + 1);
        } else if (tok[0] == "seed" && tok.size() == 2) {
            m.seed = parseHex(tok[1], "seed");
        } else if (tok[0] == "spec" && tok.size() == 2) {
            m.specHash = parseHex(tok[1], "spec");
        } else if (tok[0] == "lease" && tok.size() == 2) {
            m.leaseSeconds = parseDouble(tok[1], "lease");
        } else if (tok[0] == "retry_attempts" && tok.size() == 2) {
            m.retryAttempts = parseU64(tok[1], "retry_attempts");
        } else if (tok[0] == "retry_base_ms" && tok.size() == 2) {
            m.retryBaseMs = parseDouble(tok[1], "retry_base_ms");
        }
    }
    return m;
}

void
spoolWriteAtomic(const std::string& path, const std::string& text,
                 const char* point)
{
    if (faultPoint("spool.io.write").transient)
        throw TransientIoError("injected transient write fault: " +
                               path);
    FaultDecision f;
    if (point != nullptr) {
        f = faultPoint(point);
        if (f.transient)
            throw TransientIoError(
                std::string("injected transient fault at ") + point +
                ": " + path);
    }
    // The temp name must be a DOT-PREFIXED basename in the same
    // directory: directory scans (listDir) skip dotted tmp entries,
    // so an in-flight publish can never be claimed before its final
    // rename lands, and rename stays same-filesystem atomic.
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, ".tmp-%ld-",
                  static_cast<long>(::getpid()));
    const size_t slash = path.find_last_of('/');
    const std::string tmp = slash == std::string::npos
        ? prefix + path
        : path.substr(0, slash + 1) + prefix + path.substr(slash + 1);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throwIo("cannot open for write: " + tmp, errno);
        out << text;
        out.flush();
        if (!out) {
            const int err = errno;
            std::remove(tmp.c_str());
            throwIo("write failed: " + tmp, err);
        }
    }
    if (f.torn) {
        // Model a non-atomic writer dying mid-write: a truncated
        // prefix of the payload lands on the FINAL path and the
        // process is gone. Readers must detect this via the crc.
        const size_t n = faultTornLength(point, text.size());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(text.data(), static_cast<std::streamsize>(n));
        out.flush();
        std::remove(tmp.c_str());
        faultCrash(point);
    }
    if (f.crashBefore)
        faultCrash(point);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        throwIo("rename failed: " + tmp + " -> " + path, err);
    }
    if (f.crashAfter)
        faultCrash(point);
}

std::string
spoolReadFile(const std::string& path, const char* point)
{
    if (point != nullptr && faultPoint(point).transient)
        throw TransientIoError("injected transient read fault: " +
                               path);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throwIo("cannot read: " + path, errno);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

Spool::Spool(std::string dir) : dir_(std::move(dir)) {}

void
Spool::initialize(const SpoolManifest& manifest,
                  const std::string& specText)
{
    makeDir(dir_);
    makeDir(dir_ + "/open");
    makeDir(dir_ + "/claimed");
    makeDir(dir_ + "/done");
    makeDir(dir_ + "/results");
    makeDir(dir_ + "/reclaims");
    makeDir(dir_ + "/quarantine");
    makeDir(dir_ + "/workers");
    makeDir(cacheDir());
    SpoolManifest m = manifest;
    m.specHash = HashStream().absorb(specText).digest();
    if (initialized()) {
        const SpoolManifest existing = readManifest();
        if (existing.specHash != m.specHash)
            throw std::runtime_error(
                "spool " + dir_ +
                " already holds a different campaign (spec hash " +
                hex(existing.specHash) + " != " + hex(m.specHash) +
                "); use a fresh directory");
        return;
    }
    // Spec first, manifest last: initialized() implies both exist.
    writeFile("spec.ini", specText, "spool.spec.commit");
    writeFile("manifest.txt", formatManifest(m),
              "spool.manifest.commit");
}

bool
Spool::initialized() const
{
    return fileExists(dir_ + "/manifest.txt");
}

SpoolManifest
Spool::readManifest() const
{
    return parseManifest(readFile("manifest.txt"));
}

std::string
Spool::readSpecText() const
{
    return readFile("spec.ini");
}

std::string
Spool::cacheDir() const
{
    return dir_ + "/cache";
}

bool
Spool::publishShard(const ShardDescriptor& d)
{
    const std::string id = shardId(d.task, d.shard);
    if (fileExists(dir_ + "/open/" + id) ||
        fileExists(dir_ + "/claimed/" + id) ||
        fileExists(dir_ + "/done/" + id) ||
        fileExists(dir_ + "/results/" + id + ".rec"))
        return false;
    writeFile("open/" + id, formatShardDescriptor(d),
              "spool.descriptor.commit");
    return true;
}

bool
Spool::claimShard(const std::string& id, ShardDescriptor& out)
{
    const std::string from = dir_ + "/open/" + id;
    const std::string to = dir_ + "/claimed/" + id;
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return false;
    try {
        out = parseShardDescriptor(withRetry(
            "read", to, [&] { return spoolReadFile(to,
                                                   "spool.io.read"); }));
    } catch (const SpoolIoError&) {
        throw;
    } catch (const std::exception&) {
        // Corrupt descriptor (torn publish): never execute it.
        // Quarantine so the coordinator can republish cleanly.
        quarantineShard(id);
        return false;
    }
    return true;
}

std::vector<std::string>
Spool::openShards() const
{
    return listDir(dir_ + "/open");
}

std::vector<std::string>
Spool::claimedShards() const
{
    return listDir(dir_ + "/claimed");
}

void
Spool::heartbeat(const std::string& id) const
{
    if (faultPoint("spool.heartbeat").freeze)
        return;
    // Refresh both timestamps to "now"; cheap and race-free (a claim
    // that was reclaimed meanwhile just makes this a no-op ENOENT).
    ::utimensat(AT_FDCWD, (dir_ + "/claimed/" + id).c_str(), nullptr,
                0);
}

double
Spool::monotonicAge(const std::string& path) const
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        std::lock_guard<std::mutex> lock(agesMutex_);
        ages_.erase(path);
        return -1.0;
    }
    const long long mtimeNs =
        static_cast<long long>(st.st_mtim.tv_sec) * 1000000000ll +
        static_cast<long long>(st.st_mtim.tv_nsec);
    const double now = monotonicSeconds();
    std::lock_guard<std::mutex> lock(agesMutex_);
    const auto [it, inserted] = ages_.try_emplace(path);
    AgeObservation& obs = it->second;
    if (inserted || obs.mtimeNs != mtimeNs) {
        // First sighting, or the heartbeat advanced: restart the
        // local monotonic age from zero. Wall-clock steps change
        // neither the stored mtime nor CLOCK_MONOTONIC, so they
        // cannot expire (or immortalize) a lease.
        obs.mtimeNs = mtimeNs;
        obs.monoSeconds = now;
        return 0.0;
    }
    return now - obs.monoSeconds;
}

double
Spool::claimAge(const std::string& id) const
{
    return monotonicAge(dir_ + "/claimed/" + id);
}

bool
Spool::reclaimShard(const std::string& id)
{
    const std::string from = dir_ + "/claimed/" + id;
    const std::string to = dir_ + "/open/" + id;
    return std::rename(from.c_str(), to.c_str()) == 0;
}

size_t
Spool::bumpReclaimCount(const std::string& id)
{
    makeDir(dir_ + "/reclaims");
    const std::string path = dir_ + "/reclaims/" + id;
    size_t count = reclaimCount(id) + 1;
    try {
        spoolWriteAtomic(path, std::to_string(count) + "\n");
    } catch (const std::exception&) {
        // Best effort: a lost counter update only delays poison
        // detection by one reclaim.
    }
    return count;
}

size_t
Spool::reclaimCount(const std::string& id) const
{
    const std::string path = dir_ + "/reclaims/" + id;
    if (!fileExists(path))
        return 0;
    try {
        return static_cast<size_t>(
            std::stoull(spoolReadFile(path)));
    } catch (const std::exception&) {
        return 0;
    }
}

bool
Spool::quarantineShard(const std::string& id)
{
    makeDir(dir_ + "/quarantine");
    const std::string q = dir_ + "/quarantine/" + id;
    if (std::rename((dir_ + "/claimed/" + id).c_str(), q.c_str()) == 0)
        return true;
    return std::rename((dir_ + "/open/" + id).c_str(), q.c_str()) ==
           0;
}

bool
Spool::quarantineRecord(const std::string& id)
{
    return quarantineFile("results/" + id + ".rec");
}

bool
Spool::quarantineFile(const std::string& relative)
{
    makeDir(dir_ + "/quarantine");
    const size_t slash = relative.find_last_of('/');
    const std::string base = slash == std::string::npos
        ? relative
        : relative.substr(slash + 1);
    return std::rename((dir_ + "/" + relative).c_str(),
                       (dir_ + "/quarantine/" + base).c_str()) == 0;
}

std::vector<std::string>
Spool::quarantined() const
{
    return listDir(dir_ + "/quarantine");
}

bool
Spool::reviveShard(const std::string& id)
{
    return std::rename((dir_ + "/done/" + id).c_str(),
                       (dir_ + "/open/" + id).c_str()) == 0;
}

bool
Spool::retireClaim(const std::string& id)
{
    return std::rename((dir_ + "/claimed/" + id).c_str(),
                       (dir_ + "/done/" + id).c_str()) == 0;
}

void
Spool::completeShard(const std::string& id, const ShardRecord& r)
{
    writeFile("results/" + id + ".rec", formatShardRecord(r),
              "spool.record.commit");
    // Retire the descriptor. The claim may have been reclaimed to
    // open/ meanwhile (slow heartbeat); move it to done/ from either
    // place so nobody re-executes a shard that already has a record.
    const std::string done = dir_ + "/done/" + id;
    if (std::rename((dir_ + "/claimed/" + id).c_str(), done.c_str()) !=
        0)
        std::rename((dir_ + "/open/" + id).c_str(), done.c_str());
}

bool
Spool::hasRecord(const std::string& id) const
{
    return fileExists(dir_ + "/results/" + id + ".rec");
}

ShardRecord
Spool::readRecord(const std::string& id) const
{
    const std::string text = readFile("results/" + id + ".rec");
    try {
        return parseShardRecord(text);
    } catch (const CorruptSpoolError&) {
        throw;
    } catch (const std::exception& ex) {
        throw CorruptSpoolError("record " + id + ": " + ex.what());
    }
}

bool
Spool::acquireCoordinatorLease(const std::string& owner)
{
    const std::string path = dir_ + "/" + kLeaseFile;
    const int fd = ::open(path.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                          0666);
    if (fd < 0)
        return false;
    const std::string text = "owner " + owner + "\n";
    (void)!::write(fd, text.data(), text.size());
    ::close(fd);
    return true;
}

bool
Spool::stealCoordinatorLease(const std::string& owner)
{
    static std::atomic<unsigned> counter{0};
    char suffix[64];
    std::snprintf(suffix, sizeof suffix, ".dead-%ld-%u",
                  static_cast<long>(::getpid()),
                  counter.fetch_add(1));
    const std::string path = dir_ + "/" + kLeaseFile;
    // Exactly one stealer wins this rename; losers see ENOENT and go
    // back to waiting on the new owner's lease.
    if (std::rename(path.c_str(), (path + suffix).c_str()) != 0)
        return false;
    return acquireCoordinatorLease(owner);
}

void
Spool::heartbeatCoordinator() const
{
    if (faultPoint("coord.lease.heartbeat").freeze)
        return;
    ::utimensat(AT_FDCWD, (dir_ + "/" + kLeaseFile).c_str(), nullptr,
                0);
}

double
Spool::coordinatorLeaseAge() const
{
    return monotonicAge(dir_ + "/" + kLeaseFile);
}

bool
Spool::hasCoordinatorLease() const
{
    return fileExists(dir_ + "/" + kLeaseFile);
}

void
Spool::releaseCoordinatorLease(const std::string& owner)
{
    const std::string path = dir_ + "/" + kLeaseFile;
    try {
        const std::string text = spoolReadFile(path);
        if (text.rfind("owner " + owner + "\n", 0) != 0)
            return; // someone stole it; not ours to remove
    } catch (const std::exception&) {
        return;
    }
    ::unlink(path.c_str());
}

void
Spool::writeJournal(const std::string& text)
{
    writeFile(kJournalFile, text, "spool.journal.commit");
}

bool
Spool::readJournal(std::string& out) const
{
    if (!exists(kJournalFile))
        return false;
    out = readFile(kJournalFile);
    return true;
}

void
Spool::writeFile(const std::string& relative, const std::string& text,
                 const char* point)
{
    const std::string path = dir_ + "/" + relative;
    withRetry("write", path,
              [&] { spoolWriteAtomic(path, text, point); });
}

std::string
Spool::readFile(const std::string& relative) const
{
    const std::string path = dir_ + "/" + relative;
    return withRetry("read", path, [&] {
        return spoolReadFile(path, "spool.io.read");
    });
}

bool
Spool::exists(const std::string& relative) const
{
    return fileExists(dir_ + "/" + relative);
}

std::vector<std::string>
Spool::list(const std::string& subdir) const
{
    return listDir(dir_ + "/" + subdir);
}

double
Spool::workerHealthAge(const std::string& name) const
{
    return monotonicAge(dir_ + "/workers/" + name);
}

void
Spool::markDone()
{
    writeFile("DONE", "done\n", "spool.done.commit");
}

bool
Spool::done() const
{
    return fileExists(dir_ + "/DONE");
}

} // namespace cyclone
