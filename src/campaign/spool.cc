#include "campaign/spool.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "campaign/content_hash.h"

namespace cyclone {

namespace {

constexpr const char* kDescriptorMagic = "cyclone-shard v1";
constexpr const char* kRecordMagic = "cyclone-shard-result v1";
constexpr const char* kManifestMagic = "cyclone-spool v1";

/** Decoder counters on a record line, in fixed order. */
constexpr size_t kDecoderFields = 13;

void
makeDir(const std::string& path)
{
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        throw std::runtime_error("cannot create directory: " + path +
                                 " (" + std::strerror(errno) + ")");
}

std::vector<std::string>
listDir(const std::string& path)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr)
        return names;
    while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        // Skip in-flight tmp files from concurrent atomic writers.
        // spoolWriteAtomic dot-prefixes its temp names, but match
        // anywhere so a stray suffix-style tmp can never be claimed
        // and executed as if it were a published shard.
        if (name.find(".tmp-") != std::string::npos ||
            name.rfind(".", 0) == 0)
            continue;
        names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

bool
fileExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        tokens.push_back(tok);
    return tokens;
}

uint64_t
parseU64(const std::string& tok, const char* what)
{
    try {
        return std::stoull(tok, nullptr, 10);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

uint64_t
parseHex(const std::string& tok, const char* what)
{
    try {
        return std::stoull(tok, nullptr, 16);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

double
parseDouble(const std::string& tok, const char* what)
{
    try {
        return std::stod(tok);
    } catch (...) {
        throw std::runtime_error(std::string("bad ") + what +
                                 " field: " + tok);
    }
}

std::string
hex(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
dbl(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** First line must equal `magic`; returns the remaining lines. */
std::vector<std::string>
splitChecked(const std::string& text, const char* magic,
             const char* what)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    if (lines.empty() || lines.front() != magic)
        throw std::runtime_error(std::string("not a ") + what +
                                 " file (bad magic line)");
    lines.erase(lines.begin());
    return lines;
}

} // namespace

std::string
shardId(size_t task, size_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "t%04zu-s%05zu", task, shard);
    return buf;
}

std::string
formatShardDescriptor(const ShardDescriptor& d)
{
    std::ostringstream out;
    out << kDescriptorMagic << "\n"
        << "shard " << d.task << " " << d.shard << " " << d.firstChunk
        << " " << d.numChunks << " " << d.chunkShots << " "
        << hex(d.contentHash) << " " << hex(d.taskSeed) << "\n";
    return out.str();
}

ShardDescriptor
parseShardDescriptor(const std::string& text)
{
    const auto lines =
        splitChecked(text, kDescriptorMagic, "shard descriptor");
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] != "shard")
            continue;
        if (tok.size() != 8)
            throw std::runtime_error(
                "shard descriptor: expected 7 fields, got " +
                std::to_string(tok.size() - 1));
        ShardDescriptor d;
        d.task = parseU64(tok[1], "task");
        d.shard = parseU64(tok[2], "shard");
        d.firstChunk = parseU64(tok[3], "firstChunk");
        d.numChunks = parseU64(tok[4], "numChunks");
        d.chunkShots = parseU64(tok[5], "chunkShots");
        d.contentHash = parseHex(tok[6], "contentHash");
        d.taskSeed = parseHex(tok[7], "taskSeed");
        return d;
    }
    throw std::runtime_error("shard descriptor: missing shard line");
}

std::string
formatShardRecord(const ShardRecord& r)
{
    std::ostringstream out;
    out << kRecordMagic << "\n"
        << "shard " << r.task << " " << r.shard << " "
        << hex(r.contentHash) << " " << r.shots << " " << r.failures
        << " " << dbl(r.seconds) << "\n";
    const BpOsdStats& s = r.decoder;
    out << "decoder " << s.decodes << " " << s.bpConverged << " "
        << s.osdInvocations << " " << s.osdFailures << " "
        << s.trivialShots << " " << s.memoHits << " " << s.bpIterations
        << " " << s.waveGroups << " " << s.waveLaneSlots << " "
        << s.waveLanesFilled << " " << s.osdBatchGroups << " "
        << s.osdSharedPivots << " " << s.stagedChunks << "\n";
    if (!s.backend.empty())
        out << "backend " << s.backend << "\n";
    return out.str();
}

ShardRecord
parseShardRecord(const std::string& text)
{
    const auto lines =
        splitChecked(text, kRecordMagic, "shard record");
    ShardRecord r;
    bool haveShard = false;
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] == "shard") {
            if (tok.size() != 7)
                throw std::runtime_error(
                    "shard record: expected 6 shard fields, got " +
                    std::to_string(tok.size() - 1));
            r.task = parseU64(tok[1], "task");
            r.shard = parseU64(tok[2], "shard");
            r.contentHash = parseHex(tok[3], "contentHash");
            r.shots = parseU64(tok[4], "shots");
            r.failures = parseU64(tok[5], "failures");
            r.seconds = parseDouble(tok[6], "seconds");
            haveShard = true;
        } else if (tok[0] == "decoder") {
            // Field-counted like the checkpoint format: accept short
            // (old) decoder lines zero-filled, reject long (future)
            // ones so new counters force a deliberate version bump.
            const size_t n = tok.size() - 1;
            if (n < 4 || n > kDecoderFields)
                throw std::runtime_error(
                    "shard record: unsupported decoder field count " +
                    std::to_string(n));
            uint64_t v[kDecoderFields] = {};
            for (size_t i = 0; i < n; ++i)
                v[i] = parseU64(tok[i + 1], "decoder");
            BpOsdStats& s = r.decoder;
            s.decodes = v[0];
            s.bpConverged = v[1];
            s.osdInvocations = v[2];
            s.osdFailures = v[3];
            s.trivialShots = v[4];
            s.memoHits = v[5];
            s.bpIterations = v[6];
            s.waveGroups = v[7];
            s.waveLaneSlots = v[8];
            s.waveLanesFilled = v[9];
            s.osdBatchGroups = v[10];
            s.osdSharedPivots = v[11];
            s.stagedChunks = v[12];
        } else if (tok[0] == "backend") {
            if (tok.size() >= 2)
                r.decoder.backend = tok[1];
        }
    }
    if (!haveShard)
        throw std::runtime_error("shard record: missing shard line");
    return r;
}

std::string
formatManifest(const SpoolManifest& m)
{
    std::ostringstream out;
    out << kManifestMagic << "\n"
        << "name " << m.name << "\n"
        << "seed " << hex(m.seed) << "\n"
        << "spec " << hex(m.specHash) << "\n"
        << "lease " << dbl(m.leaseSeconds) << "\n";
    return out.str();
}

SpoolManifest
parseManifest(const std::string& text)
{
    const auto lines =
        splitChecked(text, kManifestMagic, "spool manifest");
    SpoolManifest m;
    for (const std::string& line : lines) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        if (tok[0] == "name") {
            const size_t at = line.find(' ');
            m.name = at == std::string::npos ? "" : line.substr(at + 1);
        } else if (tok[0] == "seed" && tok.size() == 2) {
            m.seed = parseHex(tok[1], "seed");
        } else if (tok[0] == "spec" && tok.size() == 2) {
            m.specHash = parseHex(tok[1], "spec");
        } else if (tok[0] == "lease" && tok.size() == 2) {
            m.leaseSeconds = parseDouble(tok[1], "lease");
        }
    }
    return m;
}

void
spoolWriteAtomic(const std::string& path, const std::string& text)
{
    // The temp name must be a DOT-PREFIXED basename in the same
    // directory: directory scans (listDir) skip dotted tmp entries,
    // so an in-flight publish can never be claimed before its final
    // rename lands, and rename stays same-filesystem atomic.
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, ".tmp-%ld-",
                  static_cast<long>(::getpid()));
    const size_t slash = path.find_last_of('/');
    const std::string tmp = slash == std::string::npos
        ? prefix + path
        : path.substr(0, slash + 1) + prefix + path.substr(slash + 1);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot open for write: " + tmp);
        out << text;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw std::runtime_error("write failed: " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("rename failed: " + tmp + " -> " +
                                 path);
    }
}

std::string
spoolReadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read: " + path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

Spool::Spool(std::string dir) : dir_(std::move(dir)) {}

void
Spool::initialize(const SpoolManifest& manifest,
                  const std::string& specText)
{
    makeDir(dir_);
    makeDir(dir_ + "/open");
    makeDir(dir_ + "/claimed");
    makeDir(dir_ + "/done");
    makeDir(dir_ + "/results");
    makeDir(cacheDir());
    SpoolManifest m = manifest;
    m.specHash = HashStream().absorb(specText).digest();
    if (initialized()) {
        const SpoolManifest existing = readManifest();
        if (existing.specHash != m.specHash)
            throw std::runtime_error(
                "spool " + dir_ +
                " already holds a different campaign (spec hash " +
                hex(existing.specHash) + " != " + hex(m.specHash) +
                "); use a fresh directory");
        return;
    }
    // Spec first, manifest last: initialized() implies both exist.
    spoolWriteAtomic(dir_ + "/spec.ini", specText);
    spoolWriteAtomic(dir_ + "/manifest.txt", formatManifest(m));
}

bool
Spool::initialized() const
{
    return fileExists(dir_ + "/manifest.txt");
}

SpoolManifest
Spool::readManifest() const
{
    return parseManifest(spoolReadFile(dir_ + "/manifest.txt"));
}

std::string
Spool::readSpecText() const
{
    return spoolReadFile(dir_ + "/spec.ini");
}

std::string
Spool::cacheDir() const
{
    return dir_ + "/cache";
}

bool
Spool::publishShard(const ShardDescriptor& d)
{
    const std::string id = shardId(d.task, d.shard);
    if (fileExists(dir_ + "/open/" + id) ||
        fileExists(dir_ + "/claimed/" + id) ||
        fileExists(dir_ + "/done/" + id) ||
        fileExists(dir_ + "/results/" + id + ".rec"))
        return false;
    spoolWriteAtomic(dir_ + "/open/" + id, formatShardDescriptor(d));
    return true;
}

bool
Spool::claimShard(const std::string& id, ShardDescriptor& out)
{
    const std::string from = dir_ + "/open/" + id;
    const std::string to = dir_ + "/claimed/" + id;
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return false;
    out = parseShardDescriptor(spoolReadFile(to));
    return true;
}

std::vector<std::string>
Spool::openShards() const
{
    return listDir(dir_ + "/open");
}

std::vector<std::string>
Spool::claimedShards() const
{
    return listDir(dir_ + "/claimed");
}

void
Spool::heartbeat(const std::string& id) const
{
    // Refresh both timestamps to "now"; cheap and race-free (a claim
    // that was reclaimed meanwhile just makes this a no-op ENOENT).
    ::utimensat(AT_FDCWD, (dir_ + "/claimed/" + id).c_str(), nullptr,
                0);
}

double
Spool::claimAge(const std::string& id) const
{
    struct stat st;
    if (::stat((dir_ + "/claimed/" + id).c_str(), &st) != 0)
        return -1.0;
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    const double then = static_cast<double>(st.st_mtim.tv_sec) +
        static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
    const double current = static_cast<double>(now.tv_sec) +
        static_cast<double>(now.tv_nsec) * 1e-9;
    return current - then;
}

bool
Spool::reclaimShard(const std::string& id)
{
    const std::string from = dir_ + "/claimed/" + id;
    const std::string to = dir_ + "/open/" + id;
    return std::rename(from.c_str(), to.c_str()) == 0;
}

void
Spool::completeShard(const std::string& id, const ShardRecord& r)
{
    spoolWriteAtomic(dir_ + "/results/" + id + ".rec",
                     formatShardRecord(r));
    // Retire the descriptor. The claim may have been reclaimed to
    // open/ meanwhile (slow heartbeat); move it to done/ from either
    // place so nobody re-executes a shard that already has a record.
    const std::string done = dir_ + "/done/" + id;
    if (std::rename((dir_ + "/claimed/" + id).c_str(), done.c_str()) !=
        0)
        std::rename((dir_ + "/open/" + id).c_str(), done.c_str());
}

bool
Spool::hasRecord(const std::string& id) const
{
    return fileExists(dir_ + "/results/" + id + ".rec");
}

ShardRecord
Spool::readRecord(const std::string& id) const
{
    return parseShardRecord(
        spoolReadFile(dir_ + "/results/" + id + ".rec"));
}

void
Spool::markDone()
{
    spoolWriteAtomic(dir_ + "/DONE", "done\n");
}

bool
Spool::done() const
{
    return fileExists(dir_ + "/DONE");
}

} // namespace cyclone
