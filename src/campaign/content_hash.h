/**
 * @file
 * Content hashing for campaign artifact keys.
 *
 * Cache keys must identify *what would be built*, not which task asked
 * for it: two tasks that compile the same code under the same
 * architecture options share one CompileResult, and two tasks with the
 * same circuit-level noise share one detector error model. The stream
 * hashes structural content (parity-check supports, schedule slices,
 * option fields) with FNV-1a over 64-bit words, mixed once more on
 * extraction.
 */

#ifndef CYCLONE_CAMPAIGN_CONTENT_HASH_H
#define CYCLONE_CAMPAIGN_CONTENT_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace cyclone {

class CssCode;
class SyndromeSchedule;
struct TimedSchedule;

/** Incremental FNV-1a/splitmix content hasher. */
class HashStream
{
  public:
    HashStream& absorb(uint64_t value)
    {
        // FNV-1a, one byte at a time over the word.
        for (int i = 0; i < 8; ++i) {
            state_ ^= (value >> (8 * i)) & 0xff;
            state_ *= 0x100000001b3ull;
        }
        return *this;
    }

    HashStream& absorb(double value)
    {
        uint64_t bits = 0;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        return absorb(bits);
    }

    HashStream& absorb(const std::string& s)
    {
        for (char c : s) {
            state_ ^= static_cast<unsigned char>(c);
            state_ *= 0x100000001b3ull;
        }
        return absorb(uint64_t{0x5e9a7a70ull}); // separator sentinel
    }

    /** Final avalanche so absorb order differences spread widely. */
    uint64_t digest() const
    {
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_ = 0xcbf29ce484222325ull;
};

/** Hash the structural content of a code (supports + dimensions). */
uint64_t hashCode(const CssCode& code);

/** Hash a schedule (policy + exact slice contents). */
uint64_t hashSchedule(const SyndromeSchedule& schedule);

/**
 * Hash a compiled TimedSchedule IR (every op's category, resource,
 * ions and exact times). Two compiles producing bit-identical
 * timelines share the hash, so schedule-derived artifacts (per-qubit
 * idle DEMs) dedupe across tasks.
 */
uint64_t hashTimedSchedule(const TimedSchedule& schedule);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_CONTENT_HASH_H
