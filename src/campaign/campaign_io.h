/**
 * @file
 * Campaign serialization: JSON/CSV exports, resumable checkpoints,
 * and the declarative spec-file format.
 *
 * Spec files are INI-style. Keys before the first `[task]` section set
 * campaign fields (name, seed, threads); each `[task]` section defines
 * one or more tasks — the `arch` and `p` keys accept comma-separated
 * lists that expand to the cartesian product of points:
 *
 *     name = bb-sweep
 *     seed = 7
 *
 *     [task]
 *     code = bb72
 *     arch = cyclone, baseline
 *     p = 1e-3, 2e-3, 4e-3
 *     max_shots = 20000
 *     target_rel_err = 0.1
 *
 * Checkpoints are line-based records of completed tasks keyed by
 * content hash, so a rerun of an edited spec re-executes exactly the
 * tasks whose definition changed.
 */

#ifndef CYCLONE_CAMPAIGN_CAMPAIGN_IO_H
#define CYCLONE_CAMPAIGN_CAMPAIGN_IO_H

#include <string>

#include "campaign/campaign.h"

namespace cyclone {

/** Serialize a campaign result as a JSON document. */
std::string campaignResultToJson(const CampaignResult& result);

/** Serialize the per-task table as CSV with a header row. */
std::string campaignResultToCsv(const CampaignResult& result);

/** Write a string to a file (atomically via rename). */
bool writeTextFile(const std::string& path, const std::string& content);

/**
 * Save every successfully completed task of `result` as a checkpoint.
 * Returns false on I/O failure.
 */
bool saveCheckpoint(const CampaignResult& result, const std::string& path);

/**
 * Load a checkpoint file. Returns false when the file is missing or
 * malformed (checkpoints are advisory: a bad one is ignored, not
 * fatal).
 */
bool loadCheckpoint(const std::string& path, CampaignCheckpoint& out);

/** Parse a spec document; throws std::runtime_error with a line. */
CampaignSpec parseCampaignSpec(const std::string& text);

/** Read and parse a spec file; throws on missing file or bad spec. */
CampaignSpec loadCampaignSpec(const std::string& path);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_CAMPAIGN_IO_H
