#include "campaign/artifact_cache.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include <unistd.h>

#include "campaign/fault_plan.h"
#include "common/crc32.h"

namespace cyclone {

namespace {

// Binary artifact framing. All integers and doubles are stored in
// native byte order; the endian word rejects blobs from a
// foreign-endian host instead of silently misreading them. Version 2
// added a CRC-32 of the payload to the header, so torn or bit-rotted
// store blobs are detected (and quarantined) instead of deserialized
// into garbage that happens to fit the field layout.
constexpr uint32_t kArtifactMagic = 0x43594152u; // "CYAR"
constexpr uint32_t kArtifactEndian = 0x01020304u;
constexpr uint32_t kCompileKind = 1;
constexpr uint32_t kDemKind = 2;
constexpr uint32_t kArtifactVersion = 2;

/** Bytes of the fixed header: magic, endian, version, kind, crc. */
constexpr size_t kArtifactHeaderBytes = 5 * sizeof(uint32_t);

struct ByteWriter
{
    std::string bytes;

    void u32(uint32_t v) { raw(&v, sizeof v); }
    void u64(uint64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void str(const std::string& s)
    {
        u64(s.size());
        bytes.append(s);
    }
    void raw(const void* p, size_t n)
    {
        bytes.append(static_cast<const char*>(p), n);
    }
};

struct ByteReader
{
    const std::string& bytes;
    size_t pos = 0;

    explicit ByteReader(const std::string& b) : bytes(b) {}

    uint32_t u32() { return rawAs<uint32_t>(); }
    uint64_t u64() { return rawAs<uint64_t>(); }
    double f64() { return rawAs<double>(); }

    std::string str()
    {
        const uint64_t n = u64();
        if (n > bytes.size() - pos)
            throw std::runtime_error("artifact blob truncated (string)");
        std::string s = bytes.substr(pos, n);
        pos += n;
        return s;
    }

    template <typename T>
    T rawAs()
    {
        T v;
        if (sizeof v > bytes.size() - pos)
            throw std::runtime_error("artifact blob truncated");
        std::memcpy(&v, bytes.data() + pos, sizeof v);
        pos += sizeof v;
        return v;
    }
};

void
writeHeader(ByteWriter& w, uint32_t kind)
{
    w.u32(kArtifactMagic);
    w.u32(kArtifactEndian);
    w.u32(kArtifactVersion);
    w.u32(kind);
    w.u32(0); // payload crc, patched by finishArtifact
}

/** Patch the header's payload-crc word once the body is complete. */
std::string
finishArtifact(ByteWriter&& w)
{
    const uint32_t crc =
        crc32(w.bytes.data() + kArtifactHeaderBytes,
              w.bytes.size() - kArtifactHeaderBytes);
    std::memcpy(&w.bytes[4 * sizeof(uint32_t)], &crc, sizeof crc);
    return std::move(w.bytes);
}

void
checkHeader(ByteReader& r, uint32_t kind)
{
    if (r.u32() != kArtifactMagic)
        throw std::runtime_error("not a cyclone artifact blob");
    if (r.u32() != kArtifactEndian)
        throw std::runtime_error("artifact blob has foreign endianness");
    if (r.u32() != kArtifactVersion)
        throw std::runtime_error("unsupported artifact blob version");
    if (r.u32() != kind)
        throw std::runtime_error("artifact blob has the wrong kind");
    const uint32_t want = r.u32();
    const uint32_t got = crc32(r.bytes.data() + r.pos,
                               r.bytes.size() - r.pos);
    if (want != got)
        throw std::runtime_error(
            "artifact blob payload checksum mismatch");
}

std::string
storePath(const std::string& dir, const char* kind, uint64_t key)
{
    char name[64];
    std::snprintf(name, sizeof name, "%s-%016llx.bin", kind,
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

bool
readWholeFile(const std::string& path, std::string& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return false;
    out = std::move(data);
    return true;
}

bool
writeFileAtomicBinary(const std::string& path, const std::string& data)
{
    const FaultDecision f = faultPoint("cache.blob.commit");
    if (f.transient)
        return false; // publish skipped; the blob stays local-only
    // Unique tmp name: concurrent processes publishing the same key
    // must not clobber each other's partial writes.
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".tmp-%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        if (!out)
            return false;
    }
    if (f.torn) {
        // A non-atomic writer dying mid-write: truncated bytes on
        // the final path. Readers catch this via the header crc.
        const size_t n =
            faultTornLength("cache.blob.commit", data.size());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(), static_cast<std::streamsize>(n));
        out.flush();
        std::remove(tmp.c_str());
        faultCrash("cache.blob.commit");
    }
    if (f.crashBefore)
        faultCrash("cache.blob.commit");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (f.crashAfter)
        faultCrash("cache.blob.commit");
    return true;
}

/**
 * Move a corrupt store blob aside to <store>/quarantine/ so the
 * rebuild that follows republishes fresh bytes instead of racing a
 * file every reader knows is bad — and so operators can inspect what
 * went wrong. Best effort: another process may quarantine first.
 */
void
quarantineBlob(const std::string& store, const char* kind,
               uint64_t key)
{
    const std::string path = storePath(store, kind, key);
    const std::string dir = store + "/quarantine";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const size_t slash = path.find_last_of('/');
    std::rename(path.c_str(),
                (dir + "/" + path.substr(slash + 1)).c_str());
}

} // namespace

std::string
serializeCompileResult(const CompileResult& result)
{
    ByteWriter w;
    writeHeader(w, kCompileKind);
    w.str(result.compilerName);
    w.str(result.topologyName);
    w.f64(result.execTimeUs);
    w.f64(result.serialized.gateUs);
    w.f64(result.serialized.shuttleUs);
    w.f64(result.serialized.junctionUs);
    w.f64(result.serialized.swapUs);
    w.f64(result.serialized.measureUs);
    w.f64(result.serialized.prepUs);
    w.u64(result.numTraps);
    w.u64(result.numJunctions);
    w.u64(result.numAncilla);
    w.u64(result.trapRoadblocks);
    w.u64(result.junctionRoadblocks);
    w.u64(result.rebalances);
    w.u64(result.gateOps);
    w.u64(result.shuttleOps);
    w.u64(result.swapOps);
    w.u32(result.schedule.numResources);
    w.u32(result.schedule.numIons);
    w.u64(result.schedule.ops.size());
    for (const TimedOp& op : result.schedule.ops) {
        w.u32(static_cast<uint32_t>(op.category));
        w.u32(op.resource);
        w.u32(op.ionA);
        w.u32(op.ionB);
        w.f64(op.startUs);
        w.f64(op.durationUs);
        w.f64(op.waitUs);
        w.u32(op.counted ? 1u : 0u);
    }
    return finishArtifact(std::move(w));
}

CompileResult
deserializeCompileResult(const std::string& bytes)
{
    ByteReader r(bytes);
    checkHeader(r, kCompileKind);
    CompileResult result;
    result.compilerName = r.str();
    result.topologyName = r.str();
    result.execTimeUs = r.f64();
    result.serialized.gateUs = r.f64();
    result.serialized.shuttleUs = r.f64();
    result.serialized.junctionUs = r.f64();
    result.serialized.swapUs = r.f64();
    result.serialized.measureUs = r.f64();
    result.serialized.prepUs = r.f64();
    result.numTraps = r.u64();
    result.numJunctions = r.u64();
    result.numAncilla = r.u64();
    result.trapRoadblocks = r.u64();
    result.junctionRoadblocks = r.u64();
    result.rebalances = r.u64();
    result.gateOps = r.u64();
    result.shuttleOps = r.u64();
    result.swapOps = r.u64();
    result.schedule.numResources = r.u32();
    result.schedule.numIons = r.u32();
    const uint64_t nOps = r.u64();
    if (nOps > (bytes.size() - r.pos) / 8)
        throw std::runtime_error("artifact blob truncated (ops)");
    result.schedule.ops.reserve(nOps);
    for (uint64_t i = 0; i < nOps; ++i) {
        TimedOp op;
        const uint32_t cat = r.u32();
        if (cat >= kNumOpCategories)
            throw std::runtime_error("artifact blob has a bad category");
        op.category = static_cast<OpCategory>(cat);
        op.resource = r.u32();
        op.ionA = r.u32();
        op.ionB = r.u32();
        op.startUs = r.f64();
        op.durationUs = r.f64();
        op.waitUs = r.f64();
        op.counted = r.u32() != 0;
        result.schedule.ops.push_back(op);
    }
    return result;
}

std::string
serializeDem(const DetectorErrorModel& dem)
{
    ByteWriter w;
    writeHeader(w, kDemKind);
    w.u64(dem.numDetectors);
    w.u64(dem.numObservables);
    w.u64(dem.mechanisms.size());
    for (const DemMechanism& m : dem.mechanisms) {
        w.f64(m.probability);
        w.u64(m.observables);
        w.u64(m.detectors.size());
        w.raw(m.detectors.data(),
              m.detectors.size() * sizeof(uint32_t));
    }
    return finishArtifact(std::move(w));
}

DetectorErrorModel
deserializeDem(const std::string& bytes)
{
    ByteReader r(bytes);
    checkHeader(r, kDemKind);
    DetectorErrorModel dem;
    dem.numDetectors = r.u64();
    dem.numObservables = r.u64();
    const uint64_t nMech = r.u64();
    if (nMech > (bytes.size() - r.pos) / 8)
        throw std::runtime_error("artifact blob truncated (mechanisms)");
    dem.mechanisms.reserve(nMech);
    for (uint64_t i = 0; i < nMech; ++i) {
        DemMechanism m;
        m.probability = r.f64();
        m.observables = r.u64();
        const uint64_t nDet = r.u64();
        if (nDet > (bytes.size() - r.pos) / sizeof(uint32_t))
            throw std::runtime_error(
                "artifact blob truncated (detectors)");
        m.detectors.resize(nDet);
        if (nDet > 0) {
            std::memcpy(m.detectors.data(), bytes.data() + r.pos,
                        nDet * sizeof(uint32_t));
            r.pos += nDet * sizeof(uint32_t);
        }
        dem.mechanisms.push_back(std::move(m));
    }
    return dem;
}

template <typename T>
std::shared_ptr<const T>
ArtifactCache::getOrBuild(
    std::unordered_map<uint64_t, std::shared_ptr<Slot<T>>>& map,
    uint64_t key, const std::function<T()>& build, const char* kind,
    size_t& hits, size_t& misses, size_t& storeHits, size_t& bytes,
    std::string (*serialize)(const T&),
    T (*deserialize)(const std::string&))
{
    std::shared_ptr<Slot<T>> slot;
    bool isBuilder = false;
    std::string store;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = map.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Slot<T>>();
            isBuilder = true;
            ++misses;
        } else {
            ++hits;
        }
        slot = it->second;
        store = storeDir_;
    }

    if (!isBuilder) {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return slot->ready; });
        if (slot->error)
            std::rethrow_exception(slot->error);
        return slot->value;
    }

    std::shared_ptr<const T> value;
    std::exception_ptr error;
    size_t valueBytes = 0;
    bool fromStore = false;
    bool quarantined = false;
    try {
        // Store first: another process may already have published
        // these bytes. A corrupt or foreign blob is quarantined and
        // falls through to a local rebuild, which publishes fresh
        // bytes under the original name.
        if (!store.empty()) {
            std::string blob;
            if (readWholeFile(storePath(store, kind, key), blob)) {
                try {
                    value = std::make_shared<const T>(deserialize(blob));
                    valueBytes = blob.size();
                    fromStore = true;
                } catch (const std::exception&) {
                    value.reset();
                    quarantineBlob(store, kind, key);
                    quarantined = true;
                }
            }
        }
        if (!value) {
            value = std::make_shared<const T>(build());
            const std::string blob = serialize(*value);
            valueBytes = blob.size();
            if (!store.empty())
                writeFileAtomicBinary(storePath(store, kind, key),
                                      blob);
        }
    } catch (...) {
        error = std::current_exception();
    }
    {
        // Notify under the lock so the cache cannot be destroyed
        // between a waiter waking and this call completing.
        std::lock_guard<std::mutex> lock(mutex_);
        slot->value = value;
        slot->error = error;
        slot->ready = true;
        if (!error) {
            bytes += valueBytes;
            if (fromStore)
                ++storeHits;
        }
        if (quarantined)
            ++stats_.quarantinedBlobs;
        ready_.notify_all();
    }
    if (error)
        std::rethrow_exception(error);
    return value;
}

std::shared_ptr<const CompileResult>
ArtifactCache::getOrBuildCompile(uint64_t key,
                                 const std::function<CompileResult()>& build)
{
    return getOrBuild(compiles_, key, build, "compile",
                      stats_.compileHits, stats_.compileMisses,
                      stats_.compileStoreHits, stats_.compileBytes,
                      &serializeCompileResult,
                      &deserializeCompileResult);
}

std::shared_ptr<const DetectorErrorModel>
ArtifactCache::getOrBuildDem(uint64_t key,
                             const std::function<DetectorErrorModel()>& build)
{
    return getOrBuild(dems_, key, build, "dem", stats_.demHits,
                      stats_.demMisses, stats_.demStoreHits,
                      stats_.demBytes, &serializeDem, &deserializeDem);
}

void
ArtifactCache::attachStore(const std::string& dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    storeDir_ = dir;
}

std::string
ArtifactCache::storeDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeDir_;
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

size_t
ArtifactCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_.size() + dems_.size();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    compiles_.clear();
    dems_.clear();
    stats_ = CacheStats{};
}

} // namespace cyclone
