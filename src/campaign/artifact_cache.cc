#include "campaign/artifact_cache.h"

#include <exception>
#include <utility>

namespace cyclone {

template <typename T>
std::shared_ptr<const T>
ArtifactCache::getOrBuild(
    std::unordered_map<uint64_t, std::shared_ptr<Slot<T>>>& map,
    uint64_t key, const std::function<T()>& build, size_t& hits,
    size_t& misses)
{
    std::shared_ptr<Slot<T>> slot;
    bool isBuilder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = map.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Slot<T>>();
            isBuilder = true;
            ++misses;
        } else {
            ++hits;
        }
        slot = it->second;
    }

    if (!isBuilder) {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock, [&] { return slot->ready; });
        if (slot->error)
            std::rethrow_exception(slot->error);
        return slot->value;
    }

    std::shared_ptr<const T> value;
    std::exception_ptr error;
    try {
        value = std::make_shared<const T>(build());
    } catch (...) {
        error = std::current_exception();
    }
    {
        // Notify under the lock so the cache cannot be destroyed
        // between a waiter waking and this call completing.
        std::lock_guard<std::mutex> lock(mutex_);
        slot->value = value;
        slot->error = error;
        slot->ready = true;
        ready_.notify_all();
    }
    if (error)
        std::rethrow_exception(error);
    return value;
}

std::shared_ptr<const CompileResult>
ArtifactCache::getOrBuildCompile(uint64_t key,
                                 const std::function<CompileResult()>& build)
{
    return getOrBuild(compiles_, key, build, stats_.compileHits,
                      stats_.compileMisses);
}

std::shared_ptr<const DetectorErrorModel>
ArtifactCache::getOrBuildDem(uint64_t key,
                             const std::function<DetectorErrorModel()>& build)
{
    return getOrBuild(dems_, key, build, stats_.demHits,
                      stats_.demMisses);
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

size_t
ArtifactCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_.size() + dems_.size();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    compiles_.clear();
    dems_.clear();
    stats_ = CacheStats{};
}

} // namespace cyclone
