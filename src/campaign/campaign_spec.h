/**
 * @file
 * Declarative description of a Monte-Carlo campaign.
 *
 * A campaign is a batch of logical-error-rate experiment points — the
 * raw material of every LER figure in the paper (Figs. 5, 14, 15, 19,
 * 21) — executed together on one shared work-stealing pool with shared
 * compile/DEM caches and per-task adaptive shot allocation. Each
 * TaskSpec names a code, an architecture (or an explicit round
 * latency), a physical error rate, a round count, and a stopping rule;
 * the engine resolves, builds, samples and decodes them concurrently.
 */

#ifndef CYCLONE_CAMPAIGN_CAMPAIGN_SPEC_H
#define CYCLONE_CAMPAIGN_CAMPAIGN_SPEC_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/codesign.h"
#include "decoder/bp_decoder.h"
#include "noise/noise_model.h"
#include "noise/pauli_twirl.h"
#include "qccd/swap_model.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/**
 * When to stop sampling one task.
 *
 * Sampling proceeds in chunks of `chunkShots` shots, scheduled
 * `chunksPerWave` at a time; the rule is evaluated only at wave
 * boundaries on the cumulative counts, which keeps the shot total a
 * deterministic function of the seed alone (never of thread count or
 * completion order).
 *
 * With `targetRelErr == 0` the rule is a fixed budget: exactly
 * `maxShots` shots. With `targetRelErr > 0` the task additionally
 * stops at the first wave boundary where at least `minFailures`
 * failures have been seen and the Wilson 95% half-width is within
 * `targetRelErr * rate` — so easy (high-LER) points finish in a few
 * chunks while threshold-region points run to the cap.
 */
struct StoppingRule
{
    size_t chunkShots = 256;
    size_t chunksPerWave = 4;
    size_t maxShots = 100000;
    double targetRelErr = 0.0;
    size_t minFailures = 8;

    /**
     * Chunks pooled per decode job (cross-chunk syndrome staging, see
     * BpOsdDecoder::beginStaged): each worker samples `stagingChunks`
     * consecutive chunks of a wave and decodes their pooled distinct
     * syndromes together, which keeps the SIMD wave kernel's lanes
     * and the batched OSD's slabs full when chunks are small. Groups
     * partition the wave by ascending chunk index, so results stay
     * bit-identical at any thread count — but a different value
     * regroups the decoder's duplicate-syndrome memo, so memoHits
     * (never any prediction) can change. A perf knob: deliberately
     * excluded from the task content hash, like bp.waveLanes.
     * 1 = stage nothing (one chunk per decode job, the default).
     */
    size_t stagingChunks = 1;

    /**
     * Chunks per spool shard in distributed runs (see coordinator.h).
     * The coordinator slices every wave into contiguous shards of
     * this many chunks and publishes each as one claimable unit of
     * work. Rounded up to a multiple of `stagingChunks` so worker-
     * side staging groups coincide exactly with a single-process
     * run's. Like stagingChunks, a pure scheduling knob: excluded
     * from the task content hash, never changes any result.
     * 0 = auto (about four shards per wave).
     */
    size_t shardChunks = 0;
};

/**
 * Streaming-service options of one task (see decoder/stream_decoder.h).
 *
 * When enabled, the task's shots are driven through the streaming
 * front-end as `streams` concurrent per-round syndrome arrivals
 * instead of offline batches: windows commit once their final round
 * lands and ready windows from all streams multiplex into shared
 * decode slabs (capacity = 64 x stop.stagingChunks windows).
 * Predictions — and therefore the LER — are bit-identical to offline
 * decoding, so every field here is a serving knob excluded from the
 * task content hash; what changes is the latency/occupancy telemetry
 * reported in TaskResult::stream. Streaming tasks currently run
 * in-process only (the spool coordinator rejects them).
 */
struct StreamSpec
{
    bool enabled = false;

    /** Concurrent logical-qubit streams. */
    size_t streams = 8;

    /** false = flush on full slab only; true = also flush when the
     *  oldest ready window has waited flushAfterUs. */
    bool deadlineFlush = false;

    /** Per-window ready->commit deadline in us for miss accounting.
     *  0 = auto: rounds x the task's (compiled or explicit) round
     *  latency — one window period. */
    double deadlineUs = 0.0;

    /** Deadline-policy flush timeout in us. 0 = deadline / 2. */
    double flushAfterUs = 0.0;
};

/** One experiment point of a campaign. */
struct TaskSpec
{
    /** Label in results ("" = auto "task<N>"). */
    std::string id;

    /**
     * Catalog code name ("bb72", "hgp225", ... or "surface<d>").
     * Ignored when `code` is set directly.
     */
    std::string codeName;

    /** Pre-resolved code (lets callers bypass the catalog). */
    std::shared_ptr<const CssCode> code;

    /** Pre-resolved schedule (default: x-then-z for the code). */
    std::shared_ptr<const SyndromeSchedule> schedule;

    /** Architecture compiled for the round latency. */
    Architecture architecture = Architecture::Cyclone;

    /**
     * When true the round latency is the compiled makespan of one
     * syndrome round under `architecture` (cached across tasks);
     * when false `roundLatencyUs` is used as-is.
     */
    bool compileLatency = true;

    /** Explicit round latency in us (compileLatency == false). */
    double roundLatencyUs = 0.0;

    /**
     * Multiplier applied to the (compiled or explicit) latency.
     * Fig. 5's speedup sweep uses 1/speedup here.
     */
    double latencyScale = 1.0;

    /**
     * Idle-noise mode. PerQubitSchedule derives one twirl per data
     * qubit from the compiled TimedSchedule IR (requires
     * compileLatency, unless `perQubitIdle` supplies the twirls
     * directly); UniformLatency applies one makespan-derived channel
     * to every data qubit.
     */
    IdleNoiseMode idleNoise = IdleNoiseMode::UniformLatency;

    /** Pre-resolved per-data-qubit twirls (bypasses the IR). */
    std::vector<PauliTwirl> perQubitIdle;

    /** Swap primitive used by the compiled architecture (Fig. 21). */
    SwapKind swap = SwapKind::GateSwap;

    /** Trap capacity of grid devices (Fig. 13 sweeps change this). */
    size_t gridCapacity = 5;

    /** Physical error rate p. */
    double physicalError = 1e-3;

    /** Syndrome rounds (0 = the code's nominal distance). */
    size_t rounds = 0;

    /** false = Z memory, true = X memory. */
    bool xBasis = false;

    /** Decoder configuration. */
    BpOptions bp;

    /** Shot allocation rule. */
    StoppingRule stop;

    /** Streaming decode service (off = offline batch decoding). */
    StreamSpec stream;

    /**
     * Per-task seed salt. The effective task seed mixes the campaign
     * seed, the task index, and this value, so identical specs run
     * identically and editing one task never reseeds its neighbours.
     */
    uint64_t seed = 0;
};

/** A batch of tasks executed on one pool with shared caches. */
struct CampaignSpec
{
    std::string name = "campaign";
    uint64_t seed = 0x5eed;

    /** Worker threads (0 = hardware concurrency). */
    size_t threads = 0;

    /**
     * Spool directory for distributed execution ("" = run in-process
     * on the local pool). When set, campaign_runner coordinates
     * through the spool instead of sampling locally; any shared
     * directory (local disk, NFS) works — the claim protocol is
     * rename-based and needs no sockets. See coordinator.h.
     */
    std::string spool;

    /**
     * Local worker processes the campaign_runner coordinator forks
     * alongside itself (0 = none; external workers attach with
     * `campaign_runner --worker --spool DIR`). Only meaningful with
     * `spool` set. Results are bit-identical at any worker count.
     */
    size_t workers = 0;

    /**
     * Shard lease in seconds for distributed runs: a claimed shard
     * whose worker stops heartbeating for this long is reclaimed and
     * re-published, so a killed worker's shards are re-executed
     * rather than lost.
     */
    double leaseSeconds = 30.0;

    /**
     * Poison-shard tolerance: a shard whose claim expires and is
     * reclaimed this many times is assumed to kill whoever runs it
     * (a poison shard). The coordinator quarantines it (spool
     * quarantine/) and finalizes its task with an error instead of
     * livelocking the fleet on it forever.
     */
    size_t maxClaimReclaims = 5;

    /**
     * Attempt budget for transient spool I/O failures (EIO, ENOSPC,
     * EAGAIN, ...): each filesystem operation is tried up to this
     * many times with jittered exponential backoff before the run
     * fails with a typed error naming the path and operation.
     */
    size_t retryAttempts = 4;

    /** Base delay of the retry backoff, milliseconds (doubles per
     *  attempt, +-25% deterministic jitter, capped at 50x). */
    double retryBaseMs = 5.0;

    /**
     * Deterministic fault-injection plan (see fault_plan.h for the
     * grammar), applied by distributed coordinators and workers when
     * the CYCLONE_FAULT_PLAN environment variable is not set. Test
     * and chaos-CI hook; leave empty in production specs.
     */
    std::string faultPlan;

    std::vector<TaskSpec> tasks;
};

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_CAMPAIGN_SPEC_H
