#include "campaign/adaptive_sampler.h"

#include <algorithm>
#include <utility>

#include "campaign/content_hash.h"
#include "common/logging.h"

namespace cyclone {

uint64_t
chunkSeed(uint64_t taskSeed, size_t index)
{
    HashStream h;
    h.absorb(taskSeed).absorb(uint64_t{index}).absorb(
        uint64_t{0xc4a2b9d1u});
    return h.digest();
}

ChunkOutcome
runChunk(const DetectorErrorModel& dem, const ChunkPlan& plan,
         BpOsdDecoder& decoder, ShotBatch& batch,
         std::vector<uint64_t>& predicted)
{
    Rng rng(plan.seed);
    sampleDemBatch(dem, plan.shots, rng, batch);
    decoder.decodeBatch(batch, predicted);
    ChunkOutcome outcome;
    outcome.shots = plan.shots;
    for (size_t s = 0; s < plan.shots; ++s) {
        if (predicted[s] != batch.observables[s])
            ++outcome.failures;
    }
    return outcome;
}

ChunkOutcome
runChunkGroup(const DetectorErrorModel& dem, const ChunkPlan* plans,
              size_t count, BpOsdDecoder& decoder,
              std::vector<ShotBatch>& batches)
{
    if (batches.size() < count)
        batches.resize(count);
    decoder.beginStaged();
    for (size_t k = 0; k < count; ++k) {
        Rng rng(plans[k].seed);
        sampleDemBatch(dem, plans[k].shots, rng, batches[k]);
        decoder.stageBatch(batches[k]);
    }
    decoder.flushStaged();

    ChunkOutcome outcome;
    const std::vector<uint64_t>& predicted = decoder.stagedPredictions();
    for (size_t k = 0; k < count; ++k) {
        const size_t base = decoder.stagedBatchOffset(k);
        outcome.shots += plans[k].shots;
        for (size_t s = 0; s < plans[k].shots; ++s) {
            if (predicted[base + s] != batches[k].observables[s])
                ++outcome.failures;
        }
    }
    return outcome;
}

ChunkOutcome
runChunkGroupStreamed(const DetectorErrorModel& dem,
                      const ChunkPlan* plans, size_t count,
                      StreamDecoder& stream,
                      std::vector<ShotBatch>& batches)
{
    if (batches.size() < count)
        batches.resize(count);
    size_t total = 0;
    std::vector<size_t> base(count);
    for (size_t k = 0; k < count; ++k) {
        base[k] = total;
        Rng rng(plans[k].seed);
        sampleDemBatch(dem, plans[k].shots, rng, batches[k]);
        total += plans[k].shots;
    }

    const size_t S = stream.streams();
    const size_t R = stream.roundsPerWindow();
    auto locate = [&](size_t flat) -> std::pair<size_t, size_t> {
        size_t k = count - 1;
        while (base[k] > flat)
            --k;
        return {k, flat - base[k]};
    };

    // Round-synchronous arrival: at absolute round tick t, stream s
    // is on round t % R of its window t / R (flat shot
    // (t / R) * S + s). Each stream's source syndrome is staged when
    // its window opens, then sliced round by round.
    std::vector<BitVec> sources(S);
    const size_t windowsPerStream = (total + S - 1) / S;
    for (size_t t = 0; t < windowsPerStream * R; ++t) {
        const size_t w = t / R;
        const size_t r = t % R;
        for (size_t s = 0; s < S; ++s) {
            const size_t flat = w * S + s;
            if (flat >= total)
                continue;
            if (r == 0) {
                const auto [k, shot] = locate(flat);
                sources[s] = batches[k].syndromeOf(shot);
            }
            stream.pushRound(s, sources[s]);
        }
        stream.poll();
    }
    stream.finish();

    ChunkOutcome outcome;
    outcome.shots = total;
    CYCLONE_ASSERT(stream.committed().size() == total,
                   "streamed group committed "
                       << stream.committed().size() << " of " << total
                       << " windows");
    for (const CommittedWindow& c : stream.committed()) {
        const size_t flat = c.windowIndex * S + c.stream;
        const auto [k, shot] = locate(flat);
        if (c.prediction != batches[k].observables[shot])
            ++outcome.failures;
    }
    stream.committed().clear();
    return outcome;
}

AdaptiveSampler::AdaptiveSampler(StoppingRule rule, uint64_t taskSeed)
    : rule_(rule), taskSeed_(taskSeed)
{
    if (rule_.chunkShots == 0)
        rule_.chunkShots = 256;
    if (rule_.chunksPerWave == 0)
        rule_.chunksPerWave = 1;
    if (rule_.maxShots == 0)
        done_ = true;
}

std::vector<ChunkPlan>
AdaptiveSampler::nextWave()
{
    std::vector<ChunkPlan> wave;
    if (done_)
        return wave;
    for (size_t i = 0;
         i < rule_.chunksPerWave && plannedShots_ < rule_.maxShots; ++i) {
        ChunkPlan plan;
        plan.index = nextChunk_++;
        plan.shots = std::min(rule_.chunkShots,
                              rule_.maxShots - plannedShots_);
        plan.seed = chunkSeed(taskSeed_, plan.index);
        plannedShots_ += plan.shots;
        wave.push_back(plan);
    }
    return wave;
}

void
AdaptiveSampler::absorb(const ChunkOutcome& outcome)
{
    shots_ += outcome.shots;
    failures_ += outcome.failures;
    if (shots_ == plannedShots_)
        evaluateStop();
}

void
AdaptiveSampler::evaluateStop()
{
    if (shots_ >= rule_.maxShots) {
        done_ = true;
        return;
    }
    if (rule_.targetRelErr > 0.0 && failures_ >= rule_.minFailures) {
        const double rate =
            static_cast<double>(failures_) / static_cast<double>(shots_);
        if (wilsonHalfWidth(failures_, shots_) <=
            rule_.targetRelErr * rate) {
            done_ = true;
            stoppedEarly_ = true;
        }
    }
}

RateEstimate
AdaptiveSampler::estimate() const
{
    return estimateRate(failures_, shots_);
}

} // namespace cyclone
