/**
 * @file
 * Filesystem spool: the shared-directory work queue of distributed
 * campaigns.
 *
 * A spool is one directory any number of processes can reach — local
 * disk for N workers on one box, NFS for a fleet — holding the whole
 * coordinator/worker protocol as files. No sockets, no daemon: every
 * operation is a POSIX file primitive, and the only one that must be
 * atomic is rename(2), which is atomic on every local filesystem and
 * on NFS within one directory.
 *
 * Layout:
 *
 *     spool/
 *       manifest.txt       campaign name, seed, spec hash, lease,
 *                          retry knobs
 *       spec.ini           verbatim campaign spec text
 *       cache/             shared artifact store (see ArtifactCache)
 *       open/<shard>       unclaimed shard descriptors
 *       claimed/<shard>    claimed descriptors; mtime = lease heartbeat
 *       done/<shard>       completed descriptors (tombstones)
 *       results/<shard>.rec  shard result records (tmp+rename publish)
 *       coord.lease        coordinator liveness lease (mtime heartbeat)
 *       journal.txt        coordinator merge journal (finalized tasks)
 *       reclaims/<shard>   per-shard reclaim counters (poison detection)
 *       quarantine/        corrupt records/descriptors, poison shards
 *       workers/<id>       worker health files (healthy/degraded/done)
 *       result.json        merged campaign result (written at the end)
 *       DONE               coordinator's end-of-campaign marker
 *
 * Claim protocol: a worker claims `open/X` by renaming it to
 * `claimed/X`. Exactly one renamer wins; losers get ENOENT and move
 * on. The worker touches `claimed/X` as a heartbeat while executing;
 * the coordinator renames any claim whose heartbeat went stale back
 * to `open/` (reclaim), so shards of a killed worker are re-executed
 * rather than lost. Records are deterministic functions of
 * (spec, shard), so the rare double execution after a reclaim race
 * produces identical bytes and is harmless — the coordinator absorbs
 * each shard id exactly once.
 *
 * Coordinator failover: the coordinator holds `coord.lease`
 * (created O_CREAT|O_EXCL, heartbeated by mtime) and journals every
 * finalized task into `journal.txt` after each merge. If it dies, any
 * process may steal the stale lease (a rename, so exactly one winner)
 * and resume: records are idempotent, publishing skips existing
 * shards, and journaled tasks restore without re-merging — the
 * takeover run produces bit-identical results.
 *
 * Self-healing: shard records, descriptors and the journal carry a
 * trailing CRC-32 line. A file that fails its checksum (torn write,
 * bit rot) is moved to `quarantine/` and its shard re-published
 * instead of poisoning the merge. A shard whose claim is reclaimed
 * `max_claim_reclaims` times (it keeps killing workers) is itself
 * quarantined and its task finalized with an error rather than
 * livelocking the fleet.
 *
 * Lease ages are *monotonic-safe*: ages are measured as elapsed
 * CLOCK_MONOTONIC time since this process last observed the file's
 * mtime change, never as a realtime-minus-mtime difference, so an NTP
 * wall-clock step can neither expire every live lease at once nor
 * keep a dead one alive.
 *
 * Shard ids are zero-padded ("t0003-s00017") so lexicographic
 * directory order equals (task, shard-index) order and the
 * coordinator's merge order is deterministic by construction.
 */

#ifndef CYCLONE_CAMPAIGN_SPOOL_H
#define CYCLONE_CAMPAIGN_SPOOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/retry_policy.h"
#include "decoder/bposd_decoder.h"

namespace cyclone {

/** A spool file whose contents failed validation (bad checksum or
 *  malformed text) — quarantine material, distinct from transient
 *  I/O failures. */
struct CorruptSpoolError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** One claimable unit of work: a contiguous chunk range of a task. */
struct ShardDescriptor
{
    /** Index of the task in the (re-parsed) campaign spec. */
    size_t task = 0;
    /** Ordinal of this shard within the task (merge order). */
    size_t shard = 0;
    /** First chunk index (chunkSeed index) of the range. */
    size_t firstChunk = 0;
    /** Number of chunks in the range. */
    size_t numChunks = 0;
    /** Shots per chunk (copied so workers need no spec lookup). */
    size_t chunkShots = 0;
    /** Task content hash: workers verify their re-resolved spec. */
    uint64_t contentHash = 0;
    /** Effective task seed (chunkSeed base). */
    uint64_t taskSeed = 0;
};

/** Result record of one executed shard. */
struct ShardRecord
{
    size_t task = 0;
    size_t shard = 0;
    uint64_t contentHash = 0;
    size_t shots = 0;
    size_t failures = 0;
    /** Worker seconds spent sampling+decoding this shard. */
    double seconds = 0.0;
    /** Decoder counters accumulated over the shard's chunks. */
    BpOsdStats decoder;
};

/** Identity block published at spool creation (manifest.txt). */
struct SpoolManifest
{
    std::string name;
    uint64_t seed = 0;
    /** Content hash of the verbatim spec text (spec.ini). */
    uint64_t specHash = 0;
    double leaseSeconds = 30.0;
    /** Transient-I/O retry knobs, shared with workers. */
    size_t retryAttempts = 4;
    double retryBaseMs = 5.0;
};

/** Stable shard id, e.g. "t0003-s00017". */
std::string shardId(size_t task, size_t shard);

/**
 * Append a trailing "crc xxxxxxxx" line (CRC-32 of everything before
 * it) to a text document. checkCrcLine() verifies and strips it.
 */
std::string withCrcLine(std::string text);

/**
 * Verify and strip the trailing crc line of `text`, returning the
 * payload. Throws CorruptSpoolError (tagged with `what`) if the line
 * is absent, malformed, or does not match the payload.
 */
std::string checkCrcLine(const std::string& text, const char* what);

/** Text round-trip of a shard descriptor (one record per file,
 *  CRC-protected). */
std::string formatShardDescriptor(const ShardDescriptor& d);
/** Throws CorruptSpoolError on a bad checksum, std::runtime_error on
 *  malformed fields. */
ShardDescriptor parseShardDescriptor(const std::string& text);

/**
 * Text round-trip of a shard record (CRC-protected). The decoder
 * line is field-counted like the checkpoint format: loaders accept
 * records with fewer decoder fields (zero-filling the rest) so old
 * records stay readable, and reject records with more, so a new
 * field is a deliberate format bump rather than silent truncation.
 */
std::string formatShardRecord(const ShardRecord& r);
/** Throws CorruptSpoolError on a bad checksum, std::runtime_error on
 *  malformed fields. */
ShardRecord parseShardRecord(const std::string& text);

/** Text round-trip of the spool manifest. */
std::string formatManifest(const SpoolManifest& m);
/** Throws std::runtime_error on malformed input. */
SpoolManifest parseManifest(const std::string& text);

/**
 * Handle to one spool directory. Construction only records the path;
 * initialize() (coordinator) or open() semantics are provided by the
 * member functions below. All filesystem operations are stateless
 * wrappers — any number of Spool objects in any number of processes
 * may point at one directory — but each handle additionally keeps a
 * local monotonic observation history for lease ages, so age queries
 * should go through one handle per process.
 */
class Spool
{
  public:
    explicit Spool(std::string dir);

    const std::string& dir() const { return dir_; }

    /** Replace the transient-I/O retry policy (default: 4 attempts,
     *  5 ms base delay). */
    void setRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }

    /** The active retry policy. */
    const RetryPolicy& retryPolicy() const { return retry_; }

    /** Transient I/O failures retried by this handle so far. */
    size_t transientRetries() const
    {
        return transientRetries_.load(std::memory_order_relaxed);
    }

    /**
     * Create the directory skeleton and publish manifest + spec text.
     * Idempotent for the same spec; throws std::runtime_error if the
     * spool already holds a *different* campaign (mismatched spec
     * hash), which guards against two coordinators sharing a path.
     */
    void initialize(const SpoolManifest& manifest,
                    const std::string& specText);

    /** True once manifest.txt exists (a coordinator initialized it). */
    bool initialized() const;

    /** Read manifest.txt; throws if absent or malformed. */
    SpoolManifest readManifest() const;

    /** Read the verbatim spec text; throws if absent. */
    std::string readSpecText() const;

    /** The shared artifact-store directory (spool/cache). */
    std::string cacheDir() const;

    /**
     * Publish a shard: write its descriptor to open/<id> via
     * tmp+rename. Skips (returns false) if the shard is already
     * open, claimed, done, or has a result record — which makes
     * republishing after a coordinator restart safe.
     */
    bool publishShard(const ShardDescriptor& d);

    /**
     * Try to claim the named shard (rename open/<id> -> claimed/<id>).
     * Returns the descriptor on success; false return means another
     * worker won, the shard vanished, or its descriptor was corrupt
     * (in which case it is quarantined, not executed).
     */
    bool claimShard(const std::string& id, ShardDescriptor& out);

    /** Ids currently in open/, in lexicographic (= merge) order. */
    std::vector<std::string> openShards() const;

    /** Ids currently in claimed/, in lexicographic order. */
    std::vector<std::string> claimedShards() const;

    /** Touch claimed/<id>'s mtime (worker heartbeat). */
    void heartbeat(const std::string& id) const;

    /**
     * Seconds since this handle last observed claimed/<id>'s
     * heartbeat advance, or a negative value if the claim no longer
     * exists. Monotonic-safe: the first observation of a claim (or of
     * a new heartbeat) reads as age 0 and ages by CLOCK_MONOTONIC
     * from there, so a wall-clock step cannot expire a live lease.
     */
    double claimAge(const std::string& id) const;

    /**
     * Return an expired claim to open/ (coordinator reclaim).
     * Returns false if the claim vanished first (the worker finished
     * or another reclaim won).
     */
    bool reclaimShard(const std::string& id);

    /**
     * Bump and return the persistent reclaim counter of a shard
     * (reclaims/<id>). Survives coordinator failover, so a poison
     * shard is detected even across takeovers.
     */
    size_t bumpReclaimCount(const std::string& id);

    /** Current reclaim count of a shard (0 if never reclaimed). */
    size_t reclaimCount(const std::string& id) const;

    /**
     * Move a shard's descriptor (claimed/ first, then open/) to
     * quarantine/. Returns false if neither exists.
     */
    bool quarantineShard(const std::string& id);

    /** Move results/<id>.rec to quarantine/<id>.rec. */
    bool quarantineRecord(const std::string& id);

    /** Move an arbitrary spool-relative file to quarantine/. */
    bool quarantineFile(const std::string& relative);

    /** Names currently in quarantine/, sorted. */
    std::vector<std::string> quarantined() const;

    /** Move done/<id> back to open/ (re-execute a shard whose record
     *  was quarantined). Returns false if done/<id> is absent. */
    bool reviveShard(const std::string& id);

    /** Move claimed/<id> to done/ without a record (retire a claim
     *  whose task already finished). */
    bool retireClaim(const std::string& id);

    /**
     * Publish a shard's result record and retire its claim:
     * write results/<id>.rec (tmp+rename), then move claimed/<id> to
     * done/<id>. Safe if the claim was reclaimed meanwhile — the
     * record is deterministic, so whichever worker publishes first
     * wins and the other's rename quietly loses.
     */
    void completeShard(const std::string& id, const ShardRecord& r);

    /** True if results/<id>.rec exists. */
    bool hasRecord(const std::string& id) const;

    /** Load results/<id>.rec; throws CorruptSpoolError if its
     *  checksum or format is bad, std::runtime_error if absent. */
    ShardRecord readRecord(const std::string& id) const;

    // ---- coordinator lease -------------------------------------

    /**
     * Try to create coord.lease with O_CREAT|O_EXCL (exactly one
     * winner across processes). Returns false if a lease exists.
     */
    bool acquireCoordinatorLease(const std::string& owner);

    /**
     * Steal a (presumed stale) lease: rename it to a unique dead
     * name — exactly one stealer wins the rename — then acquire a
     * fresh lease. Returns true only for the full winner.
     */
    bool stealCoordinatorLease(const std::string& owner);

    /** Touch coord.lease's mtime (coordinator heartbeat). */
    void heartbeatCoordinator() const;

    /** Monotonic-safe age of the coordinator lease, or negative if
     *  no lease exists. Same semantics as claimAge(). */
    double coordinatorLeaseAge() const;

    /** True if coord.lease exists. */
    bool hasCoordinatorLease() const;

    /** Remove coord.lease if this `owner` holds it. */
    void releaseCoordinatorLease(const std::string& owner);

    // ---- journal / generic files -------------------------------

    /** Atomically replace journal.txt (pre-formatted text). */
    void writeJournal(const std::string& text);

    /** Read journal.txt into `out`; false if absent. */
    bool readJournal(std::string& out) const;

    /**
     * Retry-wrapped atomic write of a spool-relative file
     * (stats, worker health, result.json). `point` names the fault
     * point for injection; may be null.
     */
    void writeFile(const std::string& relative, const std::string& text,
                   const char* point = nullptr);

    /** Retry-wrapped whole read of a spool-relative file. */
    std::string readFile(const std::string& relative) const;

    /** True if a spool-relative file exists. */
    bool exists(const std::string& relative) const;

    /** Sorted non-hidden names in a spool subdirectory. */
    std::vector<std::string> list(const std::string& subdir) const;

    /**
     * Monotonic-safe age of workers/`name` (a worker's health
     * heartbeat file), or negative if it is missing. Same observation
     * semantics as claimAge(): the age counts CLOCK_MONOTONIC seconds
     * since this handle last saw the file's mtime change, so an NTP
     * step between heartbeats never misclassifies a live worker as
     * degraded or lost. Call it each coordinator pass so the history
     * accumulates; a first observation reads as age 0 (healthy).
     */
    double workerHealthAge(const std::string& name) const;

    /** Write the DONE marker (coordinator, end of campaign). */
    void markDone();

    /** True once the DONE marker exists. */
    bool done() const;

  private:
    /**
     * Age of `path` since this handle last saw its mtime change,
     * measured on CLOCK_MONOTONIC. First observation = 0; missing
     * file = -1 (and the observation entry is dropped).
     */
    double monotonicAge(const std::string& path) const;

    template <typename Fn>
    auto withRetry(const char* op, const std::string& path,
                   Fn&& fn) const -> decltype(fn())
    {
        return runWithRetry(
            retry_, op, path, std::forward<Fn>(fn),
            [this](size_t) {
                transientRetries_.fetch_add(
                    1, std::memory_order_relaxed);
            });
    }

    std::string dir_;
    RetryPolicy retry_;
    mutable std::atomic<size_t> transientRetries_{0};

    struct AgeObservation
    {
        long long mtimeNs = 0;
        double monoSeconds = 0.0;
    };
    mutable std::mutex agesMutex_;
    mutable std::unordered_map<std::string, AgeObservation> ages_;
};

/**
 * Write `text` to `path` atomically: tmp file (suffixed with the pid
 * so concurrent writers never collide) + rename. `point` names the
 * fault-injection site guarding the commit (see fault_plan.h); null
 * disables per-site injection (the generic "spool.io.write" transient
 * point still applies). Throws TransientIoError on retryable errno
 * values, std::runtime_error otherwise.
 */
void spoolWriteAtomic(const std::string& path, const std::string& text,
                      const char* point = nullptr);

/** Read a whole file; throws TransientIoError on retryable errno
 *  values, std::runtime_error otherwise. `point` as above (generic
 *  point: "spool.io.read"). */
std::string spoolReadFile(const std::string& path,
                          const char* point = nullptr);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_SPOOL_H
