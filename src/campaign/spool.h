/**
 * @file
 * Filesystem spool: the shared-directory work queue of distributed
 * campaigns.
 *
 * A spool is one directory any number of processes can reach — local
 * disk for N workers on one box, NFS for a fleet — holding the whole
 * coordinator/worker protocol as files. No sockets, no daemon: every
 * operation is a POSIX file primitive, and the only one that must be
 * atomic is rename(2), which is atomic on every local filesystem and
 * on NFS within one directory.
 *
 * Layout:
 *
 *     spool/
 *       manifest.txt       campaign name, seed, spec hash, lease
 *       spec.ini           verbatim campaign spec text
 *       cache/             shared artifact store (see ArtifactCache)
 *       open/<shard>       unclaimed shard descriptors
 *       claimed/<shard>    claimed descriptors; mtime = lease heartbeat
 *       done/<shard>       completed descriptors (tombstones)
 *       results/<shard>.rec  shard result records (tmp+rename publish)
 *       DONE               coordinator's end-of-campaign marker
 *
 * Claim protocol: a worker claims `open/X` by renaming it to
 * `claimed/X`. Exactly one renamer wins; losers get ENOENT and move
 * on. The worker touches `claimed/X` as a heartbeat while executing;
 * the coordinator renames any claim whose mtime is older than the
 * lease back to `open/` (reclaim), so shards of a killed worker are
 * re-executed rather than lost. Records are deterministic functions
 * of (spec, shard), so the rare double execution after a reclaim race
 * produces identical bytes and is harmless — the coordinator absorbs
 * each shard id exactly once.
 *
 * Shard ids are zero-padded ("t0003-s00017") so lexicographic
 * directory order equals (task, shard-index) order and the
 * coordinator's merge order is deterministic by construction.
 */

#ifndef CYCLONE_CAMPAIGN_SPOOL_H
#define CYCLONE_CAMPAIGN_SPOOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "decoder/bposd_decoder.h"

namespace cyclone {

/** One claimable unit of work: a contiguous chunk range of a task. */
struct ShardDescriptor
{
    /** Index of the task in the (re-parsed) campaign spec. */
    size_t task = 0;
    /** Ordinal of this shard within the task (merge order). */
    size_t shard = 0;
    /** First chunk index (chunkSeed index) of the range. */
    size_t firstChunk = 0;
    /** Number of chunks in the range. */
    size_t numChunks = 0;
    /** Shots per chunk (copied so workers need no spec lookup). */
    size_t chunkShots = 0;
    /** Task content hash: workers verify their re-resolved spec. */
    uint64_t contentHash = 0;
    /** Effective task seed (chunkSeed base). */
    uint64_t taskSeed = 0;
};

/** Result record of one executed shard. */
struct ShardRecord
{
    size_t task = 0;
    size_t shard = 0;
    uint64_t contentHash = 0;
    size_t shots = 0;
    size_t failures = 0;
    /** Worker seconds spent sampling+decoding this shard. */
    double seconds = 0.0;
    /** Decoder counters accumulated over the shard's chunks. */
    BpOsdStats decoder;
};

/** Identity block published at spool creation (manifest.txt). */
struct SpoolManifest
{
    std::string name;
    uint64_t seed = 0;
    /** Content hash of the verbatim spec text (spec.ini). */
    uint64_t specHash = 0;
    double leaseSeconds = 30.0;
};

/** Stable shard id, e.g. "t0003-s00017". */
std::string shardId(size_t task, size_t shard);

/** Text round-trip of a shard descriptor (one record per file). */
std::string formatShardDescriptor(const ShardDescriptor& d);
/** Throws std::runtime_error on malformed input. */
ShardDescriptor parseShardDescriptor(const std::string& text);

/**
 * Text round-trip of a shard record. The decoder line is
 * field-counted like the checkpoint format: loaders accept records
 * with fewer decoder fields (zero-filling the rest) so old records
 * stay readable, and reject records with more, so a new field is a
 * deliberate format bump rather than silent truncation.
 */
std::string formatShardRecord(const ShardRecord& r);
/** Throws std::runtime_error on malformed input. */
ShardRecord parseShardRecord(const std::string& text);

/** Text round-trip of the spool manifest. */
std::string formatManifest(const SpoolManifest& m);
/** Throws std::runtime_error on malformed input. */
SpoolManifest parseManifest(const std::string& text);

/**
 * Handle to one spool directory. Construction only records the path;
 * initialize() (coordinator) or open() semantics are provided by the
 * member functions below. All operations are stateless wrappers over
 * the filesystem, so any number of Spool objects in any number of
 * processes may point at one directory.
 */
class Spool
{
  public:
    explicit Spool(std::string dir);

    const std::string& dir() const { return dir_; }

    /**
     * Create the directory skeleton and publish manifest + spec text.
     * Idempotent for the same spec; throws std::runtime_error if the
     * spool already holds a *different* campaign (mismatched spec
     * hash), which guards against two coordinators sharing a path.
     */
    void initialize(const SpoolManifest& manifest,
                    const std::string& specText);

    /** True once manifest.txt exists (a coordinator initialized it). */
    bool initialized() const;

    /** Read manifest.txt; throws if absent or malformed. */
    SpoolManifest readManifest() const;

    /** Read the verbatim spec text; throws if absent. */
    std::string readSpecText() const;

    /** The shared artifact-store directory (spool/cache). */
    std::string cacheDir() const;

    /**
     * Publish a shard: write its descriptor to open/<id> via
     * tmp+rename. Skips (returns false) if the shard is already
     * open, claimed, done, or has a result record — which makes
     * republishing after a coordinator restart safe.
     */
    bool publishShard(const ShardDescriptor& d);

    /**
     * Try to claim the named shard (rename open/<id> -> claimed/<id>).
     * Returns the descriptor on success; false return means another
     * worker won or the shard vanished.
     */
    bool claimShard(const std::string& id, ShardDescriptor& out);

    /** Ids currently in open/, in lexicographic (= merge) order. */
    std::vector<std::string> openShards() const;

    /** Ids currently in claimed/, in lexicographic order. */
    std::vector<std::string> claimedShards() const;

    /** Touch claimed/<id>'s mtime (worker heartbeat). */
    void heartbeat(const std::string& id) const;

    /**
     * Age in seconds of claimed/<id>'s last heartbeat, or a negative
     * value if the claim no longer exists.
     */
    double claimAge(const std::string& id) const;

    /**
     * Return an expired claim to open/ (coordinator reclaim).
     * Returns false if the claim vanished first (the worker finished
     * or another reclaim won).
     */
    bool reclaimShard(const std::string& id);

    /**
     * Publish a shard's result record and retire its claim:
     * write results/<id>.rec (tmp+rename), then move claimed/<id> to
     * done/<id>. Safe if the claim was reclaimed meanwhile — the
     * record is deterministic, so whichever worker publishes first
     * wins and the other's rename quietly loses.
     */
    void completeShard(const std::string& id, const ShardRecord& r);

    /** True if results/<id>.rec exists. */
    bool hasRecord(const std::string& id) const;

    /** Load results/<id>.rec; throws if absent or malformed. */
    ShardRecord readRecord(const std::string& id) const;

    /** Write the DONE marker (coordinator, end of campaign). */
    void markDone();

    /** True once the DONE marker exists. */
    bool done() const;

  private:
    std::string dir_;
};

/**
 * Write `text` to `path` atomically: tmp file (suffixed with the pid
 * so concurrent writers never collide) + rename. Throws
 * std::runtime_error on I/O failure.
 */
void spoolWriteAtomic(const std::string& path, const std::string& text);

/** Read a whole file; throws std::runtime_error if unreadable. */
std::string spoolReadFile(const std::string& path);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_SPOOL_H
