/**
 * @file
 * Chunked, deterministic, adaptive shot allocation for one task.
 *
 * Sampling is decomposed into fixed-size chunks whose RNG streams are
 * derived from (task seed, chunk index) alone. Chunks are scheduled in
 * waves; the stopping rule is evaluated only once a whole wave has
 * been absorbed. Because neither the chunk boundaries nor the RNG
 * streams nor the decision points depend on thread count or completion
 * order, the estimate for a given seed is bit-identical whether the
 * wave runs on one worker or sixteen.
 */

#ifndef CYCLONE_CAMPAIGN_ADAPTIVE_SAMPLER_H
#define CYCLONE_CAMPAIGN_ADAPTIVE_SAMPLER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "campaign/campaign_spec.h"
#include "common/rng.h"
#include "common/stats.h"
#include "decoder/bposd_decoder.h"
#include "decoder/stream_decoder.h"
#include "dem/dem.h"
#include "dem/dem_sampler.h"

namespace cyclone {

/** One chunk of shots to execute. */
struct ChunkPlan
{
    size_t index = 0;  ///< Global chunk index within the task.
    size_t shots = 0;  ///< Shots in this chunk (last chunk may be short).
    uint64_t seed = 0; ///< Seed of the chunk's private RNG stream.
};

/** Counts produced by executing one chunk. */
struct ChunkOutcome
{
    size_t shots = 0;
    size_t failures = 0;
};

/**
 * Sample and decode one chunk through the packed batch pipeline.
 *
 * The chunk's RNG stream is consumed by sampleDemBatch in the same
 * order the scalar sampler would, and decodeBatch predicts exactly
 * what per-shot decoding would, so chunk counts are a deterministic
 * function of the chunk seed alone. `batch` and `predicted` are
 * reusable per-worker buffers; `decoder` carries per-worker BP/OSD
 * state and accumulates its own statistics across chunks.
 */
ChunkOutcome runChunk(const DetectorErrorModel& dem, const ChunkPlan& plan,
                      BpOsdDecoder& decoder, ShotBatch& batch,
                      std::vector<uint64_t>& predicted);

/**
 * Sample `count` chunks and decode them as one staged group: every
 * chunk is sampled from its own RNG stream exactly as runChunk would,
 * but their syndromes pool through the decoder's staged interface
 * (beginStaged / stageBatch / flushStaged) so the wave kernel sees
 * full lane groups and the batched OSD full slabs even when single
 * chunks are small. Predictions — and therefore the summed counts —
 * are bit-identical to running the chunks one by one; only decoder
 * grouping statistics (memoHits, waveGroups, occupancy) reflect the
 * pooling. Callers must pass plans in ascending chunk-index order for
 * those statistics to be schedule-independent. `batches` is a
 * reusable per-worker buffer pool, grown to `count` entries.
 */
ChunkOutcome runChunkGroup(const DetectorErrorModel& dem,
                           const ChunkPlan* plans, size_t count,
                           BpOsdDecoder& decoder,
                           std::vector<ShotBatch>& batches);

/**
 * Streaming-mode equivalent of runChunkGroup: sample the same chunks
 * from the same RNG streams, then drive the shots through `stream` as
 * concurrent per-round arrivals instead of offline batches. Shot
 * `i` (flat across the group, in plan order) becomes window `i / S`
 * of stream `i % S`; all streams advance round-synchronously, so the
 * slab multiplexes ready windows from every stream in a fixed,
 * thread-count-independent order. Because a distinct syndrome's
 * decode is a pure function of that syndrome, the predictions — and
 * therefore the returned counts — are bit-identical to runChunkGroup
 * and runChunk; only grouping statistics and the streaming latency
 * stats differ. `stream` must wrap a decoder built on `dem`; its
 * committed() buffer is consumed and cleared.
 */
ChunkOutcome runChunkGroupStreamed(const DetectorErrorModel& dem,
                                   const ChunkPlan* plans, size_t count,
                                   StreamDecoder& stream,
                                   std::vector<ShotBatch>& batches);

/** Per-task accumulator and stopping-rule evaluator. */
class AdaptiveSampler
{
  public:
    AdaptiveSampler(StoppingRule rule, uint64_t taskSeed);

    /**
     * Plan the next wave of chunks, or an empty vector when the task
     * is finished. Must only be called when no planned chunk is
     * outstanding (the engine calls it at wave boundaries).
     */
    std::vector<ChunkPlan> nextWave();

    /** Fold one executed chunk's counts in (order-independent). */
    void absorb(const ChunkOutcome& outcome);

    /** Whether the stopping rule has fired. */
    bool done() const { return done_; }

    /** True when the relative-error target fired before the cap. */
    bool stoppedEarly() const { return stoppedEarly_; }

    size_t shots() const { return shots_; }
    size_t failures() const { return failures_; }
    size_t chunksPlanned() const { return nextChunk_; }

    /** Current estimate with Wilson half-width. */
    RateEstimate estimate() const;

  private:
    void evaluateStop();

    StoppingRule rule_;
    uint64_t taskSeed_ = 0;
    size_t nextChunk_ = 0;
    size_t plannedShots_ = 0;
    size_t shots_ = 0;
    size_t failures_ = 0;
    bool done_ = false;
    bool stoppedEarly_ = false;
};

/** Derive the RNG seed of chunk `index` of a task. */
uint64_t chunkSeed(uint64_t taskSeed, size_t index);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_ADAPTIVE_SAMPLER_H
