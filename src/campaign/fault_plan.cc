#include "campaign/fault_plan.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include <unistd.h>

#include "campaign/content_hash.h"

namespace cyclone {

namespace {

struct GlobalPlan
{
    std::mutex mutex;
    FaultPlan plan;
    std::unordered_map<std::string, size_t> hits;
    bool loadedEnv = false;
};

GlobalPlan&
globalPlan()
{
    static GlobalPlan g;
    return g;
}

/** Fast-path flag: false until a non-empty plan is installed. */
std::atomic<bool> gArmed{false};
std::atomic<bool> gEnvChecked{false};

FaultAction
parseAction(const std::string& name)
{
    if (name == "crash_before" || name == "crash")
        return FaultAction::CrashBefore;
    if (name == "crash_after")
        return FaultAction::CrashAfter;
    if (name == "torn")
        return FaultAction::Torn;
    if (name == "transient")
        return FaultAction::Transient;
    if (name == "freeze")
        return FaultAction::Freeze;
    throw std::runtime_error("fault plan: unknown action '" + name +
                             "'");
}

size_t
parseCount(const std::string& text, const char* what)
{
    try {
        const unsigned long long v = std::stoull(text);
        if (v == 0)
            throw std::runtime_error("zero");
        return static_cast<size_t>(v);
    } catch (...) {
        throw std::runtime_error(std::string("fault plan: bad ") +
                                 what + " '" + text + "'");
    }
}

void
loadEnvPlanLocked(GlobalPlan& g)
{
    if (g.loadedEnv)
        return;
    g.loadedEnv = true;
    const char* env = std::getenv("CYCLONE_FAULT_PLAN");
    if (env != nullptr && env[0] != '\0') {
        g.plan = FaultPlan::parse(env);
        g.hits.clear();
        gArmed.store(!g.plan.empty(), std::memory_order_release);
    }
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string& text)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t end = text.find(';', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding whitespace.
        while (!item.empty() && std::isspace(
                                    static_cast<unsigned char>(
                                        item.front())))
            item.erase(item.begin());
        while (!item.empty() && std::isspace(
                                    static_cast<unsigned char>(
                                        item.back())))
            item.pop_back();
        if (item.empty())
            continue;
        if (item.rfind("seed=", 0) == 0) {
            plan.seed = parseCount(item.substr(5), "seed");
            continue;
        }
        const size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0)
            throw std::runtime_error(
                "fault plan: expected point:action, got '" + item +
                "'");
        FaultRule rule;
        rule.point = item.substr(0, colon);
        std::string action = item.substr(colon + 1);
        // Optional *COUNT and @HIT suffixes, in either order.
        for (int i = 0; i < 2; ++i) {
            const size_t star = action.find_last_of('*');
            const size_t at = action.find_last_of('@');
            if (star != std::string::npos &&
                (at == std::string::npos || star > at)) {
                rule.count =
                    parseCount(action.substr(star + 1), "count");
                action.erase(star);
            } else if (at != std::string::npos) {
                rule.firstHit =
                    parseCount(action.substr(at + 1), "hit");
                action.erase(at);
            }
        }
        rule.action = parseAction(action);
        if (rule.action == FaultAction::Freeze && rule.count == 1)
            rule.count = static_cast<size_t>(-1); // freeze: forever
        plan.rules.push_back(std::move(rule));
    }
    return plan;
}

void
installFaultPlan(FaultPlan plan)
{
    GlobalPlan& g = globalPlan();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.loadedEnv = true; // an explicit install overrides the env
    g.plan = std::move(plan);
    g.hits.clear();
    gArmed.store(!g.plan.empty(), std::memory_order_release);
}

FaultDecision
faultPoint(const char* point)
{
    if (!gEnvChecked.load(std::memory_order_acquire)) {
        GlobalPlan& g = globalPlan();
        std::lock_guard<std::mutex> lock(g.mutex);
        loadEnvPlanLocked(g);
        gEnvChecked.store(true, std::memory_order_release);
    }
    FaultDecision d;
    if (!gArmed.load(std::memory_order_acquire))
        return d;
    GlobalPlan& g = globalPlan();
    std::lock_guard<std::mutex> lock(g.mutex);
    const size_t hit = ++g.hits[point];
    for (const FaultRule& rule : g.plan.rules) {
        if (rule.point != point)
            continue;
        if (hit < rule.firstHit ||
            hit - rule.firstHit >= rule.count)
            continue;
        switch (rule.action) {
        case FaultAction::CrashBefore: d.crashBefore = true; break;
        case FaultAction::CrashAfter: d.crashAfter = true; break;
        case FaultAction::Torn: d.torn = true; break;
        case FaultAction::Transient: d.transient = true; break;
        case FaultAction::Freeze: d.freeze = true; break;
        }
    }
    return d;
}

void
faultCrash(const char* point)
{
    (void)point;
    ::_exit(kFaultCrashExitCode);
}

void
faultMilestone(const char* point)
{
    const FaultDecision d = faultPoint(point);
    if (d.crashBefore || d.crashAfter)
        faultCrash(point);
}

size_t
faultTornLength(const char* point, size_t size)
{
    if (size == 0)
        return 0;
    uint64_t seed;
    {
        GlobalPlan& g = globalPlan();
        std::lock_guard<std::mutex> lock(g.mutex);
        seed = g.plan.seed;
    }
    const uint64_t h =
        HashStream().absorb(seed).absorb(std::string(point)).digest();
    return static_cast<size_t>(h % size);
}

} // namespace cyclone
