#include "campaign/thread_pool.h"

#include <algorithm>

namespace cyclone {

namespace {
thread_local int tls_worker_index = -1;
} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    size_t n = threads > 0
        ? threads
        : std::max<size_t>(1, std::thread::hardware_concurrency());
    queues_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_)
        w.join();
}

int
ThreadPool::workerIndex()
{
    return tls_worker_index;
}

void
ThreadPool::submit(std::function<void()> job)
{
    // Submit to our own deque when called from a worker, otherwise
    // round-robin across workers so external batches spread out.
    const int self = tls_worker_index;
    const size_t target = self >= 0
        ? static_cast<size_t>(self)
        : nextQueue_.fetch_add(1, std::memory_order_relaxed) %
              queues_.size();
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->jobs.push_back(std::move(job));
    }
    // Touch the sleep mutex so a worker between its empty re-check and
    // its wait cannot miss this notification.
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_one();
}

bool
ThreadPool::tryPop(size_t self, std::function<void()>& job)
{
    // Own queue first, newest job (LIFO).
    {
        WorkerQueue& q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            job = std::move(q.jobs.back());
            q.jobs.pop_back();
            return true;
        }
    }
    // Steal the oldest job (FIFO) from the first non-empty victim.
    for (size_t k = 1; k < queues_.size(); ++k) {
        WorkerQueue& q = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.jobs.empty()) {
            job = std::move(q.jobs.front());
            q.jobs.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    tls_worker_index = static_cast<int>(self);
    std::function<void()> job;
    for (;;) {
        if (tryPop(self, job)) {
            job();
            job = nullptr;
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(sleepMutex_);
                idle_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stop_)
            return;
        // Re-check under the lock: a submit may have raced the scan.
        bool any = false;
        for (auto& q : queues_) {
            std::lock_guard<std::mutex> ql(q->mutex);
            if (!q->jobs.empty()) {
                any = true;
                break;
            }
        }
        if (!any)
            wake_.wait(lock);
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(sleepMutex_);
    idle_.wait(lock, [&] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

} // namespace cyclone
