#include "campaign/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "campaign/adaptive_sampler.h"
#include "campaign/campaign_io.h"
#include "campaign/content_hash.h"
#include "campaign/fault_plan.h"
#include "campaign/thread_pool.h"
#include "common/stats.h"

namespace cyclone {

namespace {

constexpr const char* kWorkerStatsMagic = "cyclone-worker-stats v1";
constexpr const char* kJournalMagic = "cyclone-coord-journal v1";
constexpr const char* kHealthMagic = "cyclone-worker-health v1";

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

void
addDecoderStats(BpOsdStats& into, const BpOsdStats& s)
{
    into.decodes += s.decodes;
    into.bpConverged += s.bpConverged;
    into.osdInvocations += s.osdInvocations;
    into.osdFailures += s.osdFailures;
    into.trivialShots += s.trivialShots;
    into.memoHits += s.memoHits;
    into.bpIterations += s.bpIterations;
    into.waveGroups += s.waveGroups;
    into.waveLaneSlots += s.waveLaneSlots;
    into.waveLanesFilled += s.waveLanesFilled;
    into.osdBatchGroups += s.osdBatchGroups;
    into.osdSharedPivots += s.osdSharedPivots;
    into.stagedChunks += s.stagedChunks;
    if (into.backend.empty())
        into.backend = s.backend;
}

/** Install the spec's fault plan unless the environment already
 *  provided one (the env var wins so CI can inject without editing
 *  spec files). */
void
maybeInstallSpecFaultPlan(const CampaignSpec& spec)
{
    if (!spec.faultPlan.empty() &&
        std::getenv("CYCLONE_FAULT_PLAN") == nullptr)
        installFaultPlan(FaultPlan::parse(spec.faultPlan));
}

/** Build a retry policy from spec/manifest knobs. */
RetryPolicy
retryPolicyFrom(size_t attempts, double baseMs)
{
    RetryPolicy p;
    p.maxAttempts = std::max<size_t>(1, attempts);
    p.baseDelaySeconds = std::max(0.0, baseMs) / 1000.0;
    return p;
}

/** Coordinator-side view of one task in flight. */
struct CoordTask
{
    ResolvedTask rt;
    std::optional<AdaptiveSampler> sampler;
    /** Shard ids of the current wave still awaiting records. */
    std::vector<std::string> outstanding;
    /** Descriptors of published-but-unmerged shards, kept so a shard
     *  whose record was quarantined can be republished even if every
     *  on-disk copy of its descriptor is gone. */
    std::unordered_map<std::string, ShardDescriptor> inflight;
    size_t nextShard = 0;
    bool finished = false;
    double sampleSeconds = 0.0;
};

/** Per-pool-thread decode contexts, rebuilt per shard so every
 *  record's decoder counters cover exactly that shard's groups. */
struct ShardCtx
{
    BpOsdDecoder decoder;
    std::vector<ShotBatch> batches;
    ShardCtx(const DetectorErrorModel& dem, const BpOptions& bp)
        : decoder(dem, bp)
    {}
};

/**
 * Execute one claimed shard on `pool` and publish its record —
 * the one shard-execution path, shared by worker loops and
 * self-executing coordinators so both produce byte-identical
 * records. Heartbeats the claim (and `extraHeartbeat`, e.g. the
 * coordinator lease) while the pool decodes.
 */
ShardRecord
executeShardChunks(Spool& spool, const std::string& id,
                   const ShardDescriptor& d, const ResolvedTask& rt,
                   ThreadPool& pool, double leaseSeconds,
                   const std::function<void()>& extraHeartbeat)
{
    const StoppingRule& rule = rt.spec->stop;
    const size_t staging = std::max<size_t>(1, rule.stagingChunks);

    // Rebuild the shard's exact ChunkPlans from its chunk range:
    // same shots formula and seed derivation the coordinator's
    // sampler used when it planned the wave.
    std::vector<ChunkPlan> plans(d.numChunks);
    for (size_t k = 0; k < d.numChunks; ++k) {
        plans[k].index = d.firstChunk + k;
        plans[k].shots = chunkShotsAt(rule, plans[k].index);
        plans[k].seed = chunkSeed(d.taskSeed, plans[k].index);
    }

    std::vector<std::unique_ptr<ShardCtx>> ctxs(pool.size());
    std::mutex mutex;
    ChunkOutcome total;
    double seconds = 0.0;
    std::exception_ptr error;
    std::atomic<size_t> pending{0};

    for (size_t g = 0; g < plans.size(); g += staging) {
        const size_t count = std::min(staging, plans.size() - g);
        pending.fetch_add(1);
        pool.submit([&, g, count] {
            const auto c0 = std::chrono::steady_clock::now();
            try {
                const int w = ThreadPool::workerIndex();
                auto& ctx = ctxs[w >= 0 ? static_cast<size_t>(w) : 0];
                if (!ctx)
                    ctx = std::make_unique<ShardCtx>(*rt.dem,
                                                     rt.spec->bp);
                const ChunkOutcome out = runChunkGroup(
                    *rt.dem, plans.data() + g, count, ctx->decoder,
                    ctx->batches);
                std::lock_guard<std::mutex> lock(mutex);
                total.shots += out.shots;
                total.failures += out.failures;
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error)
                    error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex);
            seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - c0)
                           .count();
            pending.fetch_sub(1);
        });
    }

    // Heartbeat the claim while the pool decodes, so a healthy
    // worker's lease never expires mid-shard.
    while (pending.load() > 0) {
        spool.heartbeat(id);
        if (extraHeartbeat)
            extraHeartbeat();
        sleepSeconds(std::min(0.05, leaseSeconds / 8.0));
    }
    if (error)
        std::rethrow_exception(error);

    ShardRecord rec;
    rec.task = d.task;
    rec.shard = d.shard;
    rec.contentHash = d.contentHash;
    rec.shots = total.shots;
    rec.failures = total.failures;
    rec.seconds = seconds;
    for (const auto& ctx : ctxs)
        if (ctx)
            addDecoderStats(rec.decoder, ctx->decoder.stats());
    spool.completeShard(id, rec);
    return rec;
}

/** Task index encoded in a shard id ("t0007-s00012" -> 7), or
 *  SIZE_MAX if the id is not of that shape. */
size_t
taskIndexOfShardId(const std::string& id)
{
    unsigned long task = 0;
    if (std::sscanf(id.c_str(), "t%lu-", &task) != 1)
        return static_cast<size_t>(-1);
    return static_cast<size_t>(task);
}

} // namespace

size_t
effectiveShardChunks(const StoppingRule& rule)
{
    const size_t staging = std::max<size_t>(1, rule.stagingChunks);
    size_t chunks = rule.shardChunks;
    if (chunks == 0) {
        // Auto: about four claimable shards per wave, so a handful of
        // workers can share even a single-task campaign's wave.
        const size_t wave = std::max<size_t>(1, rule.chunksPerWave);
        chunks = (wave + 3) / 4;
    }
    // Round up to a staging-group multiple: worker-side groups then
    // coincide exactly with a single-process run's wave partition.
    return ((chunks + staging - 1) / staging) * staging;
}

size_t
chunkShotsAt(const StoppingRule& rule, size_t index)
{
    const size_t chunkShots =
        rule.chunkShots > 0 ? rule.chunkShots : 256;
    const size_t planned = index * chunkShots;
    if (planned >= rule.maxShots)
        return 0;
    return std::min(chunkShots, rule.maxShots - planned);
}

std::string
formatCoordJournal(const std::vector<JournalEntry>& entries)
{
    std::ostringstream out;
    out << kJournalMagic << "\n";
    char buf[64];
    for (const JournalEntry& e : entries) {
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(e.contentHash));
        out << "task " << e.task << " " << buf << " " << e.shots
            << " " << e.failures << " " << e.chunks << " "
            << (e.stoppedEarly ? 1 : 0) << " ";
        std::snprintf(buf, sizeof buf, "%.17g", e.sampleSeconds);
        out << buf << "\n";
        const BpOsdStats& s = e.decoder;
        out << "decoder " << s.decodes << " " << s.bpConverged << " "
            << s.osdInvocations << " " << s.osdFailures << " "
            << s.trivialShots << " " << s.memoHits << " "
            << s.bpIterations << " " << s.waveGroups << " "
            << s.waveLaneSlots << " " << s.waveLanesFilled << " "
            << s.osdBatchGroups << " " << s.osdSharedPivots << " "
            << s.stagedChunks << "\n";
        if (!s.backend.empty())
            out << "backend " << s.backend << "\n";
        out << "end\n";
    }
    return withCrcLine(out.str());
}

std::vector<JournalEntry>
parseCoordJournal(const std::string& text)
{
    const std::string payload =
        checkCrcLine(text, "coordinator journal");
    std::istringstream in(payload);
    std::string line;
    if (!std::getline(in, line) || line != kJournalMagic)
        throw std::runtime_error(
            "not a coordinator journal (bad magic line)");
    std::vector<JournalEntry> entries;
    std::optional<JournalEntry> current;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        if (key == "task") {
            std::string hash;
            unsigned long long task = 0, shots = 0, failures = 0,
                               chunks = 0;
            int early = 0;
            double seconds = 0.0;
            if (!(ls >> task >> hash >> shots >> failures >> chunks >>
                  early >> seconds))
                throw std::runtime_error(
                    "coordinator journal: malformed task line");
            current.emplace();
            current->task = static_cast<size_t>(task);
            current->contentHash =
                std::stoull(hash, nullptr, 16);
            current->shots = static_cast<size_t>(shots);
            current->failures = static_cast<size_t>(failures);
            current->chunks = static_cast<size_t>(chunks);
            current->stoppedEarly = early != 0;
            current->sampleSeconds = seconds;
        } else if (key == "decoder" && current) {
            uint64_t v[13] = {};
            for (auto& x : v)
                if (!(ls >> x))
                    throw std::runtime_error(
                        "coordinator journal: malformed decoder "
                        "line");
            BpOsdStats& s = current->decoder;
            s.decodes = v[0];
            s.bpConverged = v[1];
            s.osdInvocations = v[2];
            s.osdFailures = v[3];
            s.trivialShots = v[4];
            s.memoHits = v[5];
            s.bpIterations = v[6];
            s.waveGroups = v[7];
            s.waveLaneSlots = v[8];
            s.waveLanesFilled = v[9];
            s.osdBatchGroups = v[10];
            s.osdSharedPivots = v[11];
            s.stagedChunks = v[12];
        } else if (key == "backend" && current) {
            std::string backend;
            if (ls >> backend)
                current->decoder.backend = backend;
        } else if (key == "end" && current) {
            entries.push_back(*current);
            current.reset();
        }
    }
    return entries;
}

CampaignResult
runDistributedCampaign(const CampaignSpec& spec,
                       const std::string& specText,
                       const CampaignCheckpoint* resume,
                       const CampaignEngine::TaskCallback& onTaskDone,
                       const CoordinatorOptions& options)
{
    if (spec.spool.empty())
        throw std::invalid_argument(
            "runDistributedCampaign needs spec.spool");
    for (const TaskSpec& t : spec.tasks) {
        if (t.stream.enabled)
            throw std::invalid_argument(
                "streaming tasks run in-process only: task '" + t.id +
                "' sets streaming = on, which the spool coordinator "
                "does not support (drop the spool, or disable "
                "streaming)");
    }

    maybeInstallSpecFaultPlan(spec);

    const auto t0 = std::chrono::steady_clock::now();
    Spool spool(spec.spool);
    spool.setRetryPolicy(
        retryPolicyFrom(spec.retryAttempts, spec.retryBaseMs));
    SpoolManifest manifest;
    manifest.name = spec.name;
    manifest.seed = spec.seed;
    manifest.leaseSeconds = spec.leaseSeconds;
    manifest.retryAttempts = spec.retryAttempts;
    manifest.retryBaseMs = spec.retryBaseMs;
    spool.initialize(manifest, specText);

    const size_t n = spec.tasks.size();
    CampaignResult result;
    result.name = spec.name;
    result.seed = spec.seed;
    result.tasks.resize(n);

    // Become THE coordinator: create the lease, or wait out a live
    // one and steal it once stale. A fresh lease is heartbeated by
    // its owner, so the steal only ever fires on a dead coordinator
    // (monotonic age: a wall-clock step cannot fake staleness).
    const std::string owner = !options.owner.empty()
        ? options.owner
        : "pid" + std::to_string(::getpid());
    while (!spool.acquireCoordinatorLease(owner)) {
        const double age = spool.coordinatorLeaseAge();
        if (age < 0.0)
            continue; // lease vanished; retry the acquire
        if (age > spec.leaseSeconds) {
            if (spool.stealCoordinatorLease(owner)) {
                ++result.spool.coordinatorTakeovers;
                break;
            }
            continue; // another stealer won; wait on its lease
        }
        sleepSeconds(std::min(0.05, spec.leaseSeconds / 8.0));
    }
    faultMilestone("coord.lease.acquired");

    ArtifactCache cache;
    cache.attachStore(spool.cacheDir());

    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    std::vector<CoordTask> states(n);
    size_t remaining = 0;

    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        st.rt = std::move(resolved[i]);
        const TaskSpec& t = spec.tasks[i];
        TaskResult& r = result.tasks[i];
        r.id = !t.id.empty() ? t.id : "task" + std::to_string(i);
        r.codeName =
            !t.codeName.empty() ? t.codeName : st.rt.code->name();
        r.architecture = t.compileLatency
            ? architectureName(t.architecture)
            : "explicit";
        r.physicalError = t.physicalError;
        r.rounds = st.rt.rounds;
        r.xBasis = t.xBasis;
        r.contentHash = st.rt.contentHash;
        if (applyCheckpoint(r, resume)) {
            st.finished = true;
            if (onTaskDone)
                onTaskDone(r);
            continue;
        }
        ++remaining;
    }

    // A dead predecessor's merge journal: tasks it already finalized
    // restore below without re-merging a single record.
    std::vector<JournalEntry> journal;
    {
        std::string text;
        if (spool.readJournal(text)) {
            try {
                journal = parseCoordJournal(text);
            } catch (const std::exception&) {
                // Torn journal (the predecessor died mid-commit...
                // of the commit): quarantine it and fall back to
                // re-merging from records, which is merely slower.
                spool.quarantineFile("journal.txt");
                ++result.spool.recordsQuarantined;
                journal.clear();
            }
        }
    }
    auto journalFor = [&](uint64_t hash) -> const JournalEntry* {
        for (const JournalEntry& e : journal)
            if (e.contentHash == hash)
                return &e;
        return nullptr;
    };

    // Resolve all artifacts up front, sequentially and thread-free
    // (callers fork worker processes around this function; a live
    // pool would make that unsafe). Every compile and DEM publishes
    // to the spool store before any shard exists, so workers always
    // store-hit and the fleet builds each distinct artifact once.
    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        if (st.finished)
            continue;
        spool.heartbeatCoordinator();
        try {
            buildTaskArtifacts(st.rt, cache);
            st.sampler.emplace(st.rt.spec->stop, st.rt.taskSeed);
        } catch (const std::exception& ex) {
            result.tasks[i].error = ex.what();
        }
    }
    faultMilestone("coord.prebuilt");

    // Rewrite the whole journal (tmp+rename, like shard records)
    // after every finalize: the journal is always a consistent
    // prefix of the finalized tasks, no matter where we die.
    auto writeJournalNow = [&] {
        std::vector<JournalEntry> entries;
        for (size_t i = 0; i < n; ++i) {
            const TaskResult& r = result.tasks[i];
            if (!states[i].finished || r.fromCheckpoint ||
                !r.error.empty())
                continue;
            JournalEntry e;
            e.task = i;
            e.contentHash = r.contentHash;
            e.shots = r.logicalErrorRate.trials;
            e.failures = r.logicalErrorRate.successes;
            e.chunks = r.chunks;
            e.stoppedEarly = r.stoppedEarly;
            e.sampleSeconds = r.sampleSeconds;
            e.decoder = r.decoder;
            entries.push_back(std::move(e));
        }
        spool.writeJournal(formatCoordJournal(entries));
    };

    auto finalize = [&](size_t i) {
        CoordTask& st = states[i];
        TaskResult& r = result.tasks[i];
        st.finished = true;
        if (st.sampler) {
            r.logicalErrorRate = st.sampler->estimate();
            r.wilson = wilsonHalfWidth(st.sampler->failures(),
                                       st.sampler->shots());
            r.chunks = st.sampler->chunksPlanned();
            r.stoppedEarly = st.sampler->stoppedEarly();
        }
        fillResolvedMetadata(r, st.rt);
        r.sampleSeconds = st.sampleSeconds;
        if (r.rounds > 0 && r.logicalErrorRate.trials > 0) {
            const double ler =
                std::min(r.logicalErrorRate.rate, 1.0 - 1e-12);
            r.perRoundErrorRate = 1.0 -
                std::pow(1.0 - ler,
                         1.0 / static_cast<double>(r.rounds));
        }
        if (onTaskDone)
            onTaskDone(r);
        writeJournalNow();
        faultMilestone("coord.task.finalized");
    };

    // Restore a task a dead coordinator already finalized: same
    // fields finalize() derives, from the journaled counts — the
    // estimate/Wilson formulas are pure functions of (failures,
    // shots), so the restored task is bit-identical.
    auto restoreFromJournal = [&](size_t i, const JournalEntry& e) {
        CoordTask& st = states[i];
        TaskResult& r = result.tasks[i];
        st.finished = true;
        r.logicalErrorRate = estimateRate(e.failures, e.shots);
        r.wilson = wilsonHalfWidth(e.failures, e.shots);
        r.chunks = e.chunks;
        r.stoppedEarly = e.stoppedEarly;
        r.decoder = e.decoder;
        fillResolvedMetadata(r, st.rt);
        r.sampleSeconds = e.sampleSeconds;
        if (r.rounds > 0 && r.logicalErrorRate.trials > 0) {
            const double ler =
                std::min(r.logicalErrorRate.rate, 1.0 - 1e-12);
            r.perRoundErrorRate = 1.0 -
                std::pow(1.0 - ler,
                         1.0 / static_cast<double>(r.rounds));
        }
        ++result.spool.journalRestores;
        if (onTaskDone)
            onTaskDone(r);
    };

    // Publish one wave as contiguous chunk-range shards. Returns
    // false when the sampler has nothing left to plan.
    auto publishWave = [&](size_t i) -> bool {
        CoordTask& st = states[i];
        const std::vector<ChunkPlan> wave = st.sampler->nextWave();
        if (wave.empty())
            return false;
        const size_t step =
            effectiveShardChunks(st.rt.spec->stop);
        for (size_t g = 0; g < wave.size(); g += step) {
            const size_t count = std::min(step, wave.size() - g);
            ShardDescriptor d;
            d.task = i;
            d.shard = st.nextShard++;
            d.firstChunk = wave[g].index;
            d.numChunks = count;
            d.chunkShots = st.rt.spec->stop.chunkShots > 0
                ? st.rt.spec->stop.chunkShots
                : 256;
            d.contentHash = st.rt.contentHash;
            d.taskSeed = st.rt.taskSeed;
            const std::string id = shardId(d.task, d.shard);
            if (spool.publishShard(d)) {
                ++result.spool.shardsPublished;
            } else if (spool.hasRecord(id)) {
                // A previous coordinator run already collected this
                // shard; the merge scan below absorbs it directly.
                ++result.spool.recordsReused;
            }
            st.outstanding.push_back(id);
            st.inflight.emplace(id, d);
        }
        faultMilestone("coord.wave.published");
        return true;
    };

    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        if (st.finished)
            continue;
        if (st.sampler) {
            if (const JournalEntry* e = journalFor(st.rt.contentHash)) {
                restoreFromJournal(i, *e);
                --remaining;
                continue;
            }
        }
        if (!st.sampler || !publishWave(i)) {
            finalize(i);
            --remaining;
        }
    }

    // Finalize a task as poisoned: its shard keeps killing whoever
    // claims it, so surface an error instead of livelocking the
    // fleet re-publishing it forever.
    auto poisonTask = [&](const std::string& id, size_t reclaims) {
        const size_t i = taskIndexOfShardId(id);
        if (i >= n || states[i].finished)
            return;
        TaskResult& r = result.tasks[i];
        r.error = "poison shard " + id + ": claim reclaimed " +
            std::to_string(reclaims) +
            " times; shard quarantined";
        finalize(i);
        --remaining;
    };

    std::unique_ptr<ThreadPool> selfPool;

    while (remaining > 0) {
        spool.heartbeatCoordinator();
        bool progress = false;
        for (size_t i = 0; i < n; ++i) {
            CoordTask& st = states[i];
            if (st.finished)
                continue;
            for (size_t k = 0; k < st.outstanding.size();) {
                const std::string id = st.outstanding[k];
                if (!spool.hasRecord(id)) {
                    ++k;
                    continue;
                }
                ShardRecord rec;
                try {
                    rec = spool.readRecord(id);
                } catch (const CorruptSpoolError&) {
                    // Torn or rotted record: quarantine it and make
                    // sure the shard is executable again — revive
                    // its done/ tombstone, or republish from our
                    // in-flight descriptor if every on-disk copy is
                    // gone. (If the claim is still in claimed/, the
                    // lease sweep below recycles it.)
                    spool.quarantineRecord(id);
                    ++result.spool.recordsQuarantined;
                    if (!spool.reviveShard(id)) {
                        const auto itD = st.inflight.find(id);
                        if (itD != st.inflight.end() &&
                            spool.publishShard(itD->second))
                            ++result.spool.shardsPublished;
                    }
                    progress = true;
                    ++k;
                    continue;
                }
                if (rec.contentHash != st.rt.contentHash)
                    throw std::runtime_error(
                        "spool record " + id +
                        " does not match this campaign's task "
                        "(content hash mismatch)");
                st.sampler->absorb(
                    ChunkOutcome{rec.shots, rec.failures});
                st.sampleSeconds += rec.seconds;
                addDecoderStats(result.tasks[i].decoder, rec.decoder);
                ++result.spool.shardsMerged;
                st.inflight.erase(id);
                st.outstanding.erase(st.outstanding.begin() +
                                     static_cast<std::ptrdiff_t>(k));
                progress = true;
                faultMilestone("coord.record.merged");
            }
            if (st.outstanding.empty()) {
                if (st.sampler->done() || !publishWave(i)) {
                    finalize(i);
                    --remaining;
                }
                progress = true;
            }
        }

        // Lease sweep: claims whose heartbeat went stale go back to
        // open/ so surviving workers re-execute them. Records are
        // deterministic, so a worker that was merely slow (not dead)
        // racing its reclaimed twin is harmless. The per-shard
        // reclaim counter persists in the spool, so a shard that
        // keeps killing workers is caught even across coordinator
        // failovers.
        for (const std::string& id : spool.claimedShards()) {
            const double age = spool.claimAge(id);
            if (age <= spec.leaseSeconds)
                continue;
            const size_t count = spool.bumpReclaimCount(id);
            if (count > spec.maxClaimReclaims) {
                if (spool.quarantineShard(id)) {
                    ++result.spool.shardsPoisoned;
                    poisonTask(id, count - 1);
                    progress = true;
                }
            } else if (spool.reclaimShard(id)) {
                ++result.spool.shardsReclaimed;
            }
        }

        // Observe every worker health file each pass so its age is
        // measured on CLOCK_MONOTONIC from the last mtime change we
        // saw, exactly like shard claims. Without this history the
        // end-of-run classification would fall back to wall-clock
        // mtime arithmetic, and an NTP step during the campaign
        // would report live workers as lost.
        for (const std::string& name : spool.list("workers"))
            spool.workerHealthAge(name);

        // Self-execution: with no dedicated workers (takeover,
        // promotion, single-process operation) the coordinator
        // claims an open shard itself whenever a pass made no
        // progress, on a lazily created local pool.
        if (options.selfExecute && !progress && remaining > 0) {
            for (const std::string& id : spool.openShards()) {
                ShardDescriptor d;
                if (!spool.claimShard(id, d))
                    continue;
                if (d.task >= n || states[d.task].finished) {
                    spool.retireClaim(id);
                    continue;
                }
                if (!selfPool)
                    selfPool =
                        std::make_unique<ThreadPool>(options.threads);
                try {
                    executeShardChunks(
                        spool, id, d, states[d.task].rt, *selfPool,
                        spec.leaseSeconds,
                        [&] { spool.heartbeatCoordinator(); });
                } catch (const std::exception& ex) {
                    TaskResult& r = result.tasks[d.task];
                    if (r.error.empty())
                        r.error = ex.what();
                    finalize(d.task);
                    --remaining;
                }
                progress = true;
                break; // merge the fresh record before claiming more
            }
        }

        if (!progress)
            sleepSeconds(0.02);
    }

    spool.markDone();

    // Fold worker health files into the summary: done => healthy,
    // degraded (transient retries) => degraded, a live-looking file
    // that stopped updating => lost.
    for (const std::string& name : spool.list("workers")) {
        try {
            const std::string text = spool.readFile("workers/" + name);
            std::istringstream in(text);
            std::string line;
            std::string state = "healthy";
            if (std::getline(in, line) && line == kHealthMagic) {
                std::string key, value;
                while (in >> key >> value)
                    if (key == "state")
                        state = value;
            }
            if (state == "done") {
                ++result.spool.workersHealthy;
            } else if (state == "degraded") {
                ++result.spool.workersDegraded;
            } else {
                const double age = spool.workerHealthAge(name);
                if (age > spec.leaseSeconds)
                    ++result.spool.workersLost;
                else
                    ++result.spool.workersHealthy;
            }
        } catch (const std::exception&) {
            ++result.spool.workersLost;
        }
    }

    result.cache = cache.stats();
    result.spool.transientRetries = spool.transientRetries();
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    WorkerReport coordStats;
    coordStats.cache = result.cache;
    coordStats.transientRetries = spool.transientRetries();
    spool.writeFile("stats-coordinator.txt",
                    formatWorkerStats(coordStats),
                    "spool.stats.commit");
    // Publish the merged result into the spool too, so a promoted
    // worker's campaign (whose stdout nobody owns) is not lost.
    spool.writeFile("result.json", campaignResultToJson(result),
                    "spool.result.commit");
    spool.releaseCoordinatorLease(owner);
    return result;
}

std::string
formatWorkerStats(const WorkerReport& r)
{
    std::ostringstream out;
    out << kWorkerStatsMagic << "\n"
        << "shards " << r.shardsRun << "\n"
        << "shots " << r.shots << "\n"
        << "failures " << r.failures << "\n"
        << "retries " << r.transientRetries << "\n"
        << "promotions " << r.promotions << "\n"
        << "compile_hits " << r.cache.compileHits << "\n"
        << "compile_misses " << r.cache.compileMisses << "\n"
        << "compile_store_hits " << r.cache.compileStoreHits << "\n"
        << "compile_bytes " << r.cache.compileBytes << "\n"
        << "dem_hits " << r.cache.demHits << "\n"
        << "dem_misses " << r.cache.demMisses << "\n"
        << "dem_store_hits " << r.cache.demStoreHits << "\n"
        << "dem_bytes " << r.cache.demBytes << "\n"
        << "quarantined " << r.cache.quarantinedBlobs << "\n";
    return out.str();
}

WorkerReport
parseWorkerStats(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kWorkerStatsMagic)
        throw std::runtime_error(
            "not a worker stats file (bad magic line)");
    WorkerReport r;
    std::string key;
    unsigned long long value = 0;
    while (in >> key >> value) {
        const size_t v = static_cast<size_t>(value);
        if (key == "shards")
            r.shardsRun = v;
        else if (key == "shots")
            r.shots = v;
        else if (key == "failures")
            r.failures = v;
        else if (key == "retries")
            r.transientRetries = v;
        else if (key == "promotions")
            r.promotions = v;
        else if (key == "compile_hits")
            r.cache.compileHits = v;
        else if (key == "compile_misses")
            r.cache.compileMisses = v;
        else if (key == "compile_store_hits")
            r.cache.compileStoreHits = v;
        else if (key == "compile_bytes")
            r.cache.compileBytes = v;
        else if (key == "dem_hits")
            r.cache.demHits = v;
        else if (key == "dem_misses")
            r.cache.demMisses = v;
        else if (key == "dem_store_hits")
            r.cache.demStoreHits = v;
        else if (key == "dem_bytes")
            r.cache.demBytes = v;
        else if (key == "quarantined")
            r.cache.quarantinedBlobs = v;
    }
    return r;
}

WorkerReport
runSpoolWorker(const WorkerOptions& opts)
{
    if (opts.spool.empty())
        throw std::invalid_argument("runSpoolWorker needs a spool dir");

    Spool spool(opts.spool);
    while (!spool.initialized())
        sleepSeconds(opts.pollSeconds);

    const SpoolManifest manifest = spool.readManifest();
    spool.setRetryPolicy(retryPolicyFrom(manifest.retryAttempts,
                                         manifest.retryBaseMs));
    const CampaignSpec spec = parseCampaignSpec(spool.readSpecText());
    maybeInstallSpecFaultPlan(spec);
    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    std::vector<bool> built(resolved.size(), false);

    ArtifactCache cache;
    cache.attachStore(spool.cacheDir());
    ThreadPool pool(opts.threads);

    WorkerReport report;
    bool dying = false;

    const std::string workerId = !opts.workerId.empty()
        ? opts.workerId
        : "pid" + std::to_string(::getpid());
    const std::string healthFile = "workers/" + workerId;

    auto writeHealth = [&](const char* state) {
        std::ostringstream out;
        out << kHealthMagic << "\n"
            << "state " << state << "\n"
            << "retries " << spool.transientRetries() << "\n"
            << "shards " << report.shardsRun << "\n";
        try {
            spool.writeFile(healthFile, out.str(),
                            "spool.health.commit");
        } catch (const std::exception&) {
            // Health is advisory; never kill a worker over it.
        }
    };
    writeHealth("healthy");

    // Promotion bookkeeping: how long the coordinator lease has
    // looked dead (stale or absent) from this worker's seat.
    const auto steadyNow = [] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    };
    double leaseAbsentSince = -1.0;

    while (!spool.done() && !dying) {
        bool claimed = false;
        for (const std::string& id : spool.openShards()) {
            ShardDescriptor d;
            if (!spool.claimShard(id, d))
                continue;
            claimed = true;
            if (opts.dieAfterClaim) {
                // Leave the claim dangling, as a killed worker would.
                dying = true;
                break;
            }
            if (d.task >= resolved.size() ||
                resolved[d.task].contentHash != d.contentHash)
                throw std::runtime_error(
                    "shard " + id +
                    " does not match the spool's campaign spec "
                    "(content hash mismatch)");
            if (!built[d.task]) {
                buildTaskArtifacts(resolved[d.task], cache);
                built[d.task] = true;
            }
            const ShardRecord rec =
                executeShardChunks(spool, id, d, resolved[d.task],
                                   pool, manifest.leaseSeconds,
                                   nullptr);
            ++report.shardsRun;
            report.shots += rec.shots;
            report.failures += rec.failures;
            writeHealth(spool.transientRetries() > 0 ? "degraded"
                                                     : "healthy");
            break; // rescan open/ for the freshest view
        }
        if (opts.maxShards > 0 && report.shardsRun >= opts.maxShards)
            break;
        if (!claimed) {
            // Keep the health file's mtime fresh while idle, so the
            // coordinator can tell idle from dead.
            ::utimensat(AT_FDCWD,
                        (opts.spool + "/" + healthFile).c_str(),
                        nullptr, 0);

            // Promotion: nothing to claim, campaign unfinished, and
            // the coordinator has looked dead for a full lease
            // period — take over and finish the campaign ourselves.
            bool coordinatorDead = false;
            if (opts.promote) {
                if (!spool.hasCoordinatorLease()) {
                    const double now = steadyNow();
                    if (leaseAbsentSince < 0.0)
                        leaseAbsentSince = now;
                    coordinatorDead = now - leaseAbsentSince >
                        manifest.leaseSeconds;
                } else {
                    leaseAbsentSince = -1.0;
                    coordinatorDead = spool.coordinatorLeaseAge() >
                        manifest.leaseSeconds;
                }
            }
            if (coordinatorDead) {
                ++report.promotions;
                CampaignSpec promoted = spec;
                promoted.spool = opts.spool;
                CoordinatorOptions copts;
                copts.selfExecute = true;
                copts.threads = opts.threads;
                copts.owner = workerId;
                runDistributedCampaign(promoted,
                                       spool.readSpecText(), nullptr,
                                       nullptr, copts);
                continue; // the loop exits on the DONE marker
            }
            sleepSeconds(opts.pollSeconds);
        }
    }

    report.cache = cache.stats();
    report.transientRetries = spool.transientRetries();
    if (!opts.dieAfterClaim) {
        writeHealth(report.transientRetries > 0 ? "degraded"
                                                : "done");
        spool.writeFile("stats-" + workerId + ".txt",
                        formatWorkerStats(report),
                        "spool.stats.commit");
    }
    return report;
}

} // namespace cyclone
