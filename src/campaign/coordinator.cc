#include "campaign/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "campaign/adaptive_sampler.h"
#include "campaign/campaign_io.h"
#include "campaign/content_hash.h"
#include "campaign/thread_pool.h"

namespace cyclone {

namespace {

constexpr const char* kWorkerStatsMagic = "cyclone-worker-stats v1";

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

void
addDecoderStats(BpOsdStats& into, const BpOsdStats& s)
{
    into.decodes += s.decodes;
    into.bpConverged += s.bpConverged;
    into.osdInvocations += s.osdInvocations;
    into.osdFailures += s.osdFailures;
    into.trivialShots += s.trivialShots;
    into.memoHits += s.memoHits;
    into.bpIterations += s.bpIterations;
    into.waveGroups += s.waveGroups;
    into.waveLaneSlots += s.waveLaneSlots;
    into.waveLanesFilled += s.waveLanesFilled;
    into.osdBatchGroups += s.osdBatchGroups;
    into.osdSharedPivots += s.osdSharedPivots;
    into.stagedChunks += s.stagedChunks;
    if (into.backend.empty())
        into.backend = s.backend;
}

/** Coordinator-side view of one task in flight. */
struct CoordTask
{
    ResolvedTask rt;
    std::optional<AdaptiveSampler> sampler;
    /** Shard ids of the current wave still awaiting records. */
    std::vector<std::string> outstanding;
    size_t nextShard = 0;
    bool finished = false;
    double sampleSeconds = 0.0;
};

} // namespace

size_t
effectiveShardChunks(const StoppingRule& rule)
{
    const size_t staging = std::max<size_t>(1, rule.stagingChunks);
    size_t chunks = rule.shardChunks;
    if (chunks == 0) {
        // Auto: about four claimable shards per wave, so a handful of
        // workers can share even a single-task campaign's wave.
        const size_t wave = std::max<size_t>(1, rule.chunksPerWave);
        chunks = (wave + 3) / 4;
    }
    // Round up to a staging-group multiple: worker-side groups then
    // coincide exactly with a single-process run's wave partition.
    return ((chunks + staging - 1) / staging) * staging;
}

size_t
chunkShotsAt(const StoppingRule& rule, size_t index)
{
    const size_t chunkShots =
        rule.chunkShots > 0 ? rule.chunkShots : 256;
    const size_t planned = index * chunkShots;
    if (planned >= rule.maxShots)
        return 0;
    return std::min(chunkShots, rule.maxShots - planned);
}

CampaignResult
runDistributedCampaign(const CampaignSpec& spec,
                       const std::string& specText,
                       const CampaignCheckpoint* resume,
                       const CampaignEngine::TaskCallback& onTaskDone)
{
    if (spec.spool.empty())
        throw std::invalid_argument(
            "runDistributedCampaign needs spec.spool");

    const auto t0 = std::chrono::steady_clock::now();
    Spool spool(spec.spool);
    SpoolManifest manifest;
    manifest.name = spec.name;
    manifest.seed = spec.seed;
    manifest.leaseSeconds = spec.leaseSeconds;
    spool.initialize(manifest, specText);

    ArtifactCache cache;
    cache.attachStore(spool.cacheDir());

    const size_t n = spec.tasks.size();
    CampaignResult result;
    result.name = spec.name;
    result.seed = spec.seed;
    result.tasks.resize(n);

    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    std::vector<CoordTask> states(n);
    size_t remaining = 0;

    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        st.rt = std::move(resolved[i]);
        const TaskSpec& t = spec.tasks[i];
        TaskResult& r = result.tasks[i];
        r.id = !t.id.empty() ? t.id : "task" + std::to_string(i);
        r.codeName =
            !t.codeName.empty() ? t.codeName : st.rt.code->name();
        r.architecture = t.compileLatency
            ? architectureName(t.architecture)
            : "explicit";
        r.physicalError = t.physicalError;
        r.rounds = st.rt.rounds;
        r.xBasis = t.xBasis;
        r.contentHash = st.rt.contentHash;
        if (applyCheckpoint(r, resume)) {
            st.finished = true;
            if (onTaskDone)
                onTaskDone(r);
            continue;
        }
        ++remaining;
    }

    // Resolve all artifacts up front, sequentially and thread-free
    // (callers fork worker processes around this function; a live
    // pool would make that unsafe). Every compile and DEM publishes
    // to the spool store before any shard exists, so workers always
    // store-hit and the fleet builds each distinct artifact once.
    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        if (st.finished)
            continue;
        try {
            buildTaskArtifacts(st.rt, cache);
            st.sampler.emplace(st.rt.spec->stop, st.rt.taskSeed);
        } catch (const std::exception& ex) {
            result.tasks[i].error = ex.what();
        }
    }

    auto finalize = [&](size_t i) {
        CoordTask& st = states[i];
        TaskResult& r = result.tasks[i];
        st.finished = true;
        if (st.sampler) {
            r.logicalErrorRate = st.sampler->estimate();
            r.wilson = wilsonHalfWidth(st.sampler->failures(),
                                       st.sampler->shots());
            r.chunks = st.sampler->chunksPlanned();
            r.stoppedEarly = st.sampler->stoppedEarly();
        }
        fillResolvedMetadata(r, st.rt);
        r.sampleSeconds = st.sampleSeconds;
        if (r.rounds > 0 && r.logicalErrorRate.trials > 0) {
            const double ler =
                std::min(r.logicalErrorRate.rate, 1.0 - 1e-12);
            r.perRoundErrorRate = 1.0 -
                std::pow(1.0 - ler,
                         1.0 / static_cast<double>(r.rounds));
        }
        if (onTaskDone)
            onTaskDone(r);
    };

    // Publish one wave as contiguous chunk-range shards. Returns
    // false when the sampler has nothing left to plan.
    auto publishWave = [&](size_t i) -> bool {
        CoordTask& st = states[i];
        const std::vector<ChunkPlan> wave = st.sampler->nextWave();
        if (wave.empty())
            return false;
        const size_t step =
            effectiveShardChunks(st.rt.spec->stop);
        for (size_t g = 0; g < wave.size(); g += step) {
            const size_t count = std::min(step, wave.size() - g);
            ShardDescriptor d;
            d.task = i;
            d.shard = st.nextShard++;
            d.firstChunk = wave[g].index;
            d.numChunks = count;
            d.chunkShots = st.rt.spec->stop.chunkShots > 0
                ? st.rt.spec->stop.chunkShots
                : 256;
            d.contentHash = st.rt.contentHash;
            d.taskSeed = st.rt.taskSeed;
            const std::string id = shardId(d.task, d.shard);
            if (spool.publishShard(d)) {
                ++result.spool.shardsPublished;
            } else if (spool.hasRecord(id)) {
                // A previous coordinator run already collected this
                // shard; the merge scan below absorbs it directly.
                ++result.spool.recordsReused;
            }
            st.outstanding.push_back(id);
        }
        return true;
    };

    for (size_t i = 0; i < n; ++i) {
        CoordTask& st = states[i];
        if (st.finished)
            continue;
        if (!st.sampler || !publishWave(i)) {
            finalize(i);
            --remaining;
        }
    }

    while (remaining > 0) {
        bool progress = false;
        for (size_t i = 0; i < n; ++i) {
            CoordTask& st = states[i];
            if (st.finished)
                continue;
            for (size_t k = 0; k < st.outstanding.size();) {
                const std::string& id = st.outstanding[k];
                if (!spool.hasRecord(id)) {
                    ++k;
                    continue;
                }
                const ShardRecord rec = spool.readRecord(id);
                if (rec.contentHash != st.rt.contentHash)
                    throw std::runtime_error(
                        "spool record " + id +
                        " does not match this campaign's task "
                        "(content hash mismatch)");
                st.sampler->absorb(
                    ChunkOutcome{rec.shots, rec.failures});
                st.sampleSeconds += rec.seconds;
                addDecoderStats(result.tasks[i].decoder, rec.decoder);
                ++result.spool.shardsMerged;
                st.outstanding.erase(st.outstanding.begin() +
                                     static_cast<std::ptrdiff_t>(k));
                progress = true;
            }
            if (st.outstanding.empty()) {
                if (st.sampler->done() || !publishWave(i)) {
                    finalize(i);
                    --remaining;
                }
                progress = true;
            }
        }

        // Lease sweep: claims whose heartbeat went stale go back to
        // open/ so surviving workers re-execute them. Records are
        // deterministic, so a worker that was merely slow (not dead)
        // racing its reclaimed twin is harmless.
        for (const std::string& id : spool.claimedShards()) {
            const double age = spool.claimAge(id);
            if (age > spec.leaseSeconds && spool.reclaimShard(id))
                ++result.spool.shardsReclaimed;
        }

        if (!progress)
            sleepSeconds(0.02);
    }

    spool.markDone();

    result.cache = cache.stats();
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    WorkerReport coordStats;
    coordStats.cache = result.cache;
    spoolWriteAtomic(spec.spool + "/stats-coordinator.txt",
                     formatWorkerStats(coordStats));
    return result;
}

std::string
formatWorkerStats(const WorkerReport& r)
{
    std::ostringstream out;
    out << kWorkerStatsMagic << "\n"
        << "shards " << r.shardsRun << "\n"
        << "shots " << r.shots << "\n"
        << "failures " << r.failures << "\n"
        << "compile_hits " << r.cache.compileHits << "\n"
        << "compile_misses " << r.cache.compileMisses << "\n"
        << "compile_store_hits " << r.cache.compileStoreHits << "\n"
        << "compile_bytes " << r.cache.compileBytes << "\n"
        << "dem_hits " << r.cache.demHits << "\n"
        << "dem_misses " << r.cache.demMisses << "\n"
        << "dem_store_hits " << r.cache.demStoreHits << "\n"
        << "dem_bytes " << r.cache.demBytes << "\n";
    return out.str();
}

WorkerReport
parseWorkerStats(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kWorkerStatsMagic)
        throw std::runtime_error(
            "not a worker stats file (bad magic line)");
    WorkerReport r;
    std::string key;
    unsigned long long value = 0;
    while (in >> key >> value) {
        const size_t v = static_cast<size_t>(value);
        if (key == "shards")
            r.shardsRun = v;
        else if (key == "shots")
            r.shots = v;
        else if (key == "failures")
            r.failures = v;
        else if (key == "compile_hits")
            r.cache.compileHits = v;
        else if (key == "compile_misses")
            r.cache.compileMisses = v;
        else if (key == "compile_store_hits")
            r.cache.compileStoreHits = v;
        else if (key == "compile_bytes")
            r.cache.compileBytes = v;
        else if (key == "dem_hits")
            r.cache.demHits = v;
        else if (key == "dem_misses")
            r.cache.demMisses = v;
        else if (key == "dem_store_hits")
            r.cache.demStoreHits = v;
        else if (key == "dem_bytes")
            r.cache.demBytes = v;
    }
    return r;
}

WorkerReport
runSpoolWorker(const WorkerOptions& opts)
{
    if (opts.spool.empty())
        throw std::invalid_argument("runSpoolWorker needs a spool dir");

    Spool spool(opts.spool);
    while (!spool.initialized())
        sleepSeconds(opts.pollSeconds);

    const SpoolManifest manifest = spool.readManifest();
    const CampaignSpec spec = parseCampaignSpec(spool.readSpecText());
    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    std::vector<bool> built(resolved.size(), false);

    ArtifactCache cache;
    cache.attachStore(spool.cacheDir());
    ThreadPool pool(opts.threads);

    WorkerReport report;
    bool dying = false;

    // Per-pool-thread decode contexts, rebuilt per shard so every
    // record's decoder counters cover exactly that shard's groups.
    struct Ctx
    {
        BpOsdDecoder decoder;
        std::vector<ShotBatch> batches;
        Ctx(const DetectorErrorModel& dem, const BpOptions& bp)
            : decoder(dem, bp)
        {}
    };

    auto executeShard = [&](const std::string& id,
                            const ShardDescriptor& d) {
        ResolvedTask& rt = resolved[d.task];
        const StoppingRule& rule = rt.spec->stop;
        const size_t staging =
            std::max<size_t>(1, rule.stagingChunks);

        // Rebuild the shard's exact ChunkPlans from its chunk range:
        // same shots formula and seed derivation the coordinator's
        // sampler used when it planned the wave.
        std::vector<ChunkPlan> plans(d.numChunks);
        for (size_t k = 0; k < d.numChunks; ++k) {
            plans[k].index = d.firstChunk + k;
            plans[k].shots = chunkShotsAt(rule, plans[k].index);
            plans[k].seed = chunkSeed(d.taskSeed, plans[k].index);
        }

        std::vector<std::unique_ptr<Ctx>> ctxs(pool.size());
        std::mutex mutex;
        ChunkOutcome total;
        double seconds = 0.0;
        std::exception_ptr error;
        std::atomic<size_t> pending{0};

        for (size_t g = 0; g < plans.size(); g += staging) {
            const size_t count =
                std::min(staging, plans.size() - g);
            pending.fetch_add(1);
            pool.submit([&, g, count] {
                const auto c0 = std::chrono::steady_clock::now();
                try {
                    const int w = ThreadPool::workerIndex();
                    auto& ctx =
                        ctxs[w >= 0 ? static_cast<size_t>(w) : 0];
                    if (!ctx)
                        ctx = std::make_unique<Ctx>(*rt.dem,
                                                    rt.spec->bp);
                    const ChunkOutcome out = runChunkGroup(
                        *rt.dem, plans.data() + g, count,
                        ctx->decoder, ctx->batches);
                    std::lock_guard<std::mutex> lock(mutex);
                    total.shots += out.shots;
                    total.failures += out.failures;
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(mutex);
                seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - c0)
                               .count();
                pending.fetch_sub(1);
            });
        }

        // Heartbeat the claim while the pool decodes, so a healthy
        // worker's lease never expires mid-shard.
        while (pending.load() > 0) {
            spool.heartbeat(id);
            sleepSeconds(
                std::min(0.05, manifest.leaseSeconds / 8.0));
        }
        if (error)
            std::rethrow_exception(error);

        ShardRecord rec;
        rec.task = d.task;
        rec.shard = d.shard;
        rec.contentHash = d.contentHash;
        rec.shots = total.shots;
        rec.failures = total.failures;
        rec.seconds = seconds;
        for (const auto& ctx : ctxs)
            if (ctx)
                addDecoderStats(rec.decoder, ctx->decoder.stats());
        spool.completeShard(id, rec);

        ++report.shardsRun;
        report.shots += total.shots;
        report.failures += total.failures;
    };

    while (!spool.done() && !dying) {
        bool claimed = false;
        for (const std::string& id : spool.openShards()) {
            ShardDescriptor d;
            if (!spool.claimShard(id, d))
                continue;
            claimed = true;
            if (opts.dieAfterClaim) {
                // Leave the claim dangling, as a killed worker would.
                dying = true;
                break;
            }
            if (d.task >= resolved.size() ||
                resolved[d.task].contentHash != d.contentHash)
                throw std::runtime_error(
                    "shard " + id +
                    " does not match the spool's campaign spec "
                    "(content hash mismatch)");
            if (!built[d.task]) {
                buildTaskArtifacts(resolved[d.task], cache);
                built[d.task] = true;
            }
            executeShard(id, d);
            break; // rescan open/ for the freshest view
        }
        if (opts.maxShards > 0 && report.shardsRun >= opts.maxShards)
            break;
        if (!claimed)
            sleepSeconds(opts.pollSeconds);
    }

    report.cache = cache.stats();
    if (!opts.dieAfterClaim) {
        const std::string workerId = !opts.workerId.empty()
            ? opts.workerId
            : "pid" + std::to_string(::getpid());
        spoolWriteAtomic(opts.spool + "/stats-" + workerId + ".txt",
                         formatWorkerStats(report));
    }
    return report;
}

} // namespace cyclone
