#include "campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "campaign/adaptive_sampler.h"
#include "campaign/content_hash.h"
#include "circuit/memory_circuit.h"
#include "dem/dem_builder.h"
#include "noise/noise_model.h"
#include "noise/schedule_noise.h"
#include "qec/code_catalog.h"

namespace cyclone {

namespace {

/** Per-worker sampling context: decoder state plus reusable packed
 *  shot buffers for the batch pipeline (one per staged chunk), and —
 *  for streaming tasks — the worker's streaming front-end wrapping
 *  the same decoder. */
struct WorkerCtx
{
    BpOsdDecoder decoder;
    std::vector<ShotBatch> batches;
    std::unique_ptr<StreamDecoder> stream;

    WorkerCtx(const DetectorErrorModel& dem, const BpOptions& bp)
        : decoder(dem, bp)
    {}
};

/**
 * Map a task's StreamSpec onto StreamDecoderOptions. The deadline
 * defaults to one window period — rounds x the task's (compiled or
 * explicit) round latency, the time the hardware takes to produce
 * the next window — so deadline misses mean "the decoder fell behind
 * the machine". Requires built artifacts (rt.latencyUs).
 */
StreamDecoderOptions
streamOptionsFor(const ResolvedTask& rt)
{
    const StreamSpec& ss = rt.spec->stream;
    StreamDecoderOptions o;
    o.streams = ss.streams > 0 ? ss.streams : 1;
    o.roundsPerWindow = rt.rounds > 0 ? rt.rounds : 1;
    o.policy = ss.deadlineFlush ? FlushPolicy::Deadline
                                : FlushPolicy::FullWave;
    o.deadlineUs = ss.deadlineUs > 0.0
        ? ss.deadlineUs
        : rt.latencyUs * static_cast<double>(o.roundsPerWindow);
    o.flushAfterUs = ss.flushAfterUs;
    o.capacityChunks =
        std::max<size_t>(size_t{1}, rt.spec->stop.stagingChunks);
    return o;
}

struct TaskState
{
    ResolvedTask rt;

    std::optional<AdaptiveSampler> sampler;
    std::vector<std::unique_ptr<WorkerCtx>> workers;
    size_t outstanding = 0;
    double sampleSeconds = 0.0;
    bool resolved = false;
    bool failed = false;
    bool finished = false;
};

enum class EventKind
{
    Resolved,
    ChunkDone,
    Failed,
};

struct Event
{
    EventKind kind = EventKind::Failed;
    size_t task = 0;
    ChunkOutcome outcome;
    double seconds = 0.0;
    std::string error;
};

/** Completion channel from pool workers to the coordinator. */
struct EventQueue
{
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Event> events;

    void
    push(Event e)
    {
        // Notify under the lock: the coordinator may pop this event,
        // finish the run and destroy the queue; holding the mutex
        // through the notify keeps the cv alive for the whole call.
        std::lock_guard<std::mutex> lock(mutex);
        events.push_back(std::move(e));
        cv.notify_one();
    }

    Event
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !events.empty(); });
        Event e = std::move(events.front());
        events.pop_front();
        return e;
    }
};

uint64_t
taskContentHash(const ResolvedTask& rt)
{
    const TaskSpec& t = *rt.spec;
    HashStream h;
    h.absorb(rt.codeHash).absorb(rt.scheduleHash);
    h.absorb(uint64_t{t.compileLatency ? 1u : 0u});
    if (t.compileLatency)
        h.absorb(std::string(architectureName(t.architecture)));
    else
        h.absorb(t.roundLatencyUs);
    h.absorb(uint64_t{t.swap == SwapKind::IonSwap ? 1u : 0u});
    h.absorb(uint64_t{t.gridCapacity});
    h.absorb(uint64_t{
        t.idleNoise == IdleNoiseMode::PerQubitSchedule ? 1u : 0u});
    for (const PauliTwirl& twirl : t.perQubitIdle)
        h.absorb(twirl.px).absorb(twirl.py).absorb(twirl.pz);
    h.absorb(t.latencyScale).absorb(t.physicalError);
    h.absorb(uint64_t{rt.rounds}).absorb(uint64_t{t.xBasis ? 1u : 0u});
    h.absorb(uint64_t{static_cast<unsigned>(t.bp.variant)});
    h.absorb(uint64_t{t.bp.maxIterations});
    h.absorb(t.bp.minSumScale).absorb(t.bp.clamp);
    h.absorb(uint64_t{t.stop.chunkShots});
    h.absorb(uint64_t{t.stop.chunksPerWave});
    h.absorb(uint64_t{t.stop.maxShots});
    h.absorb(t.stop.targetRelErr);
    h.absorb(uint64_t{t.stop.minFailures});
    h.absorb(rt.taskSeed);
    return h.digest();
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

CssCode
resolveCampaignCode(const std::string& name)
{
    if (name.rfind("surface", 0) == 0 && name.size() > 7) {
        char* end = nullptr;
        const long d = std::strtol(name.c_str() + 7, &end, 10);
        if (end != nullptr && *end == '\0' && d >= 2)
            return catalog::surface(static_cast<size_t>(d));
    }
    return catalog::byName(name);
}

size_t
CampaignResult::totalShots() const
{
    size_t total = 0;
    for (const TaskResult& t : tasks)
        total += t.logicalErrorRate.trials;
    return total;
}

std::vector<ResolvedTask>
resolveTaskIdentities(const CampaignSpec& spec)
{
    const size_t n = spec.tasks.size();
    std::vector<ResolvedTask> resolved(n);
    std::unordered_map<std::string, std::shared_ptr<const CssCode>>
        codeByName;
    std::unordered_map<const CssCode*,
                       std::shared_ptr<const SyndromeSchedule>>
        schedByCode;

    for (size_t i = 0; i < n; ++i) {
        const TaskSpec& t = spec.tasks[i];
        ResolvedTask& rt = resolved[i];
        rt.spec = &t;
        if (t.code) {
            rt.code = t.code;
        } else {
            if (t.codeName.empty())
                throw std::invalid_argument(
                    "TaskSpec needs codeName or an inline code");
            auto it = codeByName.find(t.codeName);
            if (it == codeByName.end())
                it = codeByName
                         .emplace(t.codeName,
                                  std::make_shared<const CssCode>(
                                      resolveCampaignCode(t.codeName)))
                         .first;
            rt.code = it->second;
        }
        if (t.schedule) {
            rt.schedule = t.schedule;
        } else {
            auto it = schedByCode.find(rt.code.get());
            if (it == schedByCode.end())
                it = schedByCode
                         .emplace(rt.code.get(),
                                  std::make_shared<
                                      const SyndromeSchedule>(
                                      makeXThenZSchedule(*rt.code)))
                         .first;
            rt.schedule = it->second;
        }
        rt.rounds = t.rounds > 0
            ? t.rounds
            : (rt.code->nominalDistance() > 0
                   ? rt.code->nominalDistance()
                   : 3);
        rt.codeHash = hashCode(*rt.code);
        rt.scheduleHash = hashSchedule(*rt.schedule);
        HashStream seedMix;
        seedMix.absorb(spec.seed).absorb(uint64_t{i}).absorb(t.seed);
        rt.taskSeed = seedMix.digest();
        rt.contentHash = taskContentHash(rt);
    }
    return resolved;
}

void
buildTaskArtifacts(ResolvedTask& rt, ArtifactCache& cache)
{
    const TaskSpec& t = *rt.spec;
    double latency = t.roundLatencyUs;
    if (t.compileLatency) {
        HashStream ch;
        ch.absorb(rt.codeHash)
            .absorb(rt.scheduleHash)
            .absorb(std::string(architectureName(t.architecture)))
            .absorb(uint64_t{t.swap == SwapKind::IonSwap ? 1u : 0u})
            .absorb(uint64_t{t.gridCapacity});
        rt.compiled = cache.getOrBuildCompile(ch.digest(), [&] {
            CodesignConfig config;
            config.architecture = t.architecture;
            config.ejf.swap = t.swap;
            config.cyclone.swap = t.swap;
            config.gridCapacity = t.gridCapacity;
            return compileCodesign(*rt.code, *rt.schedule, config);
        });
        latency = rt.compiled->execTimeUs;
    }
    latency *= t.latencyScale;
    rt.latencyUs = latency;

    // Schedule-derived per-qubit idle twirls: explicit ones win;
    // otherwise measure the compiled IR. Only PerQubitSchedule mode
    // consumes them — the twirls are part of the DEM identity, so
    // uniform-mode tasks must not carry unhashed ones into the
    // circuit.
    std::vector<PauliTwirl> perQubitIdle;
    if (t.idleNoise == IdleNoiseMode::PerQubitSchedule) {
        perQubitIdle = t.perQubitIdle;
        if (perQubitIdle.empty()) {
            if (!rt.compiled) {
                throw std::invalid_argument(
                    "per-qubit idle noise needs a compiled "
                    "architecture (or explicit perQubitIdle twirls)");
            }
            perQubitIdle = perQubitIdleFromSchedule(
                rt.compiled->schedule, rt.code->numQubits(),
                t.physicalError, t.latencyScale);
        }
    }

    HashStream dh;
    dh.absorb(rt.codeHash)
        .absorb(rt.scheduleHash)
        .absorb(t.physicalError)
        .absorb(latency)
        .absorb(uint64_t{rt.rounds})
        .absorb(uint64_t{t.xBasis ? 1u : 0u});
    if (t.idleNoise == IdleNoiseMode::PerQubitSchedule) {
        // The DEM now depends on the exact timeline, not just its
        // makespan: key on the IR's content hash (or the explicit
        // twirl values).
        dh.absorb(uint64_t{1});
        if (!t.perQubitIdle.empty()) {
            for (const PauliTwirl& twirl : perQubitIdle)
                dh.absorb(twirl.px)
                    .absorb(twirl.py)
                    .absorb(twirl.pz);
        } else {
            dh.absorb(hashTimedSchedule(rt.compiled->schedule));
            dh.absorb(t.latencyScale);
        }
    }
    rt.dem = cache.getOrBuildDem(dh.digest(), [&] {
        MemoryCircuitOptions opts;
        opts.rounds = rt.rounds;
        opts.perQubitIdle = perQubitIdle;
        opts.noise = latency > 0.0 && perQubitIdle.empty()
            ? NoiseModel::withLatency(t.physicalError, latency)
            : NoiseModel::uniform(t.physicalError);
        const Circuit circuit = t.xBasis
            ? buildXMemoryCircuit(*rt.code, *rt.schedule, opts)
            : buildZMemoryCircuit(*rt.code, *rt.schedule, opts);
        return buildDetectorErrorModel(circuit);
    });
}

void
fillResolvedMetadata(TaskResult& r, const ResolvedTask& rt)
{
    r.roundLatencyUs = rt.latencyUs;
    if (rt.dem) {
        r.demDetectors = rt.dem->numDetectors;
        r.demMechanisms = rt.dem->mechanisms.size();
    }
    if (rt.compiled) {
        r.compileMakespanUs = rt.compiled->execTimeUs;
        r.compileBreakdown = rt.compiled->serialized;
        r.compileParallelFraction = rt.compiled->parallelFraction();
        r.trapRoadblocks = rt.compiled->trapRoadblocks;
        r.junctionRoadblocks = rt.compiled->junctionRoadblocks;
        r.roadblockWaits = rt.compiled->schedule.waitHistogram();
    }
}

bool
applyCheckpoint(TaskResult& r, const CampaignCheckpoint* resume)
{
    if (resume == nullptr)
        return false;
    auto it = resume->tasks.find(r.contentHash);
    if (it == resume->tasks.end())
        return false;
    const TaskResult& saved = it->second;
    r.logicalErrorRate = saved.logicalErrorRate;
    r.wilson = saved.wilson;
    r.perRoundErrorRate = saved.perRoundErrorRate;
    r.roundLatencyUs = saved.roundLatencyUs;
    r.demDetectors = saved.demDetectors;
    r.demMechanisms = saved.demMechanisms;
    r.decoder = saved.decoder;
    r.streamed = saved.streamed;
    r.stream = saved.stream;
    r.chunks = saved.chunks;
    r.stoppedEarly = saved.stoppedEarly;
    r.sampleSeconds = saved.sampleSeconds;
    r.fromCheckpoint = true;
    return true;
}

CampaignEngine::CampaignEngine(ThreadPool& pool, ArtifactCache& cache)
    : pool_(pool), cache_(cache)
{}

CampaignResult
CampaignEngine::run(const CampaignSpec& spec,
                    const CampaignCheckpoint* resume,
                    const TaskCallback& onTaskDone)
{
    const auto t0 = std::chrono::steady_clock::now();
    const CacheStats before = cache_.stats();
    const size_t n = spec.tasks.size();

    CampaignResult result;
    result.name = spec.name;
    result.seed = spec.seed;
    result.tasks.resize(n);

    // Resolve codes, schedules, seeds and identities up front on the
    // coordinator: cheap, and bad specs fail before any job launches.
    std::vector<ResolvedTask> resolved = resolveTaskIdentities(spec);
    std::vector<TaskState> states(n);
    for (size_t i = 0; i < n; ++i) {
        TaskState& st = states[i];
        st.rt = std::move(resolved[i]);
        st.workers.resize(pool_.size());

        const TaskSpec& t = spec.tasks[i];
        TaskResult& r = result.tasks[i];
        r.id = !t.id.empty() ? t.id : "task" + std::to_string(i);
        r.codeName =
            !t.codeName.empty() ? t.codeName : st.rt.code->name();
        r.architecture = t.compileLatency
            ? architectureName(t.architecture)
            : "explicit";
        r.physicalError = t.physicalError;
        r.rounds = st.rt.rounds;
        r.xBasis = t.xBasis;
        r.contentHash = st.rt.contentHash;
    }

    EventQueue events;
    size_t remaining = 0;

    auto finalize = [&](size_t i) {
        TaskState& st = states[i];
        TaskResult& r = result.tasks[i];
        st.finished = true;
        if (st.sampler) {
            r.logicalErrorRate = st.sampler->estimate();
            r.wilson = wilsonHalfWidth(st.sampler->failures(),
                                       st.sampler->shots());
            r.chunks = st.sampler->chunksPlanned();
            r.stoppedEarly = st.sampler->stoppedEarly();
        }
        fillResolvedMetadata(r, st.rt);
        r.sampleSeconds = st.sampleSeconds;
        if (r.rounds > 0 && r.logicalErrorRate.trials > 0) {
            const double ler =
                std::min(r.logicalErrorRate.rate, 1.0 - 1e-12);
            r.perRoundErrorRate = 1.0 -
                std::pow(1.0 - ler,
                         1.0 / static_cast<double>(r.rounds));
        }
        for (const auto& ctx : st.workers) {
            if (!ctx)
                continue;
            const BpOsdStats& s = ctx->decoder.stats();
            r.decoder.decodes += s.decodes;
            r.decoder.bpConverged += s.bpConverged;
            r.decoder.osdInvocations += s.osdInvocations;
            r.decoder.osdFailures += s.osdFailures;
            r.decoder.trivialShots += s.trivialShots;
            r.decoder.memoHits += s.memoHits;
            r.decoder.bpIterations += s.bpIterations;
            r.decoder.waveGroups += s.waveGroups;
            r.decoder.waveLaneSlots += s.waveLaneSlots;
            r.decoder.waveLanesFilled += s.waveLanesFilled;
            r.decoder.osdBatchGroups += s.osdBatchGroups;
            r.decoder.osdSharedPivots += s.osdSharedPivots;
            r.decoder.stagedChunks += s.stagedChunks;
            if (r.decoder.backend.empty())
                r.decoder.backend = s.backend;
            if (ctx->stream) {
                r.streamed = true;
                r.stream.merge(ctx->stream->stats());
            }
        }
        if (r.streamed)
            r.stream.computePercentiles();
        if (onTaskDone)
            onTaskDone(r);
    };

    auto dispatchWave = [&](size_t i) -> bool {
        TaskState& st = states[i];
        std::vector<ChunkPlan> wave = st.sampler->nextWave();
        if (wave.empty())
            return false;
        // Cross-chunk syndrome staging: partition the wave into
        // groups of `stagingChunks` consecutive plans and submit one
        // decode job per group. Group boundaries depend only on the
        // wave's chunk indices — never on worker count or completion
        // order — so every decoder statistic stays deterministic.
        const size_t group = std::max<size_t>(
            size_t{1}, st.rt.spec->stop.stagingChunks);
        std::vector<std::vector<ChunkPlan>> jobs;
        for (size_t g = 0; g < wave.size(); g += group)
            jobs.emplace_back(
                wave.begin() + static_cast<std::ptrdiff_t>(g),
                wave.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(g + group, wave.size())));
        st.outstanding = jobs.size();
        for (std::vector<ChunkPlan>& job : jobs) {
            pool_.submit([&events, &st, i, plans = std::move(job)] {
                const auto c0 = std::chrono::steady_clock::now();
                Event e;
                e.task = i;
                try {
                    const int w = ThreadPool::workerIndex();
                    auto& ctx = st.workers[w >= 0
                                               ? static_cast<size_t>(w)
                                               : 0];
                    if (!ctx) {
                        ctx = std::make_unique<WorkerCtx>(
                            *st.rt.dem, st.rt.spec->bp);
                        if (st.rt.spec->stream.enabled)
                            ctx->stream =
                                std::make_unique<StreamDecoder>(
                                    ctx->decoder,
                                    st.rt.dem->numDetectors,
                                    streamOptionsFor(st.rt));
                    }
                    e.outcome = ctx->stream
                        ? runChunkGroupStreamed(
                              *st.rt.dem, plans.data(), plans.size(),
                              *ctx->stream, ctx->batches)
                        : runChunkGroup(*st.rt.dem, plans.data(),
                                        plans.size(), ctx->decoder,
                                        ctx->batches);
                    e.kind = EventKind::ChunkDone;
                } catch (const std::exception& ex) {
                    e.kind = EventKind::Failed;
                    e.error = ex.what();
                } catch (...) {
                    e.kind = EventKind::Failed;
                    e.error = "unknown sampling error";
                }
                e.seconds = elapsedSeconds(c0);
                events.push(std::move(e));
            });
        }
        return true;
    };

    // Checkpointed tasks are done before any job launches; the rest
    // get a resolve job (compile + DEM build through the shared cache).
    for (size_t i = 0; i < n; ++i) {
        if (applyCheckpoint(result.tasks[i], resume)) {
            states[i].finished = true;
            if (onTaskDone)
                onTaskDone(result.tasks[i]);
            continue;
        }
        ++remaining;
    }

    for (size_t i = 0; i < n; ++i) {
        if (states[i].finished)
            continue;
        TaskState& st = states[i];
        pool_.submit([this, &events, &st, i] {
            Event e;
            e.task = i;
            try {
                buildTaskArtifacts(st.rt, cache_);
                e.kind = EventKind::Resolved;
            } catch (const std::exception& ex) {
                e.kind = EventKind::Failed;
                e.error = ex.what();
            } catch (...) {
                e.kind = EventKind::Failed;
                e.error = "unknown build error";
            }
            events.push(std::move(e));
        });
    }

    while (remaining > 0) {
        Event e = events.pop();
        TaskState& st = states[e.task];
        if (st.finished)
            continue;
        switch (e.kind) {
          case EventKind::Resolved:
            st.resolved = true;
            st.sampler.emplace(st.rt.spec->stop, st.rt.taskSeed);
            if (!dispatchWave(e.task)) {
                finalize(e.task);
                --remaining;
            }
            break;
          case EventKind::ChunkDone:
            st.sampler->absorb(e.outcome);
            st.sampleSeconds += e.seconds;
            if (--st.outstanding == 0) {
                if (st.failed || st.sampler->done() ||
                    !dispatchWave(e.task)) {
                    finalize(e.task);
                    --remaining;
                }
            }
            break;
          case EventKind::Failed:
            if (result.tasks[e.task].error.empty())
                result.tasks[e.task].error = e.error;
            if (!st.resolved) {
                finalize(e.task);
                --remaining;
            } else {
                // A chunk failed: drain the rest of its wave before
                // finalizing so no job still references this task.
                st.failed = true;
                st.sampleSeconds += e.seconds;
                if (--st.outstanding == 0) {
                    finalize(e.task);
                    --remaining;
                }
            }
            break;
        }
    }

    const CacheStats after = cache_.stats();
    result.cache.compileHits = after.compileHits - before.compileHits;
    result.cache.compileMisses =
        after.compileMisses - before.compileMisses;
    result.cache.demHits = after.demHits - before.demHits;
    result.cache.demMisses = after.demMisses - before.demMisses;
    result.cache.compileStoreHits =
        after.compileStoreHits - before.compileStoreHits;
    result.cache.demStoreHits =
        after.demStoreHits - before.demStoreHits;
    result.cache.compileBytes =
        after.compileBytes - before.compileBytes;
    result.cache.demBytes = after.demBytes - before.demBytes;
    result.wallSeconds = elapsedSeconds(t0);
    return result;
}

CampaignResult
runCampaign(const CampaignSpec& spec, const CampaignCheckpoint* resume,
            const CampaignEngine::TaskCallback& onTaskDone)
{
    ThreadPool pool(spec.threads);
    ArtifactCache cache;
    CampaignEngine engine(pool, cache);
    return engine.run(spec, resume, onTaskDone);
}

} // namespace cyclone
