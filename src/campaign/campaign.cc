#include "campaign/campaign.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "campaign/adaptive_sampler.h"
#include "campaign/content_hash.h"
#include "circuit/memory_circuit.h"
#include "dem/dem_builder.h"
#include "noise/noise_model.h"
#include "noise/schedule_noise.h"
#include "qec/code_catalog.h"

namespace cyclone {

namespace {

/** Per-worker sampling context: decoder state plus reusable packed
 *  shot buffers for the batch pipeline (one per staged chunk). */
struct WorkerCtx
{
    BpOsdDecoder decoder;
    std::vector<ShotBatch> batches;

    WorkerCtx(const DetectorErrorModel& dem, const BpOptions& bp)
        : decoder(dem, bp)
    {}
};

struct TaskState
{
    const TaskSpec* spec = nullptr;
    std::shared_ptr<const CssCode> code;
    std::shared_ptr<const SyndromeSchedule> schedule;
    uint64_t taskSeed = 0;
    uint64_t codeHash = 0;
    uint64_t scheduleHash = 0;
    size_t rounds = 0;

    // Written by the (single) resolve job, read by the coordinator
    // after its Resolved event; the event queue orders the accesses.
    std::shared_ptr<const DetectorErrorModel> dem;
    std::shared_ptr<const CompileResult> compiled;
    double latencyUs = 0.0;

    std::optional<AdaptiveSampler> sampler;
    std::vector<std::unique_ptr<WorkerCtx>> workers;
    size_t outstanding = 0;
    double sampleSeconds = 0.0;
    bool resolved = false;
    bool failed = false;
    bool finished = false;
};

enum class EventKind
{
    Resolved,
    ChunkDone,
    Failed,
};

struct Event
{
    EventKind kind = EventKind::Failed;
    size_t task = 0;
    ChunkOutcome outcome;
    double seconds = 0.0;
    std::string error;
};

/** Completion channel from pool workers to the coordinator. */
struct EventQueue
{
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Event> events;

    void
    push(Event e)
    {
        // Notify under the lock: the coordinator may pop this event,
        // finish the run and destroy the queue; holding the mutex
        // through the notify keeps the cv alive for the whole call.
        std::lock_guard<std::mutex> lock(mutex);
        events.push_back(std::move(e));
        cv.notify_one();
    }

    Event
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !events.empty(); });
        Event e = std::move(events.front());
        events.pop_front();
        return e;
    }
};

uint64_t
taskContentHash(const TaskState& st)
{
    const TaskSpec& t = *st.spec;
    HashStream h;
    h.absorb(st.codeHash).absorb(st.scheduleHash);
    h.absorb(uint64_t{t.compileLatency ? 1u : 0u});
    if (t.compileLatency)
        h.absorb(std::string(architectureName(t.architecture)));
    else
        h.absorb(t.roundLatencyUs);
    h.absorb(uint64_t{t.swap == SwapKind::IonSwap ? 1u : 0u});
    h.absorb(uint64_t{t.gridCapacity});
    h.absorb(uint64_t{
        t.idleNoise == IdleNoiseMode::PerQubitSchedule ? 1u : 0u});
    for (const PauliTwirl& twirl : t.perQubitIdle)
        h.absorb(twirl.px).absorb(twirl.py).absorb(twirl.pz);
    h.absorb(t.latencyScale).absorb(t.physicalError);
    h.absorb(uint64_t{st.rounds}).absorb(uint64_t{t.xBasis ? 1u : 0u});
    h.absorb(uint64_t{static_cast<unsigned>(t.bp.variant)});
    h.absorb(uint64_t{t.bp.maxIterations});
    h.absorb(t.bp.minSumScale).absorb(t.bp.clamp);
    h.absorb(uint64_t{t.stop.chunkShots});
    h.absorb(uint64_t{t.stop.chunksPerWave});
    h.absorb(uint64_t{t.stop.maxShots});
    h.absorb(t.stop.targetRelErr);
    h.absorb(uint64_t{t.stop.minFailures});
    h.absorb(st.taskSeed);
    return h.digest();
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

CssCode
resolveCampaignCode(const std::string& name)
{
    if (name.rfind("surface", 0) == 0 && name.size() > 7) {
        char* end = nullptr;
        const long d = std::strtol(name.c_str() + 7, &end, 10);
        if (end != nullptr && *end == '\0' && d >= 2)
            return catalog::surface(static_cast<size_t>(d));
    }
    return catalog::byName(name);
}

size_t
CampaignResult::totalShots() const
{
    size_t total = 0;
    for (const TaskResult& t : tasks)
        total += t.logicalErrorRate.trials;
    return total;
}

CampaignEngine::CampaignEngine(ThreadPool& pool, ArtifactCache& cache)
    : pool_(pool), cache_(cache)
{}

CampaignResult
CampaignEngine::run(const CampaignSpec& spec,
                    const CampaignCheckpoint* resume,
                    const TaskCallback& onTaskDone)
{
    const auto t0 = std::chrono::steady_clock::now();
    const CacheStats before = cache_.stats();
    const size_t n = spec.tasks.size();

    CampaignResult result;
    result.name = spec.name;
    result.seed = spec.seed;
    result.tasks.resize(n);

    std::vector<TaskState> states(n);
    std::unordered_map<std::string, std::shared_ptr<const CssCode>>
        codeByName;
    std::unordered_map<const CssCode*,
                       std::shared_ptr<const SyndromeSchedule>>
        schedByCode;

    // Resolve codes, schedules, seeds and identities up front on the
    // coordinator: cheap, and bad specs fail before any job launches.
    for (size_t i = 0; i < n; ++i) {
        const TaskSpec& t = spec.tasks[i];
        TaskState& st = states[i];
        st.spec = &t;
        if (t.code) {
            st.code = t.code;
        } else {
            if (t.codeName.empty())
                throw std::invalid_argument(
                    "TaskSpec needs codeName or an inline code");
            auto it = codeByName.find(t.codeName);
            if (it == codeByName.end())
                it = codeByName
                         .emplace(t.codeName,
                                  std::make_shared<const CssCode>(
                                      resolveCampaignCode(t.codeName)))
                         .first;
            st.code = it->second;
        }
        if (t.schedule) {
            st.schedule = t.schedule;
        } else {
            auto it = schedByCode.find(st.code.get());
            if (it == schedByCode.end())
                it = schedByCode
                         .emplace(st.code.get(),
                                  std::make_shared<
                                      const SyndromeSchedule>(
                                      makeXThenZSchedule(*st.code)))
                         .first;
            st.schedule = it->second;
        }
        st.rounds = t.rounds > 0
            ? t.rounds
            : (st.code->nominalDistance() > 0 ? st.code->nominalDistance()
                                              : 3);
        st.codeHash = hashCode(*st.code);
        st.scheduleHash = hashSchedule(*st.schedule);
        HashStream seedMix;
        seedMix.absorb(spec.seed).absorb(uint64_t{i}).absorb(t.seed);
        st.taskSeed = seedMix.digest();
        st.workers.resize(pool_.size());

        TaskResult& r = result.tasks[i];
        r.id = !t.id.empty() ? t.id : "task" + std::to_string(i);
        r.codeName = !t.codeName.empty() ? t.codeName : st.code->name();
        r.architecture = t.compileLatency
            ? architectureName(t.architecture)
            : "explicit";
        r.physicalError = t.physicalError;
        r.rounds = st.rounds;
        r.xBasis = t.xBasis;
        r.contentHash = taskContentHash(st);
    }

    EventQueue events;
    size_t remaining = 0;

    auto finalize = [&](size_t i) {
        TaskState& st = states[i];
        TaskResult& r = result.tasks[i];
        st.finished = true;
        if (st.sampler) {
            r.logicalErrorRate = st.sampler->estimate();
            r.wilson = wilsonHalfWidth(st.sampler->failures(),
                                       st.sampler->shots());
            r.chunks = st.sampler->chunksPlanned();
            r.stoppedEarly = st.sampler->stoppedEarly();
        }
        r.roundLatencyUs = st.latencyUs;
        if (st.dem) {
            r.demDetectors = st.dem->numDetectors;
            r.demMechanisms = st.dem->mechanisms.size();
        }
        if (st.compiled) {
            r.compileMakespanUs = st.compiled->execTimeUs;
            r.compileBreakdown = st.compiled->serialized;
            r.compileParallelFraction = st.compiled->parallelFraction();
            r.trapRoadblocks = st.compiled->trapRoadblocks;
            r.junctionRoadblocks = st.compiled->junctionRoadblocks;
            r.roadblockWaits = st.compiled->schedule.waitHistogram();
        }
        r.sampleSeconds = st.sampleSeconds;
        if (r.rounds > 0 && r.logicalErrorRate.trials > 0) {
            const double ler =
                std::min(r.logicalErrorRate.rate, 1.0 - 1e-12);
            r.perRoundErrorRate = 1.0 -
                std::pow(1.0 - ler,
                         1.0 / static_cast<double>(r.rounds));
        }
        for (const auto& ctx : st.workers) {
            if (!ctx)
                continue;
            const BpOsdStats& s = ctx->decoder.stats();
            r.decoder.decodes += s.decodes;
            r.decoder.bpConverged += s.bpConverged;
            r.decoder.osdInvocations += s.osdInvocations;
            r.decoder.osdFailures += s.osdFailures;
            r.decoder.trivialShots += s.trivialShots;
            r.decoder.memoHits += s.memoHits;
            r.decoder.bpIterations += s.bpIterations;
            r.decoder.waveGroups += s.waveGroups;
            r.decoder.waveLaneSlots += s.waveLaneSlots;
            r.decoder.waveLanesFilled += s.waveLanesFilled;
            r.decoder.osdBatchGroups += s.osdBatchGroups;
            r.decoder.osdSharedPivots += s.osdSharedPivots;
            r.decoder.stagedChunks += s.stagedChunks;
            if (r.decoder.backend.empty())
                r.decoder.backend = s.backend;
        }
        if (onTaskDone)
            onTaskDone(r);
    };

    auto dispatchWave = [&](size_t i) -> bool {
        TaskState& st = states[i];
        std::vector<ChunkPlan> wave = st.sampler->nextWave();
        if (wave.empty())
            return false;
        // Cross-chunk syndrome staging: partition the wave into
        // groups of `stagingChunks` consecutive plans and submit one
        // decode job per group. Group boundaries depend only on the
        // wave's chunk indices — never on worker count or completion
        // order — so every decoder statistic stays deterministic.
        const size_t group = std::max<size_t>(
            size_t{1}, st.spec->stop.stagingChunks);
        std::vector<std::vector<ChunkPlan>> jobs;
        for (size_t g = 0; g < wave.size(); g += group)
            jobs.emplace_back(
                wave.begin() + static_cast<std::ptrdiff_t>(g),
                wave.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(g + group, wave.size())));
        st.outstanding = jobs.size();
        for (std::vector<ChunkPlan>& job : jobs) {
            pool_.submit([&events, &st, i, plans = std::move(job)] {
                const auto c0 = std::chrono::steady_clock::now();
                Event e;
                e.task = i;
                try {
                    const int w = ThreadPool::workerIndex();
                    auto& ctx = st.workers[w >= 0
                                               ? static_cast<size_t>(w)
                                               : 0];
                    if (!ctx)
                        ctx = std::make_unique<WorkerCtx>(*st.dem,
                                                          st.spec->bp);
                    e.outcome = runChunkGroup(*st.dem, plans.data(),
                                              plans.size(),
                                              ctx->decoder,
                                              ctx->batches);
                    e.kind = EventKind::ChunkDone;
                } catch (const std::exception& ex) {
                    e.kind = EventKind::Failed;
                    e.error = ex.what();
                } catch (...) {
                    e.kind = EventKind::Failed;
                    e.error = "unknown sampling error";
                }
                e.seconds = elapsedSeconds(c0);
                events.push(std::move(e));
            });
        }
        return true;
    };

    // Checkpointed tasks are done before any job launches; the rest
    // get a resolve job (compile + DEM build through the shared cache).
    for (size_t i = 0; i < n; ++i) {
        TaskResult& r = result.tasks[i];
        if (resume != nullptr) {
            auto it = resume->tasks.find(r.contentHash);
            if (it != resume->tasks.end()) {
                const TaskResult& saved = it->second;
                r.logicalErrorRate = saved.logicalErrorRate;
                r.wilson = saved.wilson;
                r.perRoundErrorRate = saved.perRoundErrorRate;
                r.roundLatencyUs = saved.roundLatencyUs;
                r.demDetectors = saved.demDetectors;
                r.demMechanisms = saved.demMechanisms;
                r.decoder = saved.decoder;
                r.chunks = saved.chunks;
                r.stoppedEarly = saved.stoppedEarly;
                r.sampleSeconds = saved.sampleSeconds;
                r.fromCheckpoint = true;
                states[i].finished = true;
                if (onTaskDone)
                    onTaskDone(r);
                continue;
            }
        }
        ++remaining;
    }

    for (size_t i = 0; i < n; ++i) {
        if (states[i].finished)
            continue;
        TaskState& st = states[i];
        pool_.submit([this, &events, &st, i] {
            Event e;
            e.task = i;
            try {
                const TaskSpec& t = *st.spec;
                double latency = t.roundLatencyUs;
                if (t.compileLatency) {
                    HashStream ch;
                    ch.absorb(st.codeHash)
                        .absorb(st.scheduleHash)
                        .absorb(std::string(
                            architectureName(t.architecture)))
                        .absorb(uint64_t{
                            t.swap == SwapKind::IonSwap ? 1u : 0u})
                        .absorb(uint64_t{t.gridCapacity});
                    st.compiled = cache_.getOrBuildCompile(
                        ch.digest(), [&] {
                            CodesignConfig config;
                            config.architecture = t.architecture;
                            config.ejf.swap = t.swap;
                            config.cyclone.swap = t.swap;
                            config.gridCapacity = t.gridCapacity;
                            return compileCodesign(*st.code,
                                                   *st.schedule,
                                                   config);
                        });
                    latency = st.compiled->execTimeUs;
                }
                latency *= t.latencyScale;
                st.latencyUs = latency;

                // Schedule-derived per-qubit idle twirls: explicit
                // ones win; otherwise measure the compiled IR. Only
                // PerQubitSchedule mode consumes them — the twirls
                // are part of the DEM identity, so uniform-mode tasks
                // must not carry unhashed ones into the circuit.
                std::vector<PauliTwirl> perQubitIdle;
                if (t.idleNoise == IdleNoiseMode::PerQubitSchedule) {
                    perQubitIdle = t.perQubitIdle;
                    if (perQubitIdle.empty()) {
                        if (!st.compiled) {
                            throw std::invalid_argument(
                                "per-qubit idle noise needs a compiled "
                                "architecture (or explicit perQubitIdle "
                                "twirls)");
                        }
                        perQubitIdle = perQubitIdleFromSchedule(
                            st.compiled->schedule, st.code->numQubits(),
                            t.physicalError, t.latencyScale);
                    }
                }

                HashStream dh;
                dh.absorb(st.codeHash)
                    .absorb(st.scheduleHash)
                    .absorb(t.physicalError)
                    .absorb(latency)
                    .absorb(uint64_t{st.rounds})
                    .absorb(uint64_t{t.xBasis ? 1u : 0u});
                if (t.idleNoise == IdleNoiseMode::PerQubitSchedule) {
                    // The DEM now depends on the exact timeline, not
                    // just its makespan: key on the IR's content hash
                    // (or the explicit twirl values).
                    dh.absorb(uint64_t{1});
                    if (!t.perQubitIdle.empty()) {
                        for (const PauliTwirl& twirl : perQubitIdle)
                            dh.absorb(twirl.px)
                                .absorb(twirl.py)
                                .absorb(twirl.pz);
                    } else {
                        dh.absorb(
                            hashTimedSchedule(st.compiled->schedule));
                        dh.absorb(t.latencyScale);
                    }
                }
                st.dem = cache_.getOrBuildDem(dh.digest(), [&] {
                    MemoryCircuitOptions opts;
                    opts.rounds = st.rounds;
                    opts.perQubitIdle = perQubitIdle;
                    opts.noise =
                        latency > 0.0 && perQubitIdle.empty()
                        ? NoiseModel::withLatency(t.physicalError,
                                                  latency)
                        : NoiseModel::uniform(t.physicalError);
                    const Circuit circuit = t.xBasis
                        ? buildXMemoryCircuit(*st.code, *st.schedule,
                                              opts)
                        : buildZMemoryCircuit(*st.code, *st.schedule,
                                              opts);
                    return buildDetectorErrorModel(circuit);
                });
                e.kind = EventKind::Resolved;
            } catch (const std::exception& ex) {
                e.kind = EventKind::Failed;
                e.error = ex.what();
            } catch (...) {
                e.kind = EventKind::Failed;
                e.error = "unknown build error";
            }
            events.push(std::move(e));
        });
    }

    while (remaining > 0) {
        Event e = events.pop();
        TaskState& st = states[e.task];
        if (st.finished)
            continue;
        switch (e.kind) {
          case EventKind::Resolved:
            st.resolved = true;
            st.sampler.emplace(st.spec->stop, st.taskSeed);
            if (!dispatchWave(e.task)) {
                finalize(e.task);
                --remaining;
            }
            break;
          case EventKind::ChunkDone:
            st.sampler->absorb(e.outcome);
            st.sampleSeconds += e.seconds;
            if (--st.outstanding == 0) {
                if (st.failed || st.sampler->done() ||
                    !dispatchWave(e.task)) {
                    finalize(e.task);
                    --remaining;
                }
            }
            break;
          case EventKind::Failed:
            if (result.tasks[e.task].error.empty())
                result.tasks[e.task].error = e.error;
            if (!st.resolved) {
                finalize(e.task);
                --remaining;
            } else {
                // A chunk failed: drain the rest of its wave before
                // finalizing so no job still references this task.
                st.failed = true;
                st.sampleSeconds += e.seconds;
                if (--st.outstanding == 0) {
                    finalize(e.task);
                    --remaining;
                }
            }
            break;
        }
    }

    const CacheStats after = cache_.stats();
    result.cache.compileHits = after.compileHits - before.compileHits;
    result.cache.compileMisses =
        after.compileMisses - before.compileMisses;
    result.cache.demHits = after.demHits - before.demHits;
    result.cache.demMisses = after.demMisses - before.demMisses;
    result.wallSeconds = elapsedSeconds(t0);
    return result;
}

CampaignResult
runCampaign(const CampaignSpec& spec, const CampaignCheckpoint* resume,
            const CampaignEngine::TaskCallback& onTaskDone)
{
    ThreadPool pool(spec.threads);
    ArtifactCache cache;
    CampaignEngine engine(pool, cache);
    return engine.run(spec, resume, onTaskDone);
}

} // namespace cyclone
