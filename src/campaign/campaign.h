/**
 * @file
 * The campaign engine: adaptive Monte-Carlo orchestration of many
 * logical-error-rate experiments on one shared work-stealing pool.
 *
 * The engine turns a declarative CampaignSpec into per-task LER
 * estimates. Every stage runs as pool jobs: architecture compiles and
 * DEM builds are deduplicated through the shared ArtifactCache, and
 * sampling is scheduled in deterministic chunk waves whose shot totals
 * adapt per task (see AdaptiveSampler). The caller's thread only
 * coordinates, so campaigns scale to every core the pool owns while
 * remaining bit-reproducible for a fixed seed at any thread count.
 */

#ifndef CYCLONE_CAMPAIGN_CAMPAIGN_H
#define CYCLONE_CAMPAIGN_CAMPAIGN_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/artifact_cache.h"
#include "campaign/campaign_spec.h"
#include "campaign/thread_pool.h"
#include "common/stats.h"
#include "decoder/bposd_decoder.h"

namespace cyclone {

/** Outcome of one campaign task. */
struct TaskResult
{
    std::string id;
    std::string codeName;
    /** Architecture name, or "explicit" for a fixed-latency task. */
    std::string architecture;

    double physicalError = 0.0;
    size_t rounds = 0;
    double roundLatencyUs = 0.0;
    bool xBasis = false;

    /** Shot counts with normal-approximation stderr. */
    RateEstimate logicalErrorRate;
    /** Wilson 95% half-width of the estimate. */
    double wilson = 0.0;
    /** Per-round failure rate: 1 - (1 - LER)^(1/rounds). */
    double perRoundErrorRate = 0.0;

    size_t demDetectors = 0;
    size_t demMechanisms = 0;
    BpOsdStats decoder;

    /**
     * Compile-derived round profile, read from the TimedSchedule IR
     * (zero/empty for explicit-latency and checkpointed tasks).
     */
    double compileMakespanUs = 0.0;
    TimeBreakdown compileBreakdown;
    double compileParallelFraction = 0.0;
    size_t trapRoadblocks = 0;
    size_t junctionRoadblocks = 0;
    WaitHistogram roadblockWaits;

    size_t chunks = 0;
    bool stoppedEarly = false;
    bool fromCheckpoint = false;
    /** Summed worker time spent sampling+decoding, seconds. */
    double sampleSeconds = 0.0;

    /** Content hash of the task (checkpoint identity). */
    uint64_t contentHash = 0;

    /** Non-empty when the task failed to build or sample. */
    std::string error;
};

/** Completed tasks from a previous run, keyed by content hash. */
struct CampaignCheckpoint
{
    std::unordered_map<uint64_t, TaskResult> tasks;
};

/** Outcome of a whole campaign. */
struct CampaignResult
{
    std::string name;
    uint64_t seed = 0;
    std::vector<TaskResult> tasks;

    /** Cache activity during this run (delta, not lifetime). */
    CacheStats cache;

    double wallSeconds = 0.0;

    /** Total Monte-Carlo shots across tasks (checkpointed included). */
    size_t totalShots() const;
};

/** Orchestrates campaigns over a shared pool and artifact cache. */
class CampaignEngine
{
  public:
    /** Called on the coordinating thread as each task completes. */
    using TaskCallback = std::function<void(const TaskResult&)>;

    /** Pool and cache must outlive the engine. */
    CampaignEngine(ThreadPool& pool, ArtifactCache& cache);

    /**
     * Execute every task of `spec` to completion.
     *
     * @param spec the campaign
     * @param resume previously completed tasks to skip (matched by
     *        content hash), e.g. loaded from a checkpoint file
     * @param onTaskDone per-task completion hook (progress printing,
     *        incremental checkpointing)
     */
    CampaignResult run(const CampaignSpec& spec,
                       const CampaignCheckpoint* resume = nullptr,
                       const TaskCallback& onTaskDone = nullptr);

  private:
    ThreadPool& pool_;
    ArtifactCache& cache_;
};

/** One-call convenience: private pool (spec.threads) and cache. */
CampaignResult runCampaign(const CampaignSpec& spec,
                           const CampaignCheckpoint* resume = nullptr,
                           const CampaignEngine::TaskCallback& onTaskDone =
                               nullptr);

/**
 * Resolve a campaign code name: any catalog::byName() name, plus
 * "surface<d>" for the distance-d surface code. Throws on unknown
 * names.
 */
CssCode resolveCampaignCode(const std::string& name);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_CAMPAIGN_H
