/**
 * @file
 * The campaign engine: adaptive Monte-Carlo orchestration of many
 * logical-error-rate experiments on one shared work-stealing pool.
 *
 * The engine turns a declarative CampaignSpec into per-task LER
 * estimates. Every stage runs as pool jobs: architecture compiles and
 * DEM builds are deduplicated through the shared ArtifactCache, and
 * sampling is scheduled in deterministic chunk waves whose shot totals
 * adapt per task (see AdaptiveSampler). The caller's thread only
 * coordinates, so campaigns scale to every core the pool owns while
 * remaining bit-reproducible for a fixed seed at any thread count.
 */

#ifndef CYCLONE_CAMPAIGN_CAMPAIGN_H
#define CYCLONE_CAMPAIGN_CAMPAIGN_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/artifact_cache.h"
#include "campaign/campaign_spec.h"
#include "campaign/thread_pool.h"
#include "common/stats.h"
#include "decoder/bposd_decoder.h"
#include "decoder/stream_decoder.h"

namespace cyclone {

/** Outcome of one campaign task. */
struct TaskResult
{
    std::string id;
    std::string codeName;
    /** Architecture name, or "explicit" for a fixed-latency task. */
    std::string architecture;

    double physicalError = 0.0;
    size_t rounds = 0;
    double roundLatencyUs = 0.0;
    bool xBasis = false;

    /** Shot counts with normal-approximation stderr. */
    RateEstimate logicalErrorRate;
    /** Wilson 95% half-width of the estimate. */
    double wilson = 0.0;
    /** Per-round failure rate: 1 - (1 - LER)^(1/rounds). */
    double perRoundErrorRate = 0.0;

    size_t demDetectors = 0;
    size_t demMechanisms = 0;
    BpOsdStats decoder;

    /** True when the task ran through the streaming decode service. */
    bool streamed = false;
    /** Streaming latency/occupancy telemetry (zero when !streamed).
     *  Percentiles are finalized after merging worker histograms;
     *  checkpoint-restored tasks carry them verbatim. */
    StreamDecodeStats stream;

    /**
     * Compile-derived round profile, read from the TimedSchedule IR
     * (zero/empty for explicit-latency and checkpointed tasks).
     */
    double compileMakespanUs = 0.0;
    TimeBreakdown compileBreakdown;
    double compileParallelFraction = 0.0;
    size_t trapRoadblocks = 0;
    size_t junctionRoadblocks = 0;
    WaitHistogram roadblockWaits;

    size_t chunks = 0;
    bool stoppedEarly = false;
    bool fromCheckpoint = false;
    /** Summed worker time spent sampling+decoding, seconds. */
    double sampleSeconds = 0.0;

    /** Content hash of the task (checkpoint identity). */
    uint64_t contentHash = 0;

    /** Non-empty when the task failed to build or sample. */
    std::string error;
};

/** Completed tasks from a previous run, keyed by content hash. */
struct CampaignCheckpoint
{
    std::unordered_map<uint64_t, TaskResult> tasks;
};

/** Spool activity of a distributed run (all zero in-process). */
struct SpoolStats
{
    /** Shards written to the spool's open/ directory. */
    size_t shardsPublished = 0;
    /** Shard result records merged into task results. */
    size_t shardsMerged = 0;
    /** Expired leases returned to open/ (killed/stalled workers). */
    size_t shardsReclaimed = 0;
    /** Shards satisfied by records already in the spool (resume). */
    size_t recordsReused = 0;
    /** Shards quarantined after repeated reclaims (poison shards). */
    size_t shardsPoisoned = 0;
    /** Corrupt spool files (records, journal) quarantined. */
    size_t recordsQuarantined = 0;
    /** Transient I/O failures absorbed by the retry policy. */
    size_t transientRetries = 0;
    /** 1 if this run stole a dead coordinator's lease (failover). */
    size_t coordinatorTakeovers = 0;
    /** Tasks restored from a dead coordinator's merge journal. */
    size_t journalRestores = 0;
    /** Worker health at the end of the run (from workers/ files). */
    size_t workersHealthy = 0;
    size_t workersDegraded = 0;
    size_t workersLost = 0;
};

/** Outcome of a whole campaign. */
struct CampaignResult
{
    std::string name;
    uint64_t seed = 0;
    std::vector<TaskResult> tasks;

    /** Cache activity during this run (delta, not lifetime). */
    CacheStats cache;

    /** Spool activity (distributed runs only). */
    SpoolStats spool;

    double wallSeconds = 0.0;

    /** Total Monte-Carlo shots across tasks (checkpointed included). */
    size_t totalShots() const;
};

/**
 * A task with its identity — and, after buildTaskArtifacts, its
 * compiled artifacts — resolved. This is the unit both execution
 * modes share: the in-process engine resolves tasks on its pool, the
 * spool coordinator and every worker process resolve the same spec
 * text through resolveTaskIdentities and arrive at the same content
 * hashes, seeds and artifacts, which is what makes distributed
 * results bit-identical to local ones. `spec` points into the
 * CampaignSpec it was resolved from, which must stay alive.
 */
struct ResolvedTask
{
    const TaskSpec* spec = nullptr;
    std::shared_ptr<const CssCode> code;
    std::shared_ptr<const SyndromeSchedule> schedule;
    size_t rounds = 0;
    uint64_t codeHash = 0;
    uint64_t scheduleHash = 0;
    /** Mix of campaign seed, task index and the task's seed salt. */
    uint64_t taskSeed = 0;
    /** Checkpoint identity of the task. */
    uint64_t contentHash = 0;

    // Filled by buildTaskArtifacts.
    std::shared_ptr<const CompileResult> compiled;
    std::shared_ptr<const DetectorErrorModel> dem;
    double latencyUs = 0.0;
};

/**
 * Resolve codes, schedules, seeds and content hashes for every task
 * of `spec` (cheap, deterministic, no artifact builds). Throws on
 * unknown codes or structurally bad tasks, so bad specs fail before
 * any work launches.
 */
std::vector<ResolvedTask> resolveTaskIdentities(const CampaignSpec& spec);

/**
 * Build (or fetch from `cache`) the task's compile result and
 * detector error model, filling `task.compiled` / `task.dem` /
 * `task.latencyUs`. Safe to call concurrently for different tasks;
 * concurrent same-key builds dedupe inside the cache.
 */
void buildTaskArtifacts(ResolvedTask& task, ArtifactCache& cache);

/** Copy DEM/compile-derived metadata of a built task into a result. */
void fillResolvedMetadata(TaskResult& result, const ResolvedTask& task);

/**
 * If `resume` holds a completed task with `result.contentHash`, copy
 * its saved fields into `result` (marking fromCheckpoint) and return
 * true.
 */
bool applyCheckpoint(TaskResult& result, const CampaignCheckpoint* resume);

/** Orchestrates campaigns over a shared pool and artifact cache. */
class CampaignEngine
{
  public:
    /** Called on the coordinating thread as each task completes. */
    using TaskCallback = std::function<void(const TaskResult&)>;

    /** Pool and cache must outlive the engine. */
    CampaignEngine(ThreadPool& pool, ArtifactCache& cache);

    /**
     * Execute every task of `spec` to completion.
     *
     * @param spec the campaign
     * @param resume previously completed tasks to skip (matched by
     *        content hash), e.g. loaded from a checkpoint file
     * @param onTaskDone per-task completion hook (progress printing,
     *        incremental checkpointing)
     */
    CampaignResult run(const CampaignSpec& spec,
                       const CampaignCheckpoint* resume = nullptr,
                       const TaskCallback& onTaskDone = nullptr);

  private:
    ThreadPool& pool_;
    ArtifactCache& cache_;
};

/** One-call convenience: private pool (spec.threads) and cache. */
CampaignResult runCampaign(const CampaignSpec& spec,
                           const CampaignCheckpoint* resume = nullptr,
                           const CampaignEngine::TaskCallback& onTaskDone =
                               nullptr);

/**
 * Resolve a campaign code name: any catalog::byName() name, plus
 * "surface<d>" for the distance-d surface code. Throws on unknown
 * names.
 */
CssCode resolveCampaignCode(const std::string& name);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_CAMPAIGN_H
