/**
 * @file
 * Deterministic fault injection for the distributed campaign stack.
 *
 * A FaultPlan is a seeded schedule of failures bound to *named fault
 * points* — stable strings threaded through the spool, coordinator,
 * and artifact cache at every commit, heartbeat, and I/O site. Each
 * time an instrumented operation runs it calls faultPoint(name),
 * which counts the hit and evaluates the installed plan's rules
 * against it. With no plan installed (the production default) the
 * call is a single relaxed atomic load.
 *
 * Plan text grammar (env var CYCLONE_FAULT_PLAN or the campaign spec
 * key `fault_plan`); rules are ';'-separated:
 *
 *     point:action[@HIT][*COUNT]
 *     seed=N
 *
 * where HIT is the 1-based ordinal of the first affected hit
 * (default 1) and COUNT how many consecutive hits are affected
 * (default 1; `freeze` defaults to "forever"). Actions:
 *
 *     crash_before  _exit(kFaultCrashExitCode) before the commit
 *                   rename (tmp written, final name absent)
 *     crash_after   _exit after the rename (commit durable)
 *     torn          write a truncated prefix of the payload directly
 *                   to the FINAL path, then crash — models a
 *                   non-atomic writer dying mid-write
 *     transient     throw TransientIoError (see retry_policy.h) —
 *                   models EIO/ENOSPC-style hiccups
 *     freeze        heartbeat points only: silently skip the
 *                   heartbeat, so the lease goes stale while the
 *                   process is still alive
 *
 * Example: kill the coordinator just before it merges its second
 * record, and make the third spool write fail twice:
 *
 *     coord.record.merged:crash_before@2;spool.io.write:transient*2@3
 *
 * The fault-point catalog is documented in the README's distributed-
 * campaigns section; grep for faultPoint( to enumerate it in code.
 */

#ifndef CYCLONE_CAMPAIGN_FAULT_PLAN_H
#define CYCLONE_CAMPAIGN_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cyclone {

/** Exit code of an injected crash; tests assert on it to tell a
 *  planned kill from a genuine failure. */
constexpr int kFaultCrashExitCode = 70;

/** What an injected fault does when its rule fires. */
enum class FaultAction
{
    CrashBefore,
    CrashAfter,
    Torn,
    Transient,
    Freeze,
};

/** One parsed plan rule. */
struct FaultRule
{
    std::string point;
    FaultAction action = FaultAction::CrashBefore;
    /** 1-based ordinal of the first hit the rule affects. */
    size_t firstHit = 1;
    /** Number of consecutive hits affected. */
    size_t count = 1;
};

/** Parsed, installable fault schedule. */
struct FaultPlan
{
    std::vector<FaultRule> rules;
    uint64_t seed = 0x6661756c74ull; // "fault"

    bool empty() const { return rules.empty(); }

    /** Parse plan text; throws std::runtime_error on bad syntax. */
    static FaultPlan parse(const std::string& text);
};

/** Verdict of one faultPoint() call for the current hit. */
struct FaultDecision
{
    bool crashBefore = false;
    bool crashAfter = false;
    bool torn = false;
    bool transient = false;
    bool freeze = false;
};

/**
 * Install `plan` as the process-global schedule and reset all hit
 * counters. Install an empty plan to disarm. Overrides any plan
 * loaded from the environment.
 */
void installFaultPlan(FaultPlan plan);

/**
 * Count a hit of `point` and evaluate the installed plan. The first
 * call in a process lazily loads CYCLONE_FAULT_PLAN from the
 * environment if no plan was installed. Thread-safe; near-free when
 * no plan is armed.
 */
FaultDecision faultPoint(const char* point);

/**
 * Crash like a kill -9 at `point`: flush nothing, run no destructors,
 * _exit(kFaultCrashExitCode).
 */
[[noreturn]] void faultCrash(const char* point);

/**
 * Convenience for pure progress milestones (no payload to tear):
 * faultPoint(point), crash if either crash flag fired.
 */
void faultMilestone(const char* point);

/**
 * Seeded truncation length for a torn write of `size` payload bytes:
 * deterministic in (plan seed, point), always in [0, size).
 */
size_t faultTornLength(const char* point, size_t size);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_FAULT_PLAN_H
