#include "campaign/campaign_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <unistd.h>

#include "common/stats.h"
#include "compiler/architecture.h"

namespace cyclone {

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
trim(const std::string& s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(s);
    while (std::getline(in, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

[[noreturn]] void
specError(size_t line, const std::string& message)
{
    throw std::runtime_error("campaign spec line " +
                             std::to_string(line) + ": " + message);
}

/**
 * Strict numeric field parsers. Every numeric spec key routes
 * through these so a malformed value reports the offending line AND
 * key ("staging_chunks = banana" names both), instead of a bare
 * std::invalid_argument; trailing garbage ("12abc", which std::stoull
 * happily truncates to 12) is rejected rather than silently accepted.
 */
unsigned long long
parseSpecCount(size_t line, const std::string& key,
               const std::string& value)
{
    // stoull accepts (and wraps) negative input; reject it up front.
    if (!value.empty() && value.front() == '-')
        specError(line, "key '" + key +
                      "': expected a non-negative integer, got '" +
                      value + "'");
    try {
        size_t pos = 0;
        const unsigned long long v = std::stoull(value, &pos);
        if (pos != value.size())
            specError(line, "key '" + key +
                          "': trailing characters in number '" +
                          value + "'");
        return v;
    } catch (const std::invalid_argument&) {
        specError(line,
                  "key '" + key + "': invalid number '" + value + "'");
    } catch (const std::out_of_range&) {
        specError(line, "key '" + key + "': number out of range '" +
                      value + "'");
    }
}

double
parseSpecReal(size_t line, const std::string& key,
              const std::string& value)
{
    try {
        size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size())
            specError(line, "key '" + key +
                          "': trailing characters in number '" +
                          value + "'");
        return v;
    } catch (const std::invalid_argument&) {
        specError(line,
                  "key '" + key + "': invalid number '" + value + "'");
    } catch (const std::out_of_range&) {
        specError(line, "key '" + key + "': number out of range '" +
                      value + "'");
    }
}

/** One [task] block before arch/p expansion. */
struct TaskBlock
{
    TaskSpec base;
    std::vector<std::string> archs{"cyclone"};
    std::vector<double> ps{1e-3};
    size_t line = 0;
};

bool
parseTaskArchitecture(const std::string& name, TaskSpec& task)
{
    if (name == "none" || name == "explicit") {
        task.compileLatency = false;
        return true;
    }
    const std::optional<Architecture> arch = parseArchitecture(name);
    if (!arch)
        return false;
    task.compileLatency = true;
    task.architecture = *arch;
    return true;
}

void
expandBlock(const TaskBlock& block, CampaignSpec& spec,
            std::vector<size_t>& taskLines)
{
    const bool multi = block.archs.size() * block.ps.size() > 1;
    for (const std::string& archName : block.archs) {
        for (double p : block.ps) {
            TaskSpec task = block.base;
            if (!parseTaskArchitecture(archName, task))
                specError(block.line,
                          "unknown architecture '" + archName + "'");
            task.physicalError = p;
            if (!task.id.empty() && multi) {
                char suffix[48];
                std::snprintf(suffix, sizeof suffix, "/%s/p=%.3g",
                              archName.c_str(), p);
                task.id += suffix;
            }
            spec.tasks.push_back(std::move(task));
            taskLines.push_back(block.line);
        }
    }
}

/**
 * Reject duplicate effective task ids. Results, checkpoints and spool
 * shards all key tasks by id or index; two tasks sharing an id would
 * silently shadow each other in every report. Auto ids ("task<N>")
 * participate too, so an explicit "task3" colliding with the third
 * anonymous task is caught as well.
 */
void
checkDuplicateTaskIds(const CampaignSpec& spec,
                      const std::vector<size_t>& taskLines)
{
    std::unordered_map<std::string, size_t> seen;
    for (size_t i = 0; i < spec.tasks.size(); ++i) {
        const std::string id = !spec.tasks[i].id.empty()
            ? spec.tasks[i].id
            : "task" + std::to_string(i);
        const auto [it, inserted] = seen.emplace(id, i);
        if (!inserted)
            specError(taskLines[i],
                      "duplicate task id '" + id +
                          "' (first defined by the [task] section at "
                          "line " +
                          std::to_string(taskLines[it->second]) + ")");
    }
}

} // namespace

std::string
campaignResultToJson(const CampaignResult& result)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"campaign\": \"" << jsonEscape(result.name) << "\",\n";
    out << "  \"seed\": " << result.seed << ",\n";
    out << "  \"wall_seconds\": " << num(result.wallSeconds) << ",\n";
    out << "  \"total_shots\": " << result.totalShots() << ",\n";
    out << "  \"cache\": {\"compile_hits\": " << result.cache.compileHits
        << ", \"compile_misses\": " << result.cache.compileMisses
        << ", \"dem_hits\": " << result.cache.demHits
        << ", \"dem_misses\": " << result.cache.demMisses
        << ",\n            \"compile_store_hits\": "
        << result.cache.compileStoreHits
        << ", \"dem_store_hits\": " << result.cache.demStoreHits
        << ", \"compile_bytes\": " << result.cache.compileBytes
        << ", \"dem_bytes\": " << result.cache.demBytes
        << ", \"quarantined\": " << result.cache.quarantinedBlobs
        << "},\n";
    out << "  \"spool\": {\"shards_published\": "
        << result.spool.shardsPublished
        << ", \"shards_merged\": " << result.spool.shardsMerged
        << ", \"shards_reclaimed\": " << result.spool.shardsReclaimed
        << ", \"records_reused\": " << result.spool.recordsReused
        << ",\n            \"shards_poisoned\": "
        << result.spool.shardsPoisoned
        << ", \"records_quarantined\": "
        << result.spool.recordsQuarantined
        << ", \"transient_retries\": "
        << result.spool.transientRetries
        << ", \"coordinator_takeovers\": "
        << result.spool.coordinatorTakeovers
        << ", \"journal_restores\": " << result.spool.journalRestores
        << ",\n            \"workers_healthy\": "
        << result.spool.workersHealthy
        << ", \"workers_degraded\": " << result.spool.workersDegraded
        << ", \"workers_lost\": " << result.spool.workersLost
        << "},\n";
    out << "  \"tasks\": [\n";
    for (size_t i = 0; i < result.tasks.size(); ++i) {
        const TaskResult& t = result.tasks[i];
        out << "    {\"id\": \"" << jsonEscape(t.id) << "\", \"code\": \""
            << jsonEscape(t.codeName) << "\", \"architecture\": \""
            << jsonEscape(t.architecture) << "\", \"p\": "
            << num(t.physicalError) << ", \"rounds\": " << t.rounds
            << ", \"basis\": \"" << (t.xBasis ? 'x' : 'z')
            << "\", \"round_latency_us\": " << num(t.roundLatencyUs)
            << ",\n     \"shots\": " << t.logicalErrorRate.trials
            << ", \"failures\": " << t.logicalErrorRate.successes
            << ", \"ler\": " << num(t.logicalErrorRate.rate)
            << ", \"stderr\": " << num(t.logicalErrorRate.stderr)
            << ", \"wilson\": " << num(t.wilson)
            << ", \"per_round_ler\": " << num(t.perRoundErrorRate)
            << ",\n     \"dem_detectors\": " << t.demDetectors
            << ", \"dem_mechanisms\": " << t.demMechanisms
            << ", \"chunks\": " << t.chunks << ", \"stopped_early\": "
            << (t.stoppedEarly ? "true" : "false")
            << ", \"from_checkpoint\": "
            << (t.fromCheckpoint ? "true" : "false")
            << ", \"sample_seconds\": " << num(t.sampleSeconds)
            << ",\n     \"decoder\": {\"decodes\": " << t.decoder.decodes
            << ", \"bp_converged\": " << t.decoder.bpConverged
            << ", \"osd_invocations\": " << t.decoder.osdInvocations
            << ", \"osd_failures\": " << t.decoder.osdFailures
            << ", \"trivial_shots\": " << t.decoder.trivialShots
            << ", \"memo_hits\": " << t.decoder.memoHits
            << ", \"bp_iterations\": " << t.decoder.bpIterations
            << ", \"wave_groups\": " << t.decoder.waveGroups
            << ", \"wave_lane_slots\": " << t.decoder.waveLaneSlots
            << ", \"wave_lanes_filled\": " << t.decoder.waveLanesFilled
            << ", \"osd_batch_groups\": " << t.decoder.osdBatchGroups
            << ", \"osd_shared_pivots\": " << t.decoder.osdSharedPivots
            << ", \"staged_chunks\": " << t.decoder.stagedChunks
            << ", \"backend\": \"" << jsonEscape(t.decoder.backend)
            << "\",\n                 \"trivial_fraction\": "
            << num(t.decoder.trivialFraction())
            << ", \"memo_hit_rate\": " << num(t.decoder.memoHitRate())
            << ", \"mean_bp_iterations\": "
            << num(t.decoder.meanBpIterations())
            << ", \"wave_lane_occupancy\": "
            << num(t.decoder.waveLaneOccupancy()) << "}";
        if (t.streamed) {
            const StreamDecodeStats& s = t.stream;
            out << ",\n     \"streaming\": {\"windows\": " << s.windows
                << ", \"rounds_pushed\": " << s.roundsPushed
                << ", \"truncated_rounds\": " << s.truncatedRounds
                << ", \"deadline_us\": " << num(s.deadlineUs)
                << ", \"deadline_misses\": " << s.deadlineMisses
                << ", \"miss_fraction\": "
                << num(s.deadlineMissFraction())
                << ",\n                   \"latency_p50_us\": "
                << num(s.p50Us) << ", \"latency_p99_us\": "
                << num(s.p99Us) << ", \"latency_p999_us\": "
                << num(s.p999Us) << ", \"latency_mean_us\": "
                << num(s.meanLatencyUs()) << ", \"latency_max_us\": "
                << num(s.latencyMaxUs)
                << ",\n                   \"slab_slots\": "
                << s.slabSlots << ", \"slab_filled\": " << s.slabFilled
                << ", \"slab_occupancy\": " << num(s.slabOccupancy())
                << ", \"flushes_full\": " << s.flushesFull
                << ", \"flushes_deadline\": " << s.flushesDeadline
                << ", \"flushes_final\": " << s.flushesFinal << "}";
        }
        if (t.compileMakespanUs > 0.0) {
            const double span = t.compileMakespanUs;
            const TimeBreakdown& b = t.compileBreakdown;
            out << ",\n     \"compile\": {\"makespan_us\": " << num(span)
                << ", \"parallel_fraction\": "
                << num(t.compileParallelFraction)
                << ", \"trap_roadblocks\": " << t.trapRoadblocks
                << ", \"junction_roadblocks\": " << t.junctionRoadblocks
                << ",\n       \"serialized_us\": {\"gate\": "
                << num(b.gateUs) << ", \"shuttle\": " << num(b.shuttleUs)
                << ", \"junction\": " << num(b.junctionUs)
                << ", \"swap\": " << num(b.swapUs) << ", \"measure\": "
                << num(b.measureUs) << ", \"prep\": " << num(b.prepUs)
                << "},\n       \"utilization\": {\"gate\": "
                << num(b.gateUs / span) << ", \"shuttle\": "
                << num(b.shuttleUs / span) << ", \"junction\": "
                << num(b.junctionUs / span) << ", \"swap\": "
                << num(b.swapUs / span) << "}"
                << ",\n       \"roadblock_waits\": {\"count\": "
                << t.roadblockWaits.waits << ", \"total_us\": "
                << num(t.roadblockWaits.totalWaitUs) << ", \"bins\": [";
            for (size_t b2 = 0; b2 < WaitHistogram::kBins; ++b2) {
                if (b2 > 0)
                    out << ", ";
                out << t.roadblockWaits.bins[b2];
            }
            out << "]}}";
        }
        if (!t.error.empty())
            out << ", \"error\": \"" << jsonEscape(t.error) << "\"";
        out << "}";
        if (i + 1 < result.tasks.size())
            out << ",";
        out << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
campaignResultToCsv(const CampaignResult& result)
{
    std::ostringstream out;
    out << "id,code,architecture,p,rounds,basis,round_latency_us,shots,"
           "failures,ler,wilson,per_round_ler,chunks,stopped_early,"
           "from_checkpoint,sample_seconds,trivial_fraction,"
           "memo_hit_rate,mean_bp_iterations,wave_lane_occupancy,"
           "osd_batch_groups,osd_shared_pivots,staged_chunks,backend,"
           "stream_windows,stream_p50_us,stream_p99_us,stream_p999_us,"
           "stream_deadline_misses,stream_slab_occupancy,"
           "util_gate,util_shuttle,"
           "util_junction,util_swap,parallel_fraction,trap_roadblocks,"
           "junction_roadblocks,roadblock_wait_us,error\n";
    for (const TaskResult& t : result.tasks) {
        const double span = t.compileMakespanUs;
        auto util = [&](double component_us) {
            return span > 0.0 ? component_us / span : 0.0;
        };
        out << csvField(t.id) << ',' << csvField(t.codeName) << ','
            << csvField(t.architecture) << ','
            << num(t.physicalError) << ',' << t.rounds << ','
            << (t.xBasis ? 'x' : 'z') << ',' << num(t.roundLatencyUs)
            << ',' << t.logicalErrorRate.trials << ','
            << t.logicalErrorRate.successes << ','
            << num(t.logicalErrorRate.rate) << ',' << num(t.wilson)
            << ',' << num(t.perRoundErrorRate) << ',' << t.chunks << ','
            << (t.stoppedEarly ? 1 : 0) << ','
            << (t.fromCheckpoint ? 1 : 0) << ',' << num(t.sampleSeconds)
            << ',' << num(t.decoder.trivialFraction()) << ','
            << num(t.decoder.memoHitRate()) << ','
            << num(t.decoder.meanBpIterations()) << ','
            << num(t.decoder.waveLaneOccupancy()) << ','
            << t.decoder.osdBatchGroups << ','
            << t.decoder.osdSharedPivots << ','
            << t.decoder.stagedChunks << ','
            << csvField(t.decoder.backend) << ','
            << t.stream.windows << ',' << num(t.stream.p50Us) << ','
            << num(t.stream.p99Us) << ',' << num(t.stream.p999Us)
            << ',' << t.stream.deadlineMisses << ','
            << num(t.stream.slabOccupancy()) << ','
            << num(util(t.compileBreakdown.gateUs)) << ','
            << num(util(t.compileBreakdown.shuttleUs)) << ','
            << num(util(t.compileBreakdown.junctionUs)) << ','
            << num(util(t.compileBreakdown.swapUs)) << ','
            << num(t.compileParallelFraction) << ','
            << t.trapRoadblocks << ',' << t.junctionRoadblocks << ','
            << num(t.roadblockWaits.totalWaitUs) << ','
            << csvField(t.error) << '\n';
    }
    return out.str();
}

bool
writeTextFile(const std::string& path, const std::string& content)
{
    // Pid-unique tmp name: concurrent writers of the same path (two
    // coordinators racing a checkpoint during a failover window)
    // never interleave into one tmp file, and the rename publishes
    // whichever finished last, complete.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << content;
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool
saveCheckpoint(const CampaignResult& result, const std::string& path)
{
    std::ostringstream out;
    out << "cyclone-campaign-checkpoint v1\n";
    for (const TaskResult& t : result.tasks) {
        if (!t.error.empty() || t.logicalErrorRate.trials == 0)
            continue;
        char line[640];
        std::snprintf(line, sizeof line,
                      "task %016llx %zu %.17g %zu %zu %zu %zu %zu %d "
                      "%zu %zu %zu %zu %.6f %zu %zu %zu %zu %zu %zu "
                      "%zu %zu %zu %d %zu %zu %.6f %.6f %.6f %.6f "
                      "%.6f %zu %zu\n",
                      static_cast<unsigned long long>(t.contentHash),
                      t.rounds, t.roundLatencyUs, t.demDetectors,
                      t.demMechanisms, t.logicalErrorRate.trials,
                      t.logicalErrorRate.successes, t.chunks,
                      t.stoppedEarly ? 1 : 0, t.decoder.decodes,
                      t.decoder.bpConverged, t.decoder.osdInvocations,
                      t.decoder.osdFailures, t.sampleSeconds,
                      t.decoder.trivialShots, t.decoder.memoHits,
                      t.decoder.bpIterations, t.decoder.waveGroups,
                      t.decoder.waveLaneSlots,
                      t.decoder.waveLanesFilled,
                      t.decoder.osdBatchGroups,
                      t.decoder.osdSharedPivots,
                      t.decoder.stagedChunks, t.streamed ? 1 : 0,
                      t.stream.windows, t.stream.deadlineMisses,
                      t.stream.latencySumUs, t.stream.latencyMaxUs,
                      t.stream.p50Us, t.stream.p99Us, t.stream.p999Us,
                      t.stream.slabSlots, t.stream.slabFilled);
        out << line;
    }
    return writeTextFile(path, out.str());
}

bool
loadCheckpoint(const std::string& path, CampaignCheckpoint& out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header) ||
        trim(header) != "cyclone-campaign-checkpoint v1")
        return false;
    std::string line;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty())
            continue;
        unsigned long long hash = 0;
        size_t rounds = 0, detectors = 0, mechanisms = 0, shots = 0,
               failures = 0, chunks = 0, decodes = 0, converged = 0,
               osdInv = 0, osdFail = 0, trivial = 0, memoHits = 0,
               bpIters = 0, waveGroups = 0, waveSlots = 0,
               waveFilled = 0, osdGroups = 0, osdShared = 0,
               stagedChunks = 0;
        size_t streamWindows = 0, streamMisses = 0, slabSlots = 0,
               slabFilled = 0;
        double latency = 0.0, seconds = 0.0, streamSumUs = 0.0,
               streamMaxUs = 0.0, p50 = 0.0, p99 = 0.0, p999 = 0.0;
        int early = 0, streamed = 0;
        const int got = std::sscanf(
            line.c_str(),
            "task %llx %zu %lg %zu %zu %zu %zu %zu %d %zu %zu %zu %zu "
            "%lg %zu %zu %zu %zu %zu %zu %zu %zu %zu %d %zu %zu %lg "
            "%lg %lg %lg %lg %zu %zu",
            &hash, &rounds, &latency, &detectors, &mechanisms, &shots,
            &failures, &chunks, &early, &decodes, &converged, &osdInv,
            &osdFail, &seconds, &trivial, &memoHits, &bpIters,
            &waveGroups, &waveSlots, &waveFilled, &osdGroups,
            &osdShared, &stagedChunks, &streamed, &streamWindows,
            &streamMisses, &streamSumUs, &streamMaxUs, &p50, &p99,
            &p999, &slabSlots, &slabFilled);
        // 14 fields = pre-batch-pipeline checkpoint (batch stats
        // default to zero); 17 = pre-wave-kernel; 20 = pre-batched-
        // OSD; 22 = pre-staging; 23 = pre-streaming; 33 = current
        // format. The dispatched backend name is deliberately not
        // checkpointed (it describes the host that ran the shots, not
        // the results), and neither is the streaming latency
        // histogram — only its summary scalars and percentiles ride
        // along, restored verbatim.
        if (got != 14 && got != 17 && got != 20 && got != 22 &&
            got != 23 && got != 33)
            return false;
        // sscanf caps at 33 conversions, so a longer line (a future
        // format) would otherwise be misread as the current one:
        // reject any line whose token count exceeds what we parsed.
        size_t tokens = 0;
        bool inToken = false;
        for (const char c : line) {
            const bool ws = c == ' ' || c == '\t';
            if (!ws && !inToken)
                ++tokens;
            inToken = !ws;
        }
        if (tokens != static_cast<size_t>(got) + 1)
            return false;
        TaskResult t;
        t.contentHash = hash;
        t.rounds = rounds;
        t.roundLatencyUs = latency;
        t.demDetectors = detectors;
        t.demMechanisms = mechanisms;
        t.logicalErrorRate = estimateRate(failures, shots);
        t.wilson = wilsonHalfWidth(failures, shots);
        if (rounds > 0 && shots > 0) {
            const double ler =
                t.logicalErrorRate.rate < 1.0 ? t.logicalErrorRate.rate
                                              : 1.0 - 1e-12;
            t.perRoundErrorRate =
                1.0 - std::pow(1.0 - ler,
                               1.0 / static_cast<double>(rounds));
        }
        t.chunks = chunks;
        t.stoppedEarly = early != 0;
        t.decoder.decodes = decodes;
        t.decoder.bpConverged = converged;
        t.decoder.osdInvocations = osdInv;
        t.decoder.osdFailures = osdFail;
        t.decoder.trivialShots = trivial;
        t.decoder.memoHits = memoHits;
        t.decoder.bpIterations = bpIters;
        t.decoder.waveGroups = waveGroups;
        t.decoder.waveLaneSlots = waveSlots;
        t.decoder.waveLanesFilled = waveFilled;
        t.decoder.osdBatchGroups = osdGroups;
        t.decoder.osdSharedPivots = osdShared;
        t.decoder.stagedChunks = stagedChunks;
        t.streamed = streamed != 0;
        t.stream.windows = streamWindows;
        t.stream.deadlineMisses = streamMisses;
        t.stream.latencySumUs = streamSumUs;
        t.stream.latencyMaxUs = streamMaxUs;
        t.stream.p50Us = p50;
        t.stream.p99Us = p99;
        t.stream.p999Us = p999;
        t.stream.slabSlots = slabSlots;
        t.stream.slabFilled = slabFilled;
        t.sampleSeconds = seconds;
        t.fromCheckpoint = true;
        out.tasks[t.contentHash] = t;
    }
    return true;
}

CampaignSpec
parseCampaignSpec(const std::string& text)
{
    CampaignSpec spec;
    std::vector<TaskBlock> blocks;
    TaskBlock* current = nullptr;

    std::istringstream in(text);
    std::string raw;
    size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const size_t comment = raw.find('#');
        if (comment != std::string::npos)
            raw.resize(comment);
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (line == "[task]") {
            blocks.emplace_back();
            blocks.back().line = lineno;
            current = &blocks.back();
            continue;
        }
        if (line.front() == '[')
            specError(lineno, "unknown section '" + line + "'");
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            specError(lineno, "expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            specError(lineno, "expected key = value");

        if (current == nullptr) {
            if (key == "name")
                spec.name = value;
            else if (key == "seed")
                spec.seed = parseSpecCount(lineno, key, value);
            else if (key == "threads")
                spec.threads = parseSpecCount(lineno, key, value);
            else if (key == "spool")
                spec.spool = value;
            else if (key == "workers")
                spec.workers = parseSpecCount(lineno, key, value);
            else if (key == "lease_seconds") {
                spec.leaseSeconds = parseSpecReal(lineno, key, value);
                if (!(spec.leaseSeconds > 0.0))
                    specError(lineno, "lease_seconds must be > 0");
            } else if (key == "max_claim_reclaims")
                spec.maxClaimReclaims =
                    parseSpecCount(lineno, key, value);
            else if (key == "retry_attempts") {
                spec.retryAttempts = parseSpecCount(lineno, key, value);
                if (spec.retryAttempts == 0)
                    specError(lineno, "retry_attempts must be >= 1");
            } else if (key == "retry_base_ms") {
                spec.retryBaseMs = parseSpecReal(lineno, key, value);
                if (spec.retryBaseMs < 0.0)
                    specError(lineno, "retry_base_ms must be >= 0");
            } else if (key == "fault_plan")
                spec.faultPlan = value;
            else
                specError(lineno,
                          "unknown campaign key '" + key + "'");
            continue;
        }
        TaskSpec& t = current->base;
        if (key == "id") {
            t.id = value;
        } else if (key == "code") {
            t.codeName = value;
        } else if (key == "arch") {
            current->archs = splitList(value);
            if (current->archs.empty())
                specError(lineno, "empty arch list");
        } else if (key == "p") {
            current->ps.clear();
            for (const std::string& item : splitList(value))
                current->ps.push_back(
                    parseSpecReal(lineno, key, item));
            if (current->ps.empty())
                specError(lineno, "empty p list");
        } else if (key == "rounds") {
            t.rounds = parseSpecCount(lineno, key, value);
        } else if (key == "basis") {
            if (value == "z")
                t.xBasis = false;
            else if (value == "x")
                t.xBasis = true;
            else
                specError(lineno, "basis must be z or x");
        } else if (key == "latency_us") {
            t.roundLatencyUs = parseSpecReal(lineno, key, value);
        } else if (key == "latency_scale") {
            t.latencyScale = parseSpecReal(lineno, key, value);
        } else if (key == "swap") {
            if (value == "gate")
                t.swap = SwapKind::GateSwap;
            else if (value == "ion")
                t.swap = SwapKind::IonSwap;
            else
                specError(lineno, "swap must be gate or ion");
        } else if (key == "grid-capacity" || key == "grid_capacity") {
            t.gridCapacity = parseSpecCount(lineno, key, value);
            if (t.gridCapacity == 0)
                specError(lineno, "grid-capacity must be >= 1");
        } else if (key == "idle_noise" || key == "idle-noise") {
            if (value == "uniform")
                t.idleNoise = IdleNoiseMode::UniformLatency;
            else if (value == "per-qubit" || value == "per_qubit" ||
                     value == "schedule")
                t.idleNoise = IdleNoiseMode::PerQubitSchedule;
            else
                specError(lineno,
                          "idle_noise must be uniform or per-qubit");
        } else if (key == "chunk_shots") {
            t.stop.chunkShots = parseSpecCount(lineno, key, value);
        } else if (key == "chunks_per_wave") {
            t.stop.chunksPerWave = parseSpecCount(lineno, key, value);
        } else if (key == "max_shots") {
            t.stop.maxShots = parseSpecCount(lineno, key, value);
        } else if (key == "target_rel_err") {
            t.stop.targetRelErr = parseSpecReal(lineno, key, value);
        } else if (key == "min_failures") {
            t.stop.minFailures = parseSpecCount(lineno, key, value);
        } else if (key == "staging_chunks") {
            t.stop.stagingChunks = parseSpecCount(lineno, key, value);
            if (t.stop.stagingChunks == 0)
                specError(lineno, "staging_chunks must be >= 1");
        } else if (key == "shard_chunks") {
            t.stop.shardChunks = parseSpecCount(lineno, key, value);
        } else if (key == "streaming") {
            if (value == "on" || value == "true")
                t.stream.enabled = true;
            else if (value == "off" || value == "false")
                t.stream.enabled = false;
            else
                specError(lineno, "streaming must be on or off");
        } else if (key == "streams") {
            t.stream.streams = parseSpecCount(lineno, key, value);
            if (t.stream.streams == 0)
                specError(lineno, "streams must be >= 1");
        } else if (key == "stream_flush") {
            if (value == "full-wave" || value == "full_wave" ||
                value == "fullwave")
                t.stream.deadlineFlush = false;
            else if (value == "deadline")
                t.stream.deadlineFlush = true;
            else
                specError(lineno,
                          "stream_flush must be full-wave or deadline");
        } else if (key == "stream_deadline_us") {
            t.stream.deadlineUs = parseSpecReal(lineno, key, value);
            if (t.stream.deadlineUs < 0.0)
                specError(lineno, "stream_deadline_us must be >= 0");
        } else if (key == "stream_flush_after_us") {
            t.stream.flushAfterUs = parseSpecReal(lineno, key, value);
            if (t.stream.flushAfterUs < 0.0)
                specError(lineno,
                          "stream_flush_after_us must be >= 0");
        } else if (key == "seed") {
            t.seed = parseSpecCount(lineno, key, value);
        } else if (key == "bp") {
            if (value == "minsum")
                t.bp.variant = BpOptions::Variant::MinSum;
            else if (value == "productsum")
                t.bp.variant = BpOptions::Variant::ProductSum;
            else
                specError(lineno, "bp must be minsum or productsum");
        } else if (key == "bp_iters") {
            t.bp.maxIterations = parseSpecCount(lineno, key, value);
        } else {
            specError(lineno, "unknown task key '" + key + "'");
        }
    }

    std::vector<size_t> taskLines;
    for (const TaskBlock& block : blocks) {
        if (block.base.codeName.empty())
            specError(block.line, "[task] section needs a code");
        expandBlock(block, spec, taskLines);
    }
    if (spec.tasks.empty())
        throw std::runtime_error("campaign spec defines no tasks");
    checkDuplicateTaskIds(spec, taskLines);
    return spec;
}

CampaignSpec
loadCampaignSpec(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open campaign spec: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseCampaignSpec(buffer.str());
}

} // namespace cyclone
