/**
 * @file
 * Bounded jittered-exponential-backoff retries for transient spool
 * filesystem failures.
 *
 * The spool classifies I/O errors: errno values that plausibly clear
 * on their own (EIO, ENOSPC, EAGAIN, EINTR, ESTALE — the NFS hiccup
 * family) surface as TransientIoError, everything else as a plain
 * runtime_error. runWithRetry() retries only the transient kind, with
 * deterministic seeded jitter (so backoff timing is unit-testable
 * without sleeping), and after the attempt budget throws SpoolIoError
 * naming the operation and path — campaigns fail with "write
 * spool/results/t0001-s00002.rec failed after 4 attempts", not a
 * bare EIO from somewhere in a 500-line merge loop.
 */

#ifndef CYCLONE_CAMPAIGN_RETRY_POLICY_H
#define CYCLONE_CAMPAIGN_RETRY_POLICY_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

namespace cyclone {

/** An I/O failure worth retrying (injected or classified errno). */
struct TransientIoError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Terminal spool I/O failure: every retry attempt was consumed by
 * transient errors. Carries the operation ("write", "read", ...) and
 * the path so callers and logs can name the failing file.
 */
struct SpoolIoError : public std::runtime_error
{
    SpoolIoError(std::string op, std::string path_,
                 const std::string& cause, size_t attempts_)
        : std::runtime_error("spool " + op + " " + path_ +
                             " failed after " +
                             std::to_string(attempts_) +
                             " attempts: " + cause),
          operation(std::move(op)), path(std::move(path_)),
          attempts(attempts_)
    {}

    std::string operation;
    std::string path;
    size_t attempts;
};

/** Backoff schedule: delay(k) = min(cap, base * 2^(k-1)) +- jitter. */
struct RetryPolicy
{
    /** Total tries, including the first (>= 1). */
    size_t maxAttempts = 4;
    double baseDelaySeconds = 0.005;
    double maxDelaySeconds = 0.25;
    /** Relative jitter amplitude in [0, 1]. */
    double jitterFraction = 0.25;
    /** Seed of the deterministic jitter stream. */
    uint64_t seed = 0x9e3779b97f4a7c15ull;

    /**
     * Delay in seconds before retry attempt `attempt` (1-based: the
     * delay after the attempt'th failure). Pure — same (policy,
     * attempt) always yields the same delay.
     */
    double delayFor(size_t attempt) const;
};

/** Sleep helper shared by retry loops (seconds, sub-second ok). */
void retrySleep(double seconds);

/**
 * Run `fn`, retrying on TransientIoError per `policy`. `onRetry` (if
 * set) observes each transient failure (called with the 1-based
 * attempt number) before the backoff sleep. Non-transient exceptions
 * propagate immediately; exhausting the budget throws SpoolIoError.
 */
template <typename Fn>
auto
runWithRetry(const RetryPolicy& policy, const char* operation,
             const std::string& path, Fn&& fn,
             const std::function<void(size_t)>& onRetry = nullptr)
    -> decltype(fn())
{
    const size_t budget = std::max<size_t>(1, policy.maxAttempts);
    for (size_t attempt = 1;; ++attempt) {
        try {
            return fn();
        } catch (const TransientIoError& ex) {
            if (onRetry)
                onRetry(attempt);
            if (attempt >= budget)
                throw SpoolIoError(operation, path, ex.what(),
                                   attempt);
            retrySleep(policy.delayFor(attempt));
        }
    }
}

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_RETRY_POLICY_H
