/**
 * @file
 * Distributed campaign execution: coordinator and worker loops over a
 * filesystem spool.
 *
 * The coordinator owns the campaign: it resolves every task, builds
 * (and publishes to the spool's shared artifact store) every compile
 * result and DEM exactly once, then drives each task's AdaptiveSampler
 * wave by wave — but instead of decoding locally it slices every wave
 * into contiguous chunk-range shards, publishes them through the
 * spool, and merges the result records workers post back. Stopping
 * decisions happen at the same wave boundaries on the same cumulative
 * counts as an in-process run, and chunk RNG streams depend only on
 * (task seed, chunk index), so merged results are bit-identical to a
 * single-process run at any worker count — including zero external
 * workers plus N forked local ones.
 *
 * Workers are stateless: they re-parse the spool's spec text,
 * re-resolve task identities (verifying content hashes against each
 * claimed shard), pull artifacts from the shared store (the
 * coordinator pre-published them, so workers never compile), execute
 * the shard's chunks through the same staged decode pipeline on a
 * local thread pool, and post a record. A worker that dies mid-shard
 * simply stops heartbeating; the coordinator reclaims the shard after
 * the lease expires and another worker re-executes it.
 */

#ifndef CYCLONE_CAMPAIGN_COORDINATOR_H
#define CYCLONE_CAMPAIGN_COORDINATOR_H

#include <cstddef>
#include <string>

#include "campaign/campaign.h"
#include "campaign/campaign_spec.h"
#include "campaign/spool.h"

namespace cyclone {

/**
 * Effective chunks-per-shard for a stopping rule: `shardChunks`
 * rounded up to a multiple of `stagingChunks` (so worker-side staging
 * groups coincide exactly with a single-process run's), or about a
 * quarter wave when 0 (auto).
 */
size_t effectiveShardChunks(const StoppingRule& rule);

/**
 * Shots of chunk `index` of a task under `rule` — the same value
 * AdaptiveSampler::nextWave plans, recomputed standalone so workers
 * can rebuild exact ChunkPlans from a shard's chunk range.
 */
size_t chunkShotsAt(const StoppingRule& rule, size_t index);

/**
 * Run `spec` as the coordinator of the spool at `spec.spool`.
 * `specText` is the verbatim spec document, published into the spool
 * for workers to re-parse; it must parse to `spec`. Blocks until all
 * tasks complete (some worker must be draining the spool — see
 * campaign_runner's forked local workers) and returns a result
 * bit-identical to an in-process run of the same spec.
 *
 * @param resume checkpointed tasks to skip, as CampaignEngine::run
 * @param onTaskDone per-task completion hook
 */
CampaignResult
runDistributedCampaign(const CampaignSpec& spec,
                       const std::string& specText,
                       const CampaignCheckpoint* resume = nullptr,
                       const CampaignEngine::TaskCallback& onTaskDone =
                           nullptr);

/** Configuration of one worker process/loop. */
struct WorkerOptions
{
    /** Spool directory (required). */
    std::string spool;
    /** Local decode threads (0 = hardware concurrency). */
    size_t threads = 0;
    /** Label for the worker's stats file ("" = "pid<pid>"). */
    std::string workerId;
    /** Stop after this many shards (0 = run until spool DONE). */
    size_t maxShards = 0;
    /** Seconds between idle polls of open/. */
    double pollSeconds = 0.05;
    /**
     * Test hook: exit the loop immediately after the first successful
     * claim without completing the shard (simulates a worker killed
     * mid-shard, for lease-reclaim tests).
     */
    bool dieAfterClaim = false;
};

/** What one worker loop did (also written to the spool as
 *  stats-<workerId>.txt for cross-process accounting). */
struct WorkerReport
{
    size_t shardsRun = 0;
    size_t shots = 0;
    size_t failures = 0;
    /** This process's artifact-cache activity (store hits vs local
     *  builds prove the fleet compiled each point exactly once). */
    CacheStats cache;
};

/** Text round-trip of a worker stats file (stats-<id>.txt). */
std::string formatWorkerStats(const WorkerReport& report);
/** Throws std::runtime_error on malformed input. */
WorkerReport parseWorkerStats(const std::string& text);

/**
 * Run the worker loop against `opts.spool` until the coordinator's
 * DONE marker appears (or `maxShards` is reached). Waits for the
 * spool to be initialized first, so workers may start before the
 * coordinator. Throws std::runtime_error on a spec/shard content-hash
 * mismatch (the spool holds a different campaign than the shard
 * expects).
 */
WorkerReport runSpoolWorker(const WorkerOptions& opts);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_COORDINATOR_H
