/**
 * @file
 * Distributed campaign execution: coordinator and worker loops over a
 * filesystem spool.
 *
 * The coordinator owns the campaign: it resolves every task, builds
 * (and publishes to the spool's shared artifact store) every compile
 * result and DEM exactly once, then drives each task's AdaptiveSampler
 * wave by wave — but instead of decoding locally it slices every wave
 * into contiguous chunk-range shards, publishes them through the
 * spool, and merges the result records workers post back. Stopping
 * decisions happen at the same wave boundaries on the same cumulative
 * counts as an in-process run, and chunk RNG streams depend only on
 * (task seed, chunk index), so merged results are bit-identical to a
 * single-process run at any worker count — including zero external
 * workers plus N forked local ones.
 *
 * Workers are stateless: they re-parse the spool's spec text,
 * re-resolve task identities (verifying content hashes against each
 * claimed shard), pull artifacts from the shared store (the
 * coordinator pre-published them, so workers never compile), execute
 * the shard's chunks through the same staged decode pipeline on a
 * local thread pool, and post a record. A worker that dies mid-shard
 * simply stops heartbeating; the coordinator reclaims the shard after
 * the lease expires and another worker re-executes it.
 *
 * Failover: the coordinator role itself is leased (spool
 * coord.lease) and journaled (spool journal.txt, rewritten
 * atomically after every task finalize). If the coordinator dies at
 * ANY point — before the spool exists, mid-prebuild, mid-merge,
 * between the last record and DONE — any process can take over:
 * `campaign_runner --coordinator-takeover`, a fresh coordinator run
 * of the same spec, or an idle worker with `promote` set. The
 * takeover waits out the stale lease, steals it (a rename: exactly
 * one winner), restores journaled tasks without re-merging, republishes
 * missing shards (publish skips anything open/claimed/done/recorded),
 * re-merges surviving records, and finalizes. Every step is
 * idempotent, so the merged result is bit-identical to an
 * uninterrupted run.
 */

#ifndef CYCLONE_CAMPAIGN_COORDINATOR_H
#define CYCLONE_CAMPAIGN_COORDINATOR_H

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/campaign_spec.h"
#include "campaign/spool.h"

namespace cyclone {

/**
 * Effective chunks-per-shard for a stopping rule: `shardChunks`
 * rounded up to a multiple of `stagingChunks` (so worker-side staging
 * groups coincide exactly with a single-process run's), or about a
 * quarter wave when 0 (auto).
 */
size_t effectiveShardChunks(const StoppingRule& rule);

/**
 * Shots of chunk `index` of a task under `rule` — the same value
 * AdaptiveSampler::nextWave plans, recomputed standalone so workers
 * can rebuild exact ChunkPlans from a shard's chunk range.
 */
size_t chunkShotsAt(const StoppingRule& rule, size_t index);

/** One finalized task in the coordinator's merge journal. */
struct JournalEntry
{
    size_t task = 0;
    uint64_t contentHash = 0;
    size_t shots = 0;
    size_t failures = 0;
    size_t chunks = 0;
    bool stoppedEarly = false;
    double sampleSeconds = 0.0;
    BpOsdStats decoder;
};

/** Text round-trip of the coordinator merge journal (CRC-protected,
 *  rewritten whole via tmp+rename after every finalize). */
std::string formatCoordJournal(const std::vector<JournalEntry>& entries);
/** Throws CorruptSpoolError on a bad checksum, std::runtime_error on
 *  malformed fields. */
std::vector<JournalEntry> parseCoordJournal(const std::string& text);

/** Coordinator-role configuration. */
struct CoordinatorOptions
{
    /**
     * Let the coordinator claim and execute open shards itself when
     * a merge pass makes no progress (lazy local thread pool). Off
     * by default: the production topology forks dedicated workers
     * around the (thread-free) coordinator, and benchmarks gate on
     * that split. Takeover and promotion turn it on so a lone
     * surviving process can always finish a campaign.
     */
    bool selfExecute = false;
    /** Thread-pool size for self-executed shards (0 = hardware). */
    size_t threads = 0;
    /** Lease owner tag ("" = "pid<pid>"). */
    std::string owner;
};

/**
 * Run `spec` as the coordinator of the spool at `spec.spool`.
 * `specText` is the verbatim spec document, published into the spool
 * for workers to re-parse; it must parse to `spec`. Blocks until all
 * tasks complete (some worker must be draining the spool — see
 * campaign_runner's forked local workers — unless
 * `options.selfExecute` is set) and returns a result bit-identical
 * to an in-process run of the same spec.
 *
 * If the spool already has a live coordinator, waits for its lease
 * to go stale, then steals it — so pointing a second coordinator at
 * a crashed one's spool performs a failover takeover.
 *
 * @param resume checkpointed tasks to skip, as CampaignEngine::run
 * @param onTaskDone per-task completion hook
 */
CampaignResult
runDistributedCampaign(const CampaignSpec& spec,
                       const std::string& specText,
                       const CampaignCheckpoint* resume = nullptr,
                       const CampaignEngine::TaskCallback& onTaskDone =
                           nullptr,
                       const CoordinatorOptions& options = {});

/** Configuration of one worker process/loop. */
struct WorkerOptions
{
    /** Spool directory (required). */
    std::string spool;
    /** Local decode threads (0 = hardware concurrency). */
    size_t threads = 0;
    /** Label for the worker's stats file ("" = "pid<pid>"). */
    std::string workerId;
    /** Stop after this many shards (0 = run until spool DONE). */
    size_t maxShards = 0;
    /** Seconds between idle polls of open/. */
    double pollSeconds = 0.05;
    /**
     * Promote this worker to coordinator if it is idle (nothing to
     * claim, spool not DONE) and the coordinator lease has been
     * stale for a full lease period — i.e. the coordinator died.
     * The promoted worker re-parses the spec and finishes the
     * campaign with selfExecute on.
     */
    bool promote = false;
    /**
     * Test hook: exit the loop immediately after the first successful
     * claim without completing the shard (simulates a worker killed
     * mid-shard, for lease-reclaim tests).
     */
    bool dieAfterClaim = false;
};

/** What one worker loop did (also written to the spool as
 *  stats-<workerId>.txt for cross-process accounting). */
struct WorkerReport
{
    size_t shardsRun = 0;
    size_t shots = 0;
    size_t failures = 0;
    /** Transient I/O failures absorbed by the spool retry policy. */
    size_t transientRetries = 0;
    /** 1 if this worker promoted itself to coordinator. */
    size_t promotions = 0;
    /** This process's artifact-cache activity (store hits vs local
     *  builds prove the fleet compiled each point exactly once). */
    CacheStats cache;
};

/** Text round-trip of a worker stats file (stats-<id>.txt). */
std::string formatWorkerStats(const WorkerReport& report);
/** Throws std::runtime_error on malformed input. */
WorkerReport parseWorkerStats(const std::string& text);

/**
 * Run the worker loop against `opts.spool` until the coordinator's
 * DONE marker appears (or `maxShards` is reached). Waits for the
 * spool to be initialized first, so workers may start before the
 * coordinator. Maintains a health file (spool workers/<id>:
 * healthy/degraded/done, degraded once transient retries occur) that
 * the coordinator folds into the final summary. Throws
 * std::runtime_error on a spec/shard content-hash mismatch (the
 * spool holds a different campaign than the shard expects).
 */
WorkerReport runSpoolWorker(const WorkerOptions& opts);

} // namespace cyclone

#endif // CYCLONE_CAMPAIGN_COORDINATOR_H
