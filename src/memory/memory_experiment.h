/**
 * @file
 * Monte-Carlo logical-error-rate estimation (Section V-B).
 *
 * Ties the whole stack together: build the noisy memory circuit for a
 * code at a physical error rate and a compiled round latency, extract
 * its detector error model, sample shots, decode with BP+OSD, and
 * report the logical error rate with statistics. Sampling and decoding
 * are spread across worker threads with independent RNG streams.
 */

#ifndef CYCLONE_MEMORY_MEMORY_EXPERIMENT_H
#define CYCLONE_MEMORY_MEMORY_EXPERIMENT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "decoder/bposd_decoder.h"
#include "noise/noise_model.h"
#include "noise/pauli_twirl.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** Configuration of one memory experiment. */
struct MemoryExperimentConfig
{
    /** Syndrome rounds (0 = use the code's nominal distance). */
    size_t rounds = 0;

    /** Monte-Carlo shots. */
    size_t shots = 1000;

    /**
     * Shots per deterministic sampling chunk (and per packed decode
     * batch). Must be >= 1. The chunk grid fixes the RNG streams, so
     * changing this re-samples the experiment; the default matches
     * the campaign engine's.
     */
    size_t chunkShots = 256;

    /** Physical error rate p of the base noise model. */
    double physicalError = 1e-3;

    /**
     * Compiled latency of one syndrome round in microseconds; drives
     * the idle Pauli-twirl channel. 0 disables idle decoherence.
     */
    double roundLatencyUs = 0.0;

    /**
     * Idle-noise mode. PerQubitSchedule requires `perQubitIdle` (one
     * twirl per data qubit, derived from a compiled TimedSchedule via
     * perQubitIdleFromSchedule — evaluateCodesign and the campaign
     * engine fill it automatically).
     */
    IdleNoiseMode idleNoise = IdleNoiseMode::UniformLatency;

    /** Per-data-qubit idle twirls for PerQubitSchedule mode. */
    std::vector<PauliTwirl> perQubitIdle;

    /** BP configuration for the decoder. */
    BpOptions bp;

    /** Worker threads (0 = hardware concurrency). */
    size_t threads = 0;

    /** Base RNG seed; worker streams are derived from it. */
    uint64_t seed = 0x5eed;

    /**
     * Memory basis: false = Z memory (default, as in the paper's
     * experiments), true = X memory (the dual experiment).
     */
    bool xBasis = false;
};

/** Outcome of a memory experiment. */
struct MemoryExperimentResult
{
    /** Per-shot logical failure rate (any observable mispredicted). */
    RateEstimate logicalErrorRate;

    /** Per-round failure rate: 1 - (1 - LER)^(1/rounds). */
    double perRoundErrorRate = 0.0;

    size_t rounds = 0;
    size_t demDetectors = 0;
    size_t demMechanisms = 0;

    /** Aggregated decoder statistics across workers. */
    BpOsdStats decoder;
};

/**
 * Run a Z-basis memory experiment.
 *
 * @param code code under test
 * @param schedule per-round CX schedule (typically x-then-z)
 * @param config experiment parameters
 */
MemoryExperimentResult
runZMemoryExperiment(const CssCode& code, const SyndromeSchedule& schedule,
                     const MemoryExperimentConfig& config);

} // namespace cyclone

#endif // CYCLONE_MEMORY_MEMORY_EXPERIMENT_H
