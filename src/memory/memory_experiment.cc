#include "memory/memory_experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "circuit/memory_circuit.h"
#include "common/logging.h"
#include "common/rng.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "noise/noise_model.h"

namespace cyclone {

MemoryExperimentResult
runZMemoryExperiment(const CssCode& code, const SyndromeSchedule& schedule,
                     const MemoryExperimentConfig& config)
{
    MemoryCircuitOptions opts;
    opts.rounds = config.rounds;
    opts.noise = config.roundLatencyUs > 0.0
        ? NoiseModel::withLatency(config.physicalError,
                                  config.roundLatencyUs)
        : NoiseModel::uniform(config.physicalError);

    const size_t rounds = opts.rounds > 0
        ? opts.rounds
        : (code.nominalDistance() > 0 ? code.nominalDistance() : 3);

    Circuit circuit = config.xBasis
        ? buildXMemoryCircuit(code, schedule, opts)
        : buildZMemoryCircuit(code, schedule, opts);
    DetectorErrorModel dem = buildDetectorErrorModel(circuit);

    size_t num_threads = config.threads > 0
        ? config.threads
        : std::max<size_t>(1, std::thread::hardware_concurrency());
    num_threads = std::min(num_threads, std::max<size_t>(1, config.shots));

    std::atomic<size_t> failures{0};
    std::vector<BpOsdStats> worker_stats(num_threads);

    Rng seeder(config.seed);
    std::vector<Rng> worker_rngs;
    worker_rngs.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t)
        worker_rngs.push_back(seeder.split());

    auto worker = [&](size_t tid) {
        const size_t base = config.shots / num_threads;
        const size_t extra = tid < config.shots % num_threads ? 1 : 0;
        const size_t my_shots = base + extra;
        if (my_shots == 0)
            return;
        Rng rng = worker_rngs[tid];
        DemShots shots = sampleDem(dem, my_shots, rng);
        BpOsdDecoder decoder(dem, config.bp);
        size_t my_failures = 0;
        for (size_t s = 0; s < my_shots; ++s) {
            const uint64_t predicted = decoder.decode(shots.syndromes[s]);
            if (predicted != shots.observables[s])
                ++my_failures;
        }
        failures += my_failures;
        worker_stats[tid] = decoder.stats();
    };

    if (num_threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(num_threads);
        for (size_t t = 0; t < num_threads; ++t)
            threads.emplace_back(worker, t);
        for (auto& th : threads)
            th.join();
    }

    MemoryExperimentResult result;
    result.logicalErrorRate = estimateRate(failures.load(), config.shots);
    result.rounds = rounds;
    result.demDetectors = dem.numDetectors;
    result.demMechanisms = dem.mechanisms.size();
    const double ler = result.logicalErrorRate.rate;
    result.perRoundErrorRate = rounds > 0
        ? 1.0 - std::pow(1.0 - std::min(ler, 1.0 - 1e-12),
                         1.0 / static_cast<double>(rounds))
        : ler;
    for (const BpOsdStats& s : worker_stats) {
        result.decoder.decodes += s.decodes;
        result.decoder.bpConverged += s.bpConverged;
        result.decoder.osdInvocations += s.osdInvocations;
        result.decoder.osdFailures += s.osdFailures;
    }
    return result;
}

} // namespace cyclone
