#include "memory/memory_experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/campaign.h"

namespace cyclone {

/**
 * The memory experiment is a single-task campaign: one fixed-budget
 * TaskSpec on a private pool. Sampling therefore goes through the same
 * deterministic chunk machinery as every figure sweep — the estimate
 * for a given seed is identical at any thread count.
 */
MemoryExperimentResult
runZMemoryExperiment(const CssCode& code, const SyndromeSchedule& schedule,
                     const MemoryExperimentConfig& config)
{
    if (config.chunkShots < 1)
        throw std::invalid_argument(
            "MemoryExperimentConfig.chunkShots must be >= 1");
    // p == 0 is the noiseless experiment (exactness tests); anything
    // negative, >= 1 or non-finite is rejected up front.
    if (!std::isfinite(config.physicalError) ||
        config.physicalError < 0.0 || config.physicalError >= 1.0) {
        throw std::invalid_argument(
            "MemoryExperimentConfig.physicalError must be in [0, 1), "
            "got " + std::to_string(config.physicalError));
    }
    validateLatencyUs(config.roundLatencyUs,
                      "MemoryExperimentConfig.roundLatencyUs");
    if (config.physicalError == 0.0 && config.roundLatencyUs > 0.0) {
        throw std::invalid_argument(
            "MemoryExperimentConfig: a positive roundLatencyUs needs "
            "physicalError > 0 (the coherence-time fit is 0.01 / p)");
    }
    if (config.idleNoise == IdleNoiseMode::PerQubitSchedule &&
        config.perQubitIdle.size() != code.numQubits()) {
        throw std::invalid_argument(
            "MemoryExperimentConfig.perQubitIdle must hold one twirl "
            "per data qubit in PerQubitSchedule mode (have " +
            std::to_string(config.perQubitIdle.size()) + ", need " +
            std::to_string(code.numQubits()) + ")");
    }
    const size_t chunkShots = config.chunkShots;

    CampaignSpec spec;
    spec.name = "memory-experiment";
    spec.seed = config.seed;
    // There is never more parallel work than chunks, so don't spin up
    // a full hardware-concurrency pool for a 10-shot experiment.
    const size_t chunks = (config.shots + chunkShots - 1) / chunkShots;
    const size_t requested = config.threads > 0
        ? config.threads
        : std::max<size_t>(1, std::thread::hardware_concurrency());
    spec.threads = std::max<size_t>(1, std::min(requested, chunks));

    TaskSpec task;
    // Alias the caller's objects; the campaign completes before this
    // function returns, so the borrowed lifetimes are safe.
    task.code = std::shared_ptr<const CssCode>(&code,
                                               [](const CssCode*) {});
    task.schedule = std::shared_ptr<const SyndromeSchedule>(
        &schedule, [](const SyndromeSchedule*) {});
    task.compileLatency = false;
    task.roundLatencyUs = config.roundLatencyUs;
    task.idleNoise = config.idleNoise;
    task.perQubitIdle = config.perQubitIdle;
    task.physicalError = config.physicalError;
    task.rounds = config.rounds;
    task.xBasis = config.xBasis;
    task.bp = config.bp;
    task.stop.chunkShots = chunkShots;
    task.stop.maxShots = config.shots;
    task.stop.targetRelErr = 0.0; // fixed budget: exactly `shots`
    spec.tasks.push_back(std::move(task));

    CampaignResult campaign = runCampaign(spec);
    const TaskResult& t = campaign.tasks.front();
    if (!t.error.empty())
        throw std::runtime_error("memory experiment failed: " + t.error);

    MemoryExperimentResult result;
    result.logicalErrorRate = t.logicalErrorRate;
    result.perRoundErrorRate = t.perRoundErrorRate;
    result.rounds = t.rounds;
    result.demDetectors = t.demDetectors;
    result.demMechanisms = t.demMechanisms;
    result.decoder = t.decoder;
    return result;
}

} // namespace cyclone
