/**
 * @file
 * Independent / concurrent loop analysis (Section IV-C).
 *
 * Cyclone routes every ancilla around one global loop. Splitting the
 * stabilizers across two concurrent loops would shorten each rotation
 * — but only if the loops' stabilizers touch disjoint data. This
 * module quantifies that: it bipartitions the stabilizers (greedy,
 * balanced, overlap-minimizing), assigns each data qubit to the loop
 * owning more of its stabilizers, and counts the *crossing*
 * stabilizers whose support spans both data partitions. Each crossing
 * ancilla must traverse both loops, negating the split's benefit.
 *
 * The paper's finding — "neither HGP nor BB codes permit such cuts due
 * to their long-range and non-local connections" — is reproduced
 * mechanically: catalog codes have large crossing fractions, so the
 * two-loop estimate is slower than the single loop, while a
 * block-diagonal (disjoint) code splits cleanly.
 */

#ifndef CYCLONE_CORE_LOOPS_H
#define CYCLONE_CORE_LOOPS_H

#include <cstddef>
#include <vector>

#include "compiler/cyclone_compiler.h"
#include "qec/css_code.h"

namespace cyclone {

/** Result of bipartitioning a code's stabilizers into two loops. */
struct LoopCutAnalysis
{
    /** Stabilizers assigned to each loop (global indices). */
    std::vector<size_t> loopA;
    std::vector<size_t> loopB;

    /** Data qubits homed in each loop. */
    size_t dataInA = 0;
    size_t dataInB = 0;

    /** Stabilizers whose support spans both data partitions. */
    size_t crossingStabs = 0;

    /** crossingStabs / total stabilizers. */
    double crossingFraction = 0.0;
};

/**
 * Greedy balanced bipartition of all stabilizers minimizing
 * cross-loop data sharing.
 */
LoopCutAnalysis analyzeLoopCut(const CssCode& code);

/** Single- vs two-loop Cyclone execution estimate. */
struct TwoLoopEstimate
{
    double singleLoopUs = 0.0;
    double twoLoopUs = 0.0;
    LoopCutAnalysis cut;
};

/**
 * Estimate a two-loop Cyclone execution time.
 *
 * Model: loops run concurrently, each a scaled-down Cyclone rotation
 * (T_i = T_single * loop_i / total); every crossing ancilla must also
 * traverse the other loop, adding crossingFraction * (T_A + T_B):
 *
 *   T_two = max(T_A, T_B) + crossingFraction * (T_A + T_B)
 *
 * For crossing-free codes this halves the time; for the paper's HGP
 * and BB codes the crossing term dominates and the split loses.
 */
TwoLoopEstimate estimateTwoLoopCyclone(const CssCode& code,
                                       const CycloneOptions& options = {});

} // namespace cyclone

#endif // CYCLONE_CORE_LOOPS_H
