#include "core/codesign.h"

#include "noise/schedule_noise.h"

namespace cyclone {

CompileResult
compileCodesign(const CssCode& code, const SyndromeSchedule& schedule,
                const CodesignConfig& config)
{
    return compilerFor(config.architecture)
        .compile(code, schedule, config);
}

CodesignEvaluation
evaluateCodesign(const CssCode& code, const SyndromeSchedule& schedule,
                 const CodesignConfig& config,
                 MemoryExperimentConfig experiment)
{
    CodesignEvaluation eval;
    eval.compiled = compileCodesign(code, schedule, config);
    experiment.roundLatencyUs = eval.compiled.execTimeUs;
    if (experiment.idleNoise == IdleNoiseMode::PerQubitSchedule &&
        experiment.perQubitIdle.empty()) {
        experiment.perQubitIdle = perQubitIdleFromSchedule(
            eval.compiled.schedule, code.numQubits(),
            experiment.physicalError);
    }
    eval.memory = runZMemoryExperiment(code, schedule, experiment);
    eval.spacetimeCost = eval.compiled.spacetimeCost();
    return eval;
}

} // namespace cyclone
