#include "core/codesign.h"

#include <cmath>

#include "common/logging.h"
#include "compiler/baseline2.h"
#include "compiler/baseline3.h"
#include "compiler/dynamic_grid.h"
#include "compiler/mesh_junction.h"
#include "qccd/topology_builders.h"

namespace cyclone {

const char*
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::BaselineGrid: return "baseline-grid";
      case Architecture::AlternateGrid: return "alternate-grid";
      case Architecture::DynamicGrid: return "dynamic-grid";
      case Architecture::RingEjf: return "ring-ejf";
      case Architecture::MeshJunction: return "mesh-junction";
      case Architecture::Cyclone: return "cyclone";
    }
    return "unknown";
}

namespace {

/** Baseline grid side: l = ceil(sqrt(n)) (Section V-A). */
size_t
gridSide(const CssCode& code)
{
    return static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(code.numQubits()))));
}

} // namespace

CompileResult
compileCodesign(const CssCode& code, const SyndromeSchedule& schedule,
                const CodesignConfig& config)
{
    EjfOptions ejf = config.ejf;
    switch (config.architecture) {
      case Architecture::BaselineGrid: {
        const size_t l = gridSide(code);
        Topology grid = buildBaselineGrid(l, l, config.gridCapacity);
        ejf.name = "baseline-ejf";
        return compileEjf(code, schedule, grid, ejf);
      }
      case Architecture::AlternateGrid: {
        const size_t l = gridSide(code);
        Topology grid = buildAlternateGrid(l, l, config.gridCapacity);
        ejf.name = "alternate-grid-ejf";
        return compileEjf(code, schedule, grid, ejf);
      }
      case Architecture::DynamicGrid: {
        const size_t l = gridSide(code);
        Topology grid = buildBaselineGrid(l, l, config.gridCapacity);
        ejf.name = "dynamic-grid";
        return compileDynamicGrid(code, schedule, grid, ejf);
      }
      case Architecture::RingEjf: {
        const size_t x = std::max(code.numXStabs(), code.numZStabs());
        const size_t capacity =
            (code.numQubits() + x - 1) / x +
            (code.numStabs() + x - 1) / x + 1;
        Topology ring = buildRing(x, capacity);
        ejf.name = "ring-ejf";
        ejf.dataPerTrap = (code.numQubits() + x - 1) / x;
        return compileEjf(code, schedule, ring, ejf);
      }
      case Architecture::MeshJunction: {
        ejf.name = "mesh-junction";
        return compileMeshJunction(code, schedule, ejf);
      }
      case Architecture::Cyclone:
        return compileCyclone(code, config.cyclone);
    }
    CYCLONE_FATAL("unknown architecture");
}

CodesignEvaluation
evaluateCodesign(const CssCode& code, const SyndromeSchedule& schedule,
                 const CodesignConfig& config,
                 MemoryExperimentConfig experiment)
{
    CodesignEvaluation eval;
    eval.compiled = compileCodesign(code, schedule, config);
    experiment.roundLatencyUs = eval.compiled.execTimeUs;
    eval.memory = runZMemoryExperiment(code, schedule, experiment);
    eval.spacetimeCost = eval.compiled.spacetimeCost();
    return eval;
}

} // namespace cyclone
