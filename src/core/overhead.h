/**
 * @file
 * Spatial and control overhead accounting (Sections II-B4 and IV).
 *
 * Grid QCCDs need one DAC per trap because every trap executes a
 * distinct waveform sequence; Cyclone's lockstep symmetry lets one
 * broadcast control signal (plus forwarding) drive every trap, so the
 * DAC count is constant. Spacetime cost (Fig. 16) is
 * traps x execution time x ancilla count.
 */

#ifndef CYCLONE_CORE_OVERHEAD_H
#define CYCLONE_CORE_OVERHEAD_H

#include <cstddef>
#include <string>

#include "compiler/compile_result.h"

namespace cyclone {

/** Wiring/control overhead summary for one codesign. */
struct ControlOverhead
{
    std::string design;
    size_t traps = 0;
    size_t junctions = 0;
    size_t ancillas = 0;
    /** Digital-to-analog converter channels required. */
    size_t dacChannels = 0;
};

/** Overhead of a grid-style design: one DAC per trap. */
ControlOverhead gridControlOverhead(const CompileResult& compiled);

/**
 * Overhead of the Cyclone design: a constant number of broadcast DACs
 * (default 1, per the paper's "one DAC with forwarding").
 */
ControlOverhead cycloneControlOverhead(const CompileResult& compiled,
                                       size_t broadcast_dacs = 1);

} // namespace cyclone

#endif // CYCLONE_CORE_OVERHEAD_H
