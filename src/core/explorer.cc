#include "core/explorer.h"

#include "common/logging.h"

namespace cyclone {

std::vector<CycloneDesignPoint>
sweepCycloneTrapCounts(const CssCode& code,
                       const std::vector<size_t>& trap_counts,
                       CycloneOptions options)
{
    std::vector<CycloneDesignPoint> out;
    out.reserve(trap_counts.size());
    const size_t n = code.numQubits();
    const size_t m = code.numStabs();
    for (size_t x : trap_counts) {
        CYCLONE_ASSERT(x >= 1, "trap count must be positive");
        CycloneOptions opts = options;
        opts.numTraps = x;
        // The paper's tight formula counts all m stabilizer ancillas.
        opts.capacity = (n + x - 1) / x + (m + x - 1) / x;
        CycloneCompileResult compiled = compileCyclone(code, opts);
        CycloneDesignPoint point;
        point.traps = x;
        point.capacity = opts.capacity;
        point.execTimeUs = compiled.execTimeUs;
        point.analyticUs = cycloneAnalyticWorstCaseUs(code, opts);
        point.spacetime = compiled.spacetimeCost();
        out.push_back(point);
    }
    return out;
}

const CycloneDesignPoint&
bestDesignPoint(const std::vector<CycloneDesignPoint>& points)
{
    CYCLONE_ASSERT(!points.empty(), "no design points");
    const CycloneDesignPoint* best = &points.front();
    for (const CycloneDesignPoint& p : points) {
        if (p.execTimeUs < best->execTimeUs)
            best = &p;
    }
    return *best;
}

} // namespace cyclone
