/**
 * @file
 * Umbrella header: include the whole Cyclone library.
 */

#ifndef CYCLONE_CORE_CYCLONE_H
#define CYCLONE_CORE_CYCLONE_H

#include "circuit/circuit.h"
#include "circuit/frame_simulator.h"
#include "circuit/memory_circuit.h"
#include "circuit/tableau_simulator.h"
#include "common/bitvec.h"
#include "common/gf2.h"
#include "common/rng.h"
#include "common/stats.h"
#include "compiler/baseline2.h"
#include "compiler/baseline3.h"
#include "compiler/baseline_ejf.h"
#include "compiler/compile_result.h"
#include "compiler/cyclone_compiler.h"
#include "compiler/dynamic_grid.h"
#include "compiler/ideal.h"
#include "compiler/mesh_junction.h"
#include "core/codesign.h"
#include "core/explorer.h"
#include "core/loops.h"
#include "core/overhead.h"
#include "decoder/bposd_decoder.h"
#include "decoder/bp_decoder.h"
#include "decoder/exhaustive_decoder.h"
#include "decoder/osd.h"
#include "dem/dem.h"
#include "dem/dem_builder.h"
#include "dem/dem_sampler.h"
#include "memory/memory_experiment.h"
#include "noise/noise_model.h"
#include "noise/pauli_twirl.h"
#include "qccd/durations.h"
#include "qccd/machine.h"
#include "qccd/swap_model.h"
#include "qccd/timeline.h"
#include "qccd/topology.h"
#include "qccd/topology_builders.h"
#include "qec/bb_code.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/css_code.h"
#include "qec/edge_coloring.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"
#include "qec/tanner.h"

#endif // CYCLONE_CORE_CYCLONE_H
