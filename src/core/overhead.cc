#include "core/overhead.h"

namespace cyclone {

ControlOverhead
gridControlOverhead(const CompileResult& compiled)
{
    ControlOverhead out;
    out.design = compiled.compilerName;
    out.traps = compiled.numTraps;
    out.junctions = compiled.numJunctions;
    out.ancillas = compiled.numAncilla;
    out.dacChannels = compiled.numTraps;
    return out;
}

ControlOverhead
cycloneControlOverhead(const CompileResult& compiled,
                       size_t broadcast_dacs)
{
    ControlOverhead out;
    out.design = compiled.compilerName;
    out.traps = compiled.numTraps;
    out.junctions = compiled.numJunctions;
    out.ancillas = compiled.numAncilla;
    out.dacChannels = broadcast_dacs;
    return out;
}

} // namespace cyclone
