#include "core/loops.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

/** Support of a global stabilizer index (X stabs first, then Z). */
const std::vector<size_t>&
supportOf(const CssCode& code, size_t global)
{
    const size_t mx = code.numXStabs();
    return global < mx ? code.hx().rowSupport(global)
                       : code.hz().rowSupport(global - mx);
}

} // namespace

LoopCutAnalysis
analyzeLoopCut(const CssCode& code)
{
    const size_t m = code.numStabs();
    const size_t n = code.numQubits();
    LoopCutAnalysis cut;

    // Greedy balanced assignment: stabilizers in descending weight,
    // each placed in the loop already holding more of its data (ties
    // and balance pressure push toward the smaller loop).
    std::vector<size_t> order(m);
    for (size_t i = 0; i < m; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return supportOf(code, a).size() > supportOf(code, b).size();
    });

    // votes[q]: positive = loop A owns more of q's stabilizers.
    std::vector<int> votes(n, 0);
    for (size_t global : order) {
        const auto& support = supportOf(code, global);
        int affinity = 0;
        for (size_t q : support)
            affinity += votes[q] > 0 ? 1 : (votes[q] < 0 ? -1 : 0);
        const bool balanced_a = cut.loopA.size() <= cut.loopB.size();
        bool to_a;
        if (affinity > 0) {
            to_a = cut.loopA.size() < cut.loopB.size() + m / 10 + 1;
        } else if (affinity < 0) {
            to_a = cut.loopB.size() >= cut.loopA.size() + m / 10 + 1;
        } else {
            to_a = balanced_a;
        }
        auto& loop = to_a ? cut.loopA : cut.loopB;
        loop.push_back(global);
        for (size_t q : support)
            votes[q] += to_a ? 1 : -1;
    }

    // Home each data qubit with the loop owning more of its checks.
    std::vector<int> home(n, 0); // +1 = A, -1 = B
    for (size_t q = 0; q < n; ++q) {
        const bool in_a = votes[q] > 0 ||
            (votes[q] == 0 && cut.dataInA <= cut.dataInB);
        home[q] = in_a ? 1 : -1;
        if (in_a)
            ++cut.dataInA;
        else
            ++cut.dataInB;
    }

    // Crossing stabilizers span both homes.
    for (size_t global = 0; global < m; ++global) {
        bool touches_a = false, touches_b = false;
        for (size_t q : supportOf(code, global)) {
            (home[q] > 0 ? touches_a : touches_b) = true;
        }
        if (touches_a && touches_b)
            ++cut.crossingStabs;
    }
    cut.crossingFraction = m > 0
        ? static_cast<double>(cut.crossingStabs) / m : 0.0;
    return cut;
}

TwoLoopEstimate
estimateTwoLoopCyclone(const CssCode& code, const CycloneOptions& options)
{
    TwoLoopEstimate est;
    est.cut = analyzeLoopCut(code);
    CycloneCompileResult single = compileCyclone(code, options);
    est.singleLoopUs = single.execTimeUs;

    const double total = static_cast<double>(code.numStabs());
    const double frac_a = est.cut.loopA.size() / total;
    const double frac_b = est.cut.loopB.size() / total;
    const double t_a = single.execTimeUs * frac_a;
    const double t_b = single.execTimeUs * frac_b;
    est.twoLoopUs = std::max(t_a, t_b) +
        est.cut.crossingFraction * (t_a + t_b);
    return est;
}

} // namespace cyclone
