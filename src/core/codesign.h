/**
 * @file
 * Top-level codesign evaluation: pick a code, an architecture and a
 * software policy; get back compiled latency, logical error rate, and
 * spacetime cost. This is the API the paper's experiments are
 * expressed in (see bench/ for one binary per figure).
 */

#ifndef CYCLONE_CORE_CODESIGN_H
#define CYCLONE_CORE_CODESIGN_H

#include <cstddef>
#include <string>

#include "compiler/baseline_ejf.h"
#include "compiler/compile_result.h"
#include "compiler/cyclone_compiler.h"
#include "memory/memory_experiment.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** The hardware/software codesigns evaluated in the paper. */
enum class Architecture
{
    BaselineGrid,   ///< l x l grid + static EJF (the paper's baseline).
    AlternateGrid,  ///< Serpentine L-junction loop + static EJF.
    DynamicGrid,    ///< l x l grid + dynamic timeslices (Fig. 4a).
    RingEjf,        ///< Ring hardware + static EJF (Fig. 6, disastrous).
    MeshJunction,   ///< Junction mesh + conservative dynamic routing.
    Cyclone,        ///< Ring hardware + lockstep rotation (Section IV).
};

/** Human-readable architecture name. */
const char* architectureName(Architecture arch);

/** Codesign selection and tuning. */
struct CodesignConfig
{
    Architecture architecture = Architecture::Cyclone;

    /** Options for the grid-family compilers. */
    EjfOptions ejf;

    /** Options for the Cyclone compiler. */
    CycloneOptions cyclone;

    /** Trap capacity of grid devices (the paper uses 5). */
    size_t gridCapacity = 5;
};

/**
 * Compile one syndrome round of `code` under the chosen codesign.
 * Builds the matching topology internally.
 */
CompileResult compileCodesign(const CssCode& code,
                              const SyndromeSchedule& schedule,
                              const CodesignConfig& config);

/** Full hardware-aware evaluation of one codesign point. */
struct CodesignEvaluation
{
    CompileResult compiled;
    MemoryExperimentResult memory;
    /** Fig. 16 metric: traps x exec time x ancillas. */
    double spacetimeCost = 0.0;
};

/**
 * Compile, couple the latency into the noise model, and run the
 * memory experiment.
 *
 * @param code code under test
 * @param schedule x-then-z schedule for both compilation and memory
 * @param config codesign choice
 * @param experiment Monte-Carlo parameters (roundLatencyUs is
 *        overwritten with the compiled latency)
 */
CodesignEvaluation evaluateCodesign(const CssCode& code,
                                    const SyndromeSchedule& schedule,
                                    const CodesignConfig& config,
                                    MemoryExperimentConfig experiment);

} // namespace cyclone

#endif // CYCLONE_CORE_CODESIGN_H
