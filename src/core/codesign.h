/**
 * @file
 * Top-level codesign evaluation: pick a code, an architecture and a
 * software policy; get back compiled latency, logical error rate, and
 * spacetime cost. This is the API the paper's experiments are
 * expressed in (see bench/ for one binary per figure).
 *
 * The Architecture enum, CodesignConfig and the per-architecture
 * compiler registry live in the compiler layer
 * (compiler/architecture.h, compiler/compiler.h) and are re-exported
 * here; compileCodesign is a thin dispatch through the registry.
 */

#ifndef CYCLONE_CORE_CODESIGN_H
#define CYCLONE_CORE_CODESIGN_H

#include <cstddef>
#include <string>

#include "compiler/architecture.h"
#include "compiler/compile_result.h"
#include "compiler/compiler.h"
#include "memory/memory_experiment.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/**
 * Compile one syndrome round of `code` under the chosen codesign.
 * Builds the matching topology internally.
 */
CompileResult compileCodesign(const CssCode& code,
                              const SyndromeSchedule& schedule,
                              const CodesignConfig& config);

/** Full hardware-aware evaluation of one codesign point. */
struct CodesignEvaluation
{
    CompileResult compiled;
    MemoryExperimentResult memory;
    /** Fig. 16 metric: traps x exec time x ancillas. */
    double spacetimeCost = 0.0;
};

/**
 * Compile, couple the latency into the noise model, and run the
 * memory experiment.
 *
 * @param code code under test
 * @param schedule x-then-z schedule for both compilation and memory
 * @param config codesign choice
 * @param experiment Monte-Carlo parameters (roundLatencyUs is
 *        overwritten with the compiled latency; with
 *        IdleNoiseMode::PerQubitSchedule the per-qubit idle twirls are
 *        derived from the compiled TimedSchedule IR)
 */
CodesignEvaluation evaluateCodesign(const CssCode& code,
                                    const SyndromeSchedule& schedule,
                                    const CodesignConfig& config,
                                    MemoryExperimentConfig experiment);

} // namespace cyclone

#endif // CYCLONE_CORE_CODESIGN_H
