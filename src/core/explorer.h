/**
 * @file
 * Design-space exploration helpers (Figs. 13 and 17).
 *
 * Cyclone is flexible in ring size: fewer, denser traps trade movement
 * for serialization and slower gates. The explorer sweeps "tight"
 * configurations (capacity = ceil(n/x) + ceil(m/x), the paper's
 * formula) and reports execution time per round so callers can couple
 * it into memory experiments.
 */

#ifndef CYCLONE_CORE_EXPLORER_H
#define CYCLONE_CORE_EXPLORER_H

#include <cstddef>
#include <vector>

#include "compiler/cyclone_compiler.h"
#include "qec/css_code.h"

namespace cyclone {

/** One explored Cyclone configuration. */
struct CycloneDesignPoint
{
    size_t traps = 0;
    size_t capacity = 0;
    double execTimeUs = 0.0;
    double analyticUs = 0.0;
    double spacetime = 0.0;
};

/**
 * Sweep Cyclone ring sizes with tight capacities.
 *
 * @param code code under test
 * @param trap_counts ring sizes to evaluate (1 = single dense trap)
 * @param options base options; numTraps/capacity are overridden
 */
std::vector<CycloneDesignPoint>
sweepCycloneTrapCounts(const CssCode& code,
                       const std::vector<size_t>& trap_counts,
                       CycloneOptions options = {});

/** The point with the lowest execution time. */
const CycloneDesignPoint&
bestDesignPoint(const std::vector<CycloneDesignPoint>& points);

} // namespace cyclone

#endif // CYCLONE_CORE_EXPLORER_H
