/**
 * @file
 * Dynamic-schedule grid compiler (Fig. 4a / Fig. 6 top-left).
 *
 * Applies the maximal-parallelism timeslice policy on a grid device:
 * each schedule slice is a barrier and all its gates are routed
 * concurrently. On grids this floods the shuttling network, and the
 * resulting roadblocks make it *slower* than the static EJF baseline —
 * the paper's motivation for codesign.
 */

#ifndef CYCLONE_COMPILER_DYNAMIC_GRID_H
#define CYCLONE_COMPILER_DYNAMIC_GRID_H

#include "compiler/baseline_ejf.h"

namespace cyclone {

/** Compile with timeslice barriers on an arbitrary topology. */
CompileResult compileDynamicGrid(const CssCode& code,
                                 const SyndromeSchedule& schedule,
                                 const Topology& topology,
                                 EjfOptions options = {});

} // namespace cyclone

#endif // CYCLONE_COMPILER_DYNAMIC_GRID_H
