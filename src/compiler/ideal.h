/**
 * @file
 * Idealized latency bounds: OPT / Pseudo-OPT (Section III-B) and the
 * fully serial reference.
 *
 * OPT models a fully connected shuttling graph with one data qubit per
 * trap: every timeslice of a maximally parallel schedule costs one
 * lockstep shuttle hop plus one two-qubit gate at minimal chain
 * length; the serial reference executes every gate one after another
 * with its own hop. The ratio is Fig. 3's speedup.
 */

#ifndef CYCLONE_COMPILER_IDEAL_H
#define CYCLONE_COMPILER_IDEAL_H

#include <cstddef>

#include "compiler/timed_schedule.h"
#include "qccd/durations.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** Idealized latency summary. */
struct IdealLatency
{
    double serialUs = 0.0;    ///< Fully serial execution time.
    double parallelUs = 0.0;  ///< Maximally parallel (OPT) time.
    double speedup = 0.0;     ///< serial / parallel.
    size_t depth = 0;         ///< Parallel schedule depth (slices).
    size_t gates = 0;         ///< Total CX count.

    /**
     * The OPT execution as a TimedSchedule IR: one trap per data
     * qubit, every timeslice a lockstep hop plus parallel gates, one
     * parallel measurement at the end. Its makespan equals parallelUs
     * and its serialized breakdown totals serialUs.
     */
    TimedSchedule schedule;
};

/**
 * Compute serial and maximally-parallel latencies for a code under a
 * given parallel schedule (interleaved for edge-colorable codes,
 * x-then-z otherwise).
 */
IdealLatency idealLatencies(const CssCode& code,
                            const SyndromeSchedule& parallel_schedule,
                            const Durations& durations = {});

/**
 * Number of distinct trap-to-trap shuttling paths Pseudo-OPT retains
 * (edges between traps whose data qubits share a stabilizer); used
 * for spatial-overhead reporting.
 */
size_t pseudoOptEdgeCount(const CssCode& code);

} // namespace cyclone

#endif // CYCLONE_COMPILER_IDEAL_H
