/**
 * @file
 * The timed schedule intermediate representation.
 *
 * A TimedSchedule is a flat list of timed operations — op category,
 * involved ions, start, duration, and the resource (trap, junction or
 * edge) the operation occupies — emitted by every compiler as it
 * commits reservations. It is the single source of truth between the
 * compilers and everything downstream: the CompileResult summary
 * (makespan, serialized breakdown, parallelization) is derived from
 * it, the per-qubit idle-noise model measures each ion's actual idle
 * windows in it, and the figure benches read their aggregates from it
 * instead of re-deriving them.
 *
 * Two kinds of entries coexist:
 *  - counted ops represent physical actions once each; summing their
 *    durations in emission order yields the serialized TimeBreakdown;
 *  - uncounted holds mirror conservative full-window reservations
 *    (one per held resource) so resource-overlap validation still sees
 *    every commitment without double counting the physical work.
 * Ops without a resource (lockstep barriers, conservative-route
 * physical actions) take part in timing but not in overlap checks.
 */

#ifndef CYCLONE_COMPILER_TIMED_SCHEDULE_H
#define CYCLONE_COMPILER_TIMED_SCHEDULE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cyclone {

/** Reservation categories, for component accounting. */
enum class OpCategory
{
    Gate,
    Shuttle,   ///< split / move / merge
    Junction,  ///< junction crossings
    Swap,      ///< intra-trap reordering
    Measure,
    Prep,
};

/** Number of OpCategory values. */
constexpr size_t kNumOpCategories = 6;

/** Per-category serialized durations in microseconds. */
struct TimeBreakdown
{
    double gateUs = 0.0;
    double shuttleUs = 0.0;
    double junctionUs = 0.0;
    double swapUs = 0.0;
    double measureUs = 0.0;
    double prepUs = 0.0;

    /** Sum of all components. */
    double total() const;

    /** Add a duration to the category's bucket. */
    void add(OpCategory category, double duration_us);

    /** The category's bucket. */
    double of(OpCategory category) const;

    TimeBreakdown& operator+=(const TimeBreakdown& other);
};

/** Sentinel: the op occupies no schedulable resource. */
constexpr uint32_t kNoResource = UINT32_MAX;

/** Sentinel: no ion recorded in this slot. */
constexpr uint32_t kNoIon = UINT32_MAX;

/** One timed operation (or resource hold) of a compiled round. */
struct TimedOp
{
    OpCategory category = OpCategory::Gate;

    /** Resource occupied (node, then edge, indices), or kNoResource. */
    uint32_t resource = kNoResource;

    /**
     * Ions involved, as circuit qubit ids: data qubits [0, n), X
     * ancillas [n, n + mx), Z ancillas [n + mx, n + mx + mz).
     */
    uint32_t ionA = kNoIon;
    uint32_t ionB = kNoIon;

    double startUs = 0.0;
    double durationUs = 0.0;

    /** Time this op spent blocked on busy resources (roadblock wait). */
    double waitUs = 0.0;

    /** Counted ops contribute to the serialized breakdown; holds do not. */
    bool counted = true;

    double endUs() const { return startUs + durationUs; }
};

/** Log-2-binned histogram of roadblock wait times. */
struct WaitHistogram
{
    /** Bin b counts waits in [2^(b-1), 2^b) us; bin 0 is (0, 1) us. */
    static constexpr size_t kBins = 16;

    std::array<size_t, kBins> bins{};
    size_t waits = 0;
    double totalWaitUs = 0.0;

    /** Record one wait (ignored when not positive). */
    void add(double wait_us);
};

/** Flat per-resource operation timeline of one compiled round. */
struct TimedSchedule
{
    /** Schedulable resources (nodes then edges of the device). */
    uint32_t numResources = 0;

    /** Circuit qubits: data + X ancillas + Z ancillas. */
    uint32_t numIons = 0;

    std::vector<TimedOp> ops;

    /** Latest end time over all ops (microseconds). */
    double makespan() const;

    /**
     * Serialized component times: counted ops summed per category in
     * emission order. This is the canonical accumulation the
     * CompileResult summary reports.
     */
    TimeBreakdown breakdown() const;

    /** Counted ops per category. */
    std::array<size_t, kNumOpCategories> opCounts() const;

    /**
     * Busy microseconds per ion: for each counted op, its duration is
     * charged to every ion it involves. Indexed by circuit qubit id.
     */
    std::vector<double> ionBusyUs() const;

    /**
     * Idle microseconds per ion: makespan minus busy time, clamped to
     * zero. Indexed by circuit qubit id.
     */
    std::vector<double> ionIdleUs() const;

    /** Histogram of per-op roadblock waits. */
    WaitHistogram waitHistogram() const;

    /**
     * Average number of resources busy with the category, i.e. the
     * category's serialized time over the makespan. Zero when empty.
     */
    double utilization(OpCategory category) const;

    /**
     * Check structural validity: ops well formed (finite, non-negative
     * times, resources and ions in range) and no two resource-holding
     * entries overlap on the same resource (beyond a 1e-6 us
     * tolerance). On failure returns false and, when `why` is given,
     * describes the first violation.
     */
    bool validate(std::string* why = nullptr) const;
};

} // namespace cyclone

#endif // CYCLONE_COMPILER_TIMED_SCHEDULE_H
