#include "compiler/compiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "compiler/baseline2.h"
#include "compiler/baseline3.h"
#include "compiler/dynamic_grid.h"
#include "compiler/mesh_junction.h"
#include "qccd/topology_builders.h"

namespace cyclone {

namespace {

/** Baseline grid side: l = ceil(sqrt(n)) (Section V-A). */
size_t
gridSide(const CssCode& code)
{
    return static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(code.numQubits()))));
}

struct BaselineGridCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::BaselineGrid;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule& schedule,
            const CodesignConfig& config) const override
    {
        const size_t l = gridSide(code);
        Topology grid = buildBaselineGrid(l, l, config.gridCapacity);
        EjfOptions ejf = config.ejf;
        ejf.name = "baseline-ejf";
        return compileEjf(code, schedule, grid, ejf);
    }
};

struct AlternateGridCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::AlternateGrid;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule& schedule,
            const CodesignConfig& config) const override
    {
        const size_t l = gridSide(code);
        Topology grid = buildAlternateGrid(l, l, config.gridCapacity);
        EjfOptions ejf = config.ejf;
        ejf.name = "alternate-grid-ejf";
        return compileEjf(code, schedule, grid, ejf);
    }
};

struct DynamicGridCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::DynamicGrid;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule& schedule,
            const CodesignConfig& config) const override
    {
        const size_t l = gridSide(code);
        Topology grid = buildBaselineGrid(l, l, config.gridCapacity);
        EjfOptions ejf = config.ejf;
        ejf.name = "dynamic-grid";
        return compileDynamicGrid(code, schedule, grid, ejf);
    }
};

struct RingEjfCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::RingEjf;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule& schedule,
            const CodesignConfig& config) const override
    {
        const size_t x = std::max(code.numXStabs(), code.numZStabs());
        const size_t capacity =
            (code.numQubits() + x - 1) / x +
            (code.numStabs() + x - 1) / x + 1;
        Topology ring = buildRing(x, capacity);
        EjfOptions ejf = config.ejf;
        ejf.name = "ring-ejf";
        ejf.dataPerTrap = (code.numQubits() + x - 1) / x;
        return compileEjf(code, schedule, ring, ejf);
    }
};

struct MeshJunctionCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::MeshJunction;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule& schedule,
            const CodesignConfig& config) const override
    {
        EjfOptions ejf = config.ejf;
        ejf.name = "mesh-junction";
        return compileMeshJunction(code, schedule, ejf);
    }
};

struct CycloneCompiler final : Compiler
{
    Architecture architecture() const override
    {
        return Architecture::Cyclone;
    }

    CompileResult
    compile(const CssCode& code, const SyndromeSchedule&,
            const CodesignConfig& config) const override
    {
        return compileCyclone(code, config.cyclone);
    }
};

} // namespace

const Compiler&
compilerFor(Architecture arch)
{
    static const BaselineGridCompiler baseline_grid;
    static const AlternateGridCompiler alternate_grid;
    static const DynamicGridCompiler dynamic_grid;
    static const RingEjfCompiler ring_ejf;
    static const MeshJunctionCompiler mesh_junction;
    static const CycloneCompiler cyclone_compiler;
    switch (arch) {
      case Architecture::BaselineGrid: return baseline_grid;
      case Architecture::AlternateGrid: return alternate_grid;
      case Architecture::DynamicGrid: return dynamic_grid;
      case Architecture::RingEjf: return ring_ejf;
      case Architecture::MeshJunction: return mesh_junction;
      case Architecture::Cyclone: return cyclone_compiler;
    }
    CYCLONE_FATAL("unknown architecture");
}

} // namespace cyclone
