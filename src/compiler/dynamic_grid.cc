#include "compiler/dynamic_grid.h"

namespace cyclone {

CompileResult
compileDynamicGrid(const CssCode& code, const SyndromeSchedule& schedule,
                   const Topology& topology, EjfOptions options)
{
    options.timesliceBarriers = true;
    // The dynamic policy fires a whole timeslice at once with no
    // lookahead — uncoordinated routing is the point of Fig. 4a.
    options.candidateWindow = 1;
    if (options.name == "baseline-ejf")
        options.name = "dynamic-grid";
    return compileEjf(code, schedule, topology, options);
}

} // namespace cyclone
