#include "compiler/router.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

constexpr double kEps = 1e-9;

} // namespace

Router::Router(const Topology& topology, const Durations& durations,
               const SwapModel& swap_model)
    : topology_(&topology), durations_(&durations),
      swapModel_(&swap_model)
{}

RoutePlan
Router::planMove(const ResourceTimeline& timeline, const Machine& machine,
                 IonId ion, NodeId to, double earliest,
                 bool conservative) const
{
    RoutePlan plan;
    const NodeId from = machine.ion(ion).trap;
    CYCLONE_ASSERT(topology_->isTrap(from) && topology_->isTrap(to),
                   "route endpoints must be traps");
    if (from == to) {
        plan.readyTime = earliest;
        return plan;
    }
    const std::vector<NodeId> path = topology_->shortestPath(from, to);
    CYCLONE_ASSERT(path.size() >= 2, "no route from " << from
                   << " to " << to);

    const Durations& dur = *durations_;
    double t = earliest;

    // Port geometry: the ion exits `from` toward path[1]; the chain
    // front faces the trap's first topology port. Crossing the chain
    // to reach the far port is what swaps pay for.
    const bool exit_front =
        !topology_->neighbors(from).empty() &&
        topology_->neighbors(from)[0].node == path[1];
    const NodeId before_to = path[path.size() - 2];
    plan.mergeAtFront =
        !topology_->neighbors(to).empty() &&
        topology_->neighbors(to)[0].node == before_to;

    // Swap the ion to the exit end of the chain if needed.
    const size_t edge_distance = machine.distanceFromEnd(ion, exit_front);
    const double swap_cost =
        swapModel_->costUs(edge_distance, machine.chainLength(from));
    if (swap_cost > 0.0) {
        t = timeline.plan(from, t);
        plan.reservations.push_back(
            {from, t, swap_cost, OpCategory::Swap});
        plan.breakdown.add(OpCategory::Swap, swap_cost);
        t += swap_cost;
        ++plan.swapOps;
    }

    // Split out of the source trap.
    t = timeline.plan(from, t);
    plan.reservations.push_back({from, t, dur.split(),
                                 OpCategory::Shuttle});
    plan.breakdown.add(OpCategory::Shuttle, dur.split());
    t += dur.split();
    ++plan.shuttleOps;

    if (!conservative) {
        // Incremental traversal: pay and reserve as we go.
        for (size_t i = 1; i < path.size(); ++i) {
            // Edge segment into path[i].
            EdgeId edge_id = SIZE_MAX;
            for (const Neighbor& nb : topology_->neighbors(path[i - 1])) {
                if (nb.node == path[i]) {
                    edge_id = nb.edge;
                    break;
                }
            }
            CYCLONE_ASSERT(edge_id != SIZE_MAX, "path edge missing");
            const size_t edge_res = edgeResource(edge_id);
            t = timeline.plan(edge_res, t);
            plan.reservations.push_back({edge_res, t, dur.move(),
                                         OpCategory::Shuttle});
            plan.breakdown.add(OpCategory::Shuttle, dur.move());
            t += dur.move();

            if (i + 1 == path.size())
                break; // Destination handled below.
            const NodeId node = path[i];
            const double at = timeline.plan(node, t);
            if (topology_->isTrap(node)) {
                // Passing through an occupied trap: merge in, split
                // back out, possibly after waiting (trap roadblock).
                if (at > t + kEps)
                    ++plan.trapRoadblocks;
                ++plan.trapTransits;
                t = at;
                const double transit = dur.merge() + dur.split();
                plan.reservations.push_back({node, t, transit,
                                             OpCategory::Shuttle});
                plan.breakdown.add(OpCategory::Shuttle, transit);
                t += transit;
                plan.shuttleOps += 2;
            } else {
                if (at > t + kEps)
                    ++plan.junctionRoadblocks;
                t = at;
                const double cross =
                    dur.junctionCrossUs(topology_->degree(node));
                plan.reservations.push_back({node, t, cross,
                                             OpCategory::Junction});
                plan.breakdown.add(OpCategory::Junction, cross);
                t += cross;
            }
        }
        // Merge into the destination trap.
        t = timeline.plan(to, t);
        plan.reservations.push_back({to, t, dur.merge(),
                                     OpCategory::Shuttle});
        plan.breakdown.add(OpCategory::Shuttle, dur.merge());
        t += dur.merge();
        ++plan.shuttleOps;
        plan.readyTime = t;
        return plan;
    }

    // Conservative traversal: compute the total transit duration, then
    // hold every traversed resource for the full window. Breakdown
    // components are counted once, not per held resource.
    double transit = 0.0;
    std::vector<std::pair<size_t, OpCategory>> held;
    for (size_t i = 1; i < path.size(); ++i) {
        EdgeId edge_id = SIZE_MAX;
        for (const Neighbor& nb : topology_->neighbors(path[i - 1])) {
            if (nb.node == path[i]) {
                edge_id = nb.edge;
                break;
            }
        }
        CYCLONE_ASSERT(edge_id != SIZE_MAX, "path edge missing");
        held.emplace_back(edgeResource(edge_id), OpCategory::Shuttle);
        transit += dur.move();
        plan.breakdown.add(OpCategory::Shuttle, dur.move());
        if (i + 1 == path.size())
            break;
        const NodeId node = path[i];
        if (topology_->isTrap(node)) {
            held.emplace_back(node, OpCategory::Shuttle);
            const double through = dur.merge() + dur.split();
            transit += through;
            plan.breakdown.add(OpCategory::Shuttle, through);
            ++plan.trapTransits;
            plan.shuttleOps += 2;
        } else {
            held.emplace_back(node, OpCategory::Junction);
            const double cross =
                dur.junctionCrossUs(topology_->degree(node));
            transit += cross;
            plan.breakdown.add(OpCategory::Junction, cross);
        }
    }
    transit += dur.merge();
    plan.breakdown.add(OpCategory::Shuttle, dur.merge());

    // One conservative window: start when every traversed resource is
    // free. Classify the delay source once per route: waits caused by
    // traversed traps are trap roadblocks; waits on junctions or
    // shared path segments are junction-network congestion.
    double start = t;
    double junction_free = t, trap_free = t;
    for (const auto& [res, cat] : held) {
        const double at = timeline.plan(res, t);
        const bool is_trap_node =
            res < topology_->numNodes() && topology_->isTrap(res);
        if (is_trap_node)
            trap_free = std::max(trap_free, at);
        else
            junction_free = std::max(junction_free, at);
        start = std::max(start, at);
        (void)cat;
    }
    if (junction_free > t + kEps)
        ++plan.junctionRoadblocks;
    if (trap_free > t + kEps)
        ++plan.trapRoadblocks;
    start = std::max(start, timeline.plan(to, start));
    for (const auto& [res, cat] : held)
        plan.reservations.push_back({res, start, transit, cat});
    plan.reservations.push_back({to, start + transit - dur.merge(),
                                 dur.merge(), OpCategory::Shuttle});
    ++plan.shuttleOps;
    plan.readyTime = start + transit;
    return plan;
}

} // namespace cyclone
