#include "compiler/router.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

constexpr double kEps = 1e-9;

/** Append an op mirroring a reservation (incremental routing). */
void
pushReservedOp(RoutePlan& plan, size_t resource, double start,
               double duration, OpCategory category, double wait = 0.0)
{
    plan.reservations.push_back({resource, start, duration, category});
    TimedOp op;
    op.category = category;
    op.resource = static_cast<uint32_t>(resource);
    op.startUs = start;
    op.durationUs = duration;
    op.waitUs = wait;
    plan.ops.push_back(op);
}

/** Derive the plan's breakdown from its counted ops (single source). */
void
finalizeBreakdown(RoutePlan& plan)
{
    for (const TimedOp& op : plan.ops) {
        if (op.counted)
            plan.breakdown.add(op.category, op.durationUs);
    }
}

} // namespace

Router::Router(const Topology& topology, const Durations& durations,
               const SwapModel& swap_model)
    : topology_(&topology), durations_(&durations),
      swapModel_(&swap_model)
{}

RoutePlan
Router::planMove(const ResourceTimeline& timeline, const Machine& machine,
                 IonId ion, NodeId to, double earliest,
                 bool conservative) const
{
    RoutePlan plan;
    plan.conservative = conservative;
    const NodeId from = machine.ion(ion).trap;
    CYCLONE_ASSERT(topology_->isTrap(from) && topology_->isTrap(to),
                   "route endpoints must be traps");
    if (from == to) {
        plan.readyTime = earliest;
        return plan;
    }
    const std::vector<NodeId> path = topology_->shortestPath(from, to);
    CYCLONE_ASSERT(path.size() >= 2, "no route from " << from
                   << " to " << to);

    const Durations& dur = *durations_;
    double t = earliest;

    // Port geometry: the ion exits `from` toward path[1]; the chain
    // front faces the trap's first topology port. Crossing the chain
    // to reach the far port is what swaps pay for.
    const bool exit_front =
        !topology_->neighbors(from).empty() &&
        topology_->neighbors(from)[0].node == path[1];
    const NodeId before_to = path[path.size() - 2];
    plan.mergeAtFront =
        !topology_->neighbors(to).empty() &&
        topology_->neighbors(to)[0].node == before_to;

    // Swap the ion to the exit end of the chain if needed.
    const size_t edge_distance = machine.distanceFromEnd(ion, exit_front);
    const double swap_cost =
        swapModel_->costUs(edge_distance, machine.chainLength(from));
    if (swap_cost > 0.0) {
        t = timeline.plan(from, t);
        pushReservedOp(plan, from, t, swap_cost, OpCategory::Swap);
        t += swap_cost;
        ++plan.swapOps;
    }

    // Split out of the source trap.
    t = timeline.plan(from, t);
    pushReservedOp(plan, from, t, dur.split(), OpCategory::Shuttle);
    t += dur.split();
    ++plan.shuttleOps;

    if (!conservative) {
        // Incremental traversal: pay and reserve as we go.
        for (size_t i = 1; i < path.size(); ++i) {
            // Edge segment into path[i].
            EdgeId edge_id = SIZE_MAX;
            for (const Neighbor& nb : topology_->neighbors(path[i - 1])) {
                if (nb.node == path[i]) {
                    edge_id = nb.edge;
                    break;
                }
            }
            CYCLONE_ASSERT(edge_id != SIZE_MAX, "path edge missing");
            const size_t edge_res = edgeResource(edge_id);
            t = timeline.plan(edge_res, t);
            pushReservedOp(plan, edge_res, t, dur.move(),
                           OpCategory::Shuttle);
            t += dur.move();

            if (i + 1 == path.size())
                break; // Destination handled below.
            const NodeId node = path[i];
            const double at = timeline.plan(node, t);
            const double wait = at > t + kEps ? at - t : 0.0;
            if (topology_->isTrap(node)) {
                // Passing through an occupied trap: merge in, split
                // back out, possibly after waiting (trap roadblock).
                if (wait > 0.0)
                    ++plan.trapRoadblocks;
                ++plan.trapTransits;
                t = at;
                const double transit = dur.merge() + dur.split();
                pushReservedOp(plan, node, t, transit,
                               OpCategory::Shuttle, wait);
                t += transit;
                plan.shuttleOps += 2;
            } else {
                if (wait > 0.0)
                    ++plan.junctionRoadblocks;
                t = at;
                const double cross =
                    dur.junctionCrossUs(topology_->degree(node));
                pushReservedOp(plan, node, t, cross,
                               OpCategory::Junction, wait);
                t += cross;
            }
        }
        // Merge into the destination trap.
        t = timeline.plan(to, t);
        pushReservedOp(plan, to, t, dur.merge(), OpCategory::Shuttle);
        t += dur.merge();
        ++plan.shuttleOps;
        plan.readyTime = t;
        finalizeBreakdown(plan);
        return plan;
    }

    // Conservative traversal: compute the total transit duration, then
    // hold every traversed resource for the full window. Breakdown
    // components are counted once, not per held resource; the physical
    // actions are recorded as resource-free ops at window-relative
    // offsets (shifted once the window start is known).
    double transit = 0.0;
    std::vector<std::pair<size_t, OpCategory>> held;
    auto pushPhysicalOp = [&](double duration, OpCategory category) {
        TimedOp op;
        op.category = category;
        op.resource = kNoResource;
        op.startUs = transit; // Window-relative; shifted below.
        op.durationUs = duration;
        op.counted = true;
        plan.ops.push_back(op);
        transit += duration;
    };
    for (size_t i = 1; i < path.size(); ++i) {
        EdgeId edge_id = SIZE_MAX;
        for (const Neighbor& nb : topology_->neighbors(path[i - 1])) {
            if (nb.node == path[i]) {
                edge_id = nb.edge;
                break;
            }
        }
        CYCLONE_ASSERT(edge_id != SIZE_MAX, "path edge missing");
        held.emplace_back(edgeResource(edge_id), OpCategory::Shuttle);
        pushPhysicalOp(dur.move(), OpCategory::Shuttle);
        if (i + 1 == path.size())
            break;
        const NodeId node = path[i];
        if (topology_->isTrap(node)) {
            held.emplace_back(node, OpCategory::Shuttle);
            pushPhysicalOp(dur.merge() + dur.split(), OpCategory::Shuttle);
            ++plan.trapTransits;
            plan.shuttleOps += 2;
        } else {
            held.emplace_back(node, OpCategory::Junction);
            pushPhysicalOp(dur.junctionCrossUs(topology_->degree(node)),
                           OpCategory::Junction);
        }
    }
    pushPhysicalOp(dur.merge(), OpCategory::Shuttle);

    // One conservative window: start when every traversed resource is
    // free. Classify the delay source once per route: waits caused by
    // traversed traps are trap roadblocks; waits on junctions or
    // shared path segments are junction-network congestion.
    double start = t;
    double junction_free = t, trap_free = t;
    for (const auto& [res, cat] : held) {
        const double at = timeline.plan(res, t);
        const bool is_trap_node =
            res < topology_->numNodes() && topology_->isTrap(res);
        if (is_trap_node)
            trap_free = std::max(trap_free, at);
        else
            junction_free = std::max(junction_free, at);
        start = std::max(start, at);
        (void)cat;
    }
    if (junction_free > t + kEps)
        ++plan.junctionRoadblocks;
    if (trap_free > t + kEps)
        ++plan.trapRoadblocks;
    start = std::max(start, timeline.plan(to, start));

    // Shift the window-relative physical ops to absolute time and
    // charge the route's blocked time to its first windowed op.
    bool first = true;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
        TimedOp& op = plan.ops[i];
        if (op.resource != kNoResource)
            continue; // Pre-window ops (swap/split) are absolute.
        op.startUs += start;
        if (first) {
            op.waitUs = start > t + kEps ? start - t : 0.0;
            first = false;
        }
    }

    auto pushHold = [&](size_t res, double hold_start, double duration,
                        OpCategory category) {
        plan.reservations.push_back({res, hold_start, duration, category});
        TimedOp hold;
        hold.category = category;
        hold.resource = static_cast<uint32_t>(res);
        hold.startUs = hold_start;
        hold.durationUs = duration;
        hold.counted = false;
        plan.ops.push_back(hold);
    };
    for (const auto& [res, cat] : held)
        pushHold(res, start, transit, cat);
    pushHold(to, start + transit - dur.merge(), dur.merge(),
             OpCategory::Shuttle);
    ++plan.shuttleOps;
    plan.readyTime = start + transit;
    finalizeBreakdown(plan);
    return plan;
}

} // namespace cyclone
