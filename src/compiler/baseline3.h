/**
 * @file
 * Baseline 3: locality-first compiler, a simplified reimplementation
 * of "MoveLess" [10] on the EJF engine. Gates executable at the
 * ancilla's current trap are always preferred over gates that require
 * shuttling, minimizing excess movement.
 */

#ifndef CYCLONE_COMPILER_BASELINE3_H
#define CYCLONE_COMPILER_BASELINE3_H

#include "compiler/baseline_ejf.h"

namespace cyclone {

/** Compile with the locality-first selection policy. */
CompileResult compileBaseline3(const CssCode& code,
                               const SyndromeSchedule& schedule,
                               const Topology& topology,
                               EjfOptions options = {});

} // namespace cyclone

#endif // CYCLONE_COMPILER_BASELINE3_H
