#include "compiler/cyclone_compiler.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

/** Balanced block partition: element i of `count` over `bins`. */
size_t
blockOf(size_t i, size_t count, size_t bins)
{
    // Bin b holds elements [b*count/bins, (b+1)*count/bins).
    return i * bins / count;
}

} // namespace

CycloneCompileResult
compileCyclone(const CssCode& code, const CycloneOptions& options)
{
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    const size_t ancillas = std::max(mx, mz);
    const size_t x = options.numTraps > 0 ? options.numTraps : ancillas;
    CYCLONE_ASSERT(x >= 1, "ring needs at least one trap");

    const Durations& dur = options.durations;
    SwapModel swap_model(options.swap, dur);

    // Partition data and ancillas over traps (balanced blocks).
    std::vector<std::vector<size_t>> data_of_trap(x);
    for (size_t q = 0; q < n; ++q)
        data_of_trap[blockOf(q, n, x)].push_back(q);
    std::vector<std::vector<size_t>> anc_of_group(x);
    for (size_t a = 0; a < ancillas; ++a)
        anc_of_group[blockOf(a, ancillas, x)].push_back(a);

    size_t max_data = 0, max_anc = 0;
    for (size_t t = 0; t < x; ++t) {
        max_data = std::max(max_data, data_of_trap[t].size());
        max_anc = std::max(max_anc, anc_of_group[t].size());
    }
    const size_t tight_capacity =
        (n + x - 1) / x + (ancillas + x - 1) / x;
    const size_t capacity =
        options.capacity > 0 ? options.capacity : tight_capacity;
    if (capacity < max_data + max_anc) {
        CYCLONE_FATAL("cyclone capacity " << capacity
                      << " below occupancy " << max_data + max_anc);
    }

    CycloneCompileResult result;
    result.compilerName = options.gridEmbedded ? "cyclone-on-grid"
                                               : "cyclone";
    result.topologyName = options.gridEmbedded ? "grid-embedded-ring"
        : (x > 1 ? "ring" : "single-trap");
    result.ringTraps = x;
    result.trapCapacity = capacity;
    result.numTraps = x;
    result.numJunctions = x > 1 ? x : 0;
    result.numAncilla = ancillas;

    // Per-hop shuttling time: split, move, L-junction (degree 2)
    // cross, move, merge — all ancillas in lockstep.
    double hop_us = dur.split() + dur.move() +
        dur.junctionCrossUs(2) + dur.move() + dur.merge();
    if (options.gridEmbedded && x > 1) {
        // Fig. 11b: the long closing connection runs along one grid
        // edge, crossing ~sqrt(x) L-shaped (degree-2) junctions;
        // everyone stalls for that traversal each step to preserve
        // symmetry.
        size_t long_junctions = options.longLinkJunctions;
        if (long_junctions == 0) {
            size_t side = 1;
            while (side * side < x)
                ++side;
            long_junctions = side;
        }
        result.numJunctions += long_junctions;
        hop_us += static_cast<double>(long_junctions) *
            (dur.junctionCrossUs(2) + dur.move());
    }

    double total = 0.0;

    auto run_rotation = [&](StabKind kind) {
        const SparseGF2& matrix =
            kind == StabKind::X ? code.hx() : code.hz();
        const size_t stabs = matrix.rows();
        const size_t steps = x;
        for (size_t step = 0; step < steps; ++step) {
            double step_gate = 0.0;
            double step_swap = 0.0;
            for (size_t t = 0; t < x; ++t) {
                // Group resident in trap t at this step.
                const size_t g = (t + x - step % x) % x;
                const auto& residents = anc_of_group[g];
                const size_t chain =
                    data_of_trap[t].size() + residents.size();
                double trap_gate = 0.0;
                size_t trap_gates = 0;
                for (size_t a : residents) {
                    if (a >= stabs)
                        continue; // Idle ancilla this rotation.
                    // Gates between stabilizer a and resident data.
                    const auto& support = matrix.rowSupport(a);
                    for (size_t q : data_of_trap[t]) {
                        if (std::binary_search(support.begin(),
                                               support.end(), q))
                            ++trap_gates;
                    }
                }
                trap_gate = static_cast<double>(trap_gates) *
                    dur.twoQubitGateUs(chain);
                result.gateOps += trap_gates;
                result.serialized.add(OpCategory::Gate, trap_gate);
                step_gate = std::max(step_gate, trap_gate);

                if (x > 1) {
                    // Every resident ancilla swaps to the travelling
                    // edge; swaps within a trap are serial.
                    double trap_swap = 0.0;
                    for (size_t i = 0; i < residents.size(); ++i) {
                        const double c = swap_model.costUs(
                            chain > 0 ? chain - 1 : 0, chain);
                        trap_swap += c;
                        ++result.swapOps;
                        result.serialized.add(OpCategory::Swap, c);
                    }
                    step_swap = std::max(step_swap, trap_swap);
                }
            }
            double step_total = step_gate + step_swap;
            if (x > 1) {
                step_total += hop_us;
                result.shuttleOps += 2 * ancillas; // split + merge
                result.serialized.add(
                    OpCategory::Shuttle,
                    static_cast<double>(ancillas) *
                        (dur.split() + 2.0 * dur.move() + dur.merge()));
                result.serialized.add(
                    OpCategory::Junction,
                    static_cast<double>(ancillas) *
                        dur.junctionCrossUs(2));
            }
            result.stepDurationsUs.push_back(step_total);
            total += step_total;
        }
        // Measure (and re-prepare) every ancilla; traps in parallel,
        // ions within a trap serially.
        double measure_phase = 0.0;
        for (size_t g = 0; g < x; ++g) {
            const double t_us =
                static_cast<double>(anc_of_group[g].size()) *
                (dur.measure() + dur.prep());
            measure_phase = std::max(measure_phase, t_us);
        }
        result.serialized.add(
            OpCategory::Measure,
            static_cast<double>(ancillas) * dur.measure());
        result.serialized.add(
            OpCategory::Prep,
            static_cast<double>(ancillas) * dur.prep());
        total += measure_phase;
    };

    run_rotation(StabKind::X);
    run_rotation(StabKind::Z);

    // Coverage invariant: every Tanner edge executed exactly once.
    CYCLONE_ASSERT(result.gateOps == code.hx().nnz() + code.hz().nnz(),
                   "cyclone rotation missed gates: " << result.gateOps
                   << " vs " << code.hx().nnz() + code.hz().nnz());

    result.execTimeUs = total;
    return result;
}

double
cycloneAnalyticWorstCaseUs(const CssCode& code,
                           const CycloneOptions& options)
{
    const size_t n = code.numQubits();
    const size_t ancillas = std::max(code.numXStabs(), code.numZStabs());
    const size_t x = options.numTraps > 0 ? options.numTraps : ancillas;
    const Durations& dur = options.durations;
    SwapModel swap_model(options.swap, dur);

    const size_t data_per_trap = (n + x - 1) / x;
    const size_t anc_per_trap = (ancillas + x - 1) / x;
    const size_t chain = data_per_trap + anc_per_trap;
    const size_t w_max = std::max(code.maxXWeight(), code.maxZWeight());
    const size_t gates_per_visit = std::min(w_max, data_per_trap);

    const double s_us = x > 1
        ? dur.split() + 2.0 * dur.move() + dur.junctionCrossUs(2) +
          dur.merge()
        : 0.0;
    const double swap_us = x > 1
        ? swap_model.costUs(chain > 0 ? chain - 1 : 0, chain)
        : 0.0;
    const double per_visit = swap_us +
        dur.twoQubitGateUs(chain) * static_cast<double>(gates_per_visit);
    const double measure_us = 2.0 *
        static_cast<double>(anc_per_trap) *
        (dur.measure() + dur.prep());
    return 2.0 * static_cast<double>(x) *
        (s_us + static_cast<double>(anc_per_trap) * per_visit) +
        measure_us;
}

} // namespace cyclone
