#include "compiler/cyclone_compiler.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

/** Balanced block partition: element i of `count` over `bins`. */
size_t
blockOf(size_t i, size_t count, size_t bins)
{
    // Bin b holds elements [b*count/bins, (b+1)*count/bins).
    return i * bins / count;
}

} // namespace

CycloneCompileResult
compileCyclone(const CssCode& code, const CycloneOptions& options)
{
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    const size_t ancillas = std::max(mx, mz);
    const size_t x = options.numTraps > 0 ? options.numTraps : ancillas;
    CYCLONE_ASSERT(x >= 1, "ring needs at least one trap");

    const Durations& dur = options.durations;
    SwapModel swap_model(options.swap, dur);

    // Partition data and ancillas over traps (balanced blocks).
    std::vector<std::vector<size_t>> data_of_trap(x);
    for (size_t q = 0; q < n; ++q)
        data_of_trap[blockOf(q, n, x)].push_back(q);
    std::vector<std::vector<size_t>> anc_of_group(x);
    for (size_t a = 0; a < ancillas; ++a)
        anc_of_group[blockOf(a, ancillas, x)].push_back(a);

    size_t max_data = 0, max_anc = 0;
    for (size_t t = 0; t < x; ++t) {
        max_data = std::max(max_data, data_of_trap[t].size());
        max_anc = std::max(max_anc, anc_of_group[t].size());
    }
    const size_t tight_capacity =
        (n + x - 1) / x + (ancillas + x - 1) / x;
    const size_t capacity =
        options.capacity > 0 ? options.capacity : tight_capacity;
    if (capacity < max_data + max_anc) {
        CYCLONE_FATAL("cyclone capacity " << capacity
                      << " below occupancy " << max_data + max_anc);
    }

    CycloneCompileResult result;
    result.compilerName = options.gridEmbedded ? "cyclone-on-grid"
                                               : "cyclone";
    result.topologyName = options.gridEmbedded ? "grid-embedded-ring"
        : (x > 1 ? "ring" : "single-trap");
    result.ringTraps = x;
    result.trapCapacity = capacity;
    result.numTraps = x;
    result.numJunctions = x > 1 ? x : 0;
    result.numAncilla = ancillas;

    // IR resources: traps [0, x), then ring junctions [x, 2x) — the L
    // junction i sits between trap i and trap (i + 1) % x.
    TimedSchedule& sched = result.schedule;
    sched.numResources = static_cast<uint32_t>(x > 1 ? 2 * x : 1);
    sched.numIons = static_cast<uint32_t>(n + mx + mz);

    // Per-hop shuttling time: split, move, L-junction (degree 2)
    // cross, move, merge — all ancillas in lockstep.
    double hop_us = dur.split() + dur.move() +
        dur.junctionCrossUs(2) + dur.move() + dur.merge();
    if (options.gridEmbedded && x > 1) {
        // Fig. 11b: the long closing connection runs along one grid
        // edge, crossing ~sqrt(x) L-shaped (degree-2) junctions;
        // everyone stalls for that traversal each step to preserve
        // symmetry.
        size_t long_junctions = options.longLinkJunctions;
        if (long_junctions == 0) {
            size_t side = 1;
            while (side * side < x)
                ++side;
            long_junctions = side;
        }
        result.numJunctions += long_junctions;
        hop_us += static_cast<double>(long_junctions) *
            (dur.junctionCrossUs(2) + dur.move());
    }

    double now = 0.0; // Global lockstep clock.

    auto push_op = [&](OpCategory category, uint32_t resource,
                       uint32_t ion, double start, double duration,
                       bool counted = true) {
        TimedOp op;
        op.category = category;
        op.resource = resource;
        op.ionA = ion;
        op.startUs = start;
        op.durationUs = duration;
        op.counted = counted;
        sched.ops.push_back(op);
    };

    auto run_rotation = [&](StabKind kind) {
        const SparseGF2& matrix =
            kind == StabKind::X ? code.hx() : code.hz();
        const size_t stabs = matrix.rows();
        // Circuit qubit id base of this rotation's ancilla role.
        const size_t anc_base = kind == StabKind::X ? n : n + mx;
        auto anc_ion = [&](size_t a) {
            return a < stabs ? static_cast<uint32_t>(anc_base + a)
                             : kNoIon;
        };
        for (size_t step = 0; step < x; ++step) {
            // ---- Gate phase: every trap in parallel, gates within a
            // trap serially. ----
            double step_gate = 0.0;
            for (size_t t = 0; t < x; ++t) {
                // Group resident in trap t at this step.
                const size_t g = (t + x - step % x) % x;
                const auto& residents = anc_of_group[g];
                const size_t chain =
                    data_of_trap[t].size() + residents.size();
                const double gate_us = dur.twoQubitGateUs(chain);
                double cursor = now;
                size_t trap_gates = 0;
                for (size_t a : residents) {
                    if (a >= stabs)
                        continue; // Idle ancilla this rotation.
                    // Gates between stabilizer a and resident data.
                    const auto& support = matrix.rowSupport(a);
                    for (size_t q : data_of_trap[t]) {
                        if (!std::binary_search(support.begin(),
                                                support.end(), q))
                            continue;
                        TimedOp gate;
                        gate.category = OpCategory::Gate;
                        gate.resource = static_cast<uint32_t>(t);
                        gate.ionA = anc_ion(a);
                        gate.ionB = static_cast<uint32_t>(q);
                        gate.startUs = cursor;
                        gate.durationUs = gate_us;
                        sched.ops.push_back(gate);
                        cursor += gate_us;
                        ++trap_gates;
                    }
                }
                result.gateOps += trap_gates;
                step_gate = std::max(
                    step_gate,
                    static_cast<double>(trap_gates) * gate_us);
            }

            // ---- Swap phase: every resident ancilla to the
            // travelling edge; swaps within a trap are serial. ----
            double step_swap = 0.0;
            const double swap_start = now + step_gate;
            if (x > 1) {
                for (size_t t = 0; t < x; ++t) {
                    const size_t g = (t + x - step % x) % x;
                    const auto& residents = anc_of_group[g];
                    const size_t chain =
                        data_of_trap[t].size() + residents.size();
                    double cursor = swap_start;
                    double trap_swap = 0.0;
                    for (size_t a : residents) {
                        const double c = swap_model.costUs(
                            chain > 0 ? chain - 1 : 0, chain);
                        push_op(OpCategory::Swap,
                                static_cast<uint32_t>(t), anc_ion(a),
                                cursor, c);
                        cursor += c;
                        trap_swap += c;
                        ++result.swapOps;
                    }
                    step_swap = std::max(step_swap, trap_swap);
                }
            }

            // ---- Hop phase: lockstep rotation to the next trap. ----
            double step_end = swap_start + step_swap;
            if (x > 1) {
                const double hop_start = step_end;
                // Everyone stalls for the full hop (long link
                // included) to preserve lockstep symmetry.
                push_op(OpCategory::Shuttle, kNoResource, kNoIon,
                        hop_start, hop_us, /*counted=*/false);
                const double cross_us = dur.junctionCrossUs(2);
                for (size_t t = 0; t < x; ++t) {
                    const size_t g = (t + x - step % x) % x;
                    const auto& residents = anc_of_group[g];
                    if (residents.empty())
                        continue;
                    const size_t next = (t + 1) % x;
                    // Resource holds for the group chain in flight.
                    push_op(OpCategory::Shuttle,
                            static_cast<uint32_t>(t), kNoIon,
                            hop_start, dur.split(), /*counted=*/false);
                    push_op(OpCategory::Junction,
                            static_cast<uint32_t>(x + t), kNoIon,
                            hop_start + dur.split() + dur.move(),
                            cross_us, /*counted=*/false);
                    push_op(OpCategory::Shuttle,
                            static_cast<uint32_t>(next), kNoIon,
                            hop_start + dur.split() + dur.move() +
                                cross_us + dur.move(),
                            dur.merge(), /*counted=*/false);
                    // Per-ancilla physical actions, counted once each.
                    for (size_t a : residents) {
                        const uint32_t ion = anc_ion(a);
                        double cursor = hop_start;
                        push_op(OpCategory::Shuttle, kNoResource, ion,
                                cursor, dur.split());
                        cursor += dur.split();
                        push_op(OpCategory::Shuttle, kNoResource, ion,
                                cursor, dur.move());
                        cursor += dur.move();
                        push_op(OpCategory::Junction, kNoResource, ion,
                                cursor, cross_us);
                        cursor += cross_us;
                        push_op(OpCategory::Shuttle, kNoResource, ion,
                                cursor, dur.move());
                        cursor += dur.move();
                        push_op(OpCategory::Shuttle, kNoResource, ion,
                                cursor, dur.merge());
                        result.shuttleOps += 2; // split + merge
                    }
                }
                step_end = hop_start + hop_us;
            }
            result.stepDurationsUs.push_back(step_end - now);
            now = step_end;
        }

        // ---- Measure (and re-prepare) every ancilla; after x steps
        // group g is back at trap g. Traps in parallel, ions within a
        // trap serially. ----
        double measure_phase = 0.0;
        for (size_t g = 0; g < x; ++g) {
            double cursor = now;
            for (size_t a : anc_of_group[g]) {
                push_op(OpCategory::Measure, static_cast<uint32_t>(g),
                        anc_ion(a), cursor, dur.measure());
                cursor += dur.measure();
                push_op(OpCategory::Prep, static_cast<uint32_t>(g),
                        anc_ion(a), cursor, dur.prep());
                cursor += dur.prep();
            }
            measure_phase = std::max(
                measure_phase,
                static_cast<double>(anc_of_group[g].size()) *
                    (dur.measure() + dur.prep()));
        }
        now += measure_phase;
    };

    run_rotation(StabKind::X);
    run_rotation(StabKind::Z);

    // Coverage invariant: every Tanner edge executed exactly once.
    CYCLONE_ASSERT(result.gateOps == code.hx().nnz() + code.hz().nnz(),
                   "cyclone rotation missed gates: " << result.gateOps
                   << " vs " << code.hx().nnz() + code.hz().nnz());

    result.deriveTimingFromSchedule();
    return result;
}

double
cycloneAnalyticWorstCaseUs(const CssCode& code,
                           const CycloneOptions& options)
{
    const size_t n = code.numQubits();
    const size_t ancillas = std::max(code.numXStabs(), code.numZStabs());
    const size_t x = options.numTraps > 0 ? options.numTraps : ancillas;
    const Durations& dur = options.durations;
    SwapModel swap_model(options.swap, dur);

    const size_t data_per_trap = (n + x - 1) / x;
    const size_t anc_per_trap = (ancillas + x - 1) / x;
    const size_t chain = data_per_trap + anc_per_trap;
    const size_t w_max = std::max(code.maxXWeight(), code.maxZWeight());
    const size_t gates_per_visit = std::min(w_max, data_per_trap);

    const double s_us = x > 1
        ? dur.split() + 2.0 * dur.move() + dur.junctionCrossUs(2) +
          dur.merge()
        : 0.0;
    const double swap_us = x > 1
        ? swap_model.costUs(chain > 0 ? chain - 1 : 0, chain)
        : 0.0;
    const double per_visit = swap_us +
        dur.twoQubitGateUs(chain) * static_cast<double>(gates_per_visit);
    const double measure_us = 2.0 *
        static_cast<double>(anc_per_trap) *
        (dur.measure() + dur.prep());
    return 2.0 * static_cast<double>(x) *
        (s_us + static_cast<double>(anc_per_trap) * per_visit) +
        measure_us;
}

} // namespace cyclone
