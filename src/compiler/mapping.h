/**
 * @file
 * Qubit-to-trap mapping for grid-style compilers.
 *
 * The baseline's greedy cluster mapping (Section II-B3) walks
 * stabilizers and co-locates their support data qubits, then parks
 * each stabilizer's ancilla in (or near) the trap holding most of its
 * support.
 */

#ifndef CYCLONE_COMPILER_MAPPING_H
#define CYCLONE_COMPILER_MAPPING_H

#include <cstddef>
#include <vector>

#include "qccd/machine.h"
#include "qccd/topology.h"
#include "qec/css_code.h"

namespace cyclone {

/** Placement of data and ancilla ions. */
struct Mapping
{
    /** Trap per data qubit. */
    std::vector<NodeId> dataTrap;
    /** Data ion id per data qubit. */
    std::vector<IonId> dataIon;
    /**
     * Trap per stabilizer (global index: X stabilizers first, then Z).
     */
    std::vector<NodeId> ancillaTrap;
    /** Ancilla ion id per global stabilizer index. */
    std::vector<IonId> ancillaIon;
};

/**
 * Greedy cluster mapping: place stabilizer supports contiguously,
 * filling each trap with at most `data_per_trap` data qubits, then
 * place ancillas near their supports. Populates `machine` with ions.
 *
 * @throws std::runtime_error if the device lacks capacity.
 */
Mapping greedyClusterMapping(const CssCode& code,
                             const Topology& topology, Machine& machine,
                             size_t data_per_trap);

/** Global stabilizer index of an X stabilizer. */
inline size_t
globalStabIndex(const CssCode&, StabKind kind, size_t index,
                size_t num_x_stabs)
{
    return kind == StabKind::X ? index : num_x_stabs + index;
}

} // namespace cyclone

#endif // CYCLONE_COMPILER_MAPPING_H
