#include "compiler/baseline2.h"

#include <algorithm>

namespace cyclone {

CompileResult
compileBaseline2(const CssCode& code, const SyndromeSchedule& schedule,
                 const Topology& topology, EjfOptions options)
{
    options.selection = GateSelection::FewestShuttles;
    // Shuttle batching needs candidates to choose among.
    options.candidateWindow = std::max<size_t>(options.candidateWindow,
                                               16);
    if (options.name == "baseline-ejf")
        options.name = "baseline2-muzzle";
    return compileEjf(code, schedule, topology, options);
}

} // namespace cyclone
