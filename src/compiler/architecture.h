/**
 * @file
 * The hardware/software codesigns evaluated in the paper, as a
 * compiler-layer enumeration with name parsing. The compiler registry
 * (compiler/compiler.h) is keyed by this enum; core/codesign.h
 * re-exports it for the top-level evaluation API.
 */

#ifndef CYCLONE_COMPILER_ARCHITECTURE_H
#define CYCLONE_COMPILER_ARCHITECTURE_H

#include <array>
#include <optional>
#include <string_view>

namespace cyclone {

/** The hardware/software codesigns evaluated in the paper. */
enum class Architecture
{
    BaselineGrid,   ///< l x l grid + static EJF (the paper's baseline).
    AlternateGrid,  ///< Serpentine L-junction loop + static EJF.
    DynamicGrid,    ///< l x l grid + dynamic timeslices (Fig. 4a).
    RingEjf,        ///< Ring hardware + static EJF (Fig. 6, disastrous).
    MeshJunction,   ///< Junction mesh + conservative dynamic routing.
    Cyclone,        ///< Ring hardware + lockstep rotation (Section IV).
};

/** Every architecture, in enum order. */
constexpr std::array<Architecture, 6> kAllArchitectures = {
    Architecture::BaselineGrid, Architecture::AlternateGrid,
    Architecture::DynamicGrid,  Architecture::RingEjf,
    Architecture::MeshJunction, Architecture::Cyclone,
};

/** Human-readable architecture name. */
const char* architectureName(Architecture arch);

/**
 * Parse an architecture from its canonical name or a spec-file alias
 * ("baseline", "alternate", "dynamic", "ring", "mesh", "cyclone").
 * Returns nullopt for unknown names.
 */
std::optional<Architecture> parseArchitecture(std::string_view name);

} // namespace cyclone

#endif // CYCLONE_COMPILER_ARCHITECTURE_H
