/**
 * @file
 * The Cyclone codesign compiler (Section IV).
 *
 * Hardware: a ring of x traps with one L junction between neighbors
 * (x = max(|X|,|Z|) in the base form). Software: ancillas are assigned
 * stabilizers dynamically (all X stabilizers in rotation one, all Z in
 * rotation two) and move around the ring in lockstep. Each rotation
 * step executes, inside every trap serially, the CX gates between
 * resident ancillas and the resident data qubits of their stabilizer
 * supports, then GateSwaps (or IonSwaps) every ancilla to the
 * travelling edge and split/move/junction-cross/move/merges all
 * ancillas simultaneously to the next trap. Two full rotations
 * complete one syndrome round; roadblocks are zero by construction.
 *
 * The step length is the maximum over traps, so unbalanced partitions
 * stall exactly as in Fig. 12. The compiler is constructive: it builds
 * the actual step schedule and reports measured times, operation
 * counts, and the per-step gate profile.
 */

#ifndef CYCLONE_COMPILER_CYCLONE_COMPILER_H
#define CYCLONE_COMPILER_CYCLONE_COMPILER_H

#include <vector>

#include "compiler/compile_result.h"
#include "qccd/durations.h"
#include "qccd/swap_model.h"
#include "qec/css_code.h"

namespace cyclone {

/** Cyclone configuration. */
struct CycloneOptions
{
    Durations durations;
    SwapKind swap = SwapKind::GateSwap;

    /** Ring size; 0 selects the base form x = max(|X|, |Z|). */
    size_t numTraps = 0;

    /**
     * Trap ion capacity; 0 selects the tight capacity
     * ceil(n/x) + ceil(A/x) where A is the ancilla count.
     */
    size_t capacity = 0;

    /**
     * Fig. 11b variant: the loop is embedded in a slightly modified
     * grid, whose closing connection is long. Symmetry forces every
     * trap to stall each step while the ion on the long link crosses
     * its extra junctions.
     */
    bool gridEmbedded = false;

    /**
     * Junctions on the long closing connection (0 = auto,
     * 2 * ceil(sqrt(x)) degree-3 crossings).
     */
    size_t longLinkJunctions = 0;
};

/** Cyclone compilation result with the per-step profile. */
struct CycloneCompileResult : CompileResult
{
    /** Ring size used. */
    size_t ringTraps = 0;
    /** Trap capacity used. */
    size_t trapCapacity = 0;
    /** Duration of each rotation step (2x entries). */
    std::vector<double> stepDurationsUs;
};

/** Compile one syndrome round with the Cyclone codesign. */
CycloneCompileResult compileCyclone(const CssCode& code,
                                    const CycloneOptions& options = {});

/**
 * Closed-form worst-case round time, interpreting the paper's bound
 * 2x * (s + ceil(A/x) * (t + g * gmax)) with A = ancilla count,
 * s = split + 2 moves + L-junction cross + merge, t = one swap, and
 * gmax = min(w_max, ceil(n/x)) gates per ancilla visit at the tight
 * chain length.
 */
double cycloneAnalyticWorstCaseUs(const CssCode& code,
                                  const CycloneOptions& options = {});

} // namespace cyclone

#endif // CYCLONE_COMPILER_CYCLONE_COMPILER_H
