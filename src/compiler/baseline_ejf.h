/**
 * @file
 * The grid-family compiler engine.
 *
 * One engine covers four of the paper's compilers, differentiated by
 * options:
 *  - Baseline (Fig. 4b): static interaction-DAG scheduling with the
 *    Earliest Job First policy on the baseline grid [22].
 *  - Dynamic grid (Fig. 4a): timeslice barriers from the maximal
 *    parallelism policy — performs *worse* on grids due to
 *    roadblocks, reproducing the paper's confusion matrix.
 *  - Baseline 2 [28] ("Muzzle the Shuttle"): shuttle-count-minimizing
 *    gate selection.
 *  - Baseline 3 [10] ("MoveLess"): locality-first gate selection.
 * The junction-mesh compiler also reuses this engine with conservative
 * path reservation enabled.
 *
 * The engine maps qubits (greedy cluster mapping), builds the gate
 * dependency DAG from the schedule order, and repeatedly commits the
 * best ready gate against per-resource timelines. Roadblocks,
 * rebalances and component times are measured, not asserted.
 */

#ifndef CYCLONE_COMPILER_BASELINE_EJF_H
#define CYCLONE_COMPILER_BASELINE_EJF_H

#include <string>

#include "compiler/compile_result.h"
#include "qccd/durations.h"
#include "qccd/swap_model.h"
#include "qccd/topology.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** Gate-selection policies for the EJF engine. */
enum class GateSelection
{
    EarliestFinish,   ///< Classic EJF: commit the gate finishing first.
    FewestShuttles,   ///< Baseline 2: minimize route length first.
    BatchLocality,    ///< Baseline 3: prefer gates local to the ancilla.
};

/** Options for the EJF compiler engine. */
struct EjfOptions
{
    Durations durations;
    SwapKind swap = SwapKind::GateSwap;
    GateSelection selection = GateSelection::EarliestFinish;

    /** Data qubits packed per trap by the cluster mapping. */
    size_t dataPerTrap = 2;

    /** Schedule timeslices become barriers (dynamic policy). */
    bool timesliceBarriers = false;

    /** Conservative full-path reservation (junction-mesh policy). */
    bool conservativeRouting = false;

    /**
     * Ready gates costed per scheduling step. 1 is the faithful
     * Earliest Job First policy (commit the single earliest ready
     * job); larger windows add lookahead the paper's baseline [22]
     * does not have.
     */
    size_t candidateWindow = 1;

    /** Name recorded in the result. */
    std::string name = "baseline-ejf";
};

/**
 * Compile one syndrome round onto a device with the EJF engine.
 *
 * @param code code under compilation
 * @param schedule gate order source (slices define the DAG order, and
 *        the barriers when timesliceBarriers is set)
 * @param topology target device (traps must fit data + ancillas)
 * @param options engine configuration
 */
CompileResult compileEjf(const CssCode& code,
                         const SyndromeSchedule& schedule,
                         const Topology& topology,
                         const EjfOptions& options);

} // namespace cyclone

#endif // CYCLONE_COMPILER_BASELINE_EJF_H
