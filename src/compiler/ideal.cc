#include "compiler/ideal.h"

#include <set>
#include <utility>

namespace cyclone {

IdealLatency
idealLatencies(const CssCode& code,
               const SyndromeSchedule& parallel_schedule,
               const Durations& dur)
{
    IdealLatency out;
    out.depth = parallel_schedule.depth();
    out.gates = parallel_schedule.totalGates();

    // One lockstep hop on the fully connected graph: split, move,
    // cross one L junction, move, merge. Gates run at chain length 2
    // (one data qubit per trap plus the visiting ancilla).
    const double hop = dur.split() + 2.0 * dur.move() +
        dur.junctionCrossUs(2) + dur.merge();
    const double gate = dur.twoQubitGateUs(2);

    const double measure_serial =
        static_cast<double>(code.numStabs()) * dur.measure();

    out.serialUs = static_cast<double>(out.gates) * (hop + gate) +
        measure_serial;
    out.parallelUs = static_cast<double>(out.depth) * (hop + gate) +
        dur.measure();
    out.speedup = out.parallelUs > 0.0 ? out.serialUs / out.parallelUs
                                       : 0.0;

    // Emit the OPT execution as an IR: resources are the data traps
    // (one qubit each); hops are resource-free lockstep actions.
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    TimedSchedule& sched = out.schedule;
    sched.numResources = static_cast<uint32_t>(n);
    sched.numIons =
        static_cast<uint32_t>(n + code.numStabs());
    auto anc_ion = [&](const ScheduledGate& g) {
        return static_cast<uint32_t>(
            g.kind == StabKind::X ? n + g.stabIndex
                                  : n + mx + g.stabIndex);
    };
    const auto& slices = parallel_schedule.slices();
    for (size_t s = 0; s < slices.size(); ++s) {
        const double slice_start =
            static_cast<double>(s) * (hop + gate);
        for (const ScheduledGate& g : slices[s]) {
            const uint32_t anc = anc_ion(g);
            // The visiting ancilla's lockstep hop.
            double cursor = slice_start;
            auto hop_op = [&](OpCategory category, double duration) {
                TimedOp op;
                op.category = category;
                op.resource = kNoResource;
                op.ionA = anc;
                op.startUs = cursor;
                op.durationUs = duration;
                sched.ops.push_back(op);
                cursor += duration;
            };
            hop_op(OpCategory::Shuttle, dur.split());
            hop_op(OpCategory::Shuttle, dur.move());
            hop_op(OpCategory::Junction, dur.junctionCrossUs(2));
            hop_op(OpCategory::Shuttle, dur.move());
            hop_op(OpCategory::Shuttle, dur.merge());
            // The gate, in the data qubit's trap.
            TimedOp cx;
            cx.category = OpCategory::Gate;
            cx.resource = static_cast<uint32_t>(g.data);
            cx.ionA = anc;
            cx.ionB = static_cast<uint32_t>(g.data);
            cx.startUs = slice_start + hop;
            cx.durationUs = gate;
            sched.ops.push_back(cx);
        }
    }
    // One fully parallel measurement of every ancilla.
    const double measure_start =
        static_cast<double>(out.depth) * (hop + gate);
    for (size_t a = 0; a < code.numStabs(); ++a) {
        TimedOp measure;
        measure.category = OpCategory::Measure;
        measure.resource = kNoResource;
        measure.ionA = static_cast<uint32_t>(n + a);
        measure.startUs = measure_start;
        measure.durationUs = dur.measure();
        sched.ops.push_back(measure);
    }
    return out;
}

size_t
pseudoOptEdgeCount(const CssCode& code)
{
    // Edges between consecutive support qubits of each stabilizer:
    // the shuttling paths an ancilla needs to walk its support when
    // every data qubit owns a trap.
    std::set<std::pair<size_t, size_t>> edges;
    auto add_row = [&](const std::vector<size_t>& support) {
        for (size_t i = 0; i + 1 < support.size(); ++i) {
            size_t a = support[i], b = support[i + 1];
            if (a > b)
                std::swap(a, b);
            edges.insert({a, b});
        }
    };
    for (size_t r = 0; r < code.numXStabs(); ++r)
        add_row(code.hx().rowSupport(r));
    for (size_t r = 0; r < code.numZStabs(); ++r)
        add_row(code.hz().rowSupport(r));
    return edges.size();
}

} // namespace cyclone
