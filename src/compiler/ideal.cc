#include "compiler/ideal.h"

#include <set>
#include <utility>

namespace cyclone {

IdealLatency
idealLatencies(const CssCode& code,
               const SyndromeSchedule& parallel_schedule,
               const Durations& dur)
{
    IdealLatency out;
    out.depth = parallel_schedule.depth();
    out.gates = parallel_schedule.totalGates();

    // One lockstep hop on the fully connected graph: split, move,
    // cross one L junction, move, merge. Gates run at chain length 2
    // (one data qubit per trap plus the visiting ancilla).
    const double hop = dur.split() + 2.0 * dur.move() +
        dur.junctionCrossUs(2) + dur.merge();
    const double gate = dur.twoQubitGateUs(2);

    const double measure_serial =
        static_cast<double>(code.numStabs()) * dur.measure();

    out.serialUs = static_cast<double>(out.gates) * (hop + gate) +
        measure_serial;
    out.parallelUs = static_cast<double>(out.depth) * (hop + gate) +
        dur.measure();
    out.speedup = out.parallelUs > 0.0 ? out.serialUs / out.parallelUs
                                       : 0.0;
    return out;
}

size_t
pseudoOptEdgeCount(const CssCode& code)
{
    // Edges between consecutive support qubits of each stabilizer:
    // the shuttling paths an ancilla needs to walk its support when
    // every data qubit owns a trap.
    std::set<std::pair<size_t, size_t>> edges;
    auto add_row = [&](const std::vector<size_t>& support) {
        for (size_t i = 0; i + 1 < support.size(); ++i) {
            size_t a = support[i], b = support[i + 1];
            if (a > b)
                std::swap(a, b);
            edges.insert({a, b});
        }
    };
    for (size_t r = 0; r < code.numXStabs(); ++r)
        add_row(code.hx().rowSupport(r));
    for (size_t r = 0; r < code.numZStabs(); ++r)
        add_row(code.hz().rowSupport(r));
    return edges.size();
}

} // namespace cyclone
