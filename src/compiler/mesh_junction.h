/**
 * @file
 * Mesh junction network compiler (Section III-C, Figs. 8-9).
 *
 * One data qubit per perimeter trap of a dense junction mesh; ancillas
 * route through the mesh with conservative full-path reservation
 * (junction-junction collisions cannot be resolved mid-flight, so the
 * compiler holds every junction on the path for the traversal). All
 * trap roadblocks become junction roadblocks; junction crossing time
 * (scaled by Durations::junctionScale) dominates — the Fig. 9 sweep.
 */

#ifndef CYCLONE_COMPILER_MESH_JUNCTION_H
#define CYCLONE_COMPILER_MESH_JUNCTION_H

#include "compiler/baseline_ejf.h"

namespace cyclone {

/**
 * Compile onto an auto-built junction mesh (one data qubit per trap).
 * The `topology` the engine uses is built internally from the code
 * size; options.durations.junctionScale controls the Fig. 9 sweep.
 */
CompileResult compileMeshJunction(const CssCode& code,
                                  const SyndromeSchedule& schedule,
                                  EjfOptions options = {});

} // namespace cyclone

#endif // CYCLONE_COMPILER_MESH_JUNCTION_H
