#include "compiler/baseline_ejf.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/logging.h"
#include "compiler/mapping.h"
#include "compiler/router.h"
#include "qccd/machine.h"
#include "qccd/timeline.h"

namespace cyclone {

namespace {

/** One gate instance flattened from the schedule. */
struct FlatGate
{
    StabKind kind;
    size_t stabIndex;
    size_t data;
    size_t slice;
    size_t globalStab; ///< X stabs first, then Z.
};

/** Nearest trap with free capacity, excluding `exclude`. */
NodeId
nearestTrapWithSpace(const Topology& topo, const Machine& machine,
                     NodeId start, NodeId exclude)
{
    std::vector<bool> seen(topo.numNodes(), false);
    std::deque<NodeId> frontier{start};
    seen[start] = true;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop_front();
        for (const Neighbor& nb : topo.neighbors(cur)) {
            if (seen[nb.node])
                continue;
            seen[nb.node] = true;
            if (topo.isTrap(nb.node) && nb.node != exclude &&
                machine.freeCapacity(nb.node) > 0) {
                return nb.node;
            }
            frontier.push_back(nb.node);
        }
    }
    CYCLONE_FATAL("no trap with free capacity found for rebalance");
}

/** A costed candidate plan for one gate. */
struct GatePlan
{
    size_t gateIndex = 0;
    RoutePlan route;
    double gateStart = 0.0;
    double gateDuration = 0.0;
    double end = 0.0;
    size_t routeHops = 0;
    bool local = false;
};

} // namespace

CompileResult
compileEjf(const CssCode& code, const SyndromeSchedule& schedule,
           const Topology& topology, const EjfOptions& options)
{
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();

    Machine machine(topology);
    Mapping mapping = greedyClusterMapping(code, topology, machine,
                                           options.dataPerTrap);
    SwapModel swap_model(options.swap, options.durations);
    Router router(topology, options.durations, swap_model);
    ResourceTimeline timeline(router.numResources());

    // ---- Flatten schedule into a dependency DAG. ----
    std::vector<FlatGate> gates;
    for (size_t s = 0; s < schedule.slices().size(); ++s) {
        for (const ScheduledGate& g : schedule.slices()[s]) {
            const size_t global = g.kind == StabKind::X
                ? g.stabIndex : mx + g.stabIndex;
            gates.push_back({g.kind, g.stabIndex, g.data, s, global});
        }
    }
    const size_t num_gates = gates.size();

    std::vector<std::vector<size_t>> successors(num_gates);
    std::vector<size_t> indegree(num_gates, 0);
    {
        std::vector<size_t> last_of_stab(mx + mz, SIZE_MAX);
        std::vector<size_t> last_of_data(code.numQubits(), SIZE_MAX);
        for (size_t g = 0; g < num_gates; ++g) {
            const size_t ps = last_of_stab[gates[g].globalStab];
            const size_t pd = last_of_data[gates[g].data];
            if (ps != SIZE_MAX) {
                successors[ps].push_back(g);
                ++indegree[g];
            }
            if (pd != SIZE_MAX && pd != ps) {
                successors[pd].push_back(g);
                ++indegree[g];
            }
            last_of_stab[gates[g].globalStab] = g;
            last_of_data[gates[g].data] = g;
        }
    }

    std::vector<double> anc_avail(mx + mz, 0.0);
    std::vector<double> dep_end(num_gates, 0.0);
    std::vector<char> committed(num_gates, 0);

    CompileResult result;
    result.compilerName = options.name;
    result.topologyName = topology.name();
    result.numTraps = topology.numTraps();
    result.numJunctions = topology.numJunctions();
    result.numAncilla = mx + mz;
    result.schedule.numResources =
        static_cast<uint32_t>(router.numResources());
    result.schedule.numIons = static_cast<uint32_t>(n + mx + mz);

    // Circuit qubit id of a machine ion: data qubits keep their index;
    // ancillas map to n + global stabilizer index (X first, then Z),
    // matching the memory-circuit qubit layout.
    auto circuit_ion = [&](IonId id) {
        const Ion& ion = machine.ion(id);
        return static_cast<uint32_t>(
            ion.role == IonRole::Data ? ion.payload : n + ion.payload);
    };

    double barrier = 0.0;      // Start-of-slice barrier (dynamic mode).
    double max_end = 0.0;

    // Plans one gate against current state (no mutation).
    auto plan_gate = [&](size_t g) {
        GatePlan plan;
        plan.gateIndex = g;
        const FlatGate& fg = gates[g];
        const IonId anc = mapping.ancillaIon[fg.globalStab];
        const NodeId target = mapping.dataTrap[fg.data];
        double earliest = std::max({anc_avail[fg.globalStab],
                                    dep_end[g], barrier});
        plan.local = machine.ion(anc).trap == target;
        plan.route = router.planMove(timeline, machine, anc, target,
                                     earliest,
                                     options.conservativeRouting);
        plan.routeHops = plan.route.reservations.size();
        // The two-qubit gate occupies the destination trap.
        const size_t chain_after = machine.chainLength(target) +
            (plan.local ? 0 : 1);
        plan.gateDuration =
            options.durations.twoQubitGateUs(chain_after);
        plan.gateStart = timeline.plan(target, plan.route.readyTime);
        plan.end = plan.gateStart + plan.gateDuration;
        return plan;
    };

    auto commit_reservations = [&](const RoutePlan& route, IonId mover) {
        for (const Reservation& r : route.reservations) {
            timeline.reserve(r.resource, r.start, r.duration);
            max_end = std::max(max_end, r.start + r.duration);
        }
        const uint32_t mover_ion = circuit_ion(mover);
        for (TimedOp op : route.ops) {
            op.ionA = mover_ion;
            result.schedule.ops.push_back(op);
        }
        result.trapRoadblocks += route.trapRoadblocks;
        result.junctionRoadblocks += route.junctionRoadblocks;
        result.shuttleOps += route.shuttleOps;
        result.swapOps += route.swapOps;
    };

    // Evict an ion from `trap` to make room; returns eviction end time.
    auto rebalance = [&](NodeId trap, double earliest) {
        // Prefer evicting an ancilla; fall back to a data ion.
        IonId victim = SIZE_MAX;
        for (IonId ion : machine.chain(trap)) {
            if (machine.ion(ion).role == IonRole::Ancilla) {
                victim = ion;
                break;
            }
        }
        if (victim == SIZE_MAX)
            victim = machine.chain(trap).front();
        const NodeId dest =
            nearestTrapWithSpace(topology, machine, trap, trap);
        double start = earliest;
        if (machine.ion(victim).role == IonRole::Ancilla)
            start = std::max(start,
                             anc_avail[machine.ion(victim).payload]);
        RoutePlan move = router.planMove(timeline, machine, victim, dest,
                                         start,
                                         options.conservativeRouting);
        commit_reservations(move, victim);
        if (machine.ion(victim).role == IonRole::Ancilla) {
            anc_avail[machine.ion(victim).payload] = move.readyTime;
            mapping.ancillaTrap[machine.ion(victim).payload] = dest;
        } else {
            mapping.dataTrap[machine.ion(victim).payload] = dest;
        }
        machine.relocate(victim, dest, move.mergeAtFront);
        ++result.rebalances;
        return move.readyTime;
    };

    // ---- Main scheduling loop. ----
    std::vector<size_t> ready;
    for (size_t g = 0; g < num_gates; ++g) {
        if (indegree[g] == 0)
            ready.push_back(g);
    }
    size_t remaining = num_gates;
    size_t current_slice = 0;

    while (remaining > 0) {
        // Dynamic mode: only this slice's gates are eligible, and the
        // slice boundary is a barrier.
        std::vector<size_t> eligible;
        eligible.reserve(ready.size());
        for (size_t g : ready) {
            if (!options.timesliceBarriers ||
                gates[g].slice == current_slice) {
                eligible.push_back(g);
            }
        }
        if (eligible.empty()) {
            CYCLONE_ASSERT(options.timesliceBarriers,
                           "scheduler stalled with gates remaining");
            // Advance the barrier to the next slice.
            barrier = max_end;
            ++current_slice;
            continue;
        }
        std::sort(eligible.begin(), eligible.end(),
                  [&](size_t a, size_t b) {
                      if (dep_end[a] != dep_end[b])
                          return dep_end[a] < dep_end[b];
                      return a < b;
                  });
        const size_t window =
            std::min(options.candidateWindow, eligible.size());

        GatePlan best;
        bool have_best = false;
        for (size_t i = 0; i < window; ++i) {
            GatePlan plan = plan_gate(eligible[i]);
            bool better = false;
            if (!have_best) {
                better = true;
            } else {
                switch (options.selection) {
                  case GateSelection::EarliestFinish:
                    better = plan.end < best.end;
                    break;
                  case GateSelection::FewestShuttles: {
                    // Weighted blend: mostly earliest-finish, but
                    // each route reservation carries a penalty so
                    // shuttle-frugal gates win near-ties.
                    const double hop_penalty = 120.0;
                    const double plan_score = plan.end +
                        hop_penalty * static_cast<double>(
                            plan.routeHops);
                    const double best_score = best.end +
                        hop_penalty * static_cast<double>(
                            best.routeHops);
                    better = plan_score < best_score;
                    break;
                  }
                  case GateSelection::BatchLocality:
                    better = (plan.local && !best.local) ||
                        (plan.local == best.local &&
                         plan.end < best.end);
                    break;
                }
            }
            if (better) {
                best = std::move(plan);
                have_best = true;
            }
        }
        CYCLONE_ASSERT(have_best, "no candidate plan produced");

        // Capacity check: make room before the ancilla merges.
        const FlatGate& fg = gates[best.gateIndex];
        const NodeId target = mapping.dataTrap[fg.data];
        const IonId anc = mapping.ancillaIon[fg.globalStab];
        if (machine.ion(anc).trap != target &&
            machine.freeCapacity(target) == 0) {
            rebalance(target,
                      std::max({anc_avail[fg.globalStab],
                                dep_end[best.gateIndex], barrier}));
            best = plan_gate(best.gateIndex); // Replan after eviction.
        }

        // Commit route + gate.
        commit_reservations(best.route, anc);
        if (machine.ion(anc).trap != target) {
            machine.relocate(anc, target, best.route.mergeAtFront);
            mapping.ancillaTrap[fg.globalStab] = target;
        }
        timeline.reserve(target, best.gateStart, best.gateDuration);
        {
            TimedOp gate;
            gate.category = OpCategory::Gate;
            gate.resource = static_cast<uint32_t>(target);
            gate.ionA = circuit_ion(anc);
            gate.ionB = static_cast<uint32_t>(fg.data);
            gate.startUs = best.gateStart;
            gate.durationUs = best.gateDuration;
            // No waitUs: queueing for a gate slot is ordinary in-trap
            // scheduling, not a roadblock — the histogram must stay
            // consistent with the trap/junction roadblock counters.
            result.schedule.ops.push_back(gate);
        }
        max_end = std::max(max_end, best.end);
        ++result.gateOps;
        anc_avail[fg.globalStab] = best.end;

        // Retire the gate.
        committed[best.gateIndex] = 1;
        --remaining;
        ready.erase(std::remove(ready.begin(), ready.end(),
                                best.gateIndex),
                    ready.end());
        for (size_t succ : successors[best.gateIndex]) {
            dep_end[succ] = std::max(dep_end[succ], best.end);
            if (--indegree[succ] == 0)
                ready.push_back(succ);
        }
    }

    // ---- Measure every ancilla in place. ----
    for (size_t s = 0; s < mx + mz; ++s) {
        const NodeId trap = machine.ion(mapping.ancillaIon[s]).trap;
        const double start = timeline.plan(trap, anc_avail[s]);
        timeline.reserve(trap, start, options.durations.measure());
        TimedOp measure;
        measure.category = OpCategory::Measure;
        measure.resource = static_cast<uint32_t>(trap);
        measure.ionA = static_cast<uint32_t>(n + s);
        measure.startUs = start;
        measure.durationUs = options.durations.measure();
        result.schedule.ops.push_back(measure);
        max_end = std::max(max_end, start + options.durations.measure());
    }

    result.deriveTimingFromSchedule();
    // The IR is the source of truth; the engine's running max is only
    // a scheduling aid and must agree with it (to fp reassociation).
    CYCLONE_ASSERT(std::abs(result.execTimeUs - max_end) <=
                       1e-6 + 1e-12 * max_end,
                   "IR makespan diverged from the engine's max end: "
                   << result.execTimeUs << " vs " << max_end);
    return result;
}

} // namespace cyclone
