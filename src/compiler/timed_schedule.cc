#include "compiler/timed_schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cyclone {

double
TimeBreakdown::total() const
{
    return gateUs + shuttleUs + junctionUs + swapUs + measureUs + prepUs;
}

void
TimeBreakdown::add(OpCategory category, double duration_us)
{
    switch (category) {
      case OpCategory::Gate: gateUs += duration_us; break;
      case OpCategory::Shuttle: shuttleUs += duration_us; break;
      case OpCategory::Junction: junctionUs += duration_us; break;
      case OpCategory::Swap: swapUs += duration_us; break;
      case OpCategory::Measure: measureUs += duration_us; break;
      case OpCategory::Prep: prepUs += duration_us; break;
    }
}

double
TimeBreakdown::of(OpCategory category) const
{
    switch (category) {
      case OpCategory::Gate: return gateUs;
      case OpCategory::Shuttle: return shuttleUs;
      case OpCategory::Junction: return junctionUs;
      case OpCategory::Swap: return swapUs;
      case OpCategory::Measure: return measureUs;
      case OpCategory::Prep: return prepUs;
    }
    return 0.0;
}

TimeBreakdown&
TimeBreakdown::operator+=(const TimeBreakdown& other)
{
    gateUs += other.gateUs;
    shuttleUs += other.shuttleUs;
    junctionUs += other.junctionUs;
    swapUs += other.swapUs;
    measureUs += other.measureUs;
    prepUs += other.prepUs;
    return *this;
}

void
WaitHistogram::add(double wait_us)
{
    if (!(wait_us > 0.0))
        return;
    size_t bin = 0;
    // Bin 0: (0, 1) us; bin b >= 1: [2^(b-1), 2^b) us.
    while (bin + 1 < kBins && wait_us >= std::ldexp(1.0, static_cast<int>(bin)))
        ++bin;
    ++bins[bin];
    ++waits;
    totalWaitUs += wait_us;
}

double
TimedSchedule::makespan() const
{
    double m = 0.0;
    for (const TimedOp& op : ops)
        m = std::max(m, op.startUs + op.durationUs);
    return m;
}

TimeBreakdown
TimedSchedule::breakdown() const
{
    TimeBreakdown out;
    for (const TimedOp& op : ops) {
        if (op.counted)
            out.add(op.category, op.durationUs);
    }
    return out;
}

std::array<size_t, kNumOpCategories>
TimedSchedule::opCounts() const
{
    std::array<size_t, kNumOpCategories> counts{};
    for (const TimedOp& op : ops) {
        if (op.counted)
            ++counts[static_cast<size_t>(op.category)];
    }
    return counts;
}

std::vector<double>
TimedSchedule::ionBusyUs() const
{
    std::vector<double> busy(numIons, 0.0);
    for (const TimedOp& op : ops) {
        if (!op.counted)
            continue;
        if (op.ionA != kNoIon && op.ionA < numIons)
            busy[op.ionA] += op.durationUs;
        if (op.ionB != kNoIon && op.ionB < numIons)
            busy[op.ionB] += op.durationUs;
    }
    return busy;
}

std::vector<double>
TimedSchedule::ionIdleUs() const
{
    const double span = makespan();
    std::vector<double> idle = ionBusyUs();
    for (double& v : idle)
        v = std::max(0.0, span - v);
    return idle;
}

WaitHistogram
TimedSchedule::waitHistogram() const
{
    WaitHistogram hist;
    for (const TimedOp& op : ops)
        hist.add(op.waitUs);
    return hist;
}

double
TimedSchedule::utilization(OpCategory category) const
{
    const double span = makespan();
    if (span <= 0.0)
        return 0.0;
    return breakdown().of(category) / span;
}

bool
TimedSchedule::validate(std::string* why) const
{
    auto fail = [&](const std::string& message) {
        if (why != nullptr)
            *why = message;
        return false;
    };

    // Per-op well-formedness.
    for (size_t i = 0; i < ops.size(); ++i) {
        const TimedOp& op = ops[i];
        if (!std::isfinite(op.startUs) || !std::isfinite(op.durationUs) ||
            !std::isfinite(op.waitUs)) {
            return fail("op " + std::to_string(i) + " has non-finite time");
        }
        if (op.startUs < 0.0 || op.durationUs < 0.0 || op.waitUs < 0.0)
            return fail("op " + std::to_string(i) + " has negative time");
        if (op.resource != kNoResource && op.resource >= numResources)
            return fail("op " + std::to_string(i) +
                        " references resource out of range");
        if ((op.ionA != kNoIon && op.ionA >= numIons) ||
            (op.ionB != kNoIon && op.ionB >= numIons)) {
            return fail("op " + std::to_string(i) +
                        " references ion out of range");
        }
    }

    // No overlapping reservations on any resource. Sort op indices by
    // (resource, start) and scan each resource's run.
    std::vector<uint32_t> held;
    held.reserve(ops.size());
    for (uint32_t i = 0; i < ops.size(); ++i) {
        if (ops[i].resource != kNoResource)
            held.push_back(i);
    }
    std::sort(held.begin(), held.end(), [&](uint32_t a, uint32_t b) {
        if (ops[a].resource != ops[b].resource)
            return ops[a].resource < ops[b].resource;
        if (ops[a].startUs != ops[b].startUs)
            return ops[a].startUs < ops[b].startUs;
        return a < b;
    });
    constexpr double kOverlapToleranceUs = 1e-6;
    for (size_t i = 1; i < held.size(); ++i) {
        const TimedOp& prev = ops[held[i - 1]];
        const TimedOp& cur = ops[held[i]];
        if (prev.resource != cur.resource)
            continue;
        if (cur.startUs + kOverlapToleranceUs < prev.endUs()) {
            std::ostringstream msg;
            msg << "resource " << cur.resource << " double booked: ["
                << prev.startUs << ", " << prev.endUs() << ") overlaps ["
                << cur.startUs << ", " << cur.endUs() << ")";
            return fail(msg.str());
        }
    }
    return true;
}

} // namespace cyclone
