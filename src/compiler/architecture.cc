#include "compiler/architecture.h"

namespace cyclone {

const char*
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::BaselineGrid: return "baseline-grid";
      case Architecture::AlternateGrid: return "alternate-grid";
      case Architecture::DynamicGrid: return "dynamic-grid";
      case Architecture::RingEjf: return "ring-ejf";
      case Architecture::MeshJunction: return "mesh-junction";
      case Architecture::Cyclone: return "cyclone";
    }
    return "unknown";
}

std::optional<Architecture>
parseArchitecture(std::string_view name)
{
    if (name == "cyclone")
        return Architecture::Cyclone;
    if (name == "baseline" || name == "baseline-grid")
        return Architecture::BaselineGrid;
    if (name == "alternate" || name == "alternate-grid")
        return Architecture::AlternateGrid;
    if (name == "dynamic" || name == "dynamic-grid")
        return Architecture::DynamicGrid;
    if (name == "ring" || name == "ring-ejf")
        return Architecture::RingEjf;
    if (name == "mesh" || name == "mesh-junction")
        return Architecture::MeshJunction;
    return std::nullopt;
}

} // namespace cyclone
