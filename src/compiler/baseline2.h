/**
 * @file
 * Baseline 2: shuttle-count-minimizing compiler, a simplified
 * reimplementation of "Muzzle the Shuttle" [28] on the EJF engine.
 * Gate selection prefers the candidate with the fewest route
 * reservations (shuttle operations), breaking ties by finish time.
 */

#ifndef CYCLONE_COMPILER_BASELINE2_H
#define CYCLONE_COMPILER_BASELINE2_H

#include "compiler/baseline_ejf.h"

namespace cyclone {

/** Compile with the shuttle-minimizing selection policy. */
CompileResult compileBaseline2(const CssCode& code,
                               const SyndromeSchedule& schedule,
                               const Topology& topology,
                               EjfOptions options = {});

} // namespace cyclone

#endif // CYCLONE_COMPILER_BASELINE2_H
