/**
 * @file
 * Shuttling route planning against resource timelines.
 *
 * A route moves one ancilla ion from its trap to a destination trap:
 * optional swap-out to the chain edge, split, then an alternation of
 * edge moves and node traversals (junction crossings, or the expensive
 * merge+split of passing *through* a trap), and a final merge. The
 * planner never mutates timelines; the chosen plan's reservations are
 * committed by the compiler engine, which also appends the plan's
 * TimedOps to the round's TimedSchedule IR.
 *
 * Waiting on a busy traversed trap is a trap roadblock; waiting on a
 * busy junction is a junction roadblock (Section III of the paper).
 */

#ifndef CYCLONE_COMPILER_ROUTER_H
#define CYCLONE_COMPILER_ROUTER_H

#include <vector>

#include "compiler/compile_result.h"
#include "qccd/durations.h"
#include "qccd/machine.h"
#include "qccd/swap_model.h"
#include "qccd/timeline.h"
#include "qccd/topology.h"

namespace cyclone {

/** One planned reservation on a resource. */
struct Reservation
{
    size_t resource;
    double start;
    double duration;
    OpCategory category;
};

/** A fully costed route (or in-trap operation). */
struct RoutePlan
{
    /** Time at which the ion is available at the destination. */
    double readyTime = 0.0;
    std::vector<Reservation> reservations;
    /**
     * The route's physical actions as IR ops, counted once each (the
     * moving ion's id is filled in by the engine on commit). Under
     * incremental routing each op carries its reservation's resource;
     * under conservative routing the reservations are full-window
     * holds over many resources, so the ops here are resource-free and
     * the engine emits the holds as uncounted IR entries instead.
     */
    std::vector<TimedOp> ops;
    /**
     * Component durations of this route, derived from the counted ops
     * (conservative reservations hold many resources for the same
     * transit; those holds are not double counted here).
     */
    TimeBreakdown breakdown;
    size_t trapRoadblocks = 0;
    size_t junctionRoadblocks = 0;
    size_t trapTransits = 0;   ///< Through-trap passes (cost paid).
    size_t shuttleOps = 0;
    size_t swapOps = 0;
    /** True when planned with conservative full-path reservation. */
    bool conservative = false;
    /**
     * Chain end the ion occupies after merging at the destination:
     * true = front (port-0) end. Pass to Machine::relocate.
     */
    bool mergeAtFront = false;
};

/** Route planner bound to one device and timing model. */
class Router
{
  public:
    Router(const Topology& topology, const Durations& durations,
           const SwapModel& swap_model);

    /** Total number of schedulable resources (nodes then edges). */
    size_t numResources() const
    {
        return topology_->numNodes() + topology_->numEdges();
    }

    /** Resource index of an edge. */
    size_t
    edgeResource(EdgeId e) const
    {
        return topology_->numNodes() + e;
    }

    /**
     * Plan moving `ion` from its current trap to `to`, starting no
     * earlier than `earliest`.
     *
     * @param conservative if true, reserve every traversed resource
     *        for the whole traversal window (the junction-mesh
     *        compiler's conservative path scheduling)
     */
    RoutePlan planMove(const ResourceTimeline& timeline,
                       const Machine& machine, IonId ion, NodeId to,
                       double earliest, bool conservative = false) const;

    const Topology& topology() const { return *topology_; }
    const Durations& durations() const { return *durations_; }
    const SwapModel& swapModel() const { return *swapModel_; }

  private:
    const Topology* topology_;
    const Durations* durations_;
    const SwapModel* swapModel_;
};

} // namespace cyclone

#endif // CYCLONE_COMPILER_ROUTER_H
