/**
 * @file
 * Output of compiling one syndrome-extraction round to a device.
 *
 * Execution time is the schedule makespan of one full round. The
 * serialized breakdown sums each component's duration as if executed
 * one after another (the "unrolled" times of Fig. 20); the ratio of
 * makespan to serialized total is the paper's "% parallelization".
 */

#ifndef CYCLONE_COMPILER_COMPILE_RESULT_H
#define CYCLONE_COMPILER_COMPILE_RESULT_H

#include <cstddef>
#include <string>

namespace cyclone {

/** Reservation categories, for component accounting. */
enum class OpCategory
{
    Gate,
    Shuttle,   ///< split / move / merge
    Junction,  ///< junction crossings
    Swap,      ///< intra-trap reordering
    Measure,
    Prep,
};

/** Per-category serialized durations in microseconds. */
struct TimeBreakdown
{
    double gateUs = 0.0;
    double shuttleUs = 0.0;
    double junctionUs = 0.0;
    double swapUs = 0.0;
    double measureUs = 0.0;
    double prepUs = 0.0;

    /** Sum of all components. */
    double total() const;

    /** Add a duration to the category's bucket. */
    void add(OpCategory category, double duration_us);

    TimeBreakdown& operator+=(const TimeBreakdown& other);
};

/** Result of compiling one syndrome round. */
struct CompileResult
{
    std::string compilerName;
    std::string topologyName;

    /** Makespan of one syndrome-extraction round, microseconds. */
    double execTimeUs = 0.0;

    /** Unrolled component times. */
    TimeBreakdown serialized;

    // Spatial accounting.
    size_t numTraps = 0;
    size_t numJunctions = 0;
    size_t numAncilla = 0;

    // Contention accounting.
    size_t trapRoadblocks = 0;
    size_t junctionRoadblocks = 0;
    size_t rebalances = 0;

    // Operation counts.
    size_t gateOps = 0;
    size_t shuttleOps = 0;
    size_t swapOps = 0;

    /**
     * Realized parallelization: makespan / serialized total (lower is
     * more parallel; 1.0 means fully serial).
     */
    double parallelFraction() const;

    /**
     * Spacetime cost of Fig. 16: traps x execution time x ancillas.
     */
    double spacetimeCost() const;
};

} // namespace cyclone

#endif // CYCLONE_COMPILER_COMPILE_RESULT_H
