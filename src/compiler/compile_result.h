/**
 * @file
 * Output of compiling one syndrome-extraction round to a device.
 *
 * Every compiler commits its reservations into a TimedSchedule IR; the
 * summary here (makespan, serialized breakdown, parallelization) is
 * *derived* from that IR via deriveTimingFromSchedule. The serialized
 * breakdown sums each component's duration as if executed one after
 * another (the "unrolled" times of Fig. 20); the ratio of makespan to
 * serialized total is the paper's "% parallelization".
 */

#ifndef CYCLONE_COMPILER_COMPILE_RESULT_H
#define CYCLONE_COMPILER_COMPILE_RESULT_H

#include <cstddef>
#include <string>

#include "compiler/timed_schedule.h"

namespace cyclone {

/** Result of compiling one syndrome round. */
struct CompileResult
{
    std::string compilerName;
    std::string topologyName;

    /** Makespan of one syndrome-extraction round, microseconds. */
    double execTimeUs = 0.0;

    /** Unrolled component times. */
    TimeBreakdown serialized;

    // Spatial accounting.
    size_t numTraps = 0;
    size_t numJunctions = 0;
    size_t numAncilla = 0;

    // Contention accounting.
    size_t trapRoadblocks = 0;
    size_t junctionRoadblocks = 0;
    size_t rebalances = 0;

    // Operation counts.
    size_t gateOps = 0;
    size_t shuttleOps = 0;
    size_t swapOps = 0;

    /** The per-resource operation timeline this summary derives from. */
    TimedSchedule schedule;

    /**
     * Fill execTimeUs and serialized from the IR. Compilers call this
     * once after emitting their last op; callers that mutate the
     * schedule must re-derive.
     */
    void deriveTimingFromSchedule();

    /**
     * Realized parallelization: makespan / serialized total (lower is
     * more parallel; 1.0 means fully serial).
     */
    double parallelFraction() const;

    /**
     * Spacetime cost of Fig. 16: traps x execution time x ancillas.
     */
    double spacetimeCost() const;
};

} // namespace cyclone

#endif // CYCLONE_COMPILER_COMPILE_RESULT_H
