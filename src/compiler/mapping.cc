#include "compiler/mapping.h"

#include <algorithm>
#include <deque>
#include <map>

#include "common/logging.h"

namespace cyclone {

namespace {

/** Nearest trap (hop count) with at least one free slot. */
NodeId
nearestTrapWithSpace(const Topology& topo, const Machine& machine,
                     NodeId start)
{
    if (topo.isTrap(start) && machine.freeCapacity(start) > 0)
        return start;
    std::vector<bool> seen(topo.numNodes(), false);
    std::deque<NodeId> frontier{start};
    seen[start] = true;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop_front();
        for (const Neighbor& nb : topo.neighbors(cur)) {
            if (seen[nb.node])
                continue;
            seen[nb.node] = true;
            if (topo.isTrap(nb.node) &&
                machine.freeCapacity(nb.node) > 0) {
                return nb.node;
            }
            frontier.push_back(nb.node);
        }
    }
    CYCLONE_FATAL("device out of trap capacity while mapping");
}

} // namespace

Mapping
greedyClusterMapping(const CssCode& code, const Topology& topology,
                     Machine& machine, size_t data_per_trap)
{
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    CYCLONE_ASSERT(data_per_trap >= 1, "data_per_trap must be >= 1");
    if (topology.totalCapacity() < n + mx + mz) {
        CYCLONE_FATAL("device capacity " << topology.totalCapacity()
                      << " below ion count " << n + mx + mz);
    }

    Mapping map;
    map.dataTrap.assign(n, SIZE_MAX);
    map.dataIon.assign(n, SIZE_MAX);
    map.ancillaTrap.assign(mx + mz, SIZE_MAX);
    map.ancillaIon.assign(mx + mz, SIZE_MAX);

    // ---- Data: walk stabilizer supports, clustering into traps. ----
    const auto& traps = topology.traps();
    size_t trap_cursor = 0;
    size_t in_current = 0;
    auto place_data = [&](size_t q) {
        if (map.dataTrap[q] != SIZE_MAX)
            return;
        while (trap_cursor < traps.size() &&
               (in_current >= data_per_trap ||
                machine.freeCapacity(traps[trap_cursor]) == 0)) {
            ++trap_cursor;
            in_current = 0;
        }
        CYCLONE_ASSERT(trap_cursor < traps.size(),
                       "ran out of traps placing data qubits");
        const NodeId t = traps[trap_cursor];
        map.dataTrap[q] = t;
        map.dataIon[q] = machine.addDataIon(q, t);
        ++in_current;
    };
    for (size_t r = 0; r < mx; ++r) {
        for (size_t q : code.hx().rowSupport(r))
            place_data(q);
    }
    for (size_t r = 0; r < mz; ++r) {
        for (size_t q : code.hz().rowSupport(r))
            place_data(q);
    }
    for (size_t q = 0; q < n; ++q)
        place_data(q); // isolated qubits, if any

    // ---- Ancillas: park near the bulk of their support. ----
    auto place_ancilla = [&](size_t global, const auto& support) {
        std::map<NodeId, size_t> votes;
        for (size_t q : support)
            ++votes[map.dataTrap[q]];
        NodeId best = traps[0];
        size_t best_votes = 0;
        for (const auto& [t, v] : votes) {
            if (v > best_votes && machine.freeCapacity(t) > 0) {
                best = t;
                best_votes = v;
            }
        }
        NodeId target = best_votes > 0
            ? best
            : nearestTrapWithSpace(
                  topology, machine,
                  votes.empty() ? traps[0] : votes.begin()->first);
        if (machine.freeCapacity(target) == 0)
            target = nearestTrapWithSpace(topology, machine, target);
        map.ancillaTrap[global] = target;
        map.ancillaIon[global] =
            machine.addAncillaIon(global, target);
    };
    for (size_t r = 0; r < mx; ++r)
        place_ancilla(r, code.hx().rowSupport(r));
    for (size_t r = 0; r < mz; ++r)
        place_ancilla(mx + r, code.hz().rowSupport(r));

    return map;
}

} // namespace cyclone
