#include "compiler/baseline3.h"

#include <algorithm>

namespace cyclone {

CompileResult
compileBaseline3(const CssCode& code, const SyndromeSchedule& schedule,
                 const Topology& topology, EjfOptions options)
{
    options.selection = GateSelection::BatchLocality;
    // Locality batching needs candidates to choose among.
    options.candidateWindow = std::max<size_t>(options.candidateWindow,
                                               16);
    if (options.name == "baseline-ejf")
        options.name = "baseline3-moveless";
    return compileEjf(code, schedule, topology, options);
}

} // namespace cyclone
