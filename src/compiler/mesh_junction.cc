#include "compiler/mesh_junction.h"

#include "qccd/topology_builders.h"

namespace cyclone {

CompileResult
compileMeshJunction(const CssCode& code, const SyndromeSchedule& schedule,
                    EjfOptions options)
{
    // One data qubit per trap; room for a visiting ancilla and one
    // parked ancilla.
    Topology mesh = buildJunctionMesh(code.numQubits(), 3);
    options.dataPerTrap = 1;
    options.conservativeRouting = true;
    options.timesliceBarriers = true;
    if (options.name == "baseline-ejf")
        options.name = "mesh-junction";
    return compileEjf(code, schedule, mesh, options);
}

} // namespace cyclone
