/**
 * @file
 * The unified compiler interface and registry.
 *
 * Every architecture's compiler sits behind one interface: build the
 * matching topology for the code, compile one syndrome round, and
 * return a CompileResult whose summary derives from the TimedSchedule
 * IR the compiler emitted. The registry keys the six singleton
 * compilers by Architecture, so dispatch sites (core/codesign, the
 * campaign engine, benches) need no per-architecture switch.
 */

#ifndef CYCLONE_COMPILER_COMPILER_H
#define CYCLONE_COMPILER_COMPILER_H

#include <cstddef>

#include "compiler/architecture.h"
#include "compiler/baseline_ejf.h"
#include "compiler/compile_result.h"
#include "compiler/cyclone_compiler.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** Codesign selection and tuning. */
struct CodesignConfig
{
    Architecture architecture = Architecture::Cyclone;

    /** Options for the grid-family compilers. */
    EjfOptions ejf;

    /** Options for the Cyclone compiler. */
    CycloneOptions cyclone;

    /** Trap capacity of grid devices (the paper uses 5). */
    size_t gridCapacity = 5;
};

/** One architecture's compiler. */
class Compiler
{
  public:
    virtual ~Compiler() = default;

    /** The architecture this compiler serves. */
    virtual Architecture architecture() const = 0;

    /**
     * Compile one syndrome round of `code`, building the matching
     * topology internally. The result carries the TimedSchedule IR
     * with its summary derived from it.
     */
    virtual CompileResult compile(const CssCode& code,
                                  const SyndromeSchedule& schedule,
                                  const CodesignConfig& config) const = 0;
};

/** The singleton compiler registered for an architecture. */
const Compiler& compilerFor(Architecture arch);

} // namespace cyclone

#endif // CYCLONE_COMPILER_COMPILER_H
