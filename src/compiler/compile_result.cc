#include "compiler/compile_result.h"

namespace cyclone {

double
TimeBreakdown::total() const
{
    return gateUs + shuttleUs + junctionUs + swapUs + measureUs + prepUs;
}

void
TimeBreakdown::add(OpCategory category, double duration_us)
{
    switch (category) {
      case OpCategory::Gate: gateUs += duration_us; break;
      case OpCategory::Shuttle: shuttleUs += duration_us; break;
      case OpCategory::Junction: junctionUs += duration_us; break;
      case OpCategory::Swap: swapUs += duration_us; break;
      case OpCategory::Measure: measureUs += duration_us; break;
      case OpCategory::Prep: prepUs += duration_us; break;
    }
}

TimeBreakdown&
TimeBreakdown::operator+=(const TimeBreakdown& other)
{
    gateUs += other.gateUs;
    shuttleUs += other.shuttleUs;
    junctionUs += other.junctionUs;
    swapUs += other.swapUs;
    measureUs += other.measureUs;
    prepUs += other.prepUs;
    return *this;
}

double
CompileResult::parallelFraction() const
{
    const double total = serialized.total();
    return total > 0.0 ? execTimeUs / total : 1.0;
}

double
CompileResult::spacetimeCost() const
{
    return static_cast<double>(numTraps) * execTimeUs *
        static_cast<double>(numAncilla);
}

} // namespace cyclone
