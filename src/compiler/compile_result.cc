#include "compiler/compile_result.h"

namespace cyclone {

void
CompileResult::deriveTimingFromSchedule()
{
    execTimeUs = schedule.makespan();
    serialized = schedule.breakdown();
}

double
CompileResult::parallelFraction() const
{
    const double total = serialized.total();
    return total > 0.0 ? execTimeUs / total : 1.0;
}

double
CompileResult::spacetimeCost() const
{
    return static_cast<double>(numTraps) * execTimeUs *
        static_cast<double>(numAncilla);
}

} // namespace cyclone
