/**
 * @file
 * Lane-parallel belief propagation: decode many shots per SIMD wave.
 *
 * The wave decoder runs the exact BpDecoder message schedule on up to
 * L syndromes simultaneously. State is lane-major structure-of-arrays
 * — msg[edge][lane], posterior[var][lane], priors broadcast across
 * lanes — so the posterior gather and the min-sum / product-sum check
 * pass become fixed-width inner loops over L floats that the compiler
 * autovectorizes. Hard decisions are per-variable lane bitmasks, so
 * syndrome verification collapses to one XOR per edge and one compare
 * per check, simultaneously for every lane.
 *
 * The hot passes themselves live behind the DecoderBackend seam
 * (decoder_backend.h): each SIMD-ladder rung is a per-ISA translation
 * unit exporting a kernel table, and this class runs the iteration
 * schedule, convergence bookkeeping and verification against whichever
 * table dispatch selected. L is therefore a runtime property here, not
 * a template parameter.
 *
 * Bit-exactness invariant: lanes never interact arithmetically. Each
 * lane performs the same float operations, in the same order, as
 * BpDecoder::decode on that lane's syndrome — on every rung. A lane
 * that converges is frozen — the check pass stops overwriting its
 * messages (a masked blend), and because its messages no longer move,
 * the unconditional posterior/hard recompute of later iterations
 * reproduces its values bit-for-bit. Per-lane convergence iterations
 * also match the scalar decoder: verification is evaluated every
 * iteration here, and when the scalar decoder skips verification (no
 * decision bit moved) the skipped result provably equals the reused
 * one. The equivalence is enforced by tests/test_wave_decoder.cc
 * across lane widths and backends.
 */

#ifndef CYCLONE_DECODER_BP_WAVE_DECODER_H
#define CYCLONE_DECODER_BP_WAVE_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "decoder/bp_decoder.h"
#include "decoder/bp_graph.h"
#include "decoder/decoder_backend.h"

namespace cyclone {

/** BP over L syndrome lanes at once. */
class BpWaveDecoder
{
  public:
    /**
     * Lane width runtime dispatch resolves a BpOptions::waveLanes
     * request to on this host (selectDecoderBackend(requested).lanes):
     * the widest supported rung at or below the request, honoring the
     * CYCLONE_WAVE_BACKEND override. Returns 1 when only the scalar
     * rung is available (pre-AVX2 x86 host, or a forced scalar
     * override) — callers treat 1 as "wave kernel disabled" and must
     * not construct a BpWaveDecoder.
     */
    static size_t resolveLaneWidth(size_t requested);

    /**
     * Whether dispatch finds any wave rung this CPU can run (the
     * kernel functions are compiled with function-scoped target
     * attributes on x86-64 builds). When false, BpOsdDecoder silently
     * uses the scalar batch core instead; constructing or driving a
     * BpWaveDecoder directly is then undefined. Always true on
     * non-x86 builds (the generic rung runs everywhere).
     */
    static bool runtimeSupported();

    /** Auto-dispatched backend (selectDecoderBackend). */
    BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                  BpOptions options);

    /**
     * Explicit backend, for forced-dispatch tests and per-rung
     * benches. `backend` must be supported on this host and must
     * serve options.waveLanes (backendLaneWidth > 1).
     */
    BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                  BpOptions options, const DecoderBackend& backend);

    /** Lanes decoded per wave. */
    size_t laneWidth() const { return laneWidth_; }

    /** Name of the kernel backend driving this decoder. */
    const char* backendName() const { return backend_->name; }

    /**
     * Decode syndromes[0..count) in parallel lanes (count must be in
     * [1, laneWidth()]). Each syndrome must have numChecks bits. Lane
     * results are readable through the accessors below until the next
     * decodeWave call.
     */
    void decodeWave(const BitVec* const* syndromes, size_t count);

    /** Whether lane's hard decision reproduced its syndrome. */
    bool
    laneConverged(size_t lane) const
    {
        return (convergedMask_ >> lane) & 1;
    }

    /** Iterations consumed by lane (== BpDecoder::lastIterations). */
    uint32_t laneIterations(size_t lane) const { return iterations_[lane]; }

    /** Copy lane's posterior LLRs into out (resized to numVars). */
    void lanePosterior(size_t lane, std::vector<float>& out) const;

    /** Copy lane's hard decision into out (resized to numVars bits). */
    void laneHardDecision(size_t lane, BitVec& out) const;

    size_t numChecks() const { return graph_->numChecks; }
    size_t numVars() const { return graph_->numVars; }

  private:
    void initState();
    void runWave(size_t count);
    /** Lane mask of lanes whose hard decision matches their syndrome. */
    uint64_t verifyWave() const;
    WaveKernelCtx kernelCtx();

    std::shared_ptr<const BpGraph> graph_;
    BpOptions options_;
    const DecoderBackend* backend_ = nullptr;
    const WaveKernelTable* kernels_ = nullptr;
    size_t laneWidth_ = 0;
    float clamp_ = 50.0f;
    float minSumScale_ = 0.9f;

    // Lane-major state: element i*L + l is lane l's value of entity i.
    // Min-sum waves on rungs with minSumCompressed store messages
    // compressed (two scaled minima per check + two packed lane-bit
    // words per edge, see wave_kernels.h) instead of msg_ — 8x less
    // memory traffic per iteration at L = 16, which is what the wide
    // rungs are bound by on large DEMs. Decode-on-read is
    // bit-identical to the full array, so the exactness invariant is
    // unchanged. Product-sum, and min-sum on uncompressed rungs, keep
    // the full message array.
    std::vector<float> msg_;       ///< numEdges x L, check-CSR order
                                   ///< (uncompressed rungs).
    std::vector<float> checkMin1_; ///< numChecks x L (compressed).
    std::vector<float> checkMin2_; ///< numChecks x L (compressed).
    std::vector<uint32_t> edgeSignBits_; ///< numEdges (compressed).
    std::vector<uint32_t> edgeMinBits_;  ///< numEdges (compressed).
    std::vector<float> posterior_; ///< numVars x L.
    std::vector<uint64_t> hardMask_; ///< per var: bit l = lane l's bit.
    std::vector<uint64_t> synMask_;  ///< per check: lane syndrome bits.
    std::vector<float> synSign_;     ///< numChecks x L: +-1 per lane.
    std::vector<float> msgScratch_;  ///< maxCheckDegree x L.
    std::vector<float> tanhScratch_; ///< maxCheckDegree x L.

    /** Per-lane freeze blend: ~0u while active, 0 once converged. */
    std::vector<uint32_t> laneActive_;
    uint64_t activeMask_ = 0;
    uint64_t convergedMask_ = 0;
    uint32_t iterations_[64] = {};
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_WAVE_DECODER_H
