/**
 * @file
 * Lane-parallel belief propagation: decode many shots per SIMD wave.
 *
 * The wave decoder runs the exact BpDecoder message schedule on up to
 * L syndromes simultaneously. State is lane-major structure-of-arrays
 * — msg[edge][lane], posterior[var][lane], priors broadcast across
 * lanes — so the posterior gather and the min-sum / product-sum check
 * pass become fixed-width inner loops over L floats that the compiler
 * autovectorizes. Hard decisions are per-variable lane bitmasks, so
 * syndrome verification collapses to one XOR per edge and one compare
 * per check, simultaneously for every lane.
 *
 * Bit-exactness invariant: lanes never interact arithmetically. Each
 * lane performs the same float operations, in the same order, as
 * BpDecoder::decode on that lane's syndrome. A lane that converges is
 * frozen — the check pass stops overwriting its messages (a masked
 * blend), and because its messages no longer move, the unconditional
 * posterior/hard recompute of later iterations reproduces its values
 * bit-for-bit. Per-lane convergence iterations also match the scalar
 * decoder: verification is evaluated every iteration here, and when
 * the scalar decoder skips verification (no decision bit moved) the
 * skipped result provably equals the reused one. The equivalence is
 * enforced by tests/test_wave_decoder.cc across lane widths.
 */

#ifndef CYCLONE_DECODER_BP_WAVE_DECODER_H
#define CYCLONE_DECODER_BP_WAVE_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "decoder/bp_decoder.h"
#include "decoder/bp_graph.h"

namespace cyclone {

/** BP over L syndrome lanes at once. */
class BpWaveDecoder
{
  public:
    /**
     * Default lane width: 8 floats = one AVX2 ymm word. Measured on
     * AVX2 hosts, 8 lanes beat 16: GCC lowers 64-byte generic vectors
     * under AVX2 to poor code, and the wider group pays more
     * frozen-lane waste per slow syndrome.
     */
    static constexpr size_t kDefaultLanes = 8;

    /**
     * Map a BpOptions::waveLanes request onto a supported width:
     * 0 -> kDefaultLanes, otherwise round down to 16, 8 or 4 (requests
     * below 4 clamp up to the narrowest kernel). A result of 1 is
     * never returned here — callers treat waveLanes == 1 as "wave
     * kernel disabled" and must not construct one.
     */
    static size_t resolveLaneWidth(size_t requested);

    /**
     * Whether this CPU can run the wave kernels (the kernel functions
     * are compiled with target("avx2") on x86-64 builds). When false,
     * BpOsdDecoder silently uses the scalar batch core instead;
     * constructing or driving a BpWaveDecoder directly is then
     * undefined. Always true on non-x86 builds.
     */
    static bool runtimeSupported();

    BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                  BpOptions options);

    /** Lanes decoded per wave. */
    size_t laneWidth() const { return laneWidth_; }

    /**
     * Decode syndromes[0..count) in parallel lanes (count must be in
     * [1, laneWidth()]). Each syndrome must have numChecks bits. Lane
     * results are readable through the accessors below until the next
     * decodeWave call.
     */
    void decodeWave(const BitVec* const* syndromes, size_t count);

    /** Whether lane's hard decision reproduced its syndrome. */
    bool
    laneConverged(size_t lane) const
    {
        return (convergedMask_ >> lane) & 1;
    }

    /** Iterations consumed by lane (== BpDecoder::lastIterations). */
    uint32_t laneIterations(size_t lane) const { return iterations_[lane]; }

    /** Copy lane's posterior LLRs into out (resized to numVars). */
    void lanePosterior(size_t lane, std::vector<float>& out) const;

    /** Copy lane's hard decision into out (resized to numVars bits). */
    void laneHardDecision(size_t lane, BitVec& out) const;

    size_t numChecks() const { return graph_->numChecks; }
    size_t numVars() const { return graph_->numVars; }

  private:
    template <size_t L> void runWave(size_t count);
    template <size_t L> void posteriorUpdateWave();
    template <size_t L, bool MinSum, bool Masked>
    void checkToVarUpdateWave();
    /** Lane mask of lanes whose hard decision matches their syndrome. */
    uint64_t verifyWave() const;

    std::shared_ptr<const BpGraph> graph_;
    BpOptions options_;
    size_t laneWidth_ = kDefaultLanes;
    float clamp_ = 50.0f;
    float minSumScale_ = 0.9f;

    // Lane-major state: element i*L + l is lane l's value of entity i.
    std::vector<float> msg_;       ///< numEdges x L, check-CSR order.
    std::vector<float> posterior_; ///< numVars x L.
    std::vector<uint64_t> hardMask_; ///< per var: bit l = lane l's bit.
    std::vector<uint64_t> synMask_;  ///< per check: lane syndrome bits.
    std::vector<float> synSign_;     ///< numChecks x L: +-1 per lane.
    std::vector<float> msgScratch_;  ///< maxCheckDegree x L.
    std::vector<float> tanhScratch_; ///< maxCheckDegree x L.

    /** Per-lane freeze blend: ~0u while active, 0 once converged. */
    std::vector<uint32_t> laneActive_;
    uint64_t activeMask_ = 0;
    uint64_t convergedMask_ = 0;
    uint32_t iterations_[64] = {};
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_WAVE_DECODER_H
