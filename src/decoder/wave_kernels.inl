/**
 * @file
 * Template bodies of the lane-parallel BP kernels, included by each
 * ISA rung's translation unit (see wave_kernels.h). The includer must
 * define CYCLONE_WAVE_KERNEL to the function-scoped target attribute
 * of its rung (possibly empty) before including this file; everything
 * here lands in an anonymous namespace, so each TU gets its own
 * internal instantiations compiled under exactly one ISA.
 *
 * Every float operation below is the scalar decoder's operation, per
 * lane, in the scalar order — the bit-exactness contract documented in
 * bp_wave_decoder.h and enforced by tests/test_wave_decoder.cc.
 */

namespace cyclone {
namespace {

/**
 * Fixed-width lane vectors via the GCC/Clang vector extension: every
 * arithmetic operator is element-wise IEEE-754, and the ternary
 * operator on a comparison result is an element-wise select, so each
 * lane performs exactly the scalar decoder's float operations — the
 * extension only guarantees the compiler emits them as SIMD words
 * (ymm under target("avx2"), zmm + __mmask16 blends for the selects
 * under target("avx512f,avx512bw")). The `aligned(4)` underalignment
 * keeps lane rows loadable at any float boundary.
 */
template <size_t L>
struct LaneTypes
{
    typedef float Vf __attribute__((
        vector_size(L * sizeof(float)), aligned(4), may_alias));
    typedef int32_t Vi __attribute__((
        vector_size(L * sizeof(int32_t)), aligned(4), may_alias));
};

/**
 * __builtin_bit_cast behind always_inline: std::bit_cast is an
 * ordinary (baseline-target) function template, and an out-of-line
 * call from inside a target-attributed kernel would cross an ABI
 * boundary with wide vector arguments (real miscompilation at -O0).
 * Force-inlining keeps the cast in the caller's ISA context. `from`
 * is taken by value: deduction strips the typedefs' aligned(4)
 * attribute, so a reference parameter would bind at the vector type's
 * natural alignment — UB on the underaligned lane rows.
 */
template <typename To, typename From>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline To
laneBitCast(From from)
{
    static_assert(sizeof(To) == sizeof(From));
    return __builtin_bit_cast(To, from);
}

template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vf
splat(float value)
{
    typename LaneTypes<L>::Vf v = {};
    return v + value;
}

template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vi
splatInt(int32_t value)
{
    typename LaneTypes<L>::Vi v = {};
    return v + value;
}

/** |x| per lane: clearing the sign bit is exactly std::fabs. */
template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vf
laneAbs(typename LaneTypes<L>::Vf x)
{
    typedef typename LaneTypes<L>::Vi Vi;
    typedef typename LaneTypes<L>::Vf Vf;
    return laneBitCast<Vf>(laneBitCast<Vi>(x) &
                             splatInt<L>(0x7fffffff));
}

/** std::clamp(x, -c, c) per lane (identical select order). */
template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vf
laneClamp(typename LaneTypes<L>::Vf x, typename LaneTypes<L>::Vf c)
{
    const auto low = x < -c ? -c : x;
    return c < low ? c : low;
}

/** Lane l's bit: the constant {1, 2, 4, ...} vector for testing and
 *  packing the per-edge lane bitmasks (hoist out of the edge loops). */
template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vi
laneBits()
{
    static_assert(L <= 32, "lane bitmasks are packed in uint32_t");
    typename LaneTypes<L>::Vi v = {};
    for (size_t l = 0; l < L; ++l)
        v[l] = static_cast<int32_t>(uint32_t{1} << l);
    return v;
}

/**
 * Collect lane l's IEEE/two's-complement sign bit into bit l of a
 * uint32 — the encode half of the compressed-message scheme and the
 * hard-decision pack. Callers pass either a comparison result (-1 per
 * true lane) or a word whose sign bit is the payload; both carry the
 * predicate in the sign bit, so one primitive serves all packs. The
 * portable loop compiles to a compare + per-lane selects + a log2(L)
 * OR reduction (~20 instructions); rungs that predefine a pack macro
 * collapse it to one move-mask (AVX: vmovmskps) or test-into-mask
 * (AVX-512: vptestmd + kmov) instruction, which is what keeps the
 * compressed check pass cheaper than the full-message store it
 * replaced.
 */
template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline uint32_t
packSignBits(typename LaneTypes<L>::Vi v)
{
#if defined(CYCLONE_WAVE_PACK_AVX512)
    if constexpr (L == 16) {
        return static_cast<uint32_t>(_mm512_test_epi32_mask(
            laneBitCast<__m512i>(v), _mm512_set1_epi32(INT32_MIN)));
    }
#elif defined(CYCLONE_WAVE_PACK_AVX)
    if constexpr (L == 8) {
        return static_cast<uint32_t>(
            _mm256_movemask_ps(laneBitCast<__m256>(v)));
    }
    if constexpr (L == 4) {
        return static_cast<uint32_t>(
            _mm_movemask_ps(laneBitCast<__m128>(v)));
    }
#endif
    uint32_t mask = 0;
    for (size_t l = 0; l < L; ++l)
        mask |= uint32_t{v[l] < 0} << l;
    return mask;
}

/**
 * Reconstruct one edge's outgoing min-sum message row from compressed
 * state: a set bit in `mins` selects the check's second magnitude
 * (both already scaled), a set bit in `signs` is XORed into the IEEE
 * sign bit. Both are the exact floats the full-message kernel would
 * have stored, so decode-on-read is bit-identical to the numEdges x L
 * array it replaces. Lowers to broadcast + bit-test + masked blend /
 * masked xor — no lane extraction.
 */
template <size_t L>
CYCLONE_WAVE_KERNEL __attribute__((always_inline)) inline typename LaneTypes<L>::Vf
decodeMsgRow(typename LaneTypes<L>::Vf min1,
             typename LaneTypes<L>::Vf min2,
             uint32_t signs, uint32_t mins,
             typename LaneTypes<L>::Vi lane_bit,
             typename LaneTypes<L>::Vi sign_bit)
{
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const Vi mm = splatInt<L>(static_cast<int32_t>(mins)) & lane_bit;
    const Vf base = mm != 0 ? min2 : min1;
    const Vi sm = splatInt<L>(static_cast<int32_t>(signs)) & lane_bit;
    const Vi flip = (sm != 0) & sign_bit;
    return laneBitCast<Vf>(laneBitCast<Vi>(base) ^ flip);
}

template <size_t L>
CYCLONE_WAVE_KERNEL void
posteriorUpdateWave(const WaveKernelCtx& ctx)
{
    // Unconditional across lanes: frozen lanes recompute from frozen
    // messages, which reproduces their posterior and hard decision
    // bit-for-bit (same floats, same order), so no blend is needed
    // here — only the message writes in the check pass are masked.
    typedef typename LaneTypes<L>::Vf Vf;
    const BpGraph& g = *ctx.graph;
    const float* msg = ctx.msg;
    const float* prior = g.prior.data();
    float* posterior = ctx.posterior;
    uint64_t* hard = ctx.hardMask;
    if (g.varEdgesAscendByCheck) {
        // Scatter form: stream the lane-major message array once in
        // check-CSR order and accumulate into the (much smaller,
        // cache-resident) posterior rows. Because each variable's
        // var-CSR edges ascend by check, the additions hit every
        // variable in exactly the gather order — identical floats.
        for (size_t v = 0; v < g.numVars; ++v)
            *reinterpret_cast<Vf*>(posterior + v * L) =
                splat<L>(prior[v]);
        const uint32_t* edge_var = g.checkEdgeVar.data();
        for (size_t s = 0; s < g.numEdges; ++s) {
            Vf* p = reinterpret_cast<Vf*>(
                posterior + size_t{edge_var[s]} * L);
            *p += *reinterpret_cast<const Vf*>(msg + s * L);
        }
        for (size_t v = 0; v < g.numVars; ++v) {
            const Vf total =
                *reinterpret_cast<const Vf*>(posterior + v * L);
            const typename LaneTypes<L>::Vi neg =
                total < splat<L>(0.0f);
            hard[v] = packSignBits<L>(neg);
        }
        return;
    }
    const uint32_t* slots = g.checkSlotOfVarEdge.data();
    for (size_t v = 0; v < g.numVars; ++v) {
        Vf total = splat<L>(prior[v]);
        for (size_t e = g.varOffset[v]; e < g.varOffset[v + 1]; ++e) {
            total += *reinterpret_cast<const Vf*>(
                msg + size_t{slots[e]} * L);
        }
        *reinterpret_cast<Vf*>(posterior + v * L) = total;
        const typename LaneTypes<L>::Vi neg = total < splat<L>(0.0f);
        hard[v] = packSignBits<L>(neg);
    }
}

/** Posterior/hard-decision pass of the compressed min-sum variant:
 *  identical accumulation orders to posteriorUpdateWave, with each
 *  message row decoded on read instead of loaded from the big array. */
template <size_t L>
CYCLONE_WAVE_KERNEL void
posteriorUpdateMinSumWave(const WaveKernelCtx& ctx)
{
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const BpGraph& g = *ctx.graph;
    const float* min1s = ctx.checkMin1;
    const float* min2s = ctx.checkMin2;
    const uint32_t* sign_bits = ctx.edgeSignBits;
    const uint32_t* min_bits = ctx.edgeMinBits;
    const float* prior = g.prior.data();
    float* posterior = ctx.posterior;
    uint64_t* hard = ctx.hardMask;
    const Vi lane_bit = laneBits<L>();
    const Vi sign_bit = splatInt<L>(INT32_MIN);
    if (g.varEdgesAscendByCheck) {
        for (size_t v = 0; v < g.numVars; ++v)
            *reinterpret_cast<Vf*>(posterior + v * L) =
                splat<L>(prior[v]);
        const uint32_t* edge_var = g.checkEdgeVar.data();
        for (size_t c = 0; c < g.numChecks; ++c) {
            const Vf min1 =
                *reinterpret_cast<const Vf*>(min1s + c * L);
            const Vf min2 =
                *reinterpret_cast<const Vf*>(min2s + c * L);
            for (size_t s = g.checkOffset[c]; s < g.checkOffset[c + 1];
                 ++s) {
                Vf* p = reinterpret_cast<Vf*>(
                    posterior + size_t{edge_var[s]} * L);
                *p += decodeMsgRow<L>(min1, min2, sign_bits[s],
                                      min_bits[s], lane_bit, sign_bit);
            }
        }
        for (size_t v = 0; v < g.numVars; ++v) {
            const Vf total =
                *reinterpret_cast<const Vf*>(posterior + v * L);
            const typename LaneTypes<L>::Vi neg =
                total < splat<L>(0.0f);
            hard[v] = packSignBits<L>(neg);
        }
        return;
    }
    const uint32_t* slots = g.checkSlotOfVarEdge.data();
    const uint32_t* check_of = g.checkOfSlot.data();
    for (size_t v = 0; v < g.numVars; ++v) {
        Vf total = splat<L>(prior[v]);
        for (size_t e = g.varOffset[v]; e < g.varOffset[v + 1]; ++e) {
            const size_t s = slots[e];
            const size_t c = check_of[s];
            total += decodeMsgRow<L>(
                *reinterpret_cast<const Vf*>(min1s + c * L),
                *reinterpret_cast<const Vf*>(min2s + c * L),
                sign_bits[s], min_bits[s], lane_bit, sign_bit);
        }
        *reinterpret_cast<Vf*>(posterior + v * L) = total;
        const typename LaneTypes<L>::Vi neg = total < splat<L>(0.0f);
        hard[v] = packSignBits<L>(neg);
    }
}

/** Check pass of the compressed min-sum variant. Pass 1 decodes each
 *  old message on read and tracks the two smallest magnitudes exactly
 *  like the full kernel; pass 2 stores the scaled minima per check and
 *  two lane-bit words per edge instead of the message floats.
 *  Selecting between the two pre-scaled minima on decode reproduces
 *  pass 2's scale x (mag == min1 ? min2 : min1) float exactly, and
 *  the stored sign bit is exactly the sign the full kernel XORed into
 *  that float. Frozen lanes keep their minima via the same per-lane
 *  float blends as before; their packed bits freeze with plain scalar
 *  mask arithmetic. */
template <size_t L, bool Masked>
CYCLONE_WAVE_KERNEL void
checkMinSumWave(const WaveKernelCtx& ctx)
{
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const BpGraph& g = *ctx.graph;
    const float* posterior = ctx.posterior;
    const float* syn_sign = ctx.synSign;
    float* scratch = ctx.msgScratch;
    float* min1s = ctx.checkMin1;
    float* min2s = ctx.checkMin2;
    uint32_t* sign_bits_arr = ctx.edgeSignBits;
    uint32_t* min_bits_arr = ctx.edgeMinBits;
    const Vf clamp = splat<L>(ctx.clamp);
    const Vf scale = splat<L>(ctx.minSumScale);
    const Vf zero = splat<L>(0.0f);
    const Vi sign_bit = splatInt<L>(INT32_MIN);
    const Vi lane_bit = laneBits<L>();
    Vi act = {};
    uint32_t act_bits = 0;
    if constexpr (Masked) {
        for (size_t l = 0; l < L; ++l) {
            act[l] = static_cast<int32_t>(ctx.laneActive[l]);
            act_bits |= (ctx.laneActive[l] != 0 ? uint32_t{1} : 0) << l;
        }
    }

    for (size_t c = 0; c < g.numChecks; ++c) {
        const size_t begin = g.checkOffset[c];
        const size_t end = g.checkOffset[c + 1];
        const Vf old1 = *reinterpret_cast<const Vf*>(min1s + c * L);
        const Vf old2 = *reinterpret_cast<const Vf*>(min2s + c * L);

        const Vf sign_product =
            *reinterpret_cast<const Vf*>(syn_sign + c * L);
        Vi sp_bits = laneBitCast<Vi>(sign_product) & sign_bit;
        Vf min1 = splat<L>(3.0e38f);
        Vf min2 = min1;
        for (size_t s = begin; s < end; ++s) {
            const Vf old =
                decodeMsgRow<L>(old1, old2, sign_bits_arr[s],
                                min_bits_arr[s], lane_bit, sign_bit);
            const Vf p = *reinterpret_cast<const Vf*>(
                posterior + size_t{g.checkEdgeVar[s]} * L);
            const Vf m = laneClamp<L>(p - old, clamp);
            *reinterpret_cast<Vf*>(scratch + (s - begin) * L) = m;
            const Vf mag = laneAbs<L>(m);
            sp_bits ^= (m < zero) & sign_bit;
            const auto lt1 = mag < min1;
            min2 = lt1 ? min1 : (mag < min2 ? mag : min2);
            min1 = lt1 ? mag : min1;
        }
        const Vf base1 = scale * min1;
        const Vf base2 = scale * min2;
        for (size_t s = begin; s < end; ++s) {
            const Vf m = *reinterpret_cast<const Vf*>(
                scratch + (s - begin) * L);
            const Vf mag = laneAbs<L>(m);
            // flip lanes are 0 or INT32_MIN, so the sign-bit pack IS
            // "flip != 0"; the min1 predicate packs its -1/0 compare.
            const Vi flip = sp_bits ^ ((m < zero) & sign_bit);
            const Vi is_min1 = mag == min1;
            const uint32_t signs = packSignBits<L>(flip);
            const uint32_t mins = packSignBits<L>(is_min1);
            if constexpr (Masked) {
                sign_bits_arr[s] = (sign_bits_arr[s] & ~act_bits) |
                    (signs & act_bits);
                min_bits_arr[s] = (min_bits_arr[s] & ~act_bits) |
                    (mins & act_bits);
            } else {
                sign_bits_arr[s] = signs;
                min_bits_arr[s] = mins;
            }
        }
        Vf* r1 = reinterpret_cast<Vf*>(min1s + c * L);
        Vf* r2 = reinterpret_cast<Vf*>(min2s + c * L);
        if constexpr (Masked) {
            *r1 = act ? base1 : *r1;
            *r2 = act ? base2 : *r2;
        } else {
            *r1 = base1;
            *r2 = base2;
        }
    }
}

/**
 * Full-message min-sum check pass: the lane-wise image of the scalar
 * decoder's two-smallest-magnitudes tracking, storing every outgoing
 * message float in the numEdges x L array. Rungs whose message array
 * is small enough that decode-on-read costs more than the bandwidth
 * compression saves select this pass instead of checkMinSumWave (see
 * WaveKernelTable::minSumCompressed); both produce identical floats.
 * The scalar argmin is replaced by a magnitude-equality select in the
 * second pass — bit-identical, because when several edges tie for
 * min1 the scalar decoder has min2 == min1, so both selects produce
 * the same value on every edge. Signs travel as IEEE sign bits:
 * flipping a float's sign bit is exactly the scalar code's
 * multiplication by -1.
 */
template <size_t L, bool Masked>
CYCLONE_WAVE_KERNEL void
checkMinSumFullWave(const WaveKernelCtx& ctx)
{
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const BpGraph& g = *ctx.graph;
    float* msg = ctx.msg;
    const float* posterior = ctx.posterior;
    const float* syn_sign = ctx.synSign;
    float* scratch = ctx.msgScratch;
    const Vf clamp = splat<L>(ctx.clamp);
    const Vf scale = splat<L>(ctx.minSumScale);
    const Vf zero = splat<L>(0.0f);
    const Vi sign_bit = splatInt<L>(INT32_MIN);
    Vi act = {};
    if constexpr (Masked) {
        for (size_t l = 0; l < L; ++l)
            act[l] = static_cast<int32_t>(ctx.laneActive[l]);
    }

    for (size_t c = 0; c < g.numChecks; ++c) {
        const size_t begin = g.checkOffset[c];
        const size_t end = g.checkOffset[c + 1];
        const Vf sign_product =
            *reinterpret_cast<const Vf*>(syn_sign + c * L);
        Vi sp_bits = laneBitCast<Vi>(sign_product) & sign_bit;
        Vf min1 = splat<L>(3.0e38f);
        Vf min2 = min1;
        for (size_t s = begin; s < end; ++s) {
            const Vf p = *reinterpret_cast<const Vf*>(
                posterior + size_t{g.checkEdgeVar[s]} * L);
            const Vf old = *reinterpret_cast<const Vf*>(msg + s * L);
            const Vf m = laneClamp<L>(p - old, clamp);
            *reinterpret_cast<Vf*>(scratch + (s - begin) * L) = m;
            const Vf mag = laneAbs<L>(m);
            sp_bits ^= (m < zero) & sign_bit;
            const auto lt1 = mag < min1;
            min2 = lt1 ? min1 : (mag < min2 ? mag : min2);
            min1 = lt1 ? mag : min1;
        }
        for (size_t s = begin; s < end; ++s) {
            const Vf m = *reinterpret_cast<const Vf*>(
                scratch + (s - begin) * L);
            Vf* out = reinterpret_cast<Vf*>(msg + s * L);
            const Vf mag = laneAbs<L>(m);
            // Scalar: sign * scale * mag with sign = +-1, which
            // IEEE-exactly equals scale*mag with the sign bits
            // XORed in.
            const Vf base = scale * (mag == min1 ? min2 : min1);
            const Vi flip = sp_bits ^ ((m < zero) & sign_bit);
            const Vf val =
                laneBitCast<Vf>(laneBitCast<Vi>(base) ^ flip);
            if constexpr (Masked)
                *out = act ? val : *out;
            else
                *out = val;
        }
    }
}

/** Check pass of the product-sum variant (two-pass tanh-product,
 *  full-message storage — the tanh products don't compress like the
 *  min-sum two-minima structure). */
template <size_t L, bool Masked>
CYCLONE_WAVE_KERNEL void
checkToVarUpdateWave(const WaveKernelCtx& ctx)
{
    // Masked == false is the fast path while no real lane has frozen
    // yet: message writes are plain streaming stores instead of
    // read-blend-write (idle lanes past the group count may then
    // evolve as zero-syndrome decodes, which is harmless — their
    // state is never read). Once any lane converges, the masked
    // variant keeps its messages frozen.
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const BpGraph& g = *ctx.graph;
    float* msg = ctx.msg;
    const float* posterior = ctx.posterior;
    const float* syn_sign = ctx.synSign;
    float* scratch = ctx.msgScratch;
    float* tanh_scratch = ctx.tanhScratch;
    const Vf clamp = splat<L>(ctx.clamp);
    const Vf zero = splat<L>(0.0f);
    Vi act = {};
    if constexpr (Masked) {
        for (size_t l = 0; l < L; ++l)
            act[l] = static_cast<int32_t>(ctx.laneActive[l]);
    }

    for (size_t c = 0; c < g.numChecks; ++c) {
        const size_t begin = g.checkOffset[c];
        const size_t end = g.checkOffset[c + 1];

        Vf sign_product =
            *reinterpret_cast<const Vf*>(syn_sign + c * L);

        // Product-sum two-pass tanh-product, lane-wise. The tanh
        // and log stay scalar libm calls per lane (so their floats
        // match the scalar decoder exactly); everything around
        // them is lane vectors. Zeroed lanes still evaluate the
        // (finite, discarded) log to stay branch-free.
        Vf prod = splat<L>(1.0f);
        Vi zero_count = splatInt<L>(0);
        Vi zero_slot = splatInt<L>(static_cast<int32_t>(begin));
        for (size_t s = begin; s < end; ++s) {
            const Vf p = *reinterpret_cast<const Vf*>(
                posterior + size_t{g.checkEdgeVar[s]} * L);
            const Vf old = *reinterpret_cast<const Vf*>(msg + s * L);
            const Vf m = laneClamp<L>(p - old, clamp);
            *reinterpret_cast<Vf*>(scratch + (s - begin) * L) = m;
            sign_product = m < zero ? -sign_product : sign_product;
            const Vf half_abs = laneAbs<L>(m) * 0.5f;
            Vf t = {};
            for (size_t l = 0; l < L; ++l)
                t[l] = std::tanh(half_abs[l]);
            *reinterpret_cast<Vf*>(
                tanh_scratch + (s - begin) * L) = t;
            const auto is_zero = t < splat<L>(1e-12f);
            zero_count -= is_zero; // mask is -1 per true lane
            zero_slot = is_zero
                ? splatInt<L>(static_cast<int32_t>(s))
                : zero_slot;
            prod = is_zero ? prod : prod * t;
        }
        const Vi one = splatInt<L>(1);
        for (size_t s = begin; s < end; ++s) {
            const Vf m = *reinterpret_cast<const Vf*>(
                scratch + (s - begin) * L);
            const Vf t = *reinterpret_cast<const Vf*>(
                tanh_scratch + (s - begin) * L);
            Vf* out_row = reinterpret_cast<Vf*>(msg + s * L);
            const Vi sv = splatInt<L>(static_cast<int32_t>(s));
            const auto zeroed = (zero_count > one) |
                ((zero_count == one) & (sv != zero_slot));
            // std::max(t, 1e-12f) == (1e-12f < t ? t : 1e-12f).
            const Vf floor = splat<L>(1e-12f);
            const Vf denom = floor < t ? t : floor;
            const Vf divided = prod / denom;
            Vf t_other =
                zero_count == splatInt<L>(0) ? divided : prod;
            // One float ulp below 1: keeps the log finite
            // (std::min select order).
            const Vf limit = splat<L>(1.0f - 6.0e-8f);
            t_other = limit < t_other ? limit : t_other;
            const Vf ratio =
                (splat<L>(1.0f) + t_other) /
                (splat<L>(1.0f) - t_other);
            Vf grown = {};
            for (size_t l = 0; l < L; ++l)
                grown[l] = std::log(ratio[l]);
            const Vf out = zeroed ? zero : grown;
            const Vf sign = sign_product *
                (m < zero ? splat<L>(-1.0f) : splat<L>(1.0f));
            const Vf val = laneClamp<L>(sign * out, clamp);
            if constexpr (Masked)
                *out_row = act ? val : *out_row;
            else
                *out_row = val;
        }
    }
}

/**
 * Compressed is a per-rung tuning choice (WaveKernelTable::
 * minSumCompressed): the full-message posterior pass doubles as the
 * min-sum posterior pass on uncompressed rungs — it just sums message
 * rows, whatever variant wrote them.
 */
template <size_t L, bool Compressed>
const WaveKernelTable*
laneKernelTable()
{
    static const WaveKernelTable table{
        L,
        Compressed,
        &posteriorUpdateWave<L>,
        &checkToVarUpdateWave<L, false>,
        &checkToVarUpdateWave<L, true>,
        Compressed ? &posteriorUpdateMinSumWave<L>
                   : &posteriorUpdateWave<L>,
        Compressed ? &checkMinSumWave<L, false>
                   : &checkMinSumFullWave<L, false>,
        Compressed ? &checkMinSumWave<L, true>
                   : &checkMinSumFullWave<L, true>,
    };
    return &table;
}

} // namespace
} // namespace cyclone
