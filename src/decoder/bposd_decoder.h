/**
 * @file
 * The production decoder: belief propagation with OSD-0 fallback.
 *
 * BP alone frequently fails to converge on qLDPC detector graphs
 * (degenerate errors, trapping sets); whenever that happens the BP
 * posteriors seed an OSD-0 solve, which always returns a valid
 * correction. This mirrors the decoders the paper uses for both code
 * families (BP-OSD for BB codes, the QuITS decoder for HGP codes).
 *
 * The batched entry point decodeBatch() exploits the sub-threshold
 * structure of Monte-Carlo shots: whole 64-shot waves are tested for
 * detection events with one packed OR sweep (zero-syndrome shots skip
 * BP entirely), a per-batch memo decodes each distinct syndrome once
 * and replays the result — and its statistics — for duplicates, and
 * the surviving distinct syndromes are decoded L at a time by the
 * lane-parallel wave kernel (bp_wave_decoder.h) of whichever
 * SIMD-ladder backend runtime dispatch selected (decoder_backend.h),
 * whose per-lane posteriors seed OSD exactly as the scalar core would
 * — with non-converged lanes collected across wave groups and solved
 * by the batched OSD stage (OsdDecoder::solveBatch) in slabs of up to
 * 64 shots.
 *
 * decodeBatch() is itself a thin wrapper over the staged interface
 * (beginStaged / stageBatch / flushStaged), which lets a campaign
 * worker pool the non-trivial distinct syndromes of several
 * adaptive-sampler chunks before decoding: small tail chunks stop
 * collapsing lane occupancy, and the batched OSD keeps receiving full
 * slabs. Staging is safe because the decode of a distinct syndrome is
 * a pure function of that syndrome — regrouping lanes can change
 * neither any outcome nor any per-shot statistic — and deterministic
 * because callers stage chunks in plan (chunk-index) order, never in
 * completion order. Every fast path reproduces what per-shot decoding
 * would return bit-for-bit (BP is deterministic per syndrome, lanes
 * never interact, the batched OSD equals the scalar OSD exactly), so
 * batch, staged and scalar decoding are bit-identical at any lane
 * width on any backend.
 */

#ifndef CYCLONE_DECODER_BPOSD_DECODER_H
#define CYCLONE_DECODER_BPOSD_DECODER_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "decoder/bp_decoder.h"
#include "decoder/bp_wave_decoder.h"
#include "decoder/decoder.h"
#include "decoder/decoder_backend.h"
#include "decoder/osd.h"

namespace cyclone {

/** Aggregate decode statistics. */
struct BpOsdStats
{
    size_t decodes = 0;
    size_t bpConverged = 0;
    size_t osdInvocations = 0;
    size_t osdFailures = 0;

    /** Zero-syndrome shots resolved by the batch/scalar fast path
     *  (also counted in bpConverged: BP converges on them in 0
     *  iterations). */
    size_t trivialShots = 0;

    /** Duplicate-syndrome shots replayed from the per-batch memo.
     *  Replays re-apply the memoized outcome's statistics, so every
     *  other counter matches what per-shot decoding would report. */
    size_t memoHits = 0;

    /** Total BP iterations across all decodes (memo replays included,
     *  trivial shots contribute zero). */
    size_t bpIterations = 0;

    /** Wave-kernel invocations of the batched decode path. */
    size_t waveGroups = 0;

    /** Lane slots offered across those invocations (groups x width). */
    size_t waveLaneSlots = 0;

    /** Lane slots that carried a real distinct syndrome. */
    size_t waveLanesFilled = 0;

    /**
     * Shared GF(2) eliminations performed by the batched OSD stage
     * (one per reliability-ordering group). Structural like
     * waveGroups — counts work done, not per-shot outcomes, so memo
     * replays do not scale it.
     */
    size_t osdBatchGroups = 0;

    /** Pivot slots replayed from a group leader's elimination by
     *  shots that shared its ordering prefix (rank x grouped shots). */
    size_t osdSharedPivots = 0;

    /** Batches that joined a staged pool already holding at least one
     *  earlier batch (plain decodeBatch contributes zero; a staged
     *  group of G chunks contributes G - 1). Structural, like
     *  waveGroups. */
    size_t stagedChunks = 0;

    /** SIMD-ladder backend the decoder dispatched to ("scalar",
     *  "generic", "avx2", "avx512"; empty for results loaded from a
     *  checkpoint, whose host backend is unknown). */
    std::string backend;

    /** Fraction of decodes resolved by the zero-syndrome fast path. */
    double trivialFraction() const;

    /** Fraction of decodes served from the duplicate-syndrome memo. */
    double memoHitRate() const;

    /** Mean BP iterations over non-trivial decodes. */
    double meanBpIterations() const;

    /** Mean filled fraction of wave-kernel lanes (0 when unused). */
    double waveLaneOccupancy() const;
};

/** BP + OSD-0 decoder over a detector error model. */
class BpOsdDecoder : public Decoder
{
  public:
    /**
     * @param dem detector error model; must outlive the decoder
     * @param options BP configuration (options.waveLanes selects the
     *        batch path's lane width; 1 disables the wave kernel).
     *        The kernel backend is resolved here, once (see
     *        selectDecoderBackend).
     */
    explicit BpOsdDecoder(const DetectorErrorModel& dem,
                          BpOptions options = {});

    /** Decode one shot (thin wrapper over the scalar decode core). */
    uint64_t decode(const BitVec& syndrome) override;

    /**
     * Decode a packed batch: zero-syndrome fast path, per-batch
     * duplicate-syndrome memo, lane-parallel BP over the surviving
     * distinct syndromes. Bit-identical to calling decode() on every
     * unpacked shot, at a fraction of the cost. Equivalent to
     * beginStaged(); stageBatch(batch); flushStaged().
     */
    void decodeBatch(const ShotBatch& batch,
                     std::vector<uint64_t>& predicted) override;

    // ------------------------------------------------------------------
    // Staged decoding: pool several batches' distinct syndromes into
    // one lane pool before decoding. Callers must stage batches in a
    // deterministic order (the campaign stages by ascending chunk
    // index) — the memo, and therefore memoHits, is scoped to the
    // staged group.
    // ------------------------------------------------------------------

    /** Open a staged group (resets the pool and the memo). */
    void beginStaged();

    /**
     * Add one batch's shots to the open staged group. All batches of
     * a group must share the DEM's detector count; the batch's packed
     * words are copied, so the caller may reuse it — but observables
     * comparison happens on the caller's side after flushStaged().
     */
    void stageBatch(const ShotBatch& batch);

    /**
     * Decode every staged distinct syndrome (full L-wide weight-
     * sorted wave groups over the whole pool, batched OSD in 64-shot
     * slabs) and replay outcomes onto every staged shot. Results are
     * then readable via stagedPredictions()/stagedBatchOffset().
     */
    void flushStaged();

    /** Flat predictions of the last flushed group, in staging order. */
    const std::vector<uint64_t>&
    stagedPredictions() const
    {
        return stagedPredicted_;
    }

    /** Offset of staged batch k's first shot in stagedPredictions(). */
    size_t
    stagedBatchOffset(size_t k) const
    {
        return stagedOffsets_[k];
    }

    const BpOsdStats& stats() const { return stats_; }

    /** Lane width of the batched wave kernel (1 = disabled). */
    size_t waveLaneWidth() const { return backendChoice_.lanes; }

    /** Name of the dispatched SIMD-ladder backend. */
    const char*
    backendName() const
    {
        return backendChoice_.backend->name;
    }

  private:
    /** What one full BP(+OSD) solve did, for stats and memo replay. */
    struct DecodeOutcome
    {
        uint64_t observables = 0;
        uint32_t iterations = 0;
        bool converged = false;
        bool osdFailed = false;
    };

    /** One memoized distinct syndrome within the staged group. */
    struct MemoEntry
    {
        BitVec syndrome;
        size_t weight = 0; ///< syndrome.popcount(), cached for sorting.
        DecodeOutcome outcome;
        std::vector<uint32_t> shots; ///< Staged shot ids (pool-flat).
    };

    /** One non-converged wave lane waiting for the batched OSD. */
    struct PendingOsd
    {
        uint32_t memoIdx = 0;
        uint32_t iterations = 0;
        /** Observables of the BP hard decision, the fallback used
         *  when the syndrome is outside the DEM column span. */
        uint64_t fallbackObservables = 0;
    };

    DecodeOutcome decodeCore(const BitVec& syndrome);
    DecodeOutcome waveLaneOutcome(size_t lane, const BitVec& syndrome);
    void bufferWaveLaneForOsd(size_t lane, uint32_t memoIdx);
    void flushOsdBatch();
    void applyOutcomeStats(const DecodeOutcome& outcome);
    uint64_t observablesOf(const BitVec& errors) const;
    uint64_t observablesOf(const std::vector<uint8_t>& errors) const;

    const DetectorErrorModel& dem_;
    std::shared_ptr<const BpGraph> graph_;
    BpOptions options_;
    DecoderBackendChoice backendChoice_;
    bool waveEnabled_ = false;
    BpDecoder bp_;
    /** Lazily built on the first flush (the wave state is numEdges x
     *  L floats — per-shot-only users never pay for it). */
    std::unique_ptr<BpWaveDecoder> wave_;
    OsdDecoder osd_;
    BpOsdStats stats_;
    std::vector<uint8_t> errorScratch_;
    std::vector<float> posteriorScratch_;
    BitVec hardScratch_;

    // Staged-pool state, reused across groups.
    bool stagedOpen_ = false;
    size_t stagedShots_ = 0;
    std::vector<size_t> stagedOffsets_;
    std::vector<uint64_t> stagedPredicted_;
    BitVec syndromeScratch_;
    std::vector<uint64_t> waveScratch_;
    std::vector<MemoEntry> memoEntries_;
    std::vector<uint32_t> laneOrder_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> memoIndex_;

    // Batched-OSD staging: non-converged lanes accumulate across wave
    // groups (posteriors copied — the wave state is overwritten by the
    // next decodeWave) and flush through OsdDecoder::solveBatch in
    // slabs of up to 64 shots, one RHS word.
    static constexpr size_t kOsdFlushShots = 64;
    std::vector<PendingOsd> osdPending_;
    std::vector<float> osdPosteriors_; ///< kOsdFlushShots x numVars.
    std::vector<OsdShotRequest> osdRequests_;
    OsdBatchResult osdResult_;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BPOSD_DECODER_H
