/**
 * @file
 * The production decoder: belief propagation with OSD-0 fallback.
 *
 * BP alone frequently fails to converge on qLDPC detector graphs
 * (degenerate errors, trapping sets); whenever that happens the BP
 * posteriors seed an OSD-0 solve, which always returns a valid
 * correction. This mirrors the decoders the paper uses for both code
 * families (BP-OSD for BB codes, the QuITS decoder for HGP codes).
 */

#ifndef CYCLONE_DECODER_BPOSD_DECODER_H
#define CYCLONE_DECODER_BPOSD_DECODER_H

#include <memory>

#include "decoder/bp_decoder.h"
#include "decoder/decoder.h"
#include "decoder/osd.h"

namespace cyclone {

/** Aggregate decode statistics. */
struct BpOsdStats
{
    size_t decodes = 0;
    size_t bpConverged = 0;
    size_t osdInvocations = 0;
    size_t osdFailures = 0;
};

/** BP + OSD-0 decoder over a detector error model. */
class BpOsdDecoder : public Decoder
{
  public:
    /**
     * @param dem detector error model; must outlive the decoder
     * @param options BP configuration
     */
    explicit BpOsdDecoder(const DetectorErrorModel& dem,
                          BpOptions options = {});

    uint64_t decode(const BitVec& syndrome) override;

    const BpOsdStats& stats() const { return stats_; }

  private:
    const DetectorErrorModel& dem_;
    BpDecoder bp_;
    OsdDecoder osd_;
    BpOsdStats stats_;
    std::vector<uint8_t> errorScratch_;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BPOSD_DECODER_H
