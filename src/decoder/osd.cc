#include "decoder/osd.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/gf2.h"
#include "common/logging.h"

namespace cyclone {

namespace {

constexpr uint32_t kNoPivot = static_cast<uint32_t>(-1);

/** Monotonic bit transform of a float LLR: float ordering maps to
 *  unsigned ordering exactly (negative floats bit-complemented,
 *  positives offset), and -0.0 is canonicalized to +0.0 so the
 *  (llr, index) pair ties on index just like the scalar comparator. */
uint32_t
llrSortKey(float llr)
{
    uint32_t bits = std::bit_cast<uint32_t>(llr);
    if (bits == 0x80000000u)
        bits = 0;
    return (bits & 0x80000000u) != 0 ? ~bits : bits | 0x80000000u;
}

} // namespace

OsdDecoder::OsdDecoder(const DetectorErrorModel& dem, size_t order)
    : dem_(dem), order_(order), words_((dem.numDetectors + 63) / 64)
{}

size_t
OsdDecoder::augWords() const
{
    return (dem_.numDetectors + 63) / 64;
}

bool
OsdDecoder::decode(const BitVec& syndrome,
                   const std::vector<float>& posterior_llr,
                   std::vector<uint8_t>& errors)
{
    const size_t num_vars = dem_.mechanisms.size();
    CYCLONE_ASSERT(posterior_llr.size() == num_vars,
                   "posterior length mismatch");
    errors.assign(num_vars, 0);

    // Reliability order, consumed lazily: most-likely-flipped (lowest
    // LLR, ties by index) first. Heap pops follow the exact sorted
    // sequence, so the elimination sees the same columns in the same
    // order a full sort would give.
    heap_.clear();
    heap_.reserve(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v)
        heap_.emplace_back(posterior_llr[v], v);
    std::make_heap(heap_.begin(), heap_.end(),
                   std::greater<std::pair<float, uint32_t>>());

    // Pivot storage: dense column + augmentation over pivot slots.
    const size_t max_pivots = dem_.numDetectors;
    const size_t aug_words = augWords();
    pivotCols_.resize(max_pivots * words_);
    pivotAugs_.resize(max_pivots * aug_words);
    pivotVar_.clear();
    pivotByRow_.assign(dem_.numDetectors, kNoPivot);

    // Rejected (linearly dependent) columns kept for the order-lambda
    // sweep: each stores the pivot combination reproducing it.
    rejectVar_.clear();
    rejectAugs_.resize(order_ * aug_words);

    colScratch_.assign(words_, 0);
    augScratch_.assign(aug_words, 0);

    const size_t stop_rank = rankKnown_ ? rank_ : max_pivots;
    while (!heap_.empty()) {
        if (pivotVar_.size() >= stop_rank &&
            rejectVar_.size() >= order_) {
            break;
        }
        std::pop_heap(heap_.begin(), heap_.end(),
                      std::greater<std::pair<float, uint32_t>>());
        const uint32_t v_idx = heap_.back().second;
        heap_.pop_back();
        // Densify the candidate column.
        std::fill(colScratch_.begin(), colScratch_.end(), 0);
        std::fill(augScratch_.begin(), augScratch_.end(), 0);
        for (uint32_t d : dem_.mechanisms[v_idx].detectors)
            colScratch_[d >> 6] |= uint64_t(1) << (d & 63);
        // Reduce against existing pivots.
        while (true) {
            const int row =
                gf2::firstSetBit(colScratch_.data(), words_);
            if (row < 0) {
                // Linearly dependent: candidate for the sweep.
                if (rejectVar_.size() < order_) {
                    std::copy(augScratch_.begin(), augScratch_.end(),
                              rejectAugs_.begin() +
                                  rejectVar_.size() * aug_words);
                    rejectVar_.push_back(v_idx);
                }
                break;
            }
            const uint32_t p = pivotByRow_[static_cast<size_t>(row)];
            if (p == kNoPivot) {
                const size_t slot = pivotVar_.size();
                augScratch_[slot >> 6] |= uint64_t(1) << (slot & 63);
                std::copy(colScratch_.begin(), colScratch_.end(),
                          pivotCols_.begin() + slot * words_);
                std::copy(augScratch_.begin(), augScratch_.end(),
                          pivotAugs_.begin() + slot * aug_words);
                pivotVar_.push_back(v_idx);
                pivotByRow_[static_cast<size_t>(row)] =
                    static_cast<uint32_t>(slot);
                break;
            }
            gf2::xorWords(colScratch_.data(),
                          pivotCols_.data() + p * words_, words_);
            gf2::xorWords(augScratch_.data(),
                          pivotAugs_.data() + p * aug_words,
                          aug_words);
        }
    }
    if (!rankKnown_) {
        rank_ = pivotVar_.size();
        rankKnown_ = true;
    }

    // Reduce the syndrome through the pivot basis.
    residual_.assign(words_, 0);
    for (size_t i = 0; i < syndrome.size(); ++i) {
        if (syndrome.get(i))
            residual_[i >> 6] |= uint64_t(1) << (i & 63);
    }
    baseAug_.assign(aug_words, 0);
    while (true) {
        const int row = gf2::firstSetBit(residual_.data(), words_);
        if (row < 0)
            break;
        const uint32_t p = pivotByRow_[static_cast<size_t>(row)];
        if (p == kNoPivot)
            return false; // Syndrome outside the column span.
        gf2::xorWords(residual_.data(),
                      pivotCols_.data() + p * words_, words_);
        gf2::xorWords(baseAug_.data(),
                      pivotAugs_.data() + p * aug_words, aug_words);
    }

    // Score a pivot-combination (plus optional extra column) by total
    // posterior LLR: lower = more probable. Shared with the batch
    // path — the bit-identity contract depends on this accumulation
    // existing in exactly one place.
    auto score = [&](const uint64_t* aug, double extra) {
        return scoreAug(aug, posterior_llr.data(), extra);
    };

    // OSD-0 candidate.
    double best_score = score(baseAug_.data(), 0.0);
    std::vector<uint64_t>& best_aug = candidateAug_;
    best_aug.assign(baseAug_.begin(), baseAug_.end());
    uint32_t best_extra = kNoPivot;

    // Order-lambda sweep: include one rejected column j, whose pivot
    // combination is rejectAugs_[j]; the solution becomes
    // baseAug_ ^ rejectAugs_[j] with column j flipped on.
    sweepAug_.resize(aug_words);
    for (size_t r = 0; r < rejectVar_.size(); ++r) {
        const uint64_t* reject_aug = rejectAugs_.data() + r * aug_words;
        for (size_t w = 0; w < aug_words; ++w)
            sweepAug_[w] = baseAug_[w] ^ reject_aug[w];
        const double s = score(sweepAug_.data(),
                               posterior_llr[rejectVar_[r]]);
        if (s < best_score) {
            best_score = s;
            best_aug.assign(sweepAug_.begin(), sweepAug_.end());
            best_extra = rejectVar_[r];
        }
    }

    for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
        if ((best_aug[slot >> 6] >> (slot & 63)) & 1)
            errors[pivotVar_[slot]] = 1;
    }
    if (best_extra != kNoPivot)
        errors[best_extra] = 1;
    return true;
}

// --------------------------------------------------------------------
// Batched path.
//
// The batch core reproduces the scalar algorithm above exactly — the
// pivot/reject choice is a pure function of the reliability
// permutation, and the scoring loops below run in the scalar order —
// while restructuring the work: the candidate order comes from a
// stable radix sort instead of a heap, augmentation tracking is
// skipped (and rebuilt from a hit list for the rare pivot) once the
// reject quota is full, the long dependent tail is filtered by a
// bit-sliced dual (left-nullspace) basis at a few word XORs per
// candidate, and groups of syndromes back-substitute together in
// bit-sliced multi-RHS form.
// --------------------------------------------------------------------

void
OsdDecoder::sortReliability(const float* llr)
{
    // Sort (llr, index) ascending on a monotonic bit transform of the
    // float key (llrSortKey): the uint64 (key << 32 | index) order is
    // exactly the (llr, index) comparator order of the scalar heap,
    // and keys are unique (index embedded), so any exact sort of the
    // keys yields bit-for-bit the scalar heap's pop order.
    //
    // The first call per decoder/batch radix-sorts everything. Later
    // calls exploit that consecutive shots' posteriors agree on most
    // mechanisms: diff the transformed keys against keyOfVar_ and,
    // when few moved, sort just the changed entries and merge them
    // into the previous order — dropping each changed var's stale
    // entry on the way. A -0.0 <-> +0.0 flip transforms to the same
    // key and is correctly treated as unchanged.
    const size_t n = dem_.mechanisms.size();
    if (!sortedValid_ || keyOfVar_.size() != n) {
        keyOfVar_.resize(n);
        orderKeys_.resize(n);
        orderAlt_.resize(n);
        for (uint32_t v = 0; v < n; ++v) {
            const uint32_t key = llrSortKey(llr[v]);
            keyOfVar_[v] = key;
            orderKeys_[v] = (uint64_t(key) << 32) | v;
        }
        radixSortKeys();
        sortedValid_ = true;
        return;
    }

    changedKeys_.clear();
    for (uint32_t v = 0; v < n; ++v) {
        const uint32_t key = llrSortKey(llr[v]);
        if (key != keyOfVar_[v]) {
            keyOfVar_[v] = key;
            changedKeys_.push_back((uint64_t(key) << 32) | v);
        }
    }
    if (changedKeys_.empty())
        return;
    if (changedKeys_.size() > n / 2) {
        // Majority moved: a fresh radix sort beats the merge.
        for (uint32_t v = 0; v < n; ++v)
            orderKeys_[v] = (uint64_t(keyOfVar_[v]) << 32) | v;
        radixSortKeys();
        return;
    }

    ++incrementalSorts_;
    std::sort(changedKeys_.begin(), changedKeys_.end());
    // One pass: merge the sorted changed entries with the previous
    // order, skipping stale entries (an entry is stale iff its key no
    // longer matches keyOfVar_ — only changed vars mismatch, and each
    // contributes exactly one fresh entry from changedKeys_).
    const uint64_t* changed = changedKeys_.data();
    const size_t numChanged = changedKeys_.size();
    size_t ci = 0;
    size_t outIdx = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t e = orderKeys_[i];
        const uint32_t v = static_cast<uint32_t>(e & 0xffffffffu);
        if (static_cast<uint32_t>(e >> 32) != keyOfVar_[v])
            continue; // Stale entry of a changed var.
        while (ci < numChanged && changed[ci] < e)
            orderAlt_[outIdx++] = changed[ci++];
        orderAlt_[outIdx++] = e;
    }
    while (ci < numChanged)
        orderAlt_[outIdx++] = changed[ci++];
    CYCLONE_ASSERT(outIdx == n, "incremental sort lost entries: "
                   << outIdx << " vs " << n);
    orderKeys_.swap(orderAlt_);
}

void
OsdDecoder::radixSortKeys()
{
    const size_t n = orderKeys_.size();
    // Three stable LSD passes over the 32 key bits: 11 + 11 + 10.
    static constexpr int kShift[3] = {32, 43, 54};
    static constexpr uint32_t kMask[3] = {2047, 2047, 1023};
    uint32_t hist[3][2048];
    std::fill(&hist[0][0], &hist[0][0] + 3 * 2048, 0u);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t k = orderKeys_[i];
        ++hist[0][(k >> kShift[0]) & kMask[0]];
        ++hist[1][(k >> kShift[1]) & kMask[1]];
        ++hist[2][(k >> kShift[2]) & kMask[2]];
    }
    uint64_t* src = orderKeys_.data();
    uint64_t* dst = orderAlt_.data();
    for (int pass = 0; pass < 3; ++pass) {
        uint32_t sum = 0;
        for (uint32_t b = 0; b <= kMask[pass]; ++b) {
            const uint32_t count = hist[pass][b];
            hist[pass][b] = sum;
            sum += count;
        }
        for (size_t i = 0; i < n; ++i) {
            const uint64_t k = src[i];
            dst[hist[pass][(k >> kShift[pass]) & kMask[pass]]++] = k;
        }
        std::swap(src, dst);
    }
    // Three passes land the sorted order back in orderKeys_' buffer
    // only if it started in orderAlt_; after the final swap `src`
    // points at the sorted data.
    if (src != orderKeys_.data())
        orderKeys_.swap(orderAlt_);
}

void
OsdDecoder::buildDualBasis()
{
    // Bit-sliced left-nullspace basis of the current pivot span: one
    // basis vector per uncovered row (at most 64, one bit lane each),
    // derived by back-substitution through the pivot columns in
    // decreasing leading-row order. Every pivot column q has its
    // leading row as its lowest set bit, so processing rows top-down
    // never disturbs an already-satisfied constraint.
    const size_t num_rows = dem_.numDetectors;
    dualSlice_.assign(num_rows, 0);
    uint32_t lane = 0;
    for (size_t r = 0; r < num_rows; ++r) {
        if (pivotByRow_[r] == kNoPivot)
            dualSlice_[r] = uint64_t(1) << lane++;
    }
    for (size_t r = num_rows; r-- > 0;) {
        const uint32_t p = pivotByRow_[r];
        if (p == kNoPivot)
            continue;
        const uint64_t* pivot_col = pivotCols_.data() + p * words_;
        uint64_t t = 0;
        for (size_t w = 0; w < words_; ++w) {
            uint64_t word = pivot_col[w];
            while (word != 0) {
                const size_t d = w * 64 +
                    static_cast<size_t>(std::countr_zero(word));
                word &= word - 1;
                t ^= dualSlice_[d];
            }
        }
        dualSlice_[r] = t;
    }
}

void
OsdDecoder::runElimination(const float* llr)
{
    const size_t num_vars = dem_.mechanisms.size();
    const size_t max_pivots = dem_.numDetectors;
    const size_t aug_words = augWords();

    sortReliability(llr);

    // Pivot storage is shared with the scalar path (same layout):
    // columns and augmentations stay in separate arrays so the
    // column-only reduction mode below keeps its working set at
    // max_pivots x words_ — small enough to stay cache-resident,
    // which is where the batch core's elimination speedup comes from.
    pivotCols_.resize(max_pivots * words_);
    pivotAugs_.resize(max_pivots * aug_words);
    pivotVar_.clear();
    pivotByRow_.assign(dem_.numDetectors, kNoPivot);
    rejectVar_.clear();
    rejectAugs_.resize(order_ * aug_words);
    inspected_.clear();
    colScratch_.resize(words_);
    augScratch_.resize(aug_words);

    const size_t stop_rank = rankKnown_ ? rank_ : max_pivots;
    bool dual_active = false;
    for (size_t idx = 0; idx < num_vars; ++idx) {
        if (pivotVar_.size() >= stop_rank &&
            rejectVar_.size() >= order_) {
            break;
        }
        const uint32_t v_idx =
            static_cast<uint32_t>(orderKeys_[idx] & 0xffffffffu);
        inspected_.push_back(v_idx);

        const bool track_aug = rejectVar_.size() < order_;

        // Once the reject quota is full, dependent candidates carry
        // no information — and the long tail of the elimination is
        // almost entirely dependent candidates chasing the last few
        // pivots. When at most 64 rows remain uncovered, test
        // dependence against the bit-sliced left-nullspace basis (a
        // word XOR per detector of the raw candidate): exact, since
        // Y c = 0 iff c lies in the pivot span. Only true pivots pay
        // for a reduction from here on.
        if (!dual_active && !track_aug &&
            max_pivots - pivotVar_.size() <= 64) {
            buildDualBasis();
            dual_active = true;
        }
        uint64_t dual_t = 0;
        if (dual_active) {
            for (uint32_t d : dem_.mechanisms[v_idx].detectors)
                dual_t ^= dualSlice_[d];
            if (dual_t == 0)
                continue; // Dependent; scalar would discard it too.
        }

        uint64_t* cand = colScratch_.data();
        uint64_t* aug = augScratch_.data();
        std::fill(cand, cand + words_, 0);
        if (track_aug)
            std::fill(aug, aug + aug_words, 0);
        else
            hitSlots_.clear();
        for (uint32_t d : dem_.mechanisms[v_idx].detectors)
            cand[d >> 6] |= uint64_t(1) << (d & 63);

        // Reduce against existing pivots. Rows visited strictly
        // ascend, so each rescan starts at the last cleared word.
        int row = gf2::firstSetBit(cand, words_);
        while (row >= 0) {
            const uint32_t p = pivotByRow_[static_cast<size_t>(row)];
            if (p == kNoPivot)
                break;
            gf2::xorWords(cand, pivotCols_.data() + p * words_,
                          words_);
            if (track_aug)
                gf2::xorWords(aug, pivotAugs_.data() + p * aug_words,
                              aug_words);
            else
                hitSlots_.push_back(p);
            row = gf2::firstSetBit(cand, words_,
                                   static_cast<size_t>(row) >> 6);
        }

        if (row < 0) {
            // Linearly dependent: candidate for the sweep (the
            // aug-free mode only runs once the quota is full).
            if (track_aug) {
                std::copy(aug, aug + aug_words,
                          rejectAugs_.begin() +
                              rejectVar_.size() * aug_words);
                rejectVar_.push_back(v_idx);
            }
            continue;
        }

        // Independent: install as the next pivot.
        const size_t slot = pivotVar_.size();
        if (!track_aug) {
            // Rebuild the skipped augmentation from the hit list:
            // aug = e_slot ^ XOR of the hit pivots' augmentations.
            std::fill(aug, aug + aug_words, 0);
            for (uint32_t h : hitSlots_)
                gf2::xorWords(aug, pivotAugs_.data() + h * aug_words,
                              aug_words);
        }
        aug[slot >> 6] |= uint64_t(1) << (slot & 63);
        std::copy(cand, cand + words_,
                  pivotCols_.begin() + slot * words_);
        std::copy(aug, aug + aug_words,
                  pivotAugs_.begin() + slot * aug_words);
        pivotVar_.push_back(v_idx);
        pivotByRow_[static_cast<size_t>(row)] =
            static_cast<uint32_t>(slot);

        if (dual_active) {
            // Shrink the dual basis to stay orthogonal to the new
            // pivot: Y q = dual_t (the raw-candidate test value —
            // identical, since Y annihilates every older pivot).
            // Absorb lane j into the others and retire it.
            const int j = std::countr_zero(dual_t);
            const size_t num_rows = dem_.numDetectors;
            for (size_t d = 0; d < num_rows; ++d) {
                if ((dualSlice_[d] >> j) & 1)
                    dualSlice_[d] ^= dual_t;
            }
        }
    }

    if (!rankKnown_) {
        rank_ = pivotVar_.size();
        rankKnown_ = true;
    }

    // Stamp the inspected set for the ordering-prefix membership test.
    inspectedStamp_.resize(num_vars, 0);
    ++stampEpoch_;
    for (uint32_t v : inspected_)
        inspectedStamp_[v] = stampEpoch_;
}

bool
OsdDecoder::matchesOrdering(const float* llr)
{
    // A shot shares the leader's elimination iff the leader's
    // inspected sequence is exactly this shot's sorted reliability
    // prefix: (a) the sequence ascends under this shot's keys, and
    // (b) every uninspected column keys after the sequence's last
    // element. Both checks are exact — keys are (LLR, index) pairs,
    // so ties resolve identically to the scalar heap.
    const size_t k = inspected_.size();
    if (k == 0)
        return true;
    std::pair<float, uint32_t> prev{llr[inspected_[0]], inspected_[0]};
    for (size_t i = 1; i < k; ++i) {
        const std::pair<float, uint32_t> cur{llr[inspected_[i]],
                                             inspected_[i]};
        if (!(prev < cur))
            return false;
        prev = cur;
    }
    const size_t num_vars = dem_.mechanisms.size();
    if (k == num_vars)
        return true;
    for (uint32_t v = 0; v < num_vars; ++v) {
        if (inspectedStamp_[v] == stampEpoch_)
            continue;
        if (!(prev < std::pair<float, uint32_t>{llr[v], v}))
            return false;
    }
    return true;
}

double
OsdDecoder::scoreAug(const uint64_t* aug, const float* llr,
                     double extra) const
{
    // Must accumulate in ascending slot order: the scalar path adds
    // the same floats to a double in this order, and bit-identity of
    // the tie-breaking comparisons depends on it.
    double total = extra;
    for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
        if ((aug[slot >> 6] >> (slot & 63)) & 1)
            total += llr[pivotVar_[slot]];
    }
    return total;
}

void
OsdDecoder::scoreAndEmitShot(uint32_t shot, const float* llr,
                             OsdBatchResult& out)
{
    // Scoring and the order-lambda sweep over shotAug_, identical to
    // the scalar tail: same float-to-double accumulation order, same
    // strict-less tie rule, same slot-ascending flip emission.
    const size_t aug_words = augWords();
    const size_t flip_stride = dem_.numDetectors + 1;
    sweepAug_.resize(std::max<size_t>(aug_words, 1));

    double best_score = scoreAug(shotAug_.data(), llr, 0.0);
    candidateAug_.assign(shotAug_.begin(), shotAug_.end());
    uint32_t best_extra = kNoPivot;
    for (size_t r = 0; r < rejectVar_.size(); ++r) {
        const uint64_t* reject_aug = rejectAugs_.data() + r * aug_words;
        for (size_t w = 0; w < aug_words; ++w)
            sweepAug_[w] = shotAug_[w] ^ reject_aug[w];
        const double sc =
            scoreAug(sweepAug_.data(), llr, llr[rejectVar_[r]]);
        if (sc < best_score) {
            best_score = sc;
            candidateAug_.assign(sweepAug_.begin(), sweepAug_.end());
            best_extra = rejectVar_[r];
        }
    }

    uint32_t* flips = flipScratch_.data() + shot * flip_stride;
    uint32_t n_flips = 0;
    for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
        if ((candidateAug_[slot >> 6] >> (slot & 63)) & 1)
            flips[n_flips++] = pivotVar_[slot];
    }
    if (best_extra != kNoPivot)
        flips[n_flips++] = best_extra;
    flipCount_[shot] = n_flips;
    out.ok[shot] = 1;
}

void
OsdDecoder::solveGroup(const OsdShotRequest* shots,
                       const uint32_t* members, size_t memberCount,
                       OsdBatchResult& out)
{
    const size_t aug_words = augWords();
    const size_t num_rows = dem_.numDetectors;

    // Small groups back-substitute shot by shot with word XORs — the
    // bit-sliced sweep below walks every set bit of every touched
    // pivot column individually, which only amortizes once enough
    // shots share each visit.
    if (memberCount < 8) {
        shotAug_.assign(std::max<size_t>(aug_words, 1), 0);
        for (size_t i = 0; i < memberCount; ++i) {
            const uint32_t shot = members[i];
            const BitVec& syndrome = *shots[shot].syndrome;
            residual_.assign(std::max<size_t>(words_, 1), 0);
            const std::vector<uint64_t>& sw = syndrome.words();
            std::copy(sw.begin(), sw.end(), residual_.begin());
            std::fill(shotAug_.begin(), shotAug_.end(), 0);
            bool ok = true;
            int row = gf2::firstSetBit(residual_.data(), words_);
            while (row >= 0) {
                const uint32_t p =
                    pivotByRow_[static_cast<size_t>(row)];
                if (p == kNoPivot) {
                    ok = false; // Syndrome outside the column span.
                    break;
                }
                gf2::xorWords(residual_.data(),
                              pivotCols_.data() + p * words_, words_);
                gf2::xorWords(shotAug_.data(),
                              pivotAugs_.data() + p * aug_words,
                              aug_words);
                row = gf2::firstSetBit(residual_.data(), words_,
                                       static_cast<size_t>(row) >> 6);
            }
            if (!ok) {
                out.ok[shot] = 0;
                flipCount_[shot] = 0;
                continue;
            }
            scoreAndEmitShot(shot, shots[shot].posteriorLlr, out);
        }
        return;
    }

    for (size_t chunk = 0; chunk < memberCount; chunk += 64) {
        const size_t cn = std::min<size_t>(64, memberCount - chunk);

        // Transpose the chunk's syndromes into row-major bit-sliced
        // form: word r carries bit s for shot s of this chunk.
        rhsRows_.assign(num_rows, 0);
        for (size_t s = 0; s < cn; ++s) {
            const BitVec& syndrome =
                *shots[members[chunk + s]].syndrome;
            const std::vector<uint64_t>& sw = syndrome.words();
            for (size_t w = 0; w < sw.size(); ++w) {
                uint64_t word = sw[w];
                while (word != 0) {
                    const size_t d = w * 64 +
                        static_cast<size_t>(std::countr_zero(word));
                    word &= word - 1;
                    rhsRows_[d] |= uint64_t(1) << s;
                }
            }
        }

        // Bit-sliced multi-RHS reduction through the pivot basis.
        // Rows ascend; a pivot's column leads at its own row, so the
        // sweep performs, lane by lane, exactly the XOR sequence the
        // scalar residual loop performs per shot. Lanes never
        // interact: each XOR only flips the shots in `mask`.
        rhsAug_.assign(pivotVar_.size(), 0);
        uint64_t fail_mask = 0;
        for (size_t r = 0; r < num_rows; ++r) {
            const uint64_t mask = rhsRows_[r];
            if (mask == 0)
                continue;
            const uint32_t p = pivotByRow_[r];
            if (p == kNoPivot) {
                // These shots' syndromes leave the column span here —
                // the scalar path fails them at this same row. Later
                // XORs on their lanes are discarded with the lane.
                fail_mask |= mask;
                continue;
            }
            const uint64_t* pivot_col = pivotCols_.data() + p * words_;
            for (size_t w = 0; w < words_; ++w) {
                uint64_t word = pivot_col[w];
                while (word != 0) {
                    const size_t r2 = w * 64 +
                        static_cast<size_t>(std::countr_zero(word));
                    word &= word - 1;
                    rhsRows_[r2] ^= mask;
                }
            }
            const uint64_t* pivot_aug =
                pivotAugs_.data() + p * aug_words;
            for (size_t w = 0; w < aug_words; ++w) {
                uint64_t word = pivot_aug[w];
                while (word != 0) {
                    const size_t slot = w * 64 +
                        static_cast<size_t>(std::countr_zero(word));
                    word &= word - 1;
                    rhsAug_[slot] ^= mask;
                }
            }
        }

        // Per-shot aug extraction, then the shared scoring tail.
        shotAug_.assign(std::max<size_t>(aug_words, 1), 0);
        for (size_t s = 0; s < cn; ++s) {
            const uint32_t shot = members[chunk + s];
            if ((fail_mask >> s) & 1) {
                out.ok[shot] = 0;
                flipCount_[shot] = 0;
                continue;
            }
            std::fill(shotAug_.begin(), shotAug_.end(), 0);
            for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
                if ((rhsAug_[slot] >> s) & 1)
                    shotAug_[slot >> 6] |= uint64_t(1) << (slot & 63);
            }
            scoreAndEmitShot(shot, shots[shot].posteriorLlr, out);
        }
    }
}

void
OsdDecoder::solveBatch(const OsdShotRequest* shots, size_t count,
                       OsdBatchResult& out)
{
    out.ok.assign(count, 0);
    out.flips.clear();
    out.flipOffsets.assign(count + 1, 0);
    out.stats = {};
    incrementalSorts_ = 0;
    if (count == 0)
        return;

    const size_t flip_stride = dem_.numDetectors + 1;
    flipScratch_.resize(count * flip_stride);
    flipCount_.assign(count, 0);
    shotAssigned_.assign(count, 0);

    // Leader/member grouping: the first unassigned shot runs a full
    // elimination; every later unassigned shot whose reliability
    // ordering shares the whole inspected prefix joins its group and
    // skips elimination entirely.
    for (size_t i = 0; i < count; ++i) {
        if (shotAssigned_[i])
            continue;
        runElimination(shots[i].posteriorLlr);
        groupMembers_.clear();
        groupMembers_.push_back(static_cast<uint32_t>(i));
        shotAssigned_[i] = 1;
        for (size_t j = i + 1; j < count; ++j) {
            if (shotAssigned_[j])
                continue;
            if (matchesOrdering(shots[j].posteriorLlr)) {
                shotAssigned_[j] = 1;
                groupMembers_.push_back(static_cast<uint32_t>(j));
            }
        }
        ++out.stats.groups;
        out.stats.groupedShots += groupMembers_.size() - 1;
        out.stats.sharedPivots +=
            pivotVar_.size() * (groupMembers_.size() - 1);
        solveGroup(shots, groupMembers_.data(), groupMembers_.size(),
                   out);
    }
    out.stats.incrementalSorts = incrementalSorts_;

    // Lay the staged per-shot flip lists out in shot order.
    size_t total = 0;
    for (size_t i = 0; i < count; ++i)
        total += flipCount_[i];
    out.flips.resize(total);
    size_t offset = 0;
    for (size_t i = 0; i < count; ++i) {
        out.flipOffsets[i] = offset;
        std::copy(flipScratch_.begin() + i * flip_stride,
                  flipScratch_.begin() + i * flip_stride +
                      flipCount_[i],
                  out.flips.begin() + static_cast<std::ptrdiff_t>(offset));
        offset += flipCount_[i];
    }
    out.flipOffsets[count] = offset;
}

} // namespace cyclone
