#include "decoder/osd.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.h"

namespace cyclone {

namespace {

constexpr uint32_t kNoPivot = static_cast<uint32_t>(-1);

int
firstSetBit(const uint64_t* words, size_t count)
{
    for (size_t w = 0; w < count; ++w) {
        if (words[w])
            return static_cast<int>(w * 64 +
                static_cast<size_t>(std::countr_zero(words[w])));
    }
    return -1;
}

} // namespace

OsdDecoder::OsdDecoder(const DetectorErrorModel& dem, size_t order)
    : dem_(dem), order_(order), words_((dem.numDetectors + 63) / 64)
{
    order_scratch_.resize(dem_.mechanisms.size());
}

bool
OsdDecoder::decode(const BitVec& syndrome,
                   const std::vector<double>& posterior_llr,
                   std::vector<uint8_t>& errors)
{
    const size_t num_vars = dem_.mechanisms.size();
    CYCLONE_ASSERT(posterior_llr.size() == num_vars,
                   "posterior length mismatch");
    errors.assign(num_vars, 0);

    // Reliability order: most-likely-flipped (lowest LLR) first.
    std::iota(order_scratch_.begin(), order_scratch_.end(), 0u);
    std::sort(order_scratch_.begin(), order_scratch_.end(),
              [&](uint32_t a, uint32_t b) {
                  if (posterior_llr[a] != posterior_llr[b])
                      return posterior_llr[a] < posterior_llr[b];
                  return a < b;
              });

    // Pivot storage: dense column + augmentation over pivot slots.
    const size_t max_pivots = dem_.numDetectors;
    const size_t aug_words = (max_pivots + 63) / 64;
    std::vector<std::vector<uint64_t>> pivot_vec;
    std::vector<std::vector<uint64_t>> pivot_aug;
    std::vector<uint32_t> pivot_var;
    std::vector<uint32_t> pivot_by_row(dem_.numDetectors, kNoPivot);
    pivot_vec.reserve(max_pivots);
    pivot_aug.reserve(max_pivots);
    pivot_var.reserve(max_pivots);

    // Rejected (linearly dependent) columns kept for the order-lambda
    // sweep: each stores the pivot combination reproducing it.
    std::vector<uint32_t> reject_var;
    std::vector<std::vector<uint64_t>> reject_aug;

    colScratch_.assign(words_, 0);
    augScratch_.assign(aug_words, 0);

    const size_t stop_rank = rankKnown_ ? rank_ : max_pivots;
    for (uint32_t v_idx : order_scratch_) {
        if (pivot_vec.size() >= stop_rank &&
            reject_var.size() >= order_) {
            break;
        }
        // Densify the candidate column.
        std::fill(colScratch_.begin(), colScratch_.end(), 0);
        std::fill(augScratch_.begin(), augScratch_.end(), 0);
        for (uint32_t d : dem_.mechanisms[v_idx].detectors)
            colScratch_[d >> 6] |= uint64_t(1) << (d & 63);
        // Reduce against existing pivots.
        while (true) {
            const int row = firstSetBit(colScratch_.data(), words_);
            if (row < 0) {
                // Linearly dependent: candidate for the sweep.
                if (reject_var.size() < order_) {
                    reject_var.push_back(v_idx);
                    reject_aug.push_back(augScratch_);
                }
                break;
            }
            const uint32_t p = pivot_by_row[static_cast<size_t>(row)];
            if (p == kNoPivot) {
                const size_t slot = pivot_vec.size();
                augScratch_[slot >> 6] |= uint64_t(1) << (slot & 63);
                pivot_vec.push_back(colScratch_);
                pivot_aug.push_back(augScratch_);
                pivot_var.push_back(v_idx);
                pivot_by_row[static_cast<size_t>(row)] =
                    static_cast<uint32_t>(slot);
                break;
            }
            for (size_t w = 0; w < words_; ++w)
                colScratch_[w] ^= pivot_vec[p][w];
            for (size_t w = 0; w < aug_words; ++w)
                augScratch_[w] ^= pivot_aug[p][w];
        }
    }
    if (!rankKnown_) {
        rank_ = pivot_vec.size();
        rankKnown_ = true;
    }

    // Reduce the syndrome through the pivot basis.
    std::vector<uint64_t> residual(words_, 0);
    for (size_t i = 0; i < syndrome.size(); ++i) {
        if (syndrome.get(i))
            residual[i >> 6] |= uint64_t(1) << (i & 63);
    }
    std::vector<uint64_t> base_aug(aug_words, 0);
    while (true) {
        const int row = firstSetBit(residual.data(), words_);
        if (row < 0)
            break;
        const uint32_t p = pivot_by_row[static_cast<size_t>(row)];
        if (p == kNoPivot)
            return false; // Syndrome outside the column span.
        for (size_t w = 0; w < words_; ++w)
            residual[w] ^= pivot_vec[p][w];
        for (size_t w = 0; w < aug_words; ++w)
            base_aug[w] ^= pivot_aug[p][w];
    }

    // Score a pivot-combination (plus optional extra column) by total
    // posterior LLR: lower = more probable.
    auto score = [&](const std::vector<uint64_t>& aug,
                     double extra) {
        double total = extra;
        for (size_t slot = 0; slot < pivot_var.size(); ++slot) {
            if ((aug[slot >> 6] >> (slot & 63)) & 1)
                total += posterior_llr[pivot_var[slot]];
        }
        return total;
    };

    // OSD-0 candidate.
    double best_score = score(base_aug, 0.0);
    std::vector<uint64_t> best_aug = base_aug;
    uint32_t best_extra = kNoPivot;

    // Order-lambda sweep: include one rejected column j, whose pivot
    // combination is reject_aug[j]; the solution becomes
    // base_aug ^ reject_aug[j] with column j flipped on.
    std::vector<uint64_t> candidate(aug_words);
    for (size_t r = 0; r < reject_var.size(); ++r) {
        for (size_t w = 0; w < aug_words; ++w)
            candidate[w] = base_aug[w] ^ reject_aug[r][w];
        const double s =
            score(candidate, posterior_llr[reject_var[r]]);
        if (s < best_score) {
            best_score = s;
            best_aug = candidate;
            best_extra = reject_var[r];
        }
    }

    for (size_t slot = 0; slot < pivot_var.size(); ++slot) {
        if ((best_aug[slot >> 6] >> (slot & 63)) & 1)
            errors[pivot_var[slot]] = 1;
    }
    if (best_extra != kNoPivot)
        errors[best_extra] = 1;
    return true;
}

} // namespace cyclone
