#include "decoder/osd.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "common/logging.h"

namespace cyclone {

namespace {

constexpr uint32_t kNoPivot = static_cast<uint32_t>(-1);

int
firstSetBit(const uint64_t* words, size_t count)
{
    for (size_t w = 0; w < count; ++w) {
        if (words[w])
            return static_cast<int>(w * 64 +
                static_cast<size_t>(std::countr_zero(words[w])));
    }
    return -1;
}

} // namespace

OsdDecoder::OsdDecoder(const DetectorErrorModel& dem, size_t order)
    : dem_(dem), order_(order), words_((dem.numDetectors + 63) / 64)
{}

bool
OsdDecoder::decode(const BitVec& syndrome,
                   const std::vector<float>& posterior_llr,
                   std::vector<uint8_t>& errors)
{
    const size_t num_vars = dem_.mechanisms.size();
    CYCLONE_ASSERT(posterior_llr.size() == num_vars,
                   "posterior length mismatch");
    errors.assign(num_vars, 0);

    // Reliability order, consumed lazily: most-likely-flipped (lowest
    // LLR, ties by index) first. Heap pops follow the exact sorted
    // sequence, so the elimination sees the same columns in the same
    // order a full sort would give.
    heap_.clear();
    heap_.reserve(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v)
        heap_.emplace_back(posterior_llr[v], v);
    std::make_heap(heap_.begin(), heap_.end(),
                   std::greater<std::pair<float, uint32_t>>());

    // Pivot storage: dense column + augmentation over pivot slots.
    const size_t max_pivots = dem_.numDetectors;
    const size_t aug_words = (max_pivots + 63) / 64;
    pivotCols_.resize(max_pivots * words_);
    pivotAugs_.resize(max_pivots * aug_words);
    pivotVar_.clear();
    pivotByRow_.assign(dem_.numDetectors, kNoPivot);

    // Rejected (linearly dependent) columns kept for the order-lambda
    // sweep: each stores the pivot combination reproducing it.
    rejectVar_.clear();
    rejectAugs_.resize(order_ * aug_words);

    colScratch_.assign(words_, 0);
    augScratch_.assign(aug_words, 0);

    const size_t stop_rank = rankKnown_ ? rank_ : max_pivots;
    while (!heap_.empty()) {
        if (pivotVar_.size() >= stop_rank &&
            rejectVar_.size() >= order_) {
            break;
        }
        std::pop_heap(heap_.begin(), heap_.end(),
                      std::greater<std::pair<float, uint32_t>>());
        const uint32_t v_idx = heap_.back().second;
        heap_.pop_back();
        // Densify the candidate column.
        std::fill(colScratch_.begin(), colScratch_.end(), 0);
        std::fill(augScratch_.begin(), augScratch_.end(), 0);
        for (uint32_t d : dem_.mechanisms[v_idx].detectors)
            colScratch_[d >> 6] |= uint64_t(1) << (d & 63);
        // Reduce against existing pivots.
        while (true) {
            const int row = firstSetBit(colScratch_.data(), words_);
            if (row < 0) {
                // Linearly dependent: candidate for the sweep.
                if (rejectVar_.size() < order_) {
                    std::copy(augScratch_.begin(), augScratch_.end(),
                              rejectAugs_.begin() +
                                  rejectVar_.size() * aug_words);
                    rejectVar_.push_back(v_idx);
                }
                break;
            }
            const uint32_t p = pivotByRow_[static_cast<size_t>(row)];
            if (p == kNoPivot) {
                const size_t slot = pivotVar_.size();
                augScratch_[slot >> 6] |= uint64_t(1) << (slot & 63);
                std::copy(colScratch_.begin(), colScratch_.end(),
                          pivotCols_.begin() + slot * words_);
                std::copy(augScratch_.begin(), augScratch_.end(),
                          pivotAugs_.begin() + slot * aug_words);
                pivotVar_.push_back(v_idx);
                pivotByRow_[static_cast<size_t>(row)] =
                    static_cast<uint32_t>(slot);
                break;
            }
            const uint64_t* pivot_col = pivotCols_.data() + p * words_;
            const uint64_t* pivot_aug =
                pivotAugs_.data() + p * aug_words;
            for (size_t w = 0; w < words_; ++w)
                colScratch_[w] ^= pivot_col[w];
            for (size_t w = 0; w < aug_words; ++w)
                augScratch_[w] ^= pivot_aug[w];
        }
    }
    if (!rankKnown_) {
        rank_ = pivotVar_.size();
        rankKnown_ = true;
    }

    // Reduce the syndrome through the pivot basis.
    residual_.assign(words_, 0);
    for (size_t i = 0; i < syndrome.size(); ++i) {
        if (syndrome.get(i))
            residual_[i >> 6] |= uint64_t(1) << (i & 63);
    }
    baseAug_.assign(aug_words, 0);
    while (true) {
        const int row = firstSetBit(residual_.data(), words_);
        if (row < 0)
            break;
        const uint32_t p = pivotByRow_[static_cast<size_t>(row)];
        if (p == kNoPivot)
            return false; // Syndrome outside the column span.
        const uint64_t* pivot_col = pivotCols_.data() + p * words_;
        const uint64_t* pivot_aug = pivotAugs_.data() + p * aug_words;
        for (size_t w = 0; w < words_; ++w)
            residual_[w] ^= pivot_col[w];
        for (size_t w = 0; w < aug_words; ++w)
            baseAug_[w] ^= pivot_aug[w];
    }

    // Score a pivot-combination (plus optional extra column) by total
    // posterior LLR: lower = more probable.
    auto score = [&](const uint64_t* aug, double extra) {
        double total = extra;
        for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
            if ((aug[slot >> 6] >> (slot & 63)) & 1)
                total += posterior_llr[pivotVar_[slot]];
        }
        return total;
    };

    // OSD-0 candidate.
    double best_score = score(baseAug_.data(), 0.0);
    std::vector<uint64_t>& best_aug = candidateAug_;
    best_aug.assign(baseAug_.begin(), baseAug_.end());
    uint32_t best_extra = kNoPivot;

    // Order-lambda sweep: include one rejected column j, whose pivot
    // combination is rejectAugs_[j]; the solution becomes
    // baseAug_ ^ rejectAugs_[j] with column j flipped on.
    sweepAug_.resize(aug_words);
    for (size_t r = 0; r < rejectVar_.size(); ++r) {
        const uint64_t* reject_aug = rejectAugs_.data() + r * aug_words;
        for (size_t w = 0; w < aug_words; ++w)
            sweepAug_[w] = baseAug_[w] ^ reject_aug[w];
        const double s = score(sweepAug_.data(),
                               posterior_llr[rejectVar_[r]]);
        if (s < best_score) {
            best_score = s;
            best_aug.assign(sweepAug_.begin(), sweepAug_.end());
            best_extra = rejectVar_[r];
        }
    }

    for (size_t slot = 0; slot < pivotVar_.size(); ++slot) {
        if ((best_aug[slot >> 6] >> (slot & 63)) & 1)
            errors[pivotVar_[slot]] = 1;
    }
    if (best_extra != kNoPivot)
        errors[best_extra] = 1;
    return true;
}

} // namespace cyclone
