/**
 * @file
 * Decoder interface: syndrome in, predicted observable flips out.
 *
 * Decoders expose two granularities: a per-shot decode() and a
 * decodeBatch() over a packed ShotBatch. The base class supplies a
 * scalar fallback for decodeBatch so simple decoders (e.g. the
 * exhaustive test oracle) stay one-method implementations; hot-path
 * decoders override it with packed fast paths (see BpOsdDecoder).
 */

#ifndef CYCLONE_DECODER_DECODER_H
#define CYCLONE_DECODER_DECODER_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "dem/shot_batch.h"

namespace cyclone {

/** Abstract syndrome decoder over a fixed detector error model. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one shot.
     *
     * @param syndrome detector outcomes (length = DEM detector count)
     * @return predicted logical-observable flip mask
     */
    virtual uint64_t decode(const BitVec& syndrome) = 0;

    /**
     * Decode every shot of a packed batch.
     *
     * @param batch packed detector outcomes (detector count must match
     *        the decoder's DEM)
     * @param[out] predicted per-shot observable flip masks, resized to
     *        batch.numShots
     *
     * The default implementation unpacks each shot and calls decode();
     * overrides must predict exactly what the scalar path would
     * (prediction equality is the batched pipeline's determinism
     * contract, enforced by the batch-vs-scalar equivalence tests).
     */
    virtual void decodeBatch(const ShotBatch& batch,
                             std::vector<uint64_t>& predicted);
};

} // namespace cyclone

#endif // CYCLONE_DECODER_DECODER_H
