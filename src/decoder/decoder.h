/**
 * @file
 * Decoder interface: syndrome in, predicted observable flips out.
 */

#ifndef CYCLONE_DECODER_DECODER_H
#define CYCLONE_DECODER_DECODER_H

#include <cstdint>

#include "common/bitvec.h"

namespace cyclone {

/** Abstract syndrome decoder over a fixed detector error model. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Decode one shot.
     *
     * @param syndrome detector outcomes (length = DEM detector count)
     * @return predicted logical-observable flip mask
     */
    virtual uint64_t decode(const BitVec& syndrome) = 0;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_DECODER_H
