/**
 * @file
 * Streaming decode service: sliding windows over per-round detector
 * slices, multiplexed across many concurrent logical-qubit streams.
 *
 * A real QCCD memory controller never sees a finished Monte-Carlo
 * batch: every syndrome round each logical qubit emits one slice of
 * detector outcomes, and the decoder may only commit a correction for
 * a window once the later rounds that give the window its temporal
 * context have arrived. StreamDecoder models exactly that contract.
 * Each stream accumulates round slices into its current window; when
 * the final slice lands the window becomes *ready* and is timestamped.
 * Ready windows from all streams are packed — in arrival order — into
 * 64-shot ShotBatch chunks and flushed through the staged decode
 * interface (BpOsdDecoder::beginStaged/stageBatch/flushStaged), so
 * cross-stream batch formation feeds the SIMD wave kernel and the
 * batched OSD exactly the full slabs they want.
 *
 * When to flush is the explicit latency-vs-occupancy tradeoff:
 *  - FlushPolicy::FullWave waits until the slab holds
 *    64 x capacityChunks windows (maximum lane occupancy, worst
 *    commit latency), and
 *  - FlushPolicy::Deadline additionally flushes whenever the oldest
 *    ready window has waited `flushAfterUs` (bounded latency, partial
 *    slabs).
 *
 * Correctness is grouping-independent: the decode of a distinct
 * syndrome is a pure function of that syndrome (see
 * bposd_decoder.h), so however windows are interleaved, batched or
 * flushed, every committed correction is bit-identical to decoding
 * that stream's windows offline one by one. The fuzz harness
 * (tests/test_decoder_fuzz.cc) pins this across stream counts, ragged
 * stream lengths and both policies.
 *
 * Every commit is measured: enqueue(ready)→commit latency feeds a
 * log-spaced histogram with p50/p99/p999 extraction, deadline misses
 * are counted against `deadlineUs`, and slab occupancy records how
 * full the staged flushes ran. The campaign engine reports these per
 * task next to the round period of the compiled TimedSchedule.
 */

#ifndef CYCLONE_DECODER_STREAM_DECODER_H
#define CYCLONE_DECODER_STREAM_DECODER_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.h"
#include "decoder/bposd_decoder.h"
#include "dem/shot_batch.h"

namespace cyclone {

/** When the streaming front-end flushes ready windows into a slab. */
enum class FlushPolicy
{
    /** Only when the slab is full (64 x capacityChunks windows). */
    FullWave,
    /** Also when the oldest ready window has waited flushAfterUs. */
    Deadline,
};

/**
 * Fixed-layout log-spaced latency histogram (microseconds).
 * kBinsPerOctave bins per factor of two starting at kMinUs; the last
 * bin absorbs everything slower. Mergeable across workers by bin-wise
 * addition, so campaign tasks aggregate per-worker histograms exactly.
 */
struct LatencyHistogram
{
    static constexpr size_t kBins = 96;
    static constexpr size_t kBinsPerOctave = 4;
    static constexpr double kMinUs = 0.5;

    std::array<uint64_t, kBins> bins{};
    uint64_t count = 0;

    void record(double us);
    void merge(const LatencyHistogram& other);

    /**
     * Value at quantile q in [0,1], interpolated geometrically inside
     * the selected bin; 0 when empty. Bin resolution is ~19% (2^0.25),
     * which is plenty against a round period.
     */
    double quantileUs(double q) const;
};

/** Aggregate statistics of a streaming decode run (mergeable). */
struct StreamDecodeStats
{
    /** Windows committed (one correction each). */
    size_t windows = 0;
    /** Round slices pushed across all streams. */
    size_t roundsPushed = 0;
    /** Trailing round slices discarded in incomplete windows. */
    size_t truncatedRounds = 0;

    /** Staged flushes by cause. */
    size_t flushesFull = 0;
    size_t flushesDeadline = 0;
    size_t flushesFinal = 0;

    /** Window slots offered (flushes x slab capacity) and filled —
     *  the cross-stream slab occupancy of the staged decode calls. */
    size_t slabSlots = 0;
    size_t slabFilled = 0;

    /** Commits whose ready→commit latency exceeded deadlineUs. */
    size_t deadlineMisses = 0;
    /** Effective per-window commit deadline (0 = no accounting). */
    double deadlineUs = 0.0;

    double latencySumUs = 0.0;
    double latencyMaxUs = 0.0;
    LatencyHistogram latency;

    /**
     * Percentiles of the ready→commit latency. Filled by
     * computePercentiles() after all merging (or restored verbatim
     * from a checkpoint, whose histogram is not persisted).
     */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;

    /** Bin-wise / additive merge of another worker's stats. */
    void merge(const StreamDecodeStats& other);

    /** Recompute p50/p99/p999 from the merged histogram. */
    void computePercentiles();

    double
    slabOccupancy() const
    {
        return slabSlots > 0
            ? static_cast<double>(slabFilled) /
                static_cast<double>(slabSlots)
            : 0.0;
    }

    double
    meanLatencyUs() const
    {
        return windows > 0
            ? latencySumUs / static_cast<double>(windows)
            : 0.0;
    }

    double
    deadlineMissFraction() const
    {
        return windows > 0
            ? static_cast<double>(deadlineMisses) /
                static_cast<double>(windows)
            : 0.0;
    }
};

/** Configuration of a StreamDecoder. */
struct StreamDecoderOptions
{
    /** Concurrent logical-qubit streams. */
    size_t streams = 1;

    /** Round slices per window (the arrival granularity: the window's
     *  detector range is split into this many contiguous slices). */
    size_t roundsPerWindow = 1;

    FlushPolicy policy = FlushPolicy::FullWave;

    /**
     * Per-window ready→commit deadline in us; commits slower than
     * this count as deadline misses. 0 disables miss accounting.
     */
    double deadlineUs = 0.0;

    /**
     * Deadline-policy flush timeout: flush whenever the oldest ready
     * window has waited this long. 0 = deadlineUs / 2 (flush early
     * enough to leave the decode half the budget).
     */
    double flushAfterUs = 0.0;

    /** 64-shot chunks per slab: flush capacity = 64 x this. Matches
     *  StoppingRule::stagingChunks in campaign use. */
    size_t capacityChunks = 1;

    /**
     * Clock returning microseconds (monotonic). Defaults to
     * std::chrono::steady_clock; tests and benches inject virtual
     * clocks to make deadline flushes deterministic.
     */
    std::function<double()> nowUs;
};

/** One committed window (its correction and how long it waited). */
struct CommittedWindow
{
    uint32_t stream = 0;
    /** Ordinal of the window within its stream (0-based). */
    uint64_t windowIndex = 0;
    /** Predicted observable flip mask — the correction. */
    uint64_t prediction = 0;
    /** Ready (final slice pushed) → commit latency, us. */
    double latencyUs = 0.0;
};

/**
 * The streaming front-end. Owns the window state machines and the
 * slab under formation; decodes through a caller-owned BpOsdDecoder
 * (campaign workers reuse their per-worker decoder, so streamed and
 * offline runs share every decode path and statistic).
 *
 * Driving protocol, per source round (in real arrival order):
 *   1. pushRound(stream, syndrome) for each stream that produced a
 *      slice this round;
 *   2. poll() once per round tick (deadline-policy flush check);
 *   3. drain committed() — commits appear after any flush.
 * At end of stream call finish(), which flushes the remaining ready
 * windows and discards (but counts) incomplete trailing windows.
 */
class StreamDecoder
{
  public:
    /**
     * @param decoder caller-owned staged decoder; must outlive this
     * @param numDetectors detectors per window (the DEM's count)
     * @param options streaming configuration (validated here)
     */
    StreamDecoder(BpOsdDecoder& decoder, size_t numDetectors,
                  StreamDecoderOptions options);

    /**
     * Push the next round slice of `stream`'s current window.
     * `windowSyndrome` is the full-window syndrome the source has
     * accumulated so far; only the bits of the current round's slice
     * [roundBegin(r), roundEnd(r)) are read. The final slice makes
     * the window ready (timestamped) and may trigger a full-slab
     * flush.
     */
    void pushRound(size_t stream, const BitVec& windowSyndrome);

    /** Deadline-policy flush check; call once per round tick. */
    void poll();

    /** Flush remaining ready windows, discard+count partial ones,
     *  and restart every stream's window ordinal at 0 (stats keep
     *  accumulating, so one StreamDecoder serves many runs). */
    void finish();

    /** Commits accumulated since the caller last cleared this. */
    std::vector<CommittedWindow>& committed() { return committed_; }

    /** First detector of round slice r. */
    size_t roundBegin(size_t r) const;
    /** One past the last detector of round slice r. */
    size_t roundEnd(size_t r) const;

    size_t streams() const { return options_.streams; }
    size_t roundsPerWindow() const { return options_.roundsPerWindow; }
    /** Window capacity of one slab (64 x capacityChunks). */
    size_t slabCapacity() const { return 64 * options_.capacityChunks; }
    /** Ready windows waiting in the slab under formation. */
    size_t readyWindows() const { return pending_.size(); }

    const StreamDecodeStats& stats() const { return stats_; }

  private:
    struct StreamState
    {
        BitVec window;       ///< Accumulated syndrome of the window.
        size_t round = 0;    ///< Next slice index expected.
        uint64_t windows = 0; ///< Windows completed so far.
    };

    struct PendingWindow
    {
        uint32_t stream = 0;
        uint64_t windowIndex = 0;
        double readyUs = 0.0;
    };

    void enqueueReady(size_t stream);
    void flush(size_t cause); // 0 = full, 1 = deadline, 2 = final

    BpOsdDecoder& decoder_;
    size_t numDetectors_ = 0;
    StreamDecoderOptions options_;
    double flushAfterUs_ = 0.0;

    std::vector<StreamState> states_;
    /** Slab under formation: capacityChunks chunks of up to 64
     *  windows each, plus the identity of every staged window. */
    std::vector<ShotBatch> chunks_;
    std::vector<PendingWindow> pending_;
    std::vector<CommittedWindow> committed_;
    StreamDecodeStats stats_;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_STREAM_DECODER_H
