/**
 * @file
 * ISA-specific instantiations of the lane-parallel BP kernels.
 *
 * The wave decoder's two hot passes — the posterior gather/scatter and
 * the check-to-variable update — are template bodies shared by every
 * rung of the SIMD ladder (wave_kernels.inl). Each rung is one
 * translation unit that includes the .inl under a function-scoped
 * target attribute and exports a table of function pointers:
 *
 *   - wave_kernels_generic.cc : no target attribute (baseline ISA);
 *     the only SIMD rung of non-x86 builds.
 *   - wave_kernels_avx2.cc    : target("avx2"), L = 4 and 8 (ymm).
 *   - wave_kernels_avx512.cc  : target("avx512f,avx512bw"), L = 16 —
 *     one zmm per variable, with the frozen-lane select lowered to
 *     __mmask16 blends.
 *
 * Splitting the rungs into separate TUs (instead of one TU with many
 * target attributes) keeps each kernel's helpers inlined under exactly
 * one ISA and lets the registry in decoder_backend.cc compile rungs in
 * or out independently. The kernels operate on a borrowed view of the
 * decoder's lane-major state (WaveKernelCtx); all float semantics and
 * the bit-exactness argument live in bp_wave_decoder.h.
 */

#ifndef CYCLONE_DECODER_WAVE_KERNELS_H
#define CYCLONE_DECODER_WAVE_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "decoder/bp_graph.h"

namespace cyclone {

/**
 * Borrowed view of BpWaveDecoder's lane-major state for one pass.
 *
 * Min-sum waves store messages compressed: a check's outgoing
 * messages take only two magnitudes (scale x min1 / scale x min2 of
 * its incoming magnitudes), so the per-edge state is two packed
 * lane-bit words — bit l of edgeSignBits is lane l's message IEEE
 * sign bit, bit l of edgeMinBits whether that lane's own magnitude
 * was the minimum (selecting scale x min2 on decode). The numEdges x
 * L float message array (the multi-MB stream that made the wide rungs
 * bandwidth-bound) shrinks 8x at L = 16, and decoding a message is a
 * broadcast + bit-test select + sign XOR yielding the exact floats
 * the full array would have held. (Lane *bitmasks* rather than a code
 * byte per lane because GCC scalarizes byte-to-int vector
 * conversions; broadcast-and-test lowers to two ops per word.)
 * Product-sum messages don't compress this way and keep `msg`.
 */
struct WaveKernelCtx
{
    const BpGraph* graph = nullptr;
    float* msg = nullptr;        ///< numEdges x L, check-CSR order
                                 ///< (product-sum variant only).
    float* posterior = nullptr;  ///< numVars x L.
    uint64_t* hardMask = nullptr;  ///< per var: bit l = lane l's bit.
    const float* synSign = nullptr;  ///< numChecks x L: +-1 per lane.
    float* msgScratch = nullptr;   ///< maxCheckDegree x L.
    float* tanhScratch = nullptr;  ///< maxCheckDegree x L.
    const uint32_t* laneActive = nullptr;  ///< L entries: ~0u or 0.
    float clamp = 50.0f;
    float minSumScale = 0.9f;
    // Compressed min-sum state (min-sum variant only).
    float* checkMin1 = nullptr;  ///< numChecks x L: scale x min1.
    float* checkMin2 = nullptr;  ///< numChecks x L: scale x min2.
    uint32_t* edgeSignBits = nullptr;  ///< numEdges: lane sign bits.
    uint32_t* edgeMinBits = nullptr;   ///< numEdges: lane was-min1 bits.
};

/** One lane width of one ISA rung: the wave decoder's inner passes. */
struct WaveKernelTable
{
    size_t lanes = 0;
    /**
     * Whether this rung's min-sum passes use the compressed message
     * state (checkMin1/2 + the edge bit words) or the plain msg
     * array. A per-rung tuning choice, not a capability: compression
     * pays where the full message stream is the bottleneck (L = 16,
     * 64 B per edge) and its decode-on-read maps to single mask
     * instructions; at L <= 8 the smaller stream plus the cheaper
     * plain store wins. The decoder allocates and resets whichever
     * state the selected rung asks for.
     */
    bool minSumCompressed = false;
    /** Full-message posterior pass (product-sum variant, and the
     *  min-sum variant of uncompressed rungs). */
    void (*posteriorUpdate)(const WaveKernelCtx&) = nullptr;
    void (*checkProdSum)(const WaveKernelCtx&) = nullptr;
    void (*checkProdSumMasked)(const WaveKernelCtx&) = nullptr;
    /** Min-sum passes (compressed or full per minSumCompressed). */
    void (*posteriorUpdateMinSum)(const WaveKernelCtx&) = nullptr;
    void (*checkMinSum)(const WaveKernelCtx&) = nullptr;
    void (*checkMinSumMasked)(const WaveKernelCtx&) = nullptr;
};

/**
 * Kernel table of one rung at one lane width, or nullptr when that
 * rung (or width) is not compiled into this build. The factories are
 * always linkable; availability is a runtime query so the backend
 * registry stays a plain data table.
 */
const WaveKernelTable* waveKernelTablesGeneric(size_t lanes);
const WaveKernelTable* waveKernelTablesAvx2(size_t lanes);
const WaveKernelTable* waveKernelTablesAvx512(size_t lanes);

} // namespace cyclone

#endif // CYCLONE_DECODER_WAVE_KERNELS_H
