#include "decoder/exhaustive_decoder.h"

#include <cmath>
#include <functional>
#include <vector>

#include "common/logging.h"

namespace cyclone {

ExhaustiveDecoder::ExhaustiveDecoder(const DetectorErrorModel& dem,
                                     size_t max_weight)
    : dem_(dem), maxWeight_(max_weight)
{
    CYCLONE_ASSERT(dem_.mechanisms.size() <= 64,
                   "exhaustive decoder limited to 64 mechanisms");
}

uint64_t
ExhaustiveDecoder::decode(const BitVec& syndrome)
{
    const size_t n = dem_.mechanisms.size();
    double best_log_prob = -1e300;
    uint64_t best_obs = 0;
    lastMatched_ = false;

    std::vector<size_t> stack;
    BitVec trial(dem_.numDetectors);

    auto evaluate = [&]() {
        trial.clear();
        uint64_t obs = 0;
        double log_prob = 0.0;
        for (size_t idx : stack) {
            const DemMechanism& m = dem_.mechanisms[idx];
            for (uint32_t d : m.detectors)
                trial.flip(d);
            obs ^= m.observables;
            log_prob +=
                std::log(m.probability / (1.0 - m.probability));
        }
        if (trial == syndrome && log_prob > best_log_prob) {
            best_log_prob = log_prob;
            best_obs = obs;
            lastMatched_ = true;
        }
    };

    std::function<void(size_t)> recurse = [&](size_t start) {
        evaluate();
        if (stack.size() >= maxWeight_)
            return;
        for (size_t i = start; i < n; ++i) {
            stack.push_back(i);
            recurse(i + 1);
            stack.pop_back();
        }
    };
    recurse(0);
    return best_obs;
}

} // namespace cyclone
