#include "decoder/bp_wave_decoder.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace cyclone {

bool
BpWaveDecoder::runtimeSupported()
{
    return selectDecoderBackend(0).lanes > 1;
}

size_t
BpWaveDecoder::resolveLaneWidth(size_t requested)
{
    return selectDecoderBackend(requested).lanes;
}

BpWaveDecoder::BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                             BpOptions options)
    : graph_(std::move(graph)), options_(options),
      clamp_(static_cast<float>(options.clamp)),
      minSumScale_(static_cast<float>(options.minSumScale))
{
    const DecoderBackendChoice choice =
        selectDecoderBackend(options_.waveLanes);
    CYCLONE_ASSERT(choice.lanes > 1,
                   "BpWaveDecoder constructed with no wave backend "
                   "available (waveLanes " << options_.waveLanes
                   << ") — check runtimeSupported() first");
    backend_ = choice.backend;
    laneWidth_ = choice.lanes;
    kernels_ = backend_->kernels(laneWidth_);
    initState();
}

BpWaveDecoder::BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                             BpOptions options,
                             const DecoderBackend& backend)
    : graph_(std::move(graph)), options_(options), backend_(&backend),
      clamp_(static_cast<float>(options.clamp)),
      minSumScale_(static_cast<float>(options.minSumScale))
{
    CYCLONE_ASSERT(backend.supported(),
                   "backend '" << backend.name
                   << "' is not supported on this host");
    laneWidth_ = backendLaneWidth(backend, options_.waveLanes);
    CYCLONE_ASSERT(laneWidth_ > 1,
                   "backend '" << backend.name
                   << "' serves no lane width for waveLanes "
                   << options_.waveLanes);
    kernels_ = backend.kernels(laneWidth_);
    initState();
}

void
BpWaveDecoder::initState()
{
    const size_t L = laneWidth_;
    if (options_.variant == BpOptions::Variant::MinSum &&
        kernels_->minSumCompressed) {
        // All-zero compressed state decodes every message to +0.0f —
        // the same initial messages the full array starts from.
        checkMin1_.assign(graph_->numChecks * L, 0.0f);
        checkMin2_.assign(graph_->numChecks * L, 0.0f);
        edgeSignBits_.assign(graph_->numEdges, 0);
        edgeMinBits_.assign(graph_->numEdges, 0);
    } else {
        msg_.assign(graph_->numEdges * L, 0.0f);
    }
    posterior_.assign(graph_->numVars * L, 0.0f);
    hardMask_.assign(graph_->numVars, 0);
    synMask_.assign(graph_->numChecks, 0);
    synSign_.assign(graph_->numChecks * L, 1.0f);
    msgScratch_.resize(graph_->maxCheckDegree * L);
    tanhScratch_.resize(graph_->maxCheckDegree * L);
    laneActive_.assign(L, 0);
}

WaveKernelCtx
BpWaveDecoder::kernelCtx()
{
    WaveKernelCtx ctx;
    ctx.graph = graph_.get();
    ctx.msg = msg_.data();
    ctx.checkMin1 = checkMin1_.data();
    ctx.checkMin2 = checkMin2_.data();
    ctx.edgeSignBits = edgeSignBits_.data();
    ctx.edgeMinBits = edgeMinBits_.data();
    ctx.posterior = posterior_.data();
    ctx.hardMask = hardMask_.data();
    ctx.synSign = synSign_.data();
    ctx.msgScratch = msgScratch_.data();
    ctx.tanhScratch = tanhScratch_.data();
    ctx.laneActive = laneActive_.data();
    ctx.clamp = clamp_;
    ctx.minSumScale = minSumScale_;
    return ctx;
}

uint64_t
BpWaveDecoder::verifyWave() const
{
    // H e == syndrome for every lane at once: one XOR of the variable
    // lane masks per edge, one lane-mask compare per check.
    const BpGraph& g = *graph_;
    const uint64_t* hard = hardMask_.data();
    uint64_t mismatch = 0;
    for (size_t c = 0; c < g.numChecks; ++c) {
        uint64_t parity = 0;
        for (size_t s = g.checkOffset[c]; s < g.checkOffset[c + 1];
             ++s)
            parity ^= hard[g.checkEdgeVar[s]];
        mismatch |= parity ^ synMask_[c];
    }
    return ~mismatch;
}

void
BpWaveDecoder::runWave(size_t count)
{
    const bool min_sum = options_.variant == BpOptions::Variant::MinSum;
    if (min_sum && kernels_->minSumCompressed) {
        std::fill(checkMin1_.begin(), checkMin1_.end(), 0.0f);
        std::fill(checkMin2_.begin(), checkMin2_.end(), 0.0f);
        std::fill(edgeSignBits_.begin(), edgeSignBits_.end(), 0u);
        std::fill(edgeMinBits_.begin(), edgeMinBits_.end(), 0u);
    } else {
        std::fill(msg_.begin(), msg_.end(), 0.0f);
    }
    std::fill(hardMask_.begin(), hardMask_.end(), 0);
    activeMask_ = count == 64 ? ~uint64_t{0}
                              : ((uint64_t{1} << count) - 1);
    const uint64_t initialActive = activeMask_;
    convergedMask_ = 0;
    for (size_t l = 0; l < laneWidth_; ++l) {
        laneActive_[l] = l < count ? ~uint32_t{0} : 0;
        iterations_[l] = 0;
    }

    const WaveKernelCtx ctx = kernelCtx();
    const auto posterior_pass = min_sum ? kernels_->posteriorUpdateMinSum
                                        : kernels_->posteriorUpdate;
    for (size_t iter = 0; iter < options_.maxIterations; ++iter) {
        posterior_pass(ctx);
        // The scalar decoder only re-verifies when a decision bit
        // moved; verifying every iteration is equivalent (an unmoved
        // decision re-verifies to the same answer) and here costs one
        // XOR per edge for all lanes together.
        const uint64_t verified = verifyWave() & activeMask_;
        if (verified != 0) {
            uint64_t pending = verified;
            while (pending != 0) {
                const size_t l = static_cast<size_t>(
                    std::countr_zero(pending));
                pending &= pending - 1;
                iterations_[l] = static_cast<uint32_t>(iter);
                laneActive_[l] = 0;
            }
            convergedMask_ |= verified;
            activeMask_ &= ~verified;
        }
        if (activeMask_ == 0)
            return;
        const bool none_frozen = activeMask_ == initialActive;
        if (min_sum) {
            if (none_frozen)
                kernels_->checkMinSum(ctx);
            else
                kernels_->checkMinSumMasked(ctx);
        } else {
            if (none_frozen)
                kernels_->checkProdSum(ctx);
            else
                kernels_->checkProdSumMasked(ctx);
        }
    }

    // Lanes still active ran out of iterations: final posterior pass
    // and last-chance verification, exactly like the scalar epilogue.
    posterior_pass(ctx);
    const uint64_t verified = verifyWave() & activeMask_;
    uint64_t pending = activeMask_;
    while (pending != 0) {
        const size_t l =
            static_cast<size_t>(std::countr_zero(pending));
        pending &= pending - 1;
        iterations_[l] = static_cast<uint32_t>(options_.maxIterations);
    }
    convergedMask_ |= verified;
    activeMask_ = 0;
}

void
BpWaveDecoder::decodeWave(const BitVec* const* syndromes, size_t count)
{
    CYCLONE_ASSERT(count >= 1 && count <= laneWidth_,
                   "wave lane count " << count << " out of [1, "
                   << laneWidth_ << "]");
    const size_t L = laneWidth_;
    for (size_t l = 0; l < count; ++l) {
        CYCLONE_ASSERT(syndromes[l]->size() == graph_->numChecks,
                       "lane " << l << " syndrome length mismatch: "
                       << syndromes[l]->size() << " vs "
                       << graph_->numChecks);
    }
    // Per-check lane masks and sign rows; idle lanes (>= count) carry
    // the zero syndrome and are frozen from the start.
    for (size_t c = 0; c < graph_->numChecks; ++c) {
        uint64_t mask = 0;
        float* signs = synSign_.data() + c * L;
        for (size_t l = 0; l < L; ++l) {
            const bool bit = l < count && syndromes[l]->get(c);
            mask |= uint64_t{bit} << l;
            signs[l] = bit ? -1.0f : 1.0f;
        }
        synMask_[c] = mask;
    }
    runWave(count);
}

void
BpWaveDecoder::lanePosterior(size_t lane, std::vector<float>& out) const
{
    const size_t L = laneWidth_;
    const size_t n = graph_->numVars;
    out.resize(n);
    for (size_t v = 0; v < n; ++v)
        out[v] = posterior_[v * L + lane];
}

void
BpWaveDecoder::laneHardDecision(size_t lane, BitVec& out) const
{
    const size_t n = graph_->numVars;
    if (out.size() != n)
        out.resize(n);
    uint64_t* words = out.words().data();
    uint64_t word = 0;
    for (size_t v = 0; v < n; ++v) {
        word |= ((hardMask_[v] >> lane) & 1) << (v & 63);
        if ((v & 63) == 63) {
            words[v >> 6] = word;
            word = 0;
        }
    }
    if (n & 63)
        words[n >> 6] = word;
}

} // namespace cyclone
