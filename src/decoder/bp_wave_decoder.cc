#include "decoder/bp_wave_decoder.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.h"

// The lane helpers pass/return wide generic vectors; they are
// force-inlined into the target("avx2") kernels below, so the
// baseline-ABI warning about vector returns is moot.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// Scoped ISA for the hot kernels only: the rest of the translation
// unit (construction, accessors, dispatch) compiles for the baseline
// target, so no symbol shared with other TUs can smuggle AVX2 code
// into a binary that runs on a pre-AVX2 CPU. runtimeSupported()
// guards every call into the attributed functions.
#ifdef CYCLONE_WAVE_KERNEL_AVX2
#define CYCLONE_WAVE_KERNEL __attribute__((target("avx2")))
#else
#define CYCLONE_WAVE_KERNEL
#endif

namespace cyclone {

namespace {

/**
 * Fixed-width lane vectors via the GCC/Clang vector extension: every
 * arithmetic operator is element-wise IEEE-754, and the ternary
 * operator on a comparison result is an element-wise select, so each
 * lane performs exactly the scalar decoder's float operations — the
 * extension only guarantees the compiler emits them as SIMD words.
 * The `aligned(4)` underalignment keeps lane rows loadable at any
 * float boundary.
 */
template <size_t L>
struct LaneTypes
{
    typedef float Vf __attribute__((
        vector_size(L * sizeof(float)), aligned(4), may_alias));
    typedef int32_t Vi __attribute__((
        vector_size(L * sizeof(int32_t)), aligned(4), may_alias));
};

/**
 * __builtin_bit_cast behind always_inline: std::bit_cast is an
 * ordinary (baseline-target) function template, and an out-of-line
 * call from inside a target("avx2") kernel would cross an ABI
 * boundary with 32-byte vector arguments (real miscompilation at
 * -O0). Force-inlining keeps the cast in the caller's ISA context.
 */
template <typename To, typename From>
__attribute__((always_inline)) inline To
laneBitCast(const From& from)
{
    static_assert(sizeof(To) == sizeof(From));
    return __builtin_bit_cast(To, from);
}

template <size_t L>
__attribute__((always_inline)) inline typename LaneTypes<L>::Vf
splat(float value)
{
    typename LaneTypes<L>::Vf v = {};
    return v + value;
}

template <size_t L>
__attribute__((always_inline)) inline typename LaneTypes<L>::Vi
splatInt(int32_t value)
{
    typename LaneTypes<L>::Vi v = {};
    return v + value;
}

/** |x| per lane: clearing the sign bit is exactly std::fabs. */
template <size_t L>
__attribute__((always_inline)) inline typename LaneTypes<L>::Vf
laneAbs(typename LaneTypes<L>::Vf x)
{
    typedef typename LaneTypes<L>::Vi Vi;
    typedef typename LaneTypes<L>::Vf Vf;
    return laneBitCast<Vf>(laneBitCast<Vi>(x) &
                             splatInt<L>(0x7fffffff));
}

/** std::clamp(x, -c, c) per lane (identical select order). */
template <size_t L>
__attribute__((always_inline)) inline typename LaneTypes<L>::Vf
laneClamp(typename LaneTypes<L>::Vf x, typename LaneTypes<L>::Vf c)
{
    const auto low = x < -c ? -c : x;
    return c < low ? c : low;
}

} // namespace

bool
BpWaveDecoder::runtimeSupported()
{
#ifdef CYCLONE_WAVE_KERNEL_AVX2
    return __builtin_cpu_supports("avx2");
#else
    return true;
#endif
}

size_t
BpWaveDecoder::resolveLaneWidth(size_t requested)
{
    if (requested == 0)
        return kDefaultLanes;
    if (requested >= 16)
        return 16;
    if (requested >= 8)
        return 8;
    return 4;
}

BpWaveDecoder::BpWaveDecoder(std::shared_ptr<const BpGraph> graph,
                             BpOptions options)
    : graph_(std::move(graph)), options_(options),
      laneWidth_(resolveLaneWidth(options.waveLanes)),
      clamp_(static_cast<float>(options.clamp)),
      minSumScale_(static_cast<float>(options.minSumScale))
{
    const size_t L = laneWidth_;
    msg_.assign(graph_->numEdges * L, 0.0f);
    posterior_.assign(graph_->numVars * L, 0.0f);
    hardMask_.assign(graph_->numVars, 0);
    synMask_.assign(graph_->numChecks, 0);
    synSign_.assign(graph_->numChecks * L, 1.0f);
    msgScratch_.resize(graph_->maxCheckDegree * L);
    tanhScratch_.resize(graph_->maxCheckDegree * L);
    laneActive_.assign(L, 0);
}

template <size_t L>
CYCLONE_WAVE_KERNEL void
BpWaveDecoder::posteriorUpdateWave()
{
    // Unconditional across lanes: frozen lanes recompute from frozen
    // messages, which reproduces their posterior and hard decision
    // bit-for-bit (same floats, same order), so no blend is needed
    // here — only the message writes in the check pass are masked.
    typedef typename LaneTypes<L>::Vf Vf;
    const BpGraph& g = *graph_;
    const float* msg = msg_.data();
    const float* prior = g.prior.data();
    float* posterior = posterior_.data();
    uint64_t* hard = hardMask_.data();
    if (g.varEdgesAscendByCheck) {
        // Scatter form: stream the lane-major message array once in
        // check-CSR order and accumulate into the (much smaller,
        // cache-resident) posterior rows. Because each variable's
        // var-CSR edges ascend by check, the additions hit every
        // variable in exactly the gather order — identical floats.
        for (size_t v = 0; v < g.numVars; ++v)
            *reinterpret_cast<Vf*>(posterior + v * L) =
                splat<L>(prior[v]);
        const uint32_t* edge_var = g.checkEdgeVar.data();
        for (size_t s = 0; s < g.numEdges; ++s) {
            Vf* p = reinterpret_cast<Vf*>(
                posterior + size_t{edge_var[s]} * L);
            *p += *reinterpret_cast<const Vf*>(msg + s * L);
        }
        for (size_t v = 0; v < g.numVars; ++v) {
            const Vf total =
                *reinterpret_cast<const Vf*>(posterior + v * L);
            uint64_t mask = 0;
            for (size_t l = 0; l < L; ++l)
                mask |= uint64_t{total[l] < 0.0f} << l;
            hard[v] = mask;
        }
        return;
    }
    const uint32_t* slots = g.checkSlotOfVarEdge.data();
    for (size_t v = 0; v < g.numVars; ++v) {
        Vf total = splat<L>(prior[v]);
        for (size_t e = g.varOffset[v]; e < g.varOffset[v + 1]; ++e) {
            total += *reinterpret_cast<const Vf*>(
                msg + size_t{slots[e]} * L);
        }
        *reinterpret_cast<Vf*>(posterior + v * L) = total;
        uint64_t mask = 0;
        for (size_t l = 0; l < L; ++l)
            mask |= uint64_t{total[l] < 0.0f} << l;
        hard[v] = mask;
    }
}

template <size_t L, bool MinSum, bool Masked>
CYCLONE_WAVE_KERNEL void
BpWaveDecoder::checkToVarUpdateWave()
{
    // Masked == false is the fast path while no real lane has frozen
    // yet: message writes are plain streaming stores instead of
    // read-blend-write (idle lanes past the group count may then
    // evolve as zero-syndrome decodes, which is harmless — their
    // state is never read). Once any lane converges, the masked
    // variant keeps its messages frozen.
    typedef typename LaneTypes<L>::Vf Vf;
    typedef typename LaneTypes<L>::Vi Vi;
    const BpGraph& g = *graph_;
    float* msg = msg_.data();
    const float* posterior = posterior_.data();
    const float* syn_sign = synSign_.data();
    float* scratch = msgScratch_.data();
    float* tanh_scratch = tanhScratch_.data();
    const Vf clamp = splat<L>(clamp_);
    const Vf scale = splat<L>(minSumScale_);
    const Vf zero = splat<L>(0.0f);
    Vi act = {};
    if constexpr (Masked) {
        for (size_t l = 0; l < L; ++l)
            act[l] = static_cast<int32_t>(laneActive_[l]);
    }

    for (size_t c = 0; c < g.numChecks; ++c) {
        const size_t begin = g.checkOffset[c];
        const size_t end = g.checkOffset[c + 1];

        Vf sign_product =
            *reinterpret_cast<const Vf*>(syn_sign + c * L);

        if constexpr (MinSum) {
            // Lane-wise two-smallest-magnitudes tracking (branchless
            // image of the scalar decoder's if/else chain: the minima
            // only move on strictly smaller magnitudes). The scalar
            // argmin is replaced by a magnitude-equality select in the
            // second pass — bit-identical, because when several edges
            // tie for min1 the scalar decoder has min2 == min1, so
            // both selects produce the same value on every edge. Signs
            // travel as IEEE sign bits: flipping a float's sign bit is
            // exactly the scalar code's multiplication by -1.
            const Vi sign_bit = splatInt<L>(INT32_MIN);
            Vf min1 = splat<L>(3.0e38f);
            Vf min2 = min1;
            Vi sp_bits =
                laneBitCast<Vi>(sign_product) & sign_bit;
            for (size_t s = begin; s < end; ++s) {
                const Vf p = *reinterpret_cast<const Vf*>(
                    posterior + size_t{g.checkEdgeVar[s]} * L);
                const Vf old = *reinterpret_cast<const Vf*>(msg + s * L);
                const Vf m = laneClamp<L>(p - old, clamp);
                *reinterpret_cast<Vf*>(scratch + (s - begin) * L) = m;
                const Vf mag = laneAbs<L>(m);
                sp_bits ^= (m < zero) & sign_bit;
                const auto lt1 = mag < min1;
                min2 = lt1 ? min1 : (mag < min2 ? mag : min2);
                min1 = lt1 ? mag : min1;
            }
            for (size_t s = begin; s < end; ++s) {
                const Vf m = *reinterpret_cast<const Vf*>(
                    scratch + (s - begin) * L);
                Vf* out = reinterpret_cast<Vf*>(msg + s * L);
                const Vf mag = laneAbs<L>(m);
                // Scalar: sign * scale * mag with sign = +-1, which
                // IEEE-exactly equals scale*mag with the sign bits
                // XORed in.
                const Vf base =
                    scale * (mag == min1 ? min2 : min1);
                const Vi flip =
                    sp_bits ^ ((m < zero) & sign_bit);
                const Vf val =
                    laneBitCast<Vf>(laneBitCast<Vi>(base) ^ flip);
                if constexpr (Masked)
                    *out = act ? val : *out;
                else
                    *out = val;
            }
        } else {
            // Product-sum two-pass tanh-product, lane-wise. The tanh
            // and log stay scalar libm calls per lane (so their floats
            // match the scalar decoder exactly); everything around
            // them is lane vectors. Zeroed lanes still evaluate the
            // (finite, discarded) log to stay branch-free.
            Vf prod = splat<L>(1.0f);
            Vi zero_count = splatInt<L>(0);
            Vi zero_slot = splatInt<L>(static_cast<int32_t>(begin));
            for (size_t s = begin; s < end; ++s) {
                const Vf p = *reinterpret_cast<const Vf*>(
                    posterior + size_t{g.checkEdgeVar[s]} * L);
                const Vf old = *reinterpret_cast<const Vf*>(msg + s * L);
                const Vf m = laneClamp<L>(p - old, clamp);
                *reinterpret_cast<Vf*>(scratch + (s - begin) * L) = m;
                sign_product = m < zero ? -sign_product : sign_product;
                const Vf half_abs = laneAbs<L>(m) * 0.5f;
                Vf t = {};
                for (size_t l = 0; l < L; ++l)
                    t[l] = std::tanh(half_abs[l]);
                *reinterpret_cast<Vf*>(
                    tanh_scratch + (s - begin) * L) = t;
                const auto is_zero = t < splat<L>(1e-12f);
                zero_count -= is_zero; // mask is -1 per true lane
                zero_slot = is_zero
                    ? splatInt<L>(static_cast<int32_t>(s))
                    : zero_slot;
                prod = is_zero ? prod : prod * t;
            }
            const Vi one = splatInt<L>(1);
            for (size_t s = begin; s < end; ++s) {
                const Vf m = *reinterpret_cast<const Vf*>(
                    scratch + (s - begin) * L);
                const Vf t = *reinterpret_cast<const Vf*>(
                    tanh_scratch + (s - begin) * L);
                Vf* out_row = reinterpret_cast<Vf*>(msg + s * L);
                const Vi sv = splatInt<L>(static_cast<int32_t>(s));
                const auto zeroed = (zero_count > one) |
                    ((zero_count == one) & (sv != zero_slot));
                // std::max(t, 1e-12f) == (1e-12f < t ? t : 1e-12f).
                const Vf floor = splat<L>(1e-12f);
                const Vf denom = floor < t ? t : floor;
                const Vf divided = prod / denom;
                Vf t_other =
                    zero_count == splatInt<L>(0) ? divided : prod;
                // One float ulp below 1: keeps the log finite
                // (std::min select order).
                const Vf limit = splat<L>(1.0f - 6.0e-8f);
                t_other = limit < t_other ? limit : t_other;
                const Vf ratio =
                    (splat<L>(1.0f) + t_other) /
                    (splat<L>(1.0f) - t_other);
                Vf grown = {};
                for (size_t l = 0; l < L; ++l)
                    grown[l] = std::log(ratio[l]);
                const Vf out = zeroed ? zero : grown;
                const Vf sign = sign_product *
                    (m < zero ? splat<L>(-1.0f) : splat<L>(1.0f));
                const Vf val = laneClamp<L>(sign * out, clamp);
                if constexpr (Masked)
                    *out_row = act ? val : *out_row;
                else
                    *out_row = val;
            }
        }
    }
}

uint64_t
BpWaveDecoder::verifyWave() const
{
    // H e == syndrome for every lane at once: one XOR of the variable
    // lane masks per edge, one lane-mask compare per check.
    const BpGraph& g = *graph_;
    const uint64_t* hard = hardMask_.data();
    uint64_t mismatch = 0;
    for (size_t c = 0; c < g.numChecks; ++c) {
        uint64_t parity = 0;
        for (size_t s = g.checkOffset[c]; s < g.checkOffset[c + 1];
             ++s)
            parity ^= hard[g.checkEdgeVar[s]];
        mismatch |= parity ^ synMask_[c];
    }
    return ~mismatch;
}

template <size_t L>
void
BpWaveDecoder::runWave(size_t count)
{
    std::fill(msg_.begin(), msg_.end(), 0.0f);
    std::fill(hardMask_.begin(), hardMask_.end(), 0);
    activeMask_ = count == 64 ? ~uint64_t{0}
                              : ((uint64_t{1} << count) - 1);
    const uint64_t initialActive = activeMask_;
    convergedMask_ = 0;
    for (size_t l = 0; l < L; ++l) {
        laneActive_[l] = l < count ? ~uint32_t{0} : 0;
        iterations_[l] = 0;
    }

    const bool min_sum = options_.variant == BpOptions::Variant::MinSum;
    for (size_t iter = 0; iter < options_.maxIterations; ++iter) {
        posteriorUpdateWave<L>();
        // The scalar decoder only re-verifies when a decision bit
        // moved; verifying every iteration is equivalent (an unmoved
        // decision re-verifies to the same answer) and here costs one
        // XOR per edge for all lanes together.
        const uint64_t verified = verifyWave() & activeMask_;
        if (verified != 0) {
            uint64_t pending = verified;
            while (pending != 0) {
                const size_t l = static_cast<size_t>(
                    std::countr_zero(pending));
                pending &= pending - 1;
                iterations_[l] = static_cast<uint32_t>(iter);
                laneActive_[l] = 0;
            }
            convergedMask_ |= verified;
            activeMask_ &= ~verified;
        }
        if (activeMask_ == 0)
            return;
        const bool none_frozen = activeMask_ == initialActive;
        if (min_sum) {
            if (none_frozen)
                checkToVarUpdateWave<L, true, false>();
            else
                checkToVarUpdateWave<L, true, true>();
        } else {
            if (none_frozen)
                checkToVarUpdateWave<L, false, false>();
            else
                checkToVarUpdateWave<L, false, true>();
        }
    }

    // Lanes still active ran out of iterations: final posterior pass
    // and last-chance verification, exactly like the scalar epilogue.
    posteriorUpdateWave<L>();
    const uint64_t verified = verifyWave() & activeMask_;
    uint64_t pending = activeMask_;
    while (pending != 0) {
        const size_t l =
            static_cast<size_t>(std::countr_zero(pending));
        pending &= pending - 1;
        iterations_[l] = static_cast<uint32_t>(options_.maxIterations);
    }
    convergedMask_ |= verified;
    activeMask_ = 0;
}

void
BpWaveDecoder::decodeWave(const BitVec* const* syndromes, size_t count)
{
    CYCLONE_ASSERT(count >= 1 && count <= laneWidth_,
                   "wave lane count " << count << " out of [1, "
                   << laneWidth_ << "]");
    const size_t L = laneWidth_;
    for (size_t l = 0; l < count; ++l) {
        CYCLONE_ASSERT(syndromes[l]->size() == graph_->numChecks,
                       "lane " << l << " syndrome length mismatch: "
                       << syndromes[l]->size() << " vs "
                       << graph_->numChecks);
    }
    // Per-check lane masks and sign rows; idle lanes (>= count) carry
    // the zero syndrome and are frozen from the start.
    for (size_t c = 0; c < graph_->numChecks; ++c) {
        uint64_t mask = 0;
        float* signs = synSign_.data() + c * L;
        for (size_t l = 0; l < L; ++l) {
            const bool bit = l < count && syndromes[l]->get(c);
            mask |= uint64_t{bit} << l;
            signs[l] = bit ? -1.0f : 1.0f;
        }
        synMask_[c] = mask;
    }
    switch (L) {
    case 4:
        runWave<4>(count);
        break;
    case 8:
        runWave<8>(count);
        break;
    default:
        runWave<16>(count);
        break;
    }
}

void
BpWaveDecoder::lanePosterior(size_t lane, std::vector<float>& out) const
{
    const size_t L = laneWidth_;
    const size_t n = graph_->numVars;
    out.resize(n);
    for (size_t v = 0; v < n; ++v)
        out[v] = posterior_[v * L + lane];
}

void
BpWaveDecoder::laneHardDecision(size_t lane, BitVec& out) const
{
    const size_t n = graph_->numVars;
    if (out.size() != n)
        out.resize(n);
    uint64_t* words = out.words().data();
    uint64_t word = 0;
    for (size_t v = 0; v < n; ++v) {
        word |= ((hardMask_[v] >> lane) & 1) << (v & 63);
        if ((v & 63) == 63) {
            words[v >> 6] = word;
            word = 0;
        }
    }
    if (n & 63)
        words[n >> 6] = word;
}

} // namespace cyclone
