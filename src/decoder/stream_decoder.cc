#include "decoder/stream_decoder.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

namespace {

double
steadyNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
LatencyHistogram::record(double us)
{
    size_t bin = 0;
    if (us > kMinUs) {
        const double octaves = std::log2(us / kMinUs);
        bin = std::min(kBins - 1,
                       static_cast<size_t>(octaves *
                                           static_cast<double>(
                                               kBinsPerOctave)));
    }
    ++bins[bin];
    ++count;
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    for (size_t i = 0; i < kBins; ++i)
        bins[i] += other.bins[i];
    count += other.count;
}

double
LatencyHistogram::quantileUs(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBins; ++i) {
        cumulative += bins[i];
        if (cumulative >= target) {
            const double mid = (static_cast<double>(i) + 0.5) /
                static_cast<double>(kBinsPerOctave);
            return kMinUs * std::exp2(mid);
        }
    }
    return kMinUs * std::exp2(static_cast<double>(kBins) /
                              static_cast<double>(kBinsPerOctave));
}

void
StreamDecodeStats::merge(const StreamDecodeStats& other)
{
    windows += other.windows;
    roundsPushed += other.roundsPushed;
    truncatedRounds += other.truncatedRounds;
    flushesFull += other.flushesFull;
    flushesDeadline += other.flushesDeadline;
    flushesFinal += other.flushesFinal;
    slabSlots += other.slabSlots;
    slabFilled += other.slabFilled;
    deadlineMisses += other.deadlineMisses;
    if (deadlineUs == 0.0)
        deadlineUs = other.deadlineUs;
    latencySumUs += other.latencySumUs;
    latencyMaxUs = std::max(latencyMaxUs, other.latencyMaxUs);
    latency.merge(other.latency);
}

void
StreamDecodeStats::computePercentiles()
{
    p50Us = latency.quantileUs(0.50);
    p99Us = latency.quantileUs(0.99);
    p999Us = latency.quantileUs(0.999);
}

StreamDecoder::StreamDecoder(BpOsdDecoder& decoder, size_t numDetectors,
                             StreamDecoderOptions options)
    : decoder_(decoder), numDetectors_(numDetectors),
      options_(std::move(options))
{
    if (options_.streams == 0)
        options_.streams = 1;
    if (options_.roundsPerWindow == 0)
        options_.roundsPerWindow = 1;
    if (options_.capacityChunks == 0)
        options_.capacityChunks = 1;
    if (!options_.nowUs)
        options_.nowUs = steadyNowUs;
    flushAfterUs_ = options_.flushAfterUs > 0.0
        ? options_.flushAfterUs
        : options_.deadlineUs * 0.5;
    stats_.deadlineUs = options_.deadlineUs;

    states_.resize(options_.streams);
    for (StreamState& st : states_)
        st.window.resize(numDetectors_);
    chunks_.resize(options_.capacityChunks);
    for (ShotBatch& chunk : chunks_)
        chunk.reset(numDetectors_, 64);
    pending_.reserve(slabCapacity());
}

size_t
StreamDecoder::roundBegin(size_t r) const
{
    return r * numDetectors_ / options_.roundsPerWindow;
}

size_t
StreamDecoder::roundEnd(size_t r) const
{
    return (r + 1) * numDetectors_ / options_.roundsPerWindow;
}

void
StreamDecoder::pushRound(size_t stream, const BitVec& windowSyndrome)
{
    CYCLONE_ASSERT(stream < states_.size(),
                   "stream " << stream << " out of range");
    CYCLONE_ASSERT(windowSyndrome.size() == numDetectors_,
                   "window syndrome has " << windowSyndrome.size()
                                          << " detectors, DEM has "
                                          << numDetectors_);
    StreamState& st = states_[stream];
    const size_t begin = roundBegin(st.round);
    const size_t end = roundEnd(st.round);
    ++stats_.roundsPushed;

    if (begin < end) {
        // Masked word-range OR: the slice occupies the same bit
        // offsets in source and accumulator, and slices of one window
        // are disjoint, so OR-ing masked words copies exactly the
        // slice.
        const size_t firstWord = begin >> 6;
        const size_t lastWord = (end - 1) >> 6;
        for (size_t w = firstWord; w <= lastWord; ++w) {
            uint64_t mask = ~uint64_t(0);
            if (w == firstWord)
                mask &= ~uint64_t(0) << (begin & 63);
            if (w == lastWord && (end & 63) != 0)
                mask &= (uint64_t(1) << (end & 63)) - 1;
            st.window.words()[w] |= windowSyndrome.word(w) & mask;
        }
    }

    if (++st.round == options_.roundsPerWindow)
        enqueueReady(stream);
}

void
StreamDecoder::enqueueReady(size_t stream)
{
    StreamState& st = states_[stream];
    const size_t slot = pending_.size();
    ShotBatch& chunk = chunks_[slot / 64];
    const size_t shot = slot & 63;
    // Transpose the ready window into the detector-major slab chunk:
    // one flip per detection event (windows are sparse sub-threshold).
    const std::vector<uint64_t>& words = st.window.words();
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
            const size_t d =
                (w << 6) +
                static_cast<size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            chunk.flipDetector(shot, d);
        }
    }
    PendingWindow p;
    p.stream = static_cast<uint32_t>(stream);
    p.windowIndex = st.windows++;
    p.readyUs = options_.nowUs();
    pending_.push_back(p);

    st.window.clear();
    st.round = 0;

    if (pending_.size() == slabCapacity())
        flush(0);
}

void
StreamDecoder::poll()
{
    if (options_.policy != FlushPolicy::Deadline || pending_.empty())
        return;
    if (options_.nowUs() - pending_.front().readyUs >= flushAfterUs_)
        flush(1);
}

void
StreamDecoder::finish()
{
    if (!pending_.empty())
        flush(2);
    for (StreamState& st : states_) {
        if (st.round != 0) {
            stats_.truncatedRounds += st.round;
            st.window.clear();
            st.round = 0;
        }
        // Window ordinals restart with the next run, so drivers that
        // reuse one StreamDecoder across groups keep a stable
        // windowIndex -> shot mapping per run (stats accumulate).
        st.windows = 0;
    }
}

void
StreamDecoder::flush(size_t cause)
{
    if (cause == 0)
        ++stats_.flushesFull;
    else if (cause == 1)
        ++stats_.flushesDeadline;
    else
        ++stats_.flushesFinal;
    stats_.slabSlots += slabCapacity();
    stats_.slabFilled += pending_.size();

    const size_t staged = (pending_.size() + 63) / 64;
    decoder_.beginStaged();
    for (size_t k = 0; k < staged; ++k) {
        // Only the last chunk is partial; shrinking numShots keeps
        // the single-wave layout valid (bits past the filled shots
        // are still zero from reset).
        chunks_[k].numShots =
            std::min<size_t>(64, pending_.size() - 64 * k);
        decoder_.stageBatch(chunks_[k]);
    }
    decoder_.flushStaged();
    const double commitUs = options_.nowUs();

    const std::vector<uint64_t>& predicted =
        decoder_.stagedPredictions();
    for (size_t i = 0; i < pending_.size(); ++i) {
        const PendingWindow& p = pending_[i];
        const size_t flat =
            decoder_.stagedBatchOffset(i / 64) + (i & 63);
        const double latency = std::max(0.0, commitUs - p.readyUs);
        stats_.latencySumUs += latency;
        stats_.latencyMaxUs = std::max(stats_.latencyMaxUs, latency);
        stats_.latency.record(latency);
        ++stats_.windows;
        if (stats_.deadlineUs > 0.0 && latency > stats_.deadlineUs)
            ++stats_.deadlineMisses;
        CommittedWindow c;
        c.stream = p.stream;
        c.windowIndex = p.windowIndex;
        c.prediction = predicted[flat];
        c.latencyUs = latency;
        committed_.push_back(c);
    }

    for (size_t k = 0; k < staged; ++k)
        chunks_[k].reset(numDetectors_, 64);
    pending_.clear();
}

} // namespace cyclone
