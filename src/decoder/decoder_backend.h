/**
 * @file
 * The DecoderBackend seam: registry and runtime dispatch for the
 * decode stack's SIMD ladder.
 *
 * A backend is one rung of the ladder — "scalar" (the per-syndrome
 * batch core, no wave kernel), "avx2" (L = 8 ymm wave kernel,
 * narrowable to 4), "avx512" (L = 16 zmm wave kernel) or "generic"
 * (vector-extension kernels at the baseline ISA, the SIMD rung of
 * non-x86 builds). All rungs are bit-identical by construction —
 * lanes never interact and every lane runs the scalar float sequence
 * — so dispatch is purely a throughput decision:
 *
 *   1. If the CYCLONE_WAVE_BACKEND environment variable names a
 *      compiled-in, CPUID-supported backend, it wins (the forced-
 *      dispatch hook the tests and benches use). Unknown names, or
 *      backends this host cannot run, fall through to auto dispatch —
 *      an override can change speed, never results.
 *   2. Otherwise the widest supported rung wins: avx512 -> avx2 ->
 *      scalar on x86 builds, generic -> scalar elsewhere.
 *
 * A requested lane width (BpOptions::waveLanes) narrows the choice:
 * a rung whose kernels are all wider than the request is skipped
 * (e.g. waveLanes = 8 on an AVX-512 host selects avx2/L8, and
 * waveLanes = 1 always selects scalar).
 *
 * Later rungs (GPU, streaming slabs) drop in as new registry entries
 * behind the same two functions.
 */

#ifndef CYCLONE_DECODER_DECODER_BACKEND_H
#define CYCLONE_DECODER_DECODER_BACKEND_H

#include <cstddef>
#include <string_view>
#include <vector>

#include "decoder/wave_kernels.h"

namespace cyclone {

/** One rung of the SIMD ladder. */
struct DecoderBackend
{
    /** Stable identifier: "scalar", "generic", "avx2" or "avx512".
     *  Also the value CYCLONE_WAVE_BACKEND matches against, and the
     *  name reported through BpOsdStats. */
    const char* name = "";

    /** Lane width auto-dispatch picks when waveLanes == 0. */
    size_t preferredLanes = 1;

    /** Whether this host's CPU can execute the rung's kernels. */
    bool (*supported)() = nullptr;

    /** Kernel factory (nullptr for the scalar rung). */
    const WaveKernelTable* (*kernels)(size_t lanes) = nullptr;
};

/**
 * Every backend compiled into this build, widest rung first; the
 * scalar rung is always present and always last. Entries may be
 * unsupported on this host — pair with supported().
 */
const std::vector<const DecoderBackend*>& decoderBackendRegistry();

/** Registry entry by name, or nullptr (compiled-in != supported). */
const DecoderBackend* findDecoderBackend(std::string_view name);

/** Environment variable that forces a backend ("auto" / "" = off). */
inline constexpr const char* kWaveBackendEnv = "CYCLONE_WAVE_BACKEND";

/** A dispatch decision: the rung plus the resolved lane width. */
struct DecoderBackendChoice
{
    const DecoderBackend* backend = nullptr;
    size_t lanes = 1; ///< 1 iff backend is the scalar rung.
};

/**
 * Widest lane width `backend` can serve under a BpOptions::waveLanes
 * request (0 = the backend's preferred width; requests below 4 clamp
 * up to the narrowest kernel). Returns 0 when the backend has no
 * kernel at or below the request — the dispatch loop then falls
 * through to a narrower rung.
 */
size_t backendLaneWidth(const DecoderBackend& backend, size_t requested);

/**
 * Runtime dispatch for this host, this environment and a waveLanes
 * request. Never fails: the scalar rung is the universal fallback.
 * Read once at decoder construction — changing CYCLONE_WAVE_BACKEND
 * afterwards does not migrate live decoders.
 */
DecoderBackendChoice selectDecoderBackend(size_t requestedLanes);

} // namespace cyclone

#endif // CYCLONE_DECODER_DECODER_BACKEND_H
