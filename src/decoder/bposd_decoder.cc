#include "decoder/bposd_decoder.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace cyclone {

double
BpOsdStats::trivialFraction() const
{
    return decodes == 0
        ? 0.0
        : static_cast<double>(trivialShots) /
            static_cast<double>(decodes);
}

double
BpOsdStats::memoHitRate() const
{
    return decodes == 0
        ? 0.0
        : static_cast<double>(memoHits) / static_cast<double>(decodes);
}

double
BpOsdStats::meanBpIterations() const
{
    const size_t bpDecodes = decodes - trivialShots;
    return bpDecodes == 0
        ? 0.0
        : static_cast<double>(bpIterations) /
            static_cast<double>(bpDecodes);
}

double
BpOsdStats::waveLaneOccupancy() const
{
    return waveLaneSlots == 0
        ? 0.0
        : static_cast<double>(waveLanesFilled) /
            static_cast<double>(waveLaneSlots);
}

BpOsdDecoder::BpOsdDecoder(const DetectorErrorModel& dem, BpOptions options)
    : dem_(dem), graph_(std::make_shared<const BpGraph>(dem)),
      options_(options),
      // Dispatch once: on a CPU with no supported wave rung the choice
      // degrades to the scalar backend (lanes == 1) and the batch path
      // falls back to the scalar core — identical results, the wave is
      // purely a throughput feature.
      backendChoice_(selectDecoderBackend(options.waveLanes)),
      waveEnabled_(backendChoice_.lanes > 1), bp_(graph_, options),
      osd_(dem)
{
    stats_.backend = backendChoice_.backend->name;
}

uint64_t
BpOsdDecoder::observablesOf(const BitVec& errors) const
{
    uint64_t obs = 0;
    const std::vector<uint64_t>& words = errors.words();
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
            const size_t v = w * 64 +
                static_cast<size_t>(std::countr_zero(word));
            word &= word - 1;
            obs ^= dem_.mechanisms[v].observables;
        }
    }
    return obs;
}

uint64_t
BpOsdDecoder::observablesOf(const std::vector<uint8_t>& errors) const
{
    uint64_t obs = 0;
    for (size_t v = 0; v < errors.size(); ++v) {
        if (errors[v])
            obs ^= dem_.mechanisms[v].observables;
    }
    return obs;
}

BpOsdDecoder::DecodeOutcome
BpOsdDecoder::decodeCore(const BitVec& syndrome)
{
    DecodeOutcome outcome;
    outcome.converged = bp_.decode(syndrome);
    outcome.iterations = static_cast<uint32_t>(bp_.lastIterations());

    if (outcome.converged) {
        outcome.observables = observablesOf(bp_.hardDecision());
    } else if (osd_.decode(syndrome, bp_.posteriorLlr(),
                           errorScratch_)) {
        outcome.observables = observablesOf(errorScratch_);
    } else {
        // Syndrome outside the DEM column span; keep the BP guess.
        outcome.osdFailed = true;
        outcome.observables = observablesOf(bp_.hardDecision());
    }
    return outcome;
}

void
BpOsdDecoder::bufferWaveLaneForOsd(size_t lane, uint32_t memoIdx)
{
    // Posteriors and hard decisions are only readable until the next
    // decodeWave call, so stage copies now; the OSD solve itself is
    // deferred until a full slab (or the end of pass 2) so shots can
    // share eliminations across wave groups.
    const size_t num_vars = dem_.mechanisms.size();
    if (osdPosteriors_.size() != kOsdFlushShots * num_vars)
        osdPosteriors_.resize(kOsdFlushShots * num_vars);

    PendingOsd pending;
    pending.memoIdx = memoIdx;
    pending.iterations = wave_->laneIterations(lane);
    wave_->laneHardDecision(lane, hardScratch_);
    pending.fallbackObservables = observablesOf(hardScratch_);

    wave_->lanePosterior(lane, posteriorScratch_);
    std::copy(posteriorScratch_.begin(), posteriorScratch_.end(),
              osdPosteriors_.begin() +
                  static_cast<std::ptrdiff_t>(osdPending_.size() *
                                              num_vars));
    osdPending_.push_back(pending);
    if (osdPending_.size() == kOsdFlushShots)
        flushOsdBatch();
}

void
BpOsdDecoder::flushOsdBatch()
{
    if (osdPending_.empty())
        return;
    const size_t num_vars = dem_.mechanisms.size();
    osdRequests_.resize(osdPending_.size());
    for (size_t i = 0; i < osdPending_.size(); ++i) {
        osdRequests_[i].syndrome =
            &memoEntries_[osdPending_[i].memoIdx].syndrome;
        osdRequests_[i].posteriorLlr =
            osdPosteriors_.data() + i * num_vars;
    }
    osd_.solveBatch(osdRequests_.data(), osdRequests_.size(),
                    osdResult_);
    stats_.osdBatchGroups += osdResult_.stats.groups;
    stats_.osdSharedPivots += osdResult_.stats.sharedPivots;

    for (size_t i = 0; i < osdPending_.size(); ++i) {
        const PendingOsd& pending = osdPending_[i];
        DecodeOutcome outcome;
        outcome.converged = false;
        outcome.iterations = pending.iterations;
        if (osdResult_.ok[i]) {
            // XOR of the flipped mechanisms' observables — the same
            // set of mechanisms the scalar errors vector marks, so
            // the XOR (order-insensitive) is identical.
            uint64_t obs = 0;
            for (size_t f = osdResult_.flipOffsets[i];
                 f < osdResult_.flipOffsets[i + 1]; ++f)
                obs ^= dem_.mechanisms[osdResult_.flips[f]].observables;
            outcome.observables = obs;
        } else {
            outcome.osdFailed = true;
            outcome.observables = pending.fallbackObservables;
        }
        memoEntries_[pending.memoIdx].outcome = outcome;
    }
    osdPending_.clear();
}

BpOsdDecoder::DecodeOutcome
BpOsdDecoder::waveLaneOutcome(size_t lane, const BitVec& syndrome)
{
    // Mirror of decodeCore over one wave lane: the lane's posterior
    // and hard decision are float/bit-identical to what the scalar
    // core would have produced for this syndrome, so the OSD fallback
    // sees exactly the same inputs.
    DecodeOutcome outcome;
    outcome.converged = wave_->laneConverged(lane);
    outcome.iterations = wave_->laneIterations(lane);

    if (outcome.converged) {
        wave_->laneHardDecision(lane, hardScratch_);
        outcome.observables = observablesOf(hardScratch_);
        return outcome;
    }
    wave_->lanePosterior(lane, posteriorScratch_);
    if (osd_.decode(syndrome, posteriorScratch_, errorScratch_)) {
        outcome.observables = observablesOf(errorScratch_);
    } else {
        outcome.osdFailed = true;
        wave_->laneHardDecision(lane, hardScratch_);
        outcome.observables = observablesOf(hardScratch_);
    }
    return outcome;
}

void
BpOsdDecoder::applyOutcomeStats(const DecodeOutcome& outcome)
{
    if (outcome.converged)
        ++stats_.bpConverged;
    else
        ++stats_.osdInvocations;
    if (outcome.osdFailed)
        ++stats_.osdFailures;
    stats_.bpIterations += outcome.iterations;
}

uint64_t
BpOsdDecoder::decode(const BitVec& syndrome)
{
    ++stats_.decodes;
    if (syndrome.isZero()) {
        // BP converges on the zero syndrome in zero iterations with an
        // all-zero correction; skip straight to that fixed point.
        ++stats_.trivialShots;
        ++stats_.bpConverged;
        return 0;
    }
    const DecodeOutcome outcome = decodeCore(syndrome);
    applyOutcomeStats(outcome);
    return outcome.observables;
}

void
BpOsdDecoder::beginStaged()
{
    CYCLONE_ASSERT(!stagedOpen_,
                   "beginStaged() with a staged group already open");
    stagedOpen_ = true;
    stagedShots_ = 0;
    stagedOffsets_.assign(1, 0);
    // The memo is scoped to one staged group: a group's results must
    // not depend on what a worker decoded before, so a fixed staging
    // order gives the same counts at any thread count or chunk
    // schedule.
    memoEntries_.clear();
    memoIndex_.clear();
}

void
BpOsdDecoder::stageBatch(const ShotBatch& batch)
{
    CYCLONE_ASSERT(stagedOpen_,
                   "stageBatch() without an open staged group");
    CYCLONE_ASSERT(batch.numDetectors == dem_.numDetectors,
                   "batch detector count mismatch: "
                   << batch.numDetectors << " vs "
                   << dem_.numDetectors);
    if (stagedOffsets_.size() > 1)
        ++stats_.stagedChunks;
    const size_t base = stagedShots_;

    const size_t syndrome_words = batch.syndromeWords();
    if (syndromeScratch_.size() != batch.numDetectors)
        syndromeScratch_.resize(batch.numDetectors);

    // Pass 1: group. Shots with detection events are bucketed by
    // distinct syndrome across the whole staged pool; each distinct
    // syndrome is decoded exactly once by flushStaged() and replayed
    // onto all its shots.
    for (size_t wave = 0; wave < batch.numWaves(); ++wave) {
        const uint64_t valid = batch.waveMask(wave);
        const uint64_t active = batch.activeMask(wave) & valid;
        const size_t shots_in_wave =
            static_cast<size_t>(std::popcount(valid));
        const size_t trivial_in_wave = shots_in_wave -
            static_cast<size_t>(std::popcount(active));

        stats_.decodes += shots_in_wave;
        stats_.trivialShots += trivial_in_wave;
        stats_.bpConverged += trivial_in_wave;
        if (active == 0)
            continue;

        // Shot-major view of this wave's syndromes (zero-padded rows
        // keep bits past numDetectors clear).
        batch.extractWave(wave, waveScratch_);

        uint64_t pending = active;
        while (pending) {
            const size_t s =
                static_cast<size_t>(std::countr_zero(pending));
            pending &= pending - 1;
            const uint32_t shot =
                static_cast<uint32_t>(base + wave * 64 + s);
            syndromeScratch_.assignWords(
                waveScratch_.data() + s * syndrome_words,
                syndrome_words);

            const uint64_t key = syndromeScratch_.hash();
            std::vector<uint32_t>& bucket = memoIndex_[key];
            MemoEntry* hit = nullptr;
            for (uint32_t idx : bucket) {
                if (memoEntries_[idx].syndrome == syndromeScratch_) {
                    hit = &memoEntries_[idx];
                    break;
                }
            }
            if (hit != nullptr) {
                hit->shots.push_back(shot);
                continue;
            }
            bucket.push_back(
                static_cast<uint32_t>(memoEntries_.size()));
            MemoEntry entry;
            entry.syndrome = syndromeScratch_;
            entry.weight = entry.syndrome.popcount();
            entry.shots.push_back(shot);
            memoEntries_.push_back(std::move(entry));
        }
    }

    stagedShots_ = base + batch.numShots;
    stagedOffsets_.push_back(stagedShots_);
}

void
BpOsdDecoder::flushStaged()
{
    CYCLONE_ASSERT(stagedOpen_,
                   "flushStaged() without an open staged group");
    stagedOpen_ = false;
    stagedPredicted_.assign(stagedShots_, 0);

    // Pass 2: decode each distinct syndrome of the pool — lane groups
    // through the wave kernel, or one at a time through the scalar
    // core when the wave kernel is disabled (waveLanes == 1, or no
    // supported backend).
    if (waveEnabled_ && wave_ == nullptr && !memoEntries_.empty())
        wave_ = std::make_unique<BpWaveDecoder>(
            graph_, options_, *backendChoice_.backend);
    if (waveEnabled_ && wave_ != nullptr) {
        // A lane group iterates until its slowest lane converges, so
        // group syndromes of similar weight together: weight tracks
        // BP difficulty, which keeps fast lanes from idling behind
        // one hard syndrome. Ordering cannot change any outcome —
        // lanes never interact — it only reduces frozen-lane waste.
        // The stable sort keeps the grouping deterministic, and with
        // several chunks staged the pool fills whole L-wide groups
        // where per-chunk decoding would have emitted ragged tails.
        laneOrder_.resize(memoEntries_.size());
        for (size_t i = 0; i < laneOrder_.size(); ++i)
            laneOrder_[i] = static_cast<uint32_t>(i);
        std::stable_sort(
            laneOrder_.begin(), laneOrder_.end(),
            [&](uint32_t a, uint32_t b) {
                return memoEntries_[a].weight < memoEntries_[b].weight;
            });

        const size_t L = wave_->laneWidth();
        const BitVec* lanes[64];
        osdPending_.clear();
        for (size_t group = 0; group < laneOrder_.size(); group += L) {
            const size_t count =
                std::min(L, laneOrder_.size() - group);
            for (size_t i = 0; i < count; ++i)
                lanes[i] = &memoEntries_[laneOrder_[group + i]].syndrome;
            wave_->decodeWave(lanes, count);
            ++stats_.waveGroups;
            stats_.waveLaneSlots += L;
            stats_.waveLanesFilled += count;
            for (size_t i = 0; i < count; ++i) {
                const uint32_t memoIdx = laneOrder_[group + i];
                MemoEntry& entry = memoEntries_[memoIdx];
                if (options_.osdBatch && !wave_->laneConverged(i)) {
                    // Defer OSD: stage this lane for the batched
                    // solve instead of a scalar solve per lane.
                    bufferWaveLaneForOsd(i, memoIdx);
                    continue;
                }
                entry.outcome = waveLaneOutcome(i, entry.syndrome);
            }
        }
        flushOsdBatch();
    } else {
        for (MemoEntry& entry : memoEntries_)
            entry.outcome = decodeCore(entry.syndrome);
    }

    // Pass 3: replay each outcome — and its statistics — onto every
    // shot that carried the syndrome, so the aggregate counters stay
    // exactly what per-shot decoding would have produced.
    for (const MemoEntry& entry : memoEntries_) {
        for (size_t j = 0; j < entry.shots.size(); ++j) {
            if (j > 0)
                ++stats_.memoHits;
            applyOutcomeStats(entry.outcome);
            stagedPredicted_[entry.shots[j]] =
                entry.outcome.observables;
        }
    }
}

void
BpOsdDecoder::decodeBatch(const ShotBatch& batch,
                          std::vector<uint64_t>& predicted)
{
    beginStaged();
    stageBatch(batch);
    flushStaged();
    predicted = stagedPredicted_;
}

} // namespace cyclone
