#include "decoder/bposd_decoder.h"

#include <bit>

#include "common/bit_transpose.h"
#include "common/logging.h"

namespace cyclone {

double
BpOsdStats::trivialFraction() const
{
    return decodes == 0
        ? 0.0
        : static_cast<double>(trivialShots) /
            static_cast<double>(decodes);
}

double
BpOsdStats::memoHitRate() const
{
    return decodes == 0
        ? 0.0
        : static_cast<double>(memoHits) / static_cast<double>(decodes);
}

double
BpOsdStats::meanBpIterations() const
{
    const size_t bpDecodes = decodes - trivialShots;
    return bpDecodes == 0
        ? 0.0
        : static_cast<double>(bpIterations) /
            static_cast<double>(bpDecodes);
}

BpOsdDecoder::BpOsdDecoder(const DetectorErrorModel& dem, BpOptions options)
    : dem_(dem), bp_(dem, options), osd_(dem)
{}

BpOsdDecoder::DecodeOutcome
BpOsdDecoder::decodeCore(const BitVec& syndrome)
{
    DecodeOutcome outcome;
    outcome.converged = bp_.decode(syndrome);
    outcome.iterations = static_cast<uint32_t>(bp_.lastIterations());

    const std::vector<uint8_t>* errors = &bp_.hardDecision();
    if (!outcome.converged) {
        if (osd_.decode(syndrome, bp_.posteriorLlr(), errorScratch_)) {
            errors = &errorScratch_;
        } else {
            // Syndrome outside the DEM column span; keep the BP guess.
            outcome.osdFailed = true;
        }
    }

    uint64_t obs = 0;
    for (size_t v = 0; v < errors->size(); ++v) {
        if ((*errors)[v])
            obs ^= dem_.mechanisms[v].observables;
    }
    outcome.observables = obs;
    return outcome;
}

void
BpOsdDecoder::applyOutcomeStats(const DecodeOutcome& outcome)
{
    if (outcome.converged)
        ++stats_.bpConverged;
    else
        ++stats_.osdInvocations;
    if (outcome.osdFailed)
        ++stats_.osdFailures;
    stats_.bpIterations += outcome.iterations;
}

uint64_t
BpOsdDecoder::decode(const BitVec& syndrome)
{
    ++stats_.decodes;
    if (syndrome.isZero()) {
        // BP converges on the zero syndrome in zero iterations with an
        // all-zero correction; skip straight to that fixed point.
        ++stats_.trivialShots;
        ++stats_.bpConverged;
        return 0;
    }
    const DecodeOutcome outcome = decodeCore(syndrome);
    applyOutcomeStats(outcome);
    return outcome.observables;
}

void
BpOsdDecoder::decodeBatch(const ShotBatch& batch,
                          std::vector<uint64_t>& predicted)
{
    CYCLONE_ASSERT(batch.numDetectors == dem_.numDetectors,
                   "batch detector count mismatch: "
                   << batch.numDetectors << " vs "
                   << dem_.numDetectors);
    predicted.assign(batch.numShots, 0);
    // The memo is scoped to one batch: chunk results must not depend
    // on what a worker decoded before, so a fixed seed gives the same
    // counts at any thread count or chunk schedule.
    memoEntries_.clear();
    memoIndex_.clear();

    const size_t syndrome_words = (batch.numDetectors + 63) / 64;
    waveScratch_.resize(64 * syndrome_words);
    if (syndromeScratch_.size() != batch.numDetectors)
        syndromeScratch_.resize(batch.numDetectors);

    const size_t stride = batch.wordsPerDetector();
    for (size_t wave = 0; wave < batch.numWaves(); ++wave) {
        const uint64_t valid = batch.waveMask(wave);
        const uint64_t active = batch.activeMask(wave) & valid;
        const size_t shots_in_wave =
            static_cast<size_t>(std::popcount(valid));
        const size_t trivial_in_wave = shots_in_wave -
            static_cast<size_t>(std::popcount(active));

        stats_.decodes += shots_in_wave;
        stats_.trivialShots += trivial_in_wave;
        stats_.bpConverged += trivial_in_wave;
        if (active == 0)
            continue;

        // Shot-major view of this wave's syndromes (zero-padded rows
        // keep bits past numDetectors clear).
        transposeWave64(batch.words.data() + wave, batch.numDetectors,
                        stride, waveScratch_.data(), syndrome_words);

        uint64_t pending = active;
        while (pending) {
            const size_t s =
                static_cast<size_t>(std::countr_zero(pending));
            pending &= pending - 1;
            const size_t shot = wave * 64 + s;
            syndromeScratch_.assignWords(
                waveScratch_.data() + s * syndrome_words,
                syndrome_words);

            const uint64_t key = syndromeScratch_.hash();
            std::vector<uint32_t>& bucket = memoIndex_[key];
            const MemoEntry* hit = nullptr;
            for (uint32_t idx : bucket) {
                if (memoEntries_[idx].syndrome == syndromeScratch_) {
                    hit = &memoEntries_[idx];
                    break;
                }
            }
            if (hit != nullptr) {
                // Replay the memoized outcome and its statistics: the
                // aggregate counters stay exactly what per-shot
                // decoding would have produced.
                ++stats_.memoHits;
                applyOutcomeStats(hit->outcome);
                predicted[shot] = hit->outcome.observables;
                continue;
            }

            const DecodeOutcome outcome =
                decodeCore(syndromeScratch_);
            applyOutcomeStats(outcome);
            predicted[shot] = outcome.observables;
            bucket.push_back(
                static_cast<uint32_t>(memoEntries_.size()));
            memoEntries_.push_back({syndromeScratch_, outcome});
        }
    }
}

} // namespace cyclone
