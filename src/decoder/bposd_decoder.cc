#include "decoder/bposd_decoder.h"

namespace cyclone {

BpOsdDecoder::BpOsdDecoder(const DetectorErrorModel& dem, BpOptions options)
    : dem_(dem), bp_(dem, options), osd_(dem)
{}

uint64_t
BpOsdDecoder::decode(const BitVec& syndrome)
{
    ++stats_.decodes;
    const bool converged = bp_.decode(syndrome);

    const std::vector<uint8_t>* errors = &bp_.hardDecision();
    if (converged) {
        ++stats_.bpConverged;
    } else {
        ++stats_.osdInvocations;
        if (osd_.decode(syndrome, bp_.posteriorLlr(), errorScratch_)) {
            errors = &errorScratch_;
        } else {
            // Syndrome outside the DEM column span; keep the BP guess.
            ++stats_.osdFailures;
        }
    }

    uint64_t obs = 0;
    for (size_t v = 0; v < errors->size(); ++v) {
        if ((*errors)[v])
            obs ^= dem_.mechanisms[v].observables;
    }
    return obs;
}

} // namespace cyclone
