/**
 * @file
 * AVX2 rung of the SIMD ladder: L = 4 and 8 (one ymm per variable).
 * Compiled into a table only when the build enables the x86 kernels;
 * the empty fallback keeps the factory linkable everywhere.
 */

#include "decoder/wave_kernels.h"

#ifdef CYCLONE_WAVE_KERNEL_AVX2

#include <cmath>
#include <cstdint>

#include <immintrin.h>

// Sign-bit packing via one vmovmskps on the bitcast predicate,
// replacing the portable OR-reduction loop (packSignBits in the .inl).
#define CYCLONE_WAVE_PACK_AVX 1

// The lane helpers pass/return wide generic vectors; they are
// force-inlined into the target("avx2") kernels, so the baseline-ABI
// warning about vector returns is moot.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// Scoped ISA for the hot kernels only: the rest of the library
// compiles for the baseline target, so no symbol shared with other
// TUs can smuggle AVX2 code into a binary that runs on a pre-AVX2
// CPU. The backend registry's supported() check gates every call.
#define CYCLONE_WAVE_KERNEL __attribute__((target("avx2")))
#include "decoder/wave_kernels.inl"

namespace cyclone {

const WaveKernelTable*
waveKernelTablesAvx2(size_t lanes)
{
    // Full-message min-sum: at ymm widths the message array is a
    // quarter the L = 16 size, and measured e2e throughput favors the
    // plain store over compression's per-edge decode.
    if (lanes == 8)
        return laneKernelTable<8, false>();
    if (lanes == 4)
        return laneKernelTable<4, false>();
    return nullptr;
}

} // namespace cyclone

#else // !CYCLONE_WAVE_KERNEL_AVX2

namespace cyclone {

const WaveKernelTable*
waveKernelTablesAvx2(size_t)
{
    return nullptr;
}

} // namespace cyclone

#endif
