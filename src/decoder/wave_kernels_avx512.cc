/**
 * @file
 * AVX-512 rung of the SIMD ladder: L = 16, one zmm per variable. The
 * generic-vector selects (`cond ? a : b` on 16-lane comparisons) lower
 * to __mmask16 compare + masked blends under this target, which is
 * what makes the frozen-lane message freeze and the two-smallest
 * tracking cheap at this width. Compiled into a table only when the
 * build enables the x86 AVX-512 kernels.
 */

#include "decoder/wave_kernels.h"

#ifdef CYCLONE_WAVE_KERNEL_AVX512

#include <cmath>
#include <cstdint>

#include <immintrin.h>

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// Sign-bit packing via vptestmd against a sign-bit splat: the mask
// lands directly in a k-register, replacing the portable OR-reduction
// loop (packSignBits in the .inl).
#define CYCLONE_WAVE_PACK_AVX512 1

// avx512f covers the 512-bit float/int arithmetic and mask blends;
// avx512bw the byte/word mask ops GCC picks for 16-lane integer
// selects. Deliberately no FMA contraction — same as the AVX2 rung —
// so every lane stays float-identical to the scalar decoder.
#define CYCLONE_WAVE_KERNEL __attribute__((target("avx512f,avx512bw")))
#include "decoder/wave_kernels.inl"

namespace cyclone {

const WaveKernelTable*
waveKernelTablesAvx512(size_t lanes)
{
    return lanes == 16 ? laneKernelTable<16, true>() : nullptr;
}

} // namespace cyclone

#else // !CYCLONE_WAVE_KERNEL_AVX512

namespace cyclone {

const WaveKernelTable*
waveKernelTablesAvx512(size_t)
{
    return nullptr;
}

} // namespace cyclone

#endif
