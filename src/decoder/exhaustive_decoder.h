/**
 * @file
 * Brute-force maximum-likelihood-ish decoder for tiny models.
 *
 * Enumerates error subsets up to a weight cap and returns the highest
 * probability subset reproducing the syndrome. Exponential; intended
 * only as a test oracle against BP+OSD on small codes.
 */

#ifndef CYCLONE_DECODER_EXHAUSTIVE_DECODER_H
#define CYCLONE_DECODER_EXHAUSTIVE_DECODER_H

#include "decoder/decoder.h"
#include "dem/dem.h"

namespace cyclone {

/** Exhaustive subset-enumeration decoder (test oracle). */
class ExhaustiveDecoder : public Decoder
{
  public:
    /**
     * @param dem model to decode against (kept by reference)
     * @param max_weight largest subset size to enumerate
     */
    ExhaustiveDecoder(const DetectorErrorModel& dem, size_t max_weight);

    uint64_t decode(const BitVec& syndrome) override;

    /** True if the last decode found a subset matching the syndrome. */
    bool lastDecodeMatched() const { return lastMatched_; }

  private:
    const DetectorErrorModel& dem_;
    size_t maxWeight_;
    bool lastMatched_ = false;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_EXHAUSTIVE_DECODER_H
