#include "decoder/decoder_backend.h"

#include <cstdlib>

namespace cyclone {

namespace {

bool
alwaysSupported()
{
    return true;
}

#if defined(CYCLONE_WAVE_KERNEL_AVX2)

bool
avx2Supported()
{
    return __builtin_cpu_supports("avx2");
}

#endif

#if defined(CYCLONE_WAVE_KERNEL_AVX512)

bool
avx512Supported()
{
    return __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw");
}

const DecoderBackend kAvx512Backend{
    "avx512", 16, &avx512Supported, &waveKernelTablesAvx512};

#endif

#if defined(CYCLONE_WAVE_KERNEL_AVX2)

const DecoderBackend kAvx2Backend{
    "avx2", 8, &avx2Supported, &waveKernelTablesAvx2};

#else

// Preferred width 8 matches the old default: 16 generic-vector lanes
// without an attributed kernel lower to poor code on most baselines
// and pay more frozen-lane waste per slow syndrome.
const DecoderBackend kGenericBackend{
    "generic", 8, &alwaysSupported, &waveKernelTablesGeneric};

#endif

const DecoderBackend kScalarBackend{
    "scalar", 1, &alwaysSupported, nullptr};

} // namespace

const std::vector<const DecoderBackend*>&
decoderBackendRegistry()
{
    static const std::vector<const DecoderBackend*> registry = [] {
        std::vector<const DecoderBackend*> r;
#if defined(CYCLONE_WAVE_KERNEL_AVX512)
        r.push_back(&kAvx512Backend);
#endif
#if defined(CYCLONE_WAVE_KERNEL_AVX2)
        r.push_back(&kAvx2Backend);
#else
        r.push_back(&kGenericBackend);
#endif
        r.push_back(&kScalarBackend);
        return r;
    }();
    return registry;
}

const DecoderBackend*
findDecoderBackend(std::string_view name)
{
    for (const DecoderBackend* b : decoderBackendRegistry()) {
        if (name == b->name)
            return b;
    }
    return nullptr;
}

size_t
backendLaneWidth(const DecoderBackend& backend, size_t requested)
{
    if (backend.kernels == nullptr)
        return 0;
    size_t cap = requested == 0 ? backend.preferredLanes : requested;
    if (cap < 4)
        cap = 4; // Requests below the narrowest kernel clamp up.
    size_t best = 0;
    for (const size_t w : {size_t{4}, size_t{8}, size_t{16}}) {
        if (w <= cap && backend.kernels(w) != nullptr)
            best = w;
    }
    return best;
}

DecoderBackendChoice
selectDecoderBackend(size_t requestedLanes)
{
    const auto& registry = decoderBackendRegistry();
    const DecoderBackend* scalar = registry.back();
    if (requestedLanes == 1)
        return {scalar, 1};

    if (const char* env = std::getenv(kWaveBackendEnv)) {
        const std::string_view forced(env);
        if (!forced.empty() && forced != "auto") {
            const DecoderBackend* b = findDecoderBackend(forced);
            if (b != nullptr && b->supported()) {
                if (b->kernels == nullptr)
                    return {b, 1};
                const size_t lanes =
                    backendLaneWidth(*b, requestedLanes);
                if (lanes > 1)
                    return {b, lanes};
            }
            // Unknown names, unsupported rungs and width-incompatible
            // forces fall through to auto dispatch: the override is a
            // throughput knob and must never strand a decode.
        }
    }

    for (const DecoderBackend* b : registry) {
        if (b->kernels == nullptr || !b->supported())
            continue;
        const size_t lanes = backendLaneWidth(*b, requestedLanes);
        if (lanes > 1)
            return {b, lanes};
    }
    return {scalar, 1};
}

} // namespace cyclone
