/**
 * @file
 * Shared Tanner-graph storage for the BP decoders.
 *
 * Both the scalar BpDecoder and the lane-parallel BpWaveDecoder walk
 * the same detector graph: a variable-side CSR (for the posterior
 * gather) and a check-side CSR (for the check-message pass and
 * syndrome verification), sharing edge ids through the var-CSR ->
 * check-CSR slot permutation. The graph is immutable after
 * construction, so one BpGraph is built per detector error model and
 * shared by every decoder view of it (BpOsdDecoder keeps one for its
 * scalar core and its wave kernel).
 */

#ifndef CYCLONE_DECODER_BP_GRAPH_H
#define CYCLONE_DECODER_BP_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dem/dem.h"

namespace cyclone {

/** Immutable CSR Tanner graph + priors of a detector error model. */
struct BpGraph
{
    explicit BpGraph(const DetectorErrorModel& dem);

    size_t numChecks = 0;
    size_t numVars = 0;
    size_t numEdges = 0;
    /** Largest check degree; sizes per-check scratch once, up front. */
    size_t maxCheckDegree = 0;

    /**
     * True when every mechanism's detector list is strictly
     * ascending (the DEM builder always emits sorted lists). Then a
     * variable's var-CSR edge order equals ascending check order, so
     * accumulating messages by streaming the check CSR adds the same
     * floats in the same order as gathering per variable — the wave
     * decoder's posterior pass uses the streaming (scatter) form,
     * which is markedly cheaper on multi-MB lane-major message
     * arrays.
     */
    bool varEdgesAscendByCheck = true;

    /** Prior LLR log((1-p)/p) per variable. */
    std::vector<float> prior;

    // Variable-side CSR: edges of var v are varOffset[v] ..
    // varOffset[v+1); checkSlotOfVarEdge maps each to its slot in the
    // check-side CSR (where the messages live).
    std::vector<size_t> varOffset;
    std::vector<uint32_t> checkSlotOfVarEdge;

    // Check-side CSR: edges of check c are checkOffset[c] ..
    // checkOffset[c+1), each naming its variable.
    std::vector<size_t> checkOffset;
    std::vector<uint32_t> checkEdgeVar;
    /** Inverse of checkOffset per slot: the check owning each
     *  check-CSR edge. Lets a per-variable gather decode compressed
     *  min-sum messages (which live per check) without a search. */
    std::vector<uint32_t> checkOfSlot;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_GRAPH_H
