/**
 * @file
 * Belief propagation over a detector error model.
 *
 * Checks are detectors, variables are error mechanisms. Supports
 * normalized min-sum (default; the variant used throughout the BP+OSD
 * literature) and product-sum updates. Decoding stops as soon as the
 * hard decision reproduces the syndrome.
 */

#ifndef CYCLONE_DECODER_BP_DECODER_H
#define CYCLONE_DECODER_BP_DECODER_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "dem/dem.h"

namespace cyclone {

/** BP configuration. */
struct BpOptions
{
    enum class Variant { MinSum, ProductSum };

    /**
     * Product-sum is the default: on the degenerate detector graphs
     * of qLDPC codes its posteriors feed OSD noticeably better coset
     * choices than min-sum (verified by the single-fault tests).
     */
    Variant variant = Variant::ProductSum;
    size_t maxIterations = 32;
    /** Normalization factor for min-sum check messages. */
    double minSumScale = 0.9;
    /** Message clamp magnitude. */
    double clamp = 50.0;
};

/** Belief-propagation decoder core. */
class BpDecoder
{
  public:
    BpDecoder(const DetectorErrorModel& dem, BpOptions options = {});

    /**
     * Run BP on a syndrome.
     *
     * @return true if the hard decision reproduces the syndrome
     *         (converged); the decision and posteriors are readable
     *         either way.
     */
    bool decode(const BitVec& syndrome);

    /** Hard decision per mechanism after the last decode. */
    const std::vector<uint8_t>& hardDecision() const { return hard_; }

    /** Posterior log-likelihood ratios after the last decode. */
    const std::vector<double>& posteriorLlr() const { return posterior_; }

    /** Iterations consumed by the last decode. */
    size_t lastIterations() const { return lastIterations_; }

    size_t numChecks() const { return numChecks_; }
    size_t numVars() const { return numVars_; }

  private:
    void varToCheckUpdate();
    void checkToVarUpdate(const BitVec& syndrome);
    bool hardDecisionMatches(const BitVec& syndrome);

    BpOptions options_;
    size_t numChecks_ = 0;
    size_t numVars_ = 0;

    std::vector<double> prior_;

    // Edge storage (CSR by variable and by check, sharing edge ids).
    std::vector<size_t> varOffset_;
    std::vector<uint32_t> varEdgeCheck_;   // check of edge, in var order
    std::vector<size_t> checkOffset_;
    std::vector<uint32_t> checkEdgeVar_;   // var of edge, in check order
    std::vector<uint32_t> varOrderOfCheckEdge_; // map check-CSR -> var-CSR

    std::vector<double> msgVarToCheck_;    // indexed in var-CSR order
    std::vector<double> msgCheckToVar_;    // indexed in var-CSR order

    std::vector<double> posterior_;
    std::vector<uint8_t> hard_;
    std::vector<double> tanhScratch_;
    size_t lastIterations_ = 0;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_DECODER_H
