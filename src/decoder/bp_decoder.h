/**
 * @file
 * Belief propagation over a detector error model.
 *
 * Checks are detectors, variables are error mechanisms. Supports
 * normalized min-sum (default; the variant used throughout the BP+OSD
 * literature) and product-sum updates. Decoding stops as soon as the
 * hard decision reproduces the syndrome.
 *
 * Message and posterior storage is flat structure-of-arrays float:
 * single precision halves the working set of the edge loops (the BP
 * inner loops are memory-bound on qLDPC detector graphs) and is far
 * more resolution than min-sum/product-sum message passing needs —
 * hard decisions only depend on signs and coarse magnitudes.
 */

#ifndef CYCLONE_DECODER_BP_DECODER_H
#define CYCLONE_DECODER_BP_DECODER_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "dem/dem.h"

namespace cyclone {

/** BP configuration. */
struct BpOptions
{
    enum class Variant { MinSum, ProductSum };

    /**
     * Product-sum is the default: on the degenerate detector graphs
     * of qLDPC codes its posteriors feed OSD noticeably better coset
     * choices than min-sum (verified by the single-fault tests).
     */
    Variant variant = Variant::ProductSum;
    size_t maxIterations = 32;
    /** Normalization factor for min-sum check messages. */
    double minSumScale = 0.9;
    /** Message clamp magnitude. */
    double clamp = 50.0;
};

/** Belief-propagation decoder core. */
class BpDecoder
{
  public:
    BpDecoder(const DetectorErrorModel& dem, BpOptions options = {});

    /**
     * Run BP on a syndrome.
     *
     * @return true if the hard decision reproduces the syndrome
     *         (converged); the decision and posteriors are readable
     *         either way.
     */
    bool decode(const BitVec& syndrome);

    /** Hard decision per mechanism after the last decode. */
    const std::vector<uint8_t>& hardDecision() const { return hard_; }

    /** Posterior log-likelihood ratios after the last decode. */
    const std::vector<float>& posteriorLlr() const { return posterior_; }

    /** Iterations consumed by the last decode. */
    size_t lastIterations() const { return lastIterations_; }

    size_t numChecks() const { return numChecks_; }
    size_t numVars() const { return numVars_; }

  private:
    void posteriorUpdate();
    void checkToVarUpdate(const BitVec& syndrome);
    bool syndromeMatches(const BitVec& syndrome) const;

    BpOptions options_;
    size_t numChecks_ = 0;
    size_t numVars_ = 0;
    float clamp_ = 50.0f;
    float minSumScale_ = 0.9f;

    std::vector<float> prior_;

    // Edge storage (CSR by variable and by check, sharing edge ids).
    std::vector<size_t> varOffset_;
    std::vector<uint32_t> varEdgeCheck_;   // check of edge, in var order
    std::vector<size_t> checkOffset_;
    std::vector<uint32_t> checkEdgeVar_;   // var of edge, in check order
    std::vector<uint32_t> checkSlotOfVarEdge_; // map var-CSR -> check-CSR

    // Only check-to-var messages are stored, in check-CSR order so the
    // check pass streams sequentially; the posterior pass gathers them
    // through checkSlotOfVarEdge_. The var-to-check message of an edge
    // is derived inside the check pass as
    // clamp(posterior[v] - msgCheckToVar_[slot]) — identical floats to
    // materializing it, at half the message-array traffic.
    std::vector<float> msgCheckToVar_;     // indexed in check-CSR order

    std::vector<float> posterior_;
    std::vector<uint8_t> hard_;
    std::vector<float> tanhScratch_;
    std::vector<float> msgScratch_;
    bool hardChanged_ = false;
    size_t lastIterations_ = 0;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_DECODER_H
