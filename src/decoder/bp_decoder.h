/**
 * @file
 * Belief propagation over a detector error model.
 *
 * Checks are detectors, variables are error mechanisms. Supports
 * normalized min-sum (default; the variant used throughout the BP+OSD
 * literature) and product-sum updates. Decoding stops as soon as the
 * hard decision reproduces the syndrome.
 *
 * Message and posterior storage is flat structure-of-arrays float:
 * single precision halves the working set of the edge loops (the BP
 * inner loops are memory-bound on qLDPC detector graphs) and is far
 * more resolution than min-sum/product-sum message passing needs —
 * hard decisions only depend on signs and coarse magnitudes. The hard
 * decision itself is bit-packed, so syndrome verification is a
 * word-parity sweep over the check CSR instead of a byte load per
 * edge.
 *
 * The Tanner graph lives in a shared immutable BpGraph so the scalar
 * decoder and the lane-parallel wave kernel (bp_wave_decoder.h) walk
 * the same CSR arrays.
 */

#ifndef CYCLONE_DECODER_BP_DECODER_H
#define CYCLONE_DECODER_BP_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "decoder/bp_graph.h"
#include "dem/dem.h"

namespace cyclone {

/** BP configuration. */
struct BpOptions
{
    enum class Variant { MinSum, ProductSum };

    /**
     * Product-sum is the default: on the degenerate detector graphs
     * of qLDPC codes its posteriors feed OSD noticeably better coset
     * choices than min-sum (verified by the single-fault tests).
     */
    Variant variant = Variant::ProductSum;
    size_t maxIterations = 32;
    /** Normalization factor for min-sum check messages. */
    double minSumScale = 0.9;
    /** Message clamp magnitude. */
    double clamp = 50.0;

    /**
     * Lane width of the batched wave kernel: 0 lets backend dispatch
     * pick the widest rung this host supports (L = 16 zmm on AVX-512,
     * L = 8 ymm on AVX2 — see decoder_backend.h), 1 disables the wave
     * kernel (the batch path decodes distinct syndromes one at a time
     * through the scalar core), and other values cap the dispatch at
     * the nearest supported width at or below. Purely a performance
     * knob — every
     * width produces bit-identical decodes (enforced by
     * tests/test_wave_decoder.cc), so it is deliberately excluded
     * from campaign content hashes.
     */
    size_t waveLanes = 0;

    /**
     * Batch the OSD stage of the wave pipeline: non-converged lanes
     * are collected across wave groups and handed to
     * OsdDecoder::solveBatch (shared eliminations + bit-sliced
     * multi-RHS back-substitution) instead of one scalar solve per
     * lane. Purely a performance knob — the batched stage is
     * bit-identical to per-shot OSD (enforced by
     * tests/test_decoder_fuzz.cc), so it is excluded from campaign
     * content hashes just like waveLanes.
     */
    bool osdBatch = true;
};

/** Belief-propagation decoder core. */
class BpDecoder
{
  public:
    BpDecoder(const DetectorErrorModel& dem, BpOptions options = {});

    /** Share a prebuilt graph (one per DEM, many decoder views). */
    BpDecoder(std::shared_ptr<const BpGraph> graph,
              BpOptions options = {});

    /**
     * Run BP on a syndrome.
     *
     * @return true if the hard decision reproduces the syndrome
     *         (converged); the decision and posteriors are readable
     *         either way.
     */
    bool decode(const BitVec& syndrome);

    /** Bit-packed hard decision per mechanism after the last decode. */
    const BitVec& hardDecision() const { return hard_; }

    /** Posterior log-likelihood ratios after the last decode. */
    const std::vector<float>& posteriorLlr() const { return posterior_; }

    /** Iterations consumed by the last decode. */
    size_t lastIterations() const { return lastIterations_; }

    size_t numChecks() const { return graph_->numChecks; }
    size_t numVars() const { return graph_->numVars; }

    const std::shared_ptr<const BpGraph>& graph() const { return graph_; }

  private:
    void posteriorUpdate();
    void checkToVarUpdate(const BitVec& syndrome);
    bool syndromeMatches(const BitVec& syndrome) const;

    std::shared_ptr<const BpGraph> graph_;
    BpOptions options_;
    float clamp_ = 50.0f;
    float minSumScale_ = 0.9f;

    // Only check-to-var messages are stored, in check-CSR order so the
    // check pass streams sequentially; the posterior pass gathers them
    // through graph_->checkSlotOfVarEdge. The var-to-check message of
    // an edge is derived inside the check pass as
    // clamp(posterior[v] - msgCheckToVar_[slot]) — identical floats to
    // materializing it, at half the message-array traffic.
    std::vector<float> msgCheckToVar_;     // indexed in check-CSR order

    std::vector<float> posterior_;
    BitVec hard_;
    std::vector<float> tanhScratch_;
    std::vector<float> msgScratch_;
    bool hardChanged_ = false;
    size_t lastIterations_ = 0;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_BP_DECODER_H
