#include "decoder/bp_graph.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

BpGraph::BpGraph(const DetectorErrorModel& dem)
    : numChecks(dem.numDetectors), numVars(dem.mechanisms.size())
{
    prior.resize(numVars);
    std::vector<size_t> check_degree(numChecks, 0);

    varOffset.assign(numVars + 1, 0);
    for (size_t v = 0; v < numVars; ++v) {
        const DemMechanism& m = dem.mechanisms[v];
        double p = std::clamp(m.probability, 1e-14, 1.0 - 1e-14);
        prior[v] = static_cast<float>(std::log((1.0 - p) / p));
        varOffset[v + 1] = varOffset[v] + m.detectors.size();
        for (size_t j = 0; j < m.detectors.size(); ++j) {
            const uint32_t d = m.detectors[j];
            CYCLONE_ASSERT(d < numChecks, "mechanism detector "
                           << d << " out of range");
            ++check_degree[d];
            if (j > 0 && m.detectors[j - 1] >= d)
                varEdgesAscendByCheck = false;
        }
    }
    numEdges = varOffset.back();

    checkOffset.assign(numChecks + 1, 0);
    for (size_t c = 0; c < numChecks; ++c) {
        checkOffset[c + 1] = checkOffset[c] + check_degree[c];
        maxCheckDegree = std::max(maxCheckDegree, check_degree[c]);
    }

    checkOfSlot.resize(numEdges);
    for (size_t c = 0; c < numChecks; ++c) {
        for (size_t s = checkOffset[c]; s < checkOffset[c + 1]; ++s)
            checkOfSlot[s] = static_cast<uint32_t>(c);
    }

    // Fill the check-side CSR in var order, recording each var-side
    // edge's check-side slot as it lands.
    checkEdgeVar.resize(numEdges);
    checkSlotOfVarEdge.resize(numEdges);
    std::vector<size_t> check_cursor(numChecks, 0);
    for (size_t v = 0; v < numVars; ++v) {
        const DemMechanism& m = dem.mechanisms[v];
        for (size_t j = 0; j < m.detectors.size(); ++j) {
            const uint32_t c = m.detectors[j];
            const size_t slot = checkOffset[c] + check_cursor[c]++;
            checkEdgeVar[slot] = static_cast<uint32_t>(v);
            checkSlotOfVarEdge[varOffset[v] + j] =
                static_cast<uint32_t>(slot);
        }
    }
}

} // namespace cyclone
