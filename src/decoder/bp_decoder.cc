#include "decoder/bp_decoder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

BpDecoder::BpDecoder(const DetectorErrorModel& dem, BpOptions options)
    : options_(options), numChecks_(dem.numDetectors),
      numVars_(dem.mechanisms.size()),
      clamp_(static_cast<float>(options.clamp)),
      minSumScale_(static_cast<float>(options.minSumScale))
{
    prior_.resize(numVars_);
    std::vector<std::vector<uint32_t>> check_vars(numChecks_);

    varOffset_.assign(numVars_ + 1, 0);
    for (size_t v = 0; v < numVars_; ++v) {
        const DemMechanism& m = dem.mechanisms[v];
        double p = std::clamp(m.probability, 1e-14, 1.0 - 1e-14);
        prior_[v] = static_cast<float>(std::log((1.0 - p) / p));
        varOffset_[v + 1] = varOffset_[v] + m.detectors.size();
        for (uint32_t d : m.detectors) {
            CYCLONE_ASSERT(d < numChecks_, "mechanism detector "
                           << d << " out of range");
            check_vars[d].push_back(static_cast<uint32_t>(v));
        }
    }
    const size_t num_edges = varOffset_.back();
    varEdgeCheck_.resize(num_edges);
    {
        std::vector<size_t> cursor(numVars_, 0);
        for (size_t v = 0; v < numVars_; ++v) {
            const DemMechanism& m = dem.mechanisms[v];
            for (size_t j = 0; j < m.detectors.size(); ++j)
                varEdgeCheck_[varOffset_[v] + j] = m.detectors[j];
        }
    }

    // Check-side CSR with the var-CSR -> check-CSR slot permutation.
    checkOffset_.assign(numChecks_ + 1, 0);
    for (size_t c = 0; c < numChecks_; ++c)
        checkOffset_[c + 1] = checkOffset_[c] + check_vars[c].size();
    checkEdgeVar_.resize(num_edges);
    checkSlotOfVarEdge_.resize(num_edges);
    {
        std::vector<size_t> check_cursor(numChecks_, 0);
        for (size_t v = 0; v < numVars_; ++v) {
            for (size_t e = varOffset_[v]; e < varOffset_[v + 1]; ++e) {
                const uint32_t c = varEdgeCheck_[e];
                const size_t slot = checkOffset_[c] + check_cursor[c]++;
                checkEdgeVar_[slot] = static_cast<uint32_t>(v);
                checkSlotOfVarEdge_[e] = static_cast<uint32_t>(slot);
            }
        }
    }

    msgCheckToVar_.assign(num_edges, 0.0f);
    posterior_.assign(numVars_, 0.0f);
    hard_.assign(numVars_, 0);
}

void
BpDecoder::posteriorUpdate()
{
    // The hard decision is maintained inline (it is just the posterior
    // sign); hardChanged_ lets decode() skip the O(edges) syndrome
    // verification on iterations where no decision bit moved — the
    // verification result could not differ from the previous one.
    bool changed = false;
    for (size_t v = 0; v < numVars_; ++v) {
        float total = prior_[v];
        for (size_t e = varOffset_[v]; e < varOffset_[v + 1]; ++e)
            total += msgCheckToVar_[checkSlotOfVarEdge_[e]];
        posterior_[v] = total;
        const uint8_t bit = total < 0.0f ? 1 : 0;
        changed |= bit != hard_[v];
        hard_[v] = bit;
    }
    hardChanged_ = changed;
}

void
BpDecoder::checkToVarUpdate(const BitVec& syndrome)
{
    const bool min_sum = options_.variant == BpOptions::Variant::MinSum;
    for (size_t c = 0; c < numChecks_; ++c) {
        const size_t begin = checkOffset_[c];
        const size_t end = checkOffset_[c + 1];
        const float syndrome_sign = syndrome.get(c) ? -1.0f : 1.0f;
        // Materialize this check's incoming var-to-check messages into
        // sequential scratch: clamp(posterior - last outgoing message)
        // is float-identical to a stored var-pass message, and the
        // edge's old outgoing value is only overwritten below, after
        // every gather for this check has read it.
        if (msgScratch_.size() < end - begin)
            msgScratch_.resize(end - begin);
        for (size_t s = begin; s < end; ++s) {
            const float total = posterior_[checkEdgeVar_[s]];
            msgScratch_[s - begin] = std::clamp(
                total - msgCheckToVar_[s], -clamp_, clamp_);
        }
        if (min_sum) {
            // Track the two smallest magnitudes and the sign product.
            float min1 = 3.0e38f, min2 = 3.0e38f;
            size_t argmin = begin;
            float sign_product = syndrome_sign;
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                const float mag = std::fabs(m);
                if (m < 0.0f)
                    sign_product = -sign_product;
                if (mag < min1) {
                    min2 = min1;
                    min1 = mag;
                    argmin = s;
                } else if (mag < min2) {
                    min2 = mag;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                const float mag = s == argmin ? min2 : min1;
                const float sign =
                    sign_product * (m < 0.0f ? -1.0f : 1.0f);
                msgCheckToVar_[s] =
                    sign * minSumScale_ * mag;
            }
        } else {
            // Product-sum via the two-pass tanh-product trick: one
            // running product, then one division and one log per edge
            // (2 atanh(x) = log((1+x)/(1-x))).
            float prod = 1.0f;
            int zero_count = 0;
            size_t zero_slot = begin;
            float sign_product = syndrome_sign;
            if (tanhScratch_.size() < end - begin)
                tanhScratch_.resize(end - begin);
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                if (m < 0.0f)
                    sign_product = -sign_product;
                const float t = std::tanh(std::fabs(m) * 0.5f);
                tanhScratch_[s - begin] = t;
                if (t < 1e-12f) {
                    ++zero_count;
                    zero_slot = s;
                } else {
                    prod *= t;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                float out;
                if (zero_count > 1 || (zero_count == 1 && s != zero_slot)) {
                    out = 0.0f;
                } else {
                    float t_other = prod;
                    if (zero_count == 0) {
                        t_other = prod /
                            std::max(tanhScratch_[s - begin], 1e-12f);
                    }
                    // One float ulp below 1: keeps the log finite.
                    t_other = std::min(t_other, 1.0f - 6.0e-8f);
                    out = std::log((1.0f + t_other) / (1.0f - t_other));
                }
                const float sign =
                    sign_product * (m < 0.0f ? -1.0f : 1.0f);
                msgCheckToVar_[s] = std::clamp(
                    sign * out, -clamp_, clamp_);
            }
        }
    }
}

bool
BpDecoder::syndromeMatches(const BitVec& syndrome) const
{
    // Verify H e == syndrome for the current hard decision.
    for (size_t c = 0; c < numChecks_; ++c) {
        bool parity = false;
        for (size_t s = checkOffset_[c]; s < checkOffset_[c + 1]; ++s)
            parity ^= hard_[checkEdgeVar_[s]] != 0;
        if (parity != syndrome.get(c))
            return false;
    }
    return true;
}

bool
BpDecoder::decode(const BitVec& syndrome)
{
    CYCLONE_ASSERT(syndrome.size() == numChecks_,
                   "syndrome length mismatch: " << syndrome.size()
                   << " vs " << numChecks_);
    std::fill(msgCheckToVar_.begin(), msgCheckToVar_.end(), 0.0f);
    std::fill(hard_.begin(), hard_.end(), 0);
    bool verified = false;
    for (size_t iter = 0; iter < options_.maxIterations; ++iter) {
        posteriorUpdate();
        // Posterior from the previous half-iteration is already
        // available; test convergence before the check update to catch
        // the trivial all-zero syndrome in one pass. When no decision
        // bit moved the verification result cannot have changed, so
        // the previous (failed) answer is reused.
        if (iter == 0 || hardChanged_)
            verified = syndromeMatches(syndrome);
        if (verified) {
            lastIterations_ = iter;
            return true;
        }
        checkToVarUpdate(syndrome);
    }
    posteriorUpdate();
    lastIterations_ = options_.maxIterations;
    // With maxIterations == 0 the loop never evaluated the syndrome;
    // otherwise re-verify only if a decision bit moved since the last
    // (failed) check.
    if (hardChanged_ || options_.maxIterations == 0)
        verified = syndromeMatches(syndrome);
    return verified;
}

} // namespace cyclone
