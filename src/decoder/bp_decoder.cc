#include "decoder/bp_decoder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

BpDecoder::BpDecoder(const DetectorErrorModel& dem, BpOptions options)
    : BpDecoder(std::make_shared<const BpGraph>(dem), options)
{}

BpDecoder::BpDecoder(std::shared_ptr<const BpGraph> graph,
                     BpOptions options)
    : graph_(std::move(graph)), options_(options),
      clamp_(static_cast<float>(options.clamp)),
      minSumScale_(static_cast<float>(options.minSumScale))
{
    msgCheckToVar_.assign(graph_->numEdges, 0.0f);
    posterior_.assign(graph_->numVars, 0.0f);
    hard_.resize(graph_->numVars);
    // Per-check scratch is bounded by the largest check degree; size
    // it once here so the check pass never reallocates.
    msgScratch_.resize(graph_->maxCheckDegree);
    tanhScratch_.resize(graph_->maxCheckDegree);
}

void
BpDecoder::posteriorUpdate()
{
    // The hard decision is maintained inline (it is just the posterior
    // sign), packed 64 variables per word; hardChanged_ lets decode()
    // skip the O(edges) syndrome verification on iterations where no
    // decision bit moved — the verification result could not differ
    // from the previous one. Change detection is word-granular: a
    // word compare per 64 variables instead of a byte compare per
    // variable.
    const BpGraph& g = *graph_;
    bool changed = false;
    uint64_t* hard_words = hard_.words().data();
    uint64_t word = 0;
    for (size_t v = 0; v < g.numVars; ++v) {
        float total = g.prior[v];
        for (size_t e = g.varOffset[v]; e < g.varOffset[v + 1]; ++e)
            total += msgCheckToVar_[g.checkSlotOfVarEdge[e]];
        posterior_[v] = total;
        word |= uint64_t{total < 0.0f} << (v & 63);
        if ((v & 63) == 63) {
            changed |= word != hard_words[v >> 6];
            hard_words[v >> 6] = word;
            word = 0;
        }
    }
    if (g.numVars & 63) {
        const size_t w = g.numVars >> 6;
        changed |= word != hard_words[w];
        hard_words[w] = word;
    }
    hardChanged_ = changed;
}

void
BpDecoder::checkToVarUpdate(const BitVec& syndrome)
{
    const BpGraph& g = *graph_;
    const bool min_sum = options_.variant == BpOptions::Variant::MinSum;
    for (size_t c = 0; c < g.numChecks; ++c) {
        const size_t begin = g.checkOffset[c];
        const size_t end = g.checkOffset[c + 1];
        const float syndrome_sign = syndrome.get(c) ? -1.0f : 1.0f;
        // Materialize this check's incoming var-to-check messages into
        // sequential scratch: clamp(posterior - last outgoing message)
        // is float-identical to a stored var-pass message, and the
        // edge's old outgoing value is only overwritten below, after
        // every gather for this check has read it.
        for (size_t s = begin; s < end; ++s) {
            const float total = posterior_[g.checkEdgeVar[s]];
            msgScratch_[s - begin] = std::clamp(
                total - msgCheckToVar_[s], -clamp_, clamp_);
        }
        if (min_sum) {
            // Track the two smallest magnitudes and the sign product.
            float min1 = 3.0e38f, min2 = 3.0e38f;
            size_t argmin = begin;
            float sign_product = syndrome_sign;
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                const float mag = std::fabs(m);
                if (m < 0.0f)
                    sign_product = -sign_product;
                if (mag < min1) {
                    min2 = min1;
                    min1 = mag;
                    argmin = s;
                } else if (mag < min2) {
                    min2 = mag;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                const float mag = s == argmin ? min2 : min1;
                const float sign =
                    sign_product * (m < 0.0f ? -1.0f : 1.0f);
                msgCheckToVar_[s] =
                    sign * minSumScale_ * mag;
            }
        } else {
            // Product-sum via the two-pass tanh-product trick: one
            // running product, then one division and one log per edge
            // (2 atanh(x) = log((1+x)/(1-x))).
            float prod = 1.0f;
            int zero_count = 0;
            size_t zero_slot = begin;
            float sign_product = syndrome_sign;
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                if (m < 0.0f)
                    sign_product = -sign_product;
                const float t = std::tanh(std::fabs(m) * 0.5f);
                tanhScratch_[s - begin] = t;
                if (t < 1e-12f) {
                    ++zero_count;
                    zero_slot = s;
                } else {
                    prod *= t;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const float m = msgScratch_[s - begin];
                float out;
                if (zero_count > 1 || (zero_count == 1 && s != zero_slot)) {
                    out = 0.0f;
                } else {
                    float t_other = prod;
                    if (zero_count == 0) {
                        t_other = prod /
                            std::max(tanhScratch_[s - begin], 1e-12f);
                    }
                    // One float ulp below 1: keeps the log finite.
                    t_other = std::min(t_other, 1.0f - 6.0e-8f);
                    out = std::log((1.0f + t_other) / (1.0f - t_other));
                }
                const float sign =
                    sign_product * (m < 0.0f ? -1.0f : 1.0f);
                msgCheckToVar_[s] = std::clamp(
                    sign * out, -clamp_, clamp_);
            }
        }
    }
}

bool
BpDecoder::syndromeMatches(const BitVec& syndrome) const
{
    // Verify H e == syndrome for the current hard decision: check
    // parities are gathered bit-wise from the packed decision and
    // compared one 64-check word at a time.
    const BpGraph& g = *graph_;
    const uint64_t* hard_words = hard_.words().data();
    const uint64_t* syndrome_words = syndrome.words().data();
    uint64_t word = 0;
    for (size_t c = 0; c < g.numChecks; ++c) {
        uint64_t parity = 0;
        for (size_t s = g.checkOffset[c]; s < g.checkOffset[c + 1];
             ++s) {
            const uint32_t v = g.checkEdgeVar[s];
            parity ^= hard_words[v >> 6] >> (v & 63);
        }
        word |= (parity & 1) << (c & 63);
        if ((c & 63) == 63) {
            if (word != syndrome_words[c >> 6])
                return false;
            word = 0;
        }
    }
    if (g.numChecks & 63)
        return word == syndrome_words[g.numChecks >> 6];
    return true;
}

bool
BpDecoder::decode(const BitVec& syndrome)
{
    CYCLONE_ASSERT(syndrome.size() == graph_->numChecks,
                   "syndrome length mismatch: " << syndrome.size()
                   << " vs " << graph_->numChecks);
    std::fill(msgCheckToVar_.begin(), msgCheckToVar_.end(), 0.0f);
    hard_.clear();
    bool verified = false;
    for (size_t iter = 0; iter < options_.maxIterations; ++iter) {
        posteriorUpdate();
        // Posterior from the previous half-iteration is already
        // available; test convergence before the check update to catch
        // the trivial all-zero syndrome in one pass. When no decision
        // bit moved the verification result cannot have changed, so
        // the previous (failed) answer is reused.
        if (iter == 0 || hardChanged_)
            verified = syndromeMatches(syndrome);
        if (verified) {
            lastIterations_ = iter;
            return true;
        }
        checkToVarUpdate(syndrome);
    }
    posteriorUpdate();
    lastIterations_ = options_.maxIterations;
    // With maxIterations == 0 the loop never evaluated the syndrome;
    // otherwise re-verify only if a decision bit moved since the last
    // (failed) check.
    if (hardChanged_ || options_.maxIterations == 0)
        verified = syndromeMatches(syndrome);
    return verified;
}

} // namespace cyclone
