#include "decoder/bp_decoder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

BpDecoder::BpDecoder(const DetectorErrorModel& dem, BpOptions options)
    : options_(options), numChecks_(dem.numDetectors),
      numVars_(dem.mechanisms.size())
{
    prior_.resize(numVars_);
    std::vector<std::vector<uint32_t>> check_vars(numChecks_);

    varOffset_.assign(numVars_ + 1, 0);
    for (size_t v = 0; v < numVars_; ++v) {
        const DemMechanism& m = dem.mechanisms[v];
        double p = std::clamp(m.probability, 1e-14, 1.0 - 1e-14);
        prior_[v] = std::log((1.0 - p) / p);
        varOffset_[v + 1] = varOffset_[v] + m.detectors.size();
        for (uint32_t d : m.detectors) {
            CYCLONE_ASSERT(d < numChecks_, "mechanism detector "
                           << d << " out of range");
            check_vars[d].push_back(static_cast<uint32_t>(v));
        }
    }
    const size_t num_edges = varOffset_.back();
    varEdgeCheck_.resize(num_edges);
    {
        std::vector<size_t> cursor(numVars_, 0);
        for (size_t v = 0; v < numVars_; ++v) {
            const DemMechanism& m = dem.mechanisms[v];
            for (size_t j = 0; j < m.detectors.size(); ++j)
                varEdgeCheck_[varOffset_[v] + j] = m.detectors[j];
        }
    }

    // Check-side CSR with a mapping back to var-CSR edge slots.
    checkOffset_.assign(numChecks_ + 1, 0);
    for (size_t c = 0; c < numChecks_; ++c)
        checkOffset_[c + 1] = checkOffset_[c] + check_vars[c].size();
    checkEdgeVar_.resize(num_edges);
    varOrderOfCheckEdge_.resize(num_edges);
    {
        std::vector<size_t> var_cursor(numVars_, 0);
        std::vector<size_t> check_cursor(numChecks_, 0);
        for (size_t v = 0; v < numVars_; ++v) {
            for (size_t e = varOffset_[v]; e < varOffset_[v + 1]; ++e) {
                const uint32_t c = varEdgeCheck_[e];
                const size_t slot = checkOffset_[c] + check_cursor[c]++;
                checkEdgeVar_[slot] = static_cast<uint32_t>(v);
                varOrderOfCheckEdge_[slot] = static_cast<uint32_t>(e);
            }
        }
    }

    msgVarToCheck_.assign(num_edges, 0.0);
    msgCheckToVar_.assign(num_edges, 0.0);
    posterior_.assign(numVars_, 0.0);
    hard_.assign(numVars_, 0);
}

void
BpDecoder::varToCheckUpdate()
{
    for (size_t v = 0; v < numVars_; ++v) {
        double total = prior_[v];
        for (size_t e = varOffset_[v]; e < varOffset_[v + 1]; ++e)
            total += msgCheckToVar_[e];
        posterior_[v] = total;
        for (size_t e = varOffset_[v]; e < varOffset_[v + 1]; ++e) {
            double msg = total - msgCheckToVar_[e];
            msg = std::clamp(msg, -options_.clamp, options_.clamp);
            msgVarToCheck_[e] = msg;
        }
    }
}

void
BpDecoder::checkToVarUpdate(const BitVec& syndrome)
{
    const bool min_sum = options_.variant == BpOptions::Variant::MinSum;
    for (size_t c = 0; c < numChecks_; ++c) {
        const size_t begin = checkOffset_[c];
        const size_t end = checkOffset_[c + 1];
        const double syndrome_sign = syndrome.get(c) ? -1.0 : 1.0;
        if (min_sum) {
            // Track the two smallest magnitudes and the sign product.
            double min1 = 1e300, min2 = 1e300;
            size_t argmin = begin;
            double sign_product = syndrome_sign;
            for (size_t s = begin; s < end; ++s) {
                const double m = msgVarToCheck_[varOrderOfCheckEdge_[s]];
                const double mag = std::fabs(m);
                if (m < 0.0)
                    sign_product = -sign_product;
                if (mag < min1) {
                    min2 = min1;
                    min1 = mag;
                    argmin = s;
                } else if (mag < min2) {
                    min2 = mag;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const double m = msgVarToCheck_[varOrderOfCheckEdge_[s]];
                const double mag = s == argmin ? min2 : min1;
                double sign = sign_product * (m < 0.0 ? -1.0 : 1.0);
                msgCheckToVar_[varOrderOfCheckEdge_[s]] =
                    sign * options_.minSumScale * mag;
            }
        } else {
            // Product-sum via the two-pass tanh-product trick: one
            // running product, then one division and one log per edge
            // (2 atanh(x) = log((1+x)/(1-x))).
            double prod = 1.0;
            int zero_count = 0;
            size_t zero_slot = begin;
            double sign_product = syndrome_sign;
            if (tanhScratch_.size() < end - begin)
                tanhScratch_.resize(end - begin);
            for (size_t s = begin; s < end; ++s) {
                const double m = msgVarToCheck_[varOrderOfCheckEdge_[s]];
                if (m < 0.0)
                    sign_product = -sign_product;
                double t = std::tanh(std::fabs(m) / 2.0);
                tanhScratch_[s - begin] = t;
                if (t < 1e-12) {
                    ++zero_count;
                    zero_slot = s;
                } else {
                    prod *= t;
                }
            }
            for (size_t s = begin; s < end; ++s) {
                const double m = msgVarToCheck_[varOrderOfCheckEdge_[s]];
                double out;
                if (zero_count > 1 || (zero_count == 1 && s != zero_slot)) {
                    out = 0.0;
                } else {
                    double t_other = prod;
                    if (zero_count == 0) {
                        t_other = prod /
                            std::max(tanhScratch_[s - begin], 1e-12);
                    }
                    t_other = std::min(t_other, 1.0 - 1e-14);
                    out = std::log((1.0 + t_other) / (1.0 - t_other));
                }
                const double sign =
                    sign_product * (m < 0.0 ? -1.0 : 1.0);
                msgCheckToVar_[varOrderOfCheckEdge_[s]] = std::clamp(
                    sign * out, -options_.clamp, options_.clamp);
            }
        }
    }
}

bool
BpDecoder::hardDecisionMatches(const BitVec& syndrome)
{
    for (size_t v = 0; v < numVars_; ++v)
        hard_[v] = posterior_[v] < 0.0 ? 1 : 0;
    // Verify H e == syndrome.
    for (size_t c = 0; c < numChecks_; ++c) {
        bool parity = false;
        for (size_t s = checkOffset_[c]; s < checkOffset_[c + 1]; ++s)
            parity ^= hard_[checkEdgeVar_[s]] != 0;
        if (parity != syndrome.get(c))
            return false;
    }
    return true;
}

bool
BpDecoder::decode(const BitVec& syndrome)
{
    CYCLONE_ASSERT(syndrome.size() == numChecks_,
                   "syndrome length mismatch: " << syndrome.size()
                   << " vs " << numChecks_);
    std::fill(msgCheckToVar_.begin(), msgCheckToVar_.end(), 0.0);
    for (size_t iter = 0; iter < options_.maxIterations; ++iter) {
        varToCheckUpdate();
        // Posterior from the previous half-iteration is already
        // available; test convergence before the check update to catch
        // the trivial all-zero syndrome in one pass.
        if (hardDecisionMatches(syndrome)) {
            lastIterations_ = iter;
            return true;
        }
        checkToVarUpdate(syndrome);
    }
    varToCheckUpdate();
    lastIterations_ = options_.maxIterations;
    return hardDecisionMatches(syndrome);
}

} // namespace cyclone
