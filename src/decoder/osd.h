/**
 * @file
 * Ordered statistics decoding: OSD-0 plus an order-lambda single-flip
 * sweep (OSD-E / combination-sweep in the BP+OSD literature).
 *
 * Given BP posteriors, mechanisms are sorted most-likely-flipped first
 * and Gaussian elimination over that order selects the most-reliable
 * information set. The OSD-0 solution is the unique correction
 * supported on that set. Because BP posteriors can tie on degenerate
 * qLDPC errors, OSD-0 alone sometimes lands in the wrong logical
 * coset; the order-lambda sweep additionally considers solutions that
 * include one of the first lambda non-pivot columns and keeps the most
 * probable candidate. This is the standard post-processor that makes
 * BP usable on qLDPC codes (Panteleev & Kalachev; Roffe et al.), as
 * used by the decoders the paper cites for BB and HGP codes.
 */

#ifndef CYCLONE_DECODER_OSD_H
#define CYCLONE_DECODER_OSD_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "dem/dem.h"

namespace cyclone {

/** OSD post-processor over a detector error model. */
class OsdDecoder
{
  public:
    /**
     * @param dem model to decode against (kept by reference)
     * @param order number of non-pivot columns swept by the
     *        order-lambda stage (0 = plain OSD-0)
     */
    explicit OsdDecoder(const DetectorErrorModel& dem,
                        size_t order = 60);

    /**
     * Solve H e = syndrome with support restricted to the most
     * reliable basis (plus at most one swept column).
     *
     * @param syndrome detector outcomes
     * @param posterior_llr per-mechanism posterior LLRs from BP
     *        (lower = more likely in error; ties broken by index so
     *        the elimination order is deterministic)
     * @param[out] errors hard decision per mechanism
     * @return true if a solution was found (always, for syndromes in
     *         the column span of the DEM)
     */
    bool decode(const BitVec& syndrome,
                const std::vector<float>& posterior_llr,
                std::vector<uint8_t>& errors);

    /** Column rank discovered so far (fixed after the first decode). */
    size_t discoveredRank() const { return rank_; }

  private:
    const DetectorErrorModel& dem_;
    size_t order_;
    size_t words_ = 0;
    size_t rank_ = 0;        ///< 0 until first full elimination.
    bool rankKnown_ = false;

    // Scratch reused across calls (one decoder per thread); all flat
    // so the elimination allocates nothing after the first decode.
    // Candidate columns are consumed lazily from a (llr, index)
    // min-heap: pops follow exactly the sorted reliability order, but
    // once the rank is known only the few hundred columns the
    // elimination actually inspects are ordered, not all mechanisms.
    std::vector<std::pair<float, uint32_t>> heap_;
    std::vector<uint64_t> colScratch_;
    std::vector<uint64_t> augScratch_;
    std::vector<uint64_t> pivotCols_;  ///< words_ per pivot slot.
    std::vector<uint64_t> pivotAugs_;  ///< augWords() per pivot slot.
    std::vector<uint32_t> pivotVar_;
    std::vector<uint32_t> pivotByRow_;
    std::vector<uint32_t> rejectVar_;
    std::vector<uint64_t> rejectAugs_; ///< augWords() per reject slot.
    std::vector<uint64_t> residual_;
    std::vector<uint64_t> baseAug_;
    std::vector<uint64_t> candidateAug_;
    std::vector<uint64_t> sweepAug_;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_OSD_H
