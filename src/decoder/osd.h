/**
 * @file
 * Ordered statistics decoding: OSD-0 plus an order-lambda single-flip
 * sweep (OSD-E / combination-sweep in the BP+OSD literature).
 *
 * Given BP posteriors, mechanisms are sorted most-likely-flipped first
 * and Gaussian elimination over that order selects the most-reliable
 * information set. The OSD-0 solution is the unique correction
 * supported on that set. Because BP posteriors can tie on degenerate
 * qLDPC errors, OSD-0 alone sometimes lands in the wrong logical
 * coset; the order-lambda sweep additionally considers solutions that
 * include one of the first lambda non-pivot columns and keeps the most
 * probable candidate. This is the standard post-processor that makes
 * BP usable on qLDPC codes (Panteleev & Kalachev; Roffe et al.), as
 * used by the decoders the paper cites for BB and HGP codes.
 *
 * Two entry points share one decoder:
 *
 *  - decode(): the original per-shot scalar path, kept as the
 *    reference implementation (and the fallback of the per-shot
 *    pipeline).
 *  - solveBatch(): the batched path of the wave pipeline. Shots whose
 *    reliability orderings share the full inspected column-permutation
 *    prefix are grouped behind one shared GF(2) elimination, and each
 *    group's syndromes are back-substituted together in bit-sliced
 *    multi-RHS form (up to 64 syndromes packed per machine word,
 *    mirroring ShotBatch's shot-per-bit layout). Group membership is
 *    opportunistic — distinct posteriors rarely match — so the batch
 *    core also carries a leaner elimination than the scalar path: a
 *    stable radix sort on the float bit pattern instead of a lazy
 *    heap, column-only reduction with a hit list once the reject
 *    quota is full, first-set-bit scan hints, and a bit-sliced dual
 *    (left-nullspace) basis that filters the long dependent tail at a
 *    few word XORs per candidate. None of that changes any result:
 *    the pivot/reject choice is a pure function of the reliability
 *    permutation (lowest LLR first, ties by index) and the scoring
 *    loops run in the scalar order, so solveBatch is bit-identical to
 *    per-shot decode() — the contract tests/test_decoder_fuzz.cc
 *    enforces.
 */

#ifndef CYCLONE_DECODER_OSD_H
#define CYCLONE_DECODER_OSD_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "dem/dem.h"

namespace cyclone {

/** One non-converged shot handed to the batched OSD stage. */
struct OsdShotRequest
{
    /** Detector outcomes (numDetectors bits). */
    const BitVec* syndrome = nullptr;
    /** Per-mechanism posterior LLRs from BP (numMechanisms floats). */
    const float* posteriorLlr = nullptr;
};

/** Counters of one solveBatch call. */
struct OsdBatchStats
{
    /** Shared eliminations performed (one per ordering group). */
    size_t groups = 0;
    /** Shots that rode a leader's elimination instead of their own. */
    size_t groupedShots = 0;
    /** Pivot slots replayed from a leader (rank x grouped shots). */
    size_t sharedPivots = 0;
    /** Reliability sorts served by the incremental re-rank path (a
     *  changed-key merge into the previous shot's sorted order)
     *  instead of a full radix sort. */
    size_t incrementalSorts = 0;
};

/** Outcome of one solveBatch call; storage reusable across calls. */
struct OsdBatchResult
{
    /** Per shot: 1 if a solution was found (syndrome in column span). */
    std::vector<uint8_t> ok;
    /** Concatenated flipped-mechanism indices of all shots. */
    std::vector<uint32_t> flips;
    /** count+1 offsets into flips (shot i owns [i], [i+1]). */
    std::vector<size_t> flipOffsets;
    OsdBatchStats stats;
};

/** OSD post-processor over a detector error model. */
class OsdDecoder
{
  public:
    /**
     * @param dem model to decode against (kept by reference)
     * @param order number of non-pivot columns swept by the
     *        order-lambda stage (0 = plain OSD-0)
     */
    explicit OsdDecoder(const DetectorErrorModel& dem,
                        size_t order = 60);

    /**
     * Solve H e = syndrome with support restricted to the most
     * reliable basis (plus at most one swept column).
     *
     * @param syndrome detector outcomes
     * @param posterior_llr per-mechanism posterior LLRs from BP
     *        (lower = more likely in error; ties broken by index so
     *        the elimination order is deterministic)
     * @param[out] errors hard decision per mechanism
     * @return true if a solution was found (always, for syndromes in
     *         the column span of the DEM)
     */
    bool decode(const BitVec& syndrome,
                const std::vector<float>& posterior_llr,
                std::vector<uint8_t>& errors);

    /**
     * Solve many shots at once, bit-identically to calling decode()
     * on each: shots are grouped by equal inspected ordering prefix,
     * each group shares one elimination, and group syndromes reduce
     * through the pivot basis together (bit-sliced, 64 per word).
     *
     * @param shots per-shot syndrome + posterior views; posteriors
     *        must stay valid for the duration of the call
     * @param count number of shots (any size; RHS packing chunks
     *        internally at 64)
     * @param[out] out per-shot success flags and flipped-mechanism
     *        lists (result.flips order within a shot is ascending by
     *        pivot slot, swept column last — XOR-equivalent to the
     *        scalar errors vector)
     */
    void solveBatch(const OsdShotRequest* shots, size_t count,
                    OsdBatchResult& out);

    /** Column rank discovered so far (fixed after the first decode). */
    size_t discoveredRank() const { return rank_; }

  private:
    size_t augWords() const;
    void sortReliability(const float* llr);
    void radixSortKeys();
    void buildDualBasis();
    void runElimination(const float* llr);
    bool matchesOrdering(const float* llr);
    void solveGroup(const OsdShotRequest* shots,
                    const uint32_t* members, size_t memberCount,
                    OsdBatchResult& out);
    void scoreAndEmitShot(uint32_t shot, const float* llr,
                          OsdBatchResult& out);
    double scoreAug(const uint64_t* aug, const float* llr,
                    double extra) const;

    const DetectorErrorModel& dem_;
    size_t order_;
    size_t words_ = 0;
    size_t rank_ = 0;        ///< 0 until first full elimination.
    bool rankKnown_ = false;

    // Scratch reused across calls (one decoder per thread); all flat
    // so the elimination allocates nothing after the first decode.
    // Candidate columns are consumed lazily from a (llr, index)
    // min-heap: pops follow exactly the sorted reliability order, but
    // once the rank is known only the few hundred columns the
    // elimination actually inspects are ordered, not all mechanisms.
    std::vector<std::pair<float, uint32_t>> heap_;
    std::vector<uint64_t> colScratch_;
    std::vector<uint64_t> augScratch_;
    std::vector<uint64_t> pivotCols_;  ///< words_ per pivot slot.
    std::vector<uint64_t> pivotAugs_;  ///< augWords() per pivot slot.
    std::vector<uint32_t> pivotVar_;
    std::vector<uint32_t> pivotByRow_;
    std::vector<uint32_t> rejectVar_;
    std::vector<uint64_t> rejectAugs_; ///< augWords() per reject slot.
    std::vector<uint64_t> residual_;
    std::vector<uint64_t> baseAug_;
    std::vector<uint64_t> candidateAug_;
    std::vector<uint64_t> sweepAug_;

    // --- Batch-core scratch (solveBatch only) ---

    /** Candidate order: (transformed LLR key << 32 | index), sorted
     *  ascending by a stable 3-pass LSD radix sort — exactly the
     *  (llr, index) comparator order of the scalar heap, at a
     *  fraction of a comparison sort's cost. Consecutive shots of a
     *  batch differ in few posteriors (BP perturbs the same graph),
     *  so after the first full sort each sortReliability() call
     *  re-ranks incrementally: transform every LLR, diff against
     *  keyOfVar_, and when few keys moved merge just the changed
     *  entries into the previous sorted order instead of resorting
     *  all mechanisms. Keys embed the index, so the uint64 order is
     *  total and the merge is exact — same permutation either way. */
    std::vector<uint64_t> orderKeys_;
    std::vector<uint64_t> orderAlt_; ///< radix / merge double buffer.
    std::vector<uint32_t> keyOfVar_; ///< current transformed key per var.
    std::vector<uint64_t> changedKeys_; ///< (new key << 32 | var) diffs.
    bool sortedValid_ = false; ///< orderKeys_ matches keyOfVar_.
    size_t incrementalSorts_ = 0; ///< per-solveBatch counter.

    /** Columns the current leader's elimination popped, in order. */
    std::vector<uint32_t> inspected_;
    std::vector<uint32_t> hitSlots_; ///< column-only-mode hit list.

    /** Bit-sliced dual basis of the uncovered rows: word d holds, in
     *  bit b, the d-th coordinate of the b-th left-nullspace basis
     *  vector of the current pivot span. A candidate column c is
     *  independent of the pivots iff the XOR of dualSlice_ over c's
     *  detector rows is nonzero, which turns the long dependent tail
     *  of the elimination into a handful of word XORs per candidate.
     *  Active only while at most 64 rows remain uncovered. */
    std::vector<uint64_t> dualSlice_;

    /** Membership stamps for the ordering-prefix test (per var). */
    std::vector<uint64_t> inspectedStamp_;
    uint64_t stampEpoch_ = 0;

    // Bit-sliced multi-RHS back-substitution state: one word per
    // detector row / pivot slot, bit s = shot s of the current chunk.
    std::vector<uint64_t> rhsRows_;
    std::vector<uint64_t> rhsAug_;
    std::vector<uint64_t> shotAug_;
    std::vector<uint32_t> groupMembers_;
    std::vector<uint8_t> shotAssigned_;

    /** Per-shot flip staging: stride numDetectors+1 entries, so the
     *  output arrays can be laid out in shot order after groups were
     *  solved out of order. */
    std::vector<uint32_t> flipScratch_;
    std::vector<uint32_t> flipCount_;
};

} // namespace cyclone

#endif // CYCLONE_DECODER_OSD_H
