#include "decoder/decoder.h"

namespace cyclone {

void
Decoder::decodeBatch(const ShotBatch& batch,
                     std::vector<uint64_t>& predicted)
{
    predicted.resize(batch.numShots);
    for (size_t s = 0; s < batch.numShots; ++s)
        predicted[s] = decode(batch.syndromeOf(s));
}

} // namespace cyclone
