/**
 * @file
 * Generic rung of the SIMD ladder: no target attribute, so the
 * kernels compile for the baseline ISA (NEON on aarch64, SSE2 on
 * plain x86-64 builds with CYCLONE_WAVE_SIMD off). On builds that
 * carry the attributed x86 rungs this TU compiles to the empty
 * fallback: pre-AVX2 x86 hosts must select the scalar batch core, not
 * a generic-vector kernel the compiler lowers poorly (see
 * decoder_backend.cc).
 */

#include "decoder/wave_kernels.h"

#ifndef CYCLONE_WAVE_KERNEL_AVX2

#include <cmath>
#include <cstdint>

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

#define CYCLONE_WAVE_KERNEL
#include "decoder/wave_kernels.inl"

namespace cyclone {

const WaveKernelTable*
waveKernelTablesGeneric(size_t lanes)
{
    // Full-message min-sum everywhere: without a native sign-bit
    // pack the compressed pass's encode loop is an OR reduction per
    // edge, which costs more than the message stores it avoids.
    if (lanes == 16)
        return laneKernelTable<16, false>();
    if (lanes == 8)
        return laneKernelTable<8, false>();
    if (lanes == 4)
        return laneKernelTable<4, false>();
    return nullptr;
}

} // namespace cyclone

#else // CYCLONE_WAVE_KERNEL_AVX2

namespace cyclone {

const WaveKernelTable*
waveKernelTablesGeneric(size_t)
{
    return nullptr;
}

} // namespace cyclone

#endif
