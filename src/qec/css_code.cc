#include "qec/css_code.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace cyclone {

CssCode::CssCode(SparseGF2 hx, SparseGF2 hz, std::string name,
                 size_t nominal_distance)
    : hx_(std::move(hx)), hz_(std::move(hz)), name_(std::move(name)),
      nominalDistance_(nominal_distance)
{
    CYCLONE_ASSERT(hx_.cols() == hz_.cols(),
                   "CSS matrices disagree on qubit count: " << hx_.cols()
                   << " vs " << hz_.cols());
    GF2Matrix dx = hx_.toDense();
    GF2Matrix dz = hz_.toDense();
    // CSS condition: every X stabilizer commutes with every Z stabilizer.
    GF2Matrix product = dx.multiply(dz.transposed());
    if (!product.isZero())
        CYCLONE_FATAL("CSS condition violated for code '" << name_ << "'");
    size_t rank_x = dx.rank();
    size_t rank_z = dz.rank();
    CYCLONE_ASSERT(hx_.cols() >= rank_x + rank_z,
                   "stabilizer ranks exceed qubit count");
    k_ = hx_.cols() - rank_x - rank_z;
}

namespace {

/**
 * Extract `expected` vectors from `candidates` that are linearly
 * independent of the row space of `base`.
 */
std::vector<BitVec>
independentOf(const GF2Matrix& base, const std::vector<BitVec>& candidates,
              size_t expected)
{
    GF2Matrix stack = base;
    size_t current_rank = stack.rank();
    std::vector<BitVec> picked;
    for (const BitVec& cand : candidates) {
        if (picked.size() == expected)
            break;
        GF2Matrix trial = stack;
        trial.appendRow(cand);
        size_t new_rank = trial.rank();
        if (new_rank > current_rank) {
            stack = std::move(trial);
            current_rank = new_rank;
            picked.push_back(cand);
        }
    }
    CYCLONE_ASSERT(picked.size() == expected,
                   "logical operator extraction found " << picked.size()
                   << " of " << expected);
    return picked;
}

} // namespace

void
CssCode::computeLogicals() const
{
    if (logicalsDone_)
        return;
    GF2Matrix dx = hx_.toDense();
    GF2Matrix dz = hz_.toDense();
    // Logical Z: in ker(Hx), independent of rowspace(Hz).
    logicalZ_ = independentOf(dz, dx.nullspaceBasis(), k_);
    // Logical X: in ker(Hz), independent of rowspace(Hx).
    logicalX_ = independentOf(dx, dz.nullspaceBasis(), k_);
    logicalsDone_ = true;
}

const std::vector<BitVec>&
CssCode::logicalZ() const
{
    computeLogicals();
    return logicalZ_;
}

const std::vector<BitVec>&
CssCode::logicalX() const
{
    computeLogicals();
    return logicalX_;
}

size_t
CssCode::distanceUpperBound(size_t iterations, Rng& rng) const
{
    computeLogicals();
    if (k_ == 0)
        return 0;
    // Start from the lightest raw representative.
    size_t best = numQubits();
    auto consider = [&](const BitVec& v) {
        size_t w = v.popcount();
        if (w > 0)
            best = std::min(best, w);
    };
    for (const BitVec& l : logicalZ_)
        consider(l);
    for (const BitVec& l : logicalX_)
        consider(l);

    // Random coset exploration: add random stabilizer combinations to a
    // random logical representative and track the lightest result.
    GF2Matrix dz = hz_.toDense();
    GF2Matrix dx = hx_.toDense();
    for (size_t it = 0; it < iterations; ++it) {
        bool z_side = rng.bernoulli(0.5);
        const auto& logicals = z_side ? logicalZ_ : logicalX_;
        const GF2Matrix& stabs = z_side ? dz : dx;
        BitVec v = logicals[rng.below(logicals.size())];
        // Greedy weight descent over random stabilizer additions.
        for (size_t pass = 0; pass < 2 * stabs.rows(); ++pass) {
            size_t r = rng.below(stabs.rows());
            BitVec trial = v ^ stabs.row(r);
            if (trial.popcount() < v.popcount())
                v = std::move(trial);
        }
        consider(v);
    }
    return best;
}

std::string
CssCode::parameterString() const
{
    std::ostringstream os;
    os << "[[" << numQubits() << "," << k_ << ",";
    if (nominalDistance_ > 0)
        os << nominalDistance_;
    else
        os << "?";
    os << "]]";
    return os.str();
}

} // namespace cyclone
