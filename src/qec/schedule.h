/**
 * @file
 * Hardware-agnostic syndrome-extraction schedules.
 *
 * A schedule partitions the Tanner edges (CX gates) of one syndrome
 * round into ordered timeslices; within a slice, all gates are
 * simultaneously executable: no stabilizer and no data qubit appears
 * twice (Section III-A of the paper).
 *
 * Three policies are provided:
 *  - serial: one gate per slice (the fully serialized reference);
 *  - X-then-Z: all X stabilizers, edge colored, then all Z stabilizers
 *    (the non-edge-colorable CSS policy; valid for every CSS code and
 *    the policy Cyclone executes);
 *  - interleaved: one coloring of the whole Tanner graph, mixing X and
 *    Z gates (only meaningful for edge-colorable codes such as HGP;
 *    used for the maximal-parallelism bound of Fig. 3).
 */

#ifndef CYCLONE_QEC_SCHEDULE_H
#define CYCLONE_QEC_SCHEDULE_H

#include <cstddef>
#include <string>
#include <vector>

#include "qec/css_code.h"
#include "qec/tanner.h"

namespace cyclone {

/** One CX gate of a syndrome round. */
struct ScheduledGate
{
    StabKind kind;      ///< Stabilizer type (fixes CX direction).
    size_t stabIndex;   ///< Row within hx or hz.
    size_t data;        ///< Data qubit.
};

/** An ordered list of fully parallel timeslices. */
class SyndromeSchedule
{
  public:
    SyndromeSchedule(std::string policy,
                     std::vector<std::vector<ScheduledGate>> slices);

    /** Policy name ("serial", "x-then-z", "interleaved"). */
    const std::string& policy() const { return policy_; }

    const std::vector<std::vector<ScheduledGate>>& slices() const
    {
        return slices_;
    }

    /** Number of timeslices (the schedule depth). */
    size_t depth() const { return slices_.size(); }

    /** Total number of CX gates across all slices. */
    size_t totalGates() const;

    /**
     * Check slice validity against a code: every Tanner edge appears
     * exactly once, and no stabilizer or data qubit repeats within a
     * slice.
     */
    bool isValidFor(const CssCode& code) const;

  private:
    std::string policy_;
    std::vector<std::vector<ScheduledGate>> slices_;
};

/** Fully serial schedule: one gate per slice, X gates then Z gates. */
SyndromeSchedule makeSerialSchedule(const CssCode& code);

/**
 * X-then-Z schedule: X subgraph edge colored into w_max(X) slices,
 * followed by the Z subgraph in w_max(Z)-ish slices (exactly the max
 * degree of each subgraph, by Koenig's theorem).
 */
SyndromeSchedule makeXThenZSchedule(const CssCode& code);

/** Interleaved schedule: a single coloring of the full Tanner graph. */
SyndromeSchedule makeInterleavedSchedule(const CssCode& code);

} // namespace cyclone

#endif // CYCLONE_QEC_SCHEDULE_H
