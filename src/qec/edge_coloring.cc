#include "qec/edge_coloring.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

namespace {

constexpr size_t kNoEdge = static_cast<size_t>(-1);

/** Per-vertex table: color -> incident edge with that color (or none). */
class ColorTable
{
  public:
    ColorTable(size_t vertices, size_t colors)
        : table_(vertices, std::vector<size_t>(colors, kNoEdge))
    {}

    size_t edgeAt(size_t v, size_t color) const { return table_[v][color]; }
    void assign(size_t v, size_t color, size_t e) { table_[v][color] = e; }
    void release(size_t v, size_t color) { table_[v][color] = kNoEdge; }
    bool isFree(size_t v, size_t color) const
    {
        return table_[v][color] == kNoEdge;
    }

    size_t
    firstFree(size_t v) const
    {
        const auto& row = table_[v];
        for (size_t c = 0; c < row.size(); ++c) {
            if (row[c] == kNoEdge)
                return c;
        }
        CYCLONE_PANIC("no free color at vertex " << v
                      << "; degree bound violated");
    }

  private:
    std::vector<std::vector<size_t>> table_;
};

} // namespace

std::vector<size_t>
colorBipartiteEdges(size_t num_left, size_t num_right,
                    const std::vector<std::pair<size_t, size_t>>& edges)
{
    // Compute the degree bound D (Koenig: D colors always suffice).
    std::vector<size_t> deg_left(num_left, 0), deg_right(num_right, 0);
    for (const auto& [u, v] : edges) {
        CYCLONE_ASSERT(u < num_left && v < num_right,
                       "edge endpoint out of range");
        ++deg_left[u];
        ++deg_right[v];
    }
    size_t max_degree = 1;
    for (size_t d : deg_left)
        max_degree = std::max(max_degree, d);
    for (size_t d : deg_right)
        max_degree = std::max(max_degree, d);

    ColorTable left(num_left, max_degree);
    ColorTable right(num_right, max_degree);
    std::vector<size_t> colors(edges.size(), kNoEdge);

    for (size_t e = 0; e < edges.size(); ++e) {
        const size_t u = edges[e].first;
        const size_t v = edges[e].second;
        const size_t cu = left.firstFree(u);
        const size_t cv = right.firstFree(v);
        if (cu != cv && !right.isFree(v, cu)) {
            // Make cu free at v by swapping colors cu and cv along the
            // alternating path that starts at v with a cu-colored edge.
            // In a bipartite graph this path can reach a left vertex
            // only through a cu-colored edge, and u has none, so the
            // path never touches u and cu stays free there.
            std::vector<size_t> path;
            size_t w = v;
            bool w_on_right = true;
            size_t want = cu;
            while (true) {
                const size_t cur = w_on_right ? right.edgeAt(w, want)
                                              : left.edgeAt(w, want);
                if (cur == kNoEdge)
                    break;
                path.push_back(cur);
                const size_t far = w_on_right ? edges[cur].first
                                              : edges[cur].second;
                w = far;
                w_on_right = !w_on_right;
                want = want == cu ? cv : cu;
            }
            // Two-pass recolor: deregister every path edge, then
            // re-register with swapped colors.
            for (size_t cur : path) {
                left.release(edges[cur].first, colors[cur]);
                right.release(edges[cur].second, colors[cur]);
            }
            for (size_t cur : path) {
                colors[cur] = colors[cur] == cu ? cv : cu;
                left.assign(edges[cur].first, colors[cur], cur);
                right.assign(edges[cur].second, colors[cur], cur);
            }
            CYCLONE_ASSERT(right.isFree(v, cu),
                           "alternating-path recolor failed");
        }
        colors[e] = cu;
        left.assign(u, cu, e);
        right.assign(v, cu, e);
    }
    return colors;
}

bool
isProperEdgeColoring(size_t num_left, size_t num_right,
                     const std::vector<std::pair<size_t, size_t>>& edges,
                     const std::vector<size_t>& colors)
{
    if (colors.size() != edges.size())
        return false;
    size_t max_color = 0;
    for (size_t c : colors)
        max_color = std::max(max_color, c);
    std::vector<std::vector<bool>> seen_left(
        num_left, std::vector<bool>(max_color + 1, false));
    std::vector<std::vector<bool>> seen_right(
        num_right, std::vector<bool>(max_color + 1, false));
    for (size_t e = 0; e < edges.size(); ++e) {
        const auto& [u, v] = edges[e];
        const size_t c = colors[e];
        if (seen_left[u][c] || seen_right[v][c])
            return false;
        seen_left[u][c] = true;
        seen_right[v][c] = true;
    }
    return true;
}

} // namespace cyclone
