/**
 * @file
 * Tanner-graph view of a CSS code: a bipartite multigraph between
 * stabilizers (both kinds) and data qubits. The edge list is the unit of
 * scheduling — every edge is one CX gate of the syndrome extraction
 * circuit.
 */

#ifndef CYCLONE_QEC_TANNER_H
#define CYCLONE_QEC_TANNER_H

#include <cstddef>
#include <vector>

#include "qec/css_code.h"

namespace cyclone {

/** One Tanner edge: stabilizer `stab` of kind `kind` touches `data`. */
struct TannerEdge
{
    StabKind kind;      ///< X or Z stabilizer.
    size_t stabIndex;   ///< Row index within hx or hz.
    size_t data;        ///< Data qubit index.
};

/** Flattened Tanner graph of a CSS code. */
class TannerGraph
{
  public:
    /**
     * Build from a code.
     *
     * @param include_x include X stabilizer edges
     * @param include_z include Z stabilizer edges
     */
    explicit TannerGraph(const CssCode& code, bool include_x = true,
                         bool include_z = true);

    const std::vector<TannerEdge>& edges() const { return edges_; }

    /** Number of stabilizer-side vertices (X count + Z count). */
    size_t numStabVertices() const { return numStabVertices_; }

    /** Number of data-side vertices. */
    size_t numDataVertices() const { return numDataVertices_; }

    /** Maximum vertex degree over both sides. */
    size_t maxDegree() const { return maxDegree_; }

    /**
     * Stabilizer-side vertex id for an edge. X stabilizers come first,
     * then Z stabilizers.
     */
    size_t stabVertex(const TannerEdge& e) const
    {
        return e.kind == StabKind::X ? e.stabIndex : numX_ + e.stabIndex;
    }

  private:
    std::vector<TannerEdge> edges_;
    size_t numX_ = 0;
    size_t numStabVertices_ = 0;
    size_t numDataVertices_ = 0;
    size_t maxDegree_ = 0;
};

} // namespace cyclone

#endif // CYCLONE_QEC_TANNER_H
