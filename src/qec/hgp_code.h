/**
 * @file
 * Hypergraph product (HGP) code construction (Tillich-Zemor).
 *
 * Given classical parity checks H1 (m1 x n1) and H2 (m2 x n2), the HGP
 * code has n = n1*n2 + m1*m2 data qubits and parity checks
 *
 *   Hx = [ H1 (x) I_n2  |  I_m1 (x) H2^T ]
 *   Hz = [ I_n1 (x) H2  |  H1^T (x) I_m2 ]
 *
 * For full-rank seeds the parameters are [[n1*n2 + m1*m2, k1*k2, min d]].
 * HGP codes are edge-colorable (Tremblay et al.), which the scheduling
 * layer exploits for the maximal-parallelism bound.
 */

#ifndef CYCLONE_QEC_HGP_CODE_H
#define CYCLONE_QEC_HGP_CODE_H

#include "qec/classical_code.h"
#include "qec/css_code.h"

namespace cyclone {

/** Build the hypergraph product of two classical codes. */
CssCode makeHgpCode(const ClassicalCode& c1, const ClassicalCode& c2,
                    size_t nominal_distance = 0);

/** Symmetric product makeHgpCode(c, c). */
CssCode makeHgpCode(const ClassicalCode& c, size_t nominal_distance = 0);

} // namespace cyclone

#endif // CYCLONE_QEC_HGP_CODE_H
