/**
 * @file
 * CSS stabilizer codes: the common abstraction over hypergraph product
 * and bivariate bicycle codes used throughout the library.
 */

#ifndef CYCLONE_QEC_CSS_CODE_H
#define CYCLONE_QEC_CSS_CODE_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/gf2.h"
#include "common/rng.h"

namespace cyclone {

/** Stabilizer Pauli type. */
enum class StabKind { X, Z };

/**
 * A CSS stabilizer code defined by X- and Z-type parity-check matrices.
 *
 * Rows of hx are X stabilizers (each acts as X on its support), rows of
 * hz are Z stabilizers. The CSS condition hx hz^T = 0 is checked at
 * construction. Logical operator representatives are computed lazily.
 */
class CssCode
{
  public:
    /**
     * Construct from sparse parity-check matrices.
     *
     * @param hx X stabilizer supports (rows x data qubits)
     * @param hz Z stabilizer supports
     * @param name human-readable name, e.g. "HGP [[225,9,6]]"
     * @param nominal_distance published code distance (0 = unknown)
     */
    CssCode(SparseGF2 hx, SparseGF2 hz, std::string name,
            size_t nominal_distance = 0);

    const SparseGF2& hx() const { return hx_; }
    const SparseGF2& hz() const { return hz_; }
    const std::string& name() const { return name_; }

    /** Number of physical data qubits. */
    size_t numQubits() const { return hx_.cols(); }

    /** Number of logical qubits k = n - rank(Hx) - rank(Hz). */
    size_t numLogical() const { return k_; }

    /** Number of X stabilizers (rows of Hx, possibly redundant). */
    size_t numXStabs() const { return hx_.rows(); }

    /** Number of Z stabilizers. */
    size_t numZStabs() const { return hz_.rows(); }

    /** Total stabilizer count m = |X| + |Z|. */
    size_t numStabs() const { return hx_.rows() + hz_.rows(); }

    /** Published distance (0 when unknown). */
    size_t nominalDistance() const { return nominalDistance_; }

    /** Max X stabilizer weight. */
    size_t maxXWeight() const { return hx_.maxRowWeight(); }

    /** Max Z stabilizer weight. */
    size_t maxZWeight() const { return hz_.maxRowWeight(); }

    /**
     * Basis of logical-Z representatives: k vectors in ker(Hx) that are
     * independent of the row space of Hz.
     */
    const std::vector<BitVec>& logicalZ() const;

    /** Basis of logical-X representatives (ker Hz modulo rowspace Hx). */
    const std::vector<BitVec>& logicalX() const;

    /**
     * Monte-Carlo upper bound on the code distance by random
     * information-set sampling over logical-Z representatives.
     */
    size_t distanceUpperBound(size_t iterations, Rng& rng) const;

    /** "[[n, k, d]]" parameter string. */
    std::string parameterString() const;

  private:
    void computeLogicals() const;

    SparseGF2 hx_;
    SparseGF2 hz_;
    std::string name_;
    size_t nominalDistance_ = 0;
    size_t k_ = 0;

    mutable bool logicalsDone_ = false;
    mutable std::vector<BitVec> logicalZ_;
    mutable std::vector<BitVec> logicalX_;
};

} // namespace cyclone

#endif // CYCLONE_QEC_CSS_CODE_H
