#include "qec/tanner.h"

#include <algorithm>

namespace cyclone {

TannerGraph::TannerGraph(const CssCode& code, bool include_x,
                         bool include_z)
{
    numX_ = include_x ? code.numXStabs() : 0;
    size_t num_z = include_z ? code.numZStabs() : 0;
    numStabVertices_ = numX_ + num_z;
    numDataVertices_ = code.numQubits();

    std::vector<size_t> stab_degree(numStabVertices_, 0);
    std::vector<size_t> data_degree(numDataVertices_, 0);

    if (include_x) {
        for (size_t r = 0; r < code.numXStabs(); ++r) {
            for (size_t q : code.hx().rowSupport(r)) {
                edges_.push_back({StabKind::X, r, q});
                ++stab_degree[r];
                ++data_degree[q];
            }
        }
    }
    if (include_z) {
        for (size_t r = 0; r < code.numZStabs(); ++r) {
            for (size_t q : code.hz().rowSupport(r)) {
                edges_.push_back({StabKind::Z, r, q});
                ++stab_degree[numX_ + r];
                ++data_degree[q];
            }
        }
    }
    for (size_t d : stab_degree)
        maxDegree_ = std::max(maxDegree_, d);
    for (size_t d : data_degree)
        maxDegree_ = std::max(maxDegree_, d);
}

} // namespace cyclone
