#include "qec/classical_code.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace cyclone {

ClassicalCode::ClassicalCode(GF2Matrix h, std::string name)
    : h_(std::move(h)), name_(std::move(name))
{
    CYCLONE_ASSERT(h_.cols() > 0, "empty parity-check matrix");
    dimension_ = h_.cols() - h_.rank();
}

ClassicalCode
ClassicalCode::repetition(size_t n)
{
    CYCLONE_ASSERT(n >= 2, "repetition code needs n >= 2");
    GF2Matrix h(n - 1, n);
    for (size_t i = 0; i + 1 < n; ++i) {
        h.set(i, i, true);
        h.set(i, i + 1, true);
    }
    std::ostringstream name;
    name << "rep" << n;
    return ClassicalCode(std::move(h), name.str());
}

ClassicalCode
ClassicalCode::hamming(size_t r)
{
    CYCLONE_ASSERT(r >= 2 && r <= 16, "hamming: r out of range");
    const size_t n = (size_t(1) << r) - 1;
    GF2Matrix h(r, n);
    for (size_t c = 0; c < n; ++c) {
        size_t value = c + 1;
        for (size_t bit = 0; bit < r; ++bit) {
            if ((value >> bit) & 1)
                h.set(bit, c, true);
        }
    }
    std::ostringstream name;
    name << "hamming" << r;
    return ClassicalCode(std::move(h), name.str());
}

namespace {

/**
 * Draw a random parity-check matrix with every column of weight
 * `col_weight` and row weights as balanced as possible.
 *
 * Construction: concatenate col_weight random permutations of a
 * "row slot" multiset in which each row appears ceil(n*colW/m) or
 * floor(n*colW/m) times, then reroll columns that end up with a
 * repeated row (which would reduce the column weight).
 */
GF2Matrix
drawRegularParityCheck(size_t m, size_t n, size_t col_weight, Rng& rng)
{
    GF2Matrix h(m, n);
    for (size_t c = 0; c < n; ++c) {
        // Choose col_weight distinct rows for this column.
        std::vector<size_t> chosen;
        size_t guard = 0;
        while (chosen.size() < col_weight) {
            size_t r = rng.below(m);
            if (std::find(chosen.begin(), chosen.end(), r) == chosen.end())
                chosen.push_back(r);
            if (++guard > 1000)
                break;
        }
        for (size_t r : chosen)
            h.set(r, c, true);
    }
    return h;
}

} // namespace

std::optional<ClassicalCode>
ClassicalCode::searchLdpc(size_t n, size_t k, size_t d, size_t col_weight,
                          uint64_t seed, size_t max_attempts)
{
    const size_t m = n - k;
    Rng rng(seed);
    for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
        GF2Matrix h = drawRegularParityCheck(m, n, col_weight, rng);
        if (h.rank() != m)
            continue;
        std::ostringstream name;
        name << "ldpc[" << n << "," << k << "," << d << "]";
        ClassicalCode code(std::move(h), name.str());
        if (code.dimension() != k)
            continue;
        if (code.distance() != d)
            continue;
        return code;
    }
    return std::nullopt;
}

size_t
ClassicalCode::distance() const
{
    CYCLONE_ASSERT(dimension_ <= 24,
                   "exact distance enumeration too large: k = "
                   << dimension_);
    std::vector<BitVec> basis = h_.nullspaceBasis();
    CYCLONE_ASSERT(basis.size() == dimension_,
                   "nullspace dimension mismatch");
    if (basis.empty())
        return length();

    size_t best = length() + 1;
    const size_t combos = size_t(1) << basis.size();
    // Gray-code walk over all nonzero codewords.
    BitVec word(length());
    size_t prev_gray = 0;
    for (size_t i = 1; i < combos; ++i) {
        size_t gray = i ^ (i >> 1);
        size_t changed = gray ^ prev_gray;
        prev_gray = gray;
        int bit = std::countr_zero(changed);
        word ^= basis[static_cast<size_t>(bit)];
        if (gray != 0)
            best = std::min(best, word.popcount());
    }
    return best;
}

bool
ClassicalCode::isCodeword(const BitVec& c) const
{
    return h_.multiply(c).isZero();
}

} // namespace cyclone
