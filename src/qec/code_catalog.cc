#include "qec/code_catalog.h"

#include <sstream>

#include "common/logging.h"
#include "qec/bb_code.h"
#include "qec/classical_code.h"
#include "qec/hgp_code.h"

namespace cyclone {
namespace catalog {

namespace {

/**
 * Find a classical seed deterministically, preferring the baked-in seed
 * (discovered once and pinned for speed) and falling back to a longer
 * search if the pinned seed ever stops matching.
 */
ClassicalCode
findSeed(size_t n, size_t k, size_t d, size_t col_weight,
         uint64_t pinned_seed)
{
    auto code = ClassicalCode::searchLdpc(n, k, d, col_weight,
                                          pinned_seed, 4000);
    if (!code) {
        // Fall back to scanning a range of seeds.
        for (uint64_t s = 1; s < 64 && !code; ++s)
            code = ClassicalCode::searchLdpc(n, k, d, col_weight, s, 4000);
    }
    if (!code) {
        CYCLONE_FATAL("no [" << n << "," << k << "," << d
                      << "] LDPC seed found");
    }
    return *code;
}

CssCode
renamed(CssCode code, const std::string& label)
{
    return CssCode(code.hx(), code.hz(), label, code.nominalDistance());
}

} // namespace

CssCode
hgp225()
{
    ClassicalCode seed = findSeed(12, 3, 6, 3, 1);
    return renamed(makeHgpCode(seed, 6), "HGP [[225,9,6]]");
}

CssCode
hgp400()
{
    ClassicalCode seed = findSeed(16, 4, 6, 3, 1);
    return renamed(makeHgpCode(seed, 6), "HGP [[400,16,6]]");
}

CssCode
hgp625()
{
    ClassicalCode seed = findSeed(20, 5, 8, 3, 1);
    return renamed(makeHgpCode(seed, 8), "HGP [[625,25,8]]");
}

CssCode
bb72()
{
    return makeBbCode(6, 6, {{3, 0}, {0, 1}, {0, 2}},
                      {{0, 3}, {1, 0}, {2, 0}}, 6, "BB [[72,12,6]]");
}

CssCode
bb90()
{
    return makeBbCode(15, 3, {{9, 0}, {0, 1}, {0, 2}},
                      {{0, 0}, {2, 0}, {7, 0}}, 10, "BB [[90,8,10]]");
}

CssCode
bb108()
{
    return makeBbCode(9, 6, {{3, 0}, {0, 1}, {0, 2}},
                      {{0, 3}, {1, 0}, {2, 0}}, 10, "BB [[108,8,10]]");
}

CssCode
bb144()
{
    return makeBbCode(12, 6, {{3, 0}, {0, 1}, {0, 2}},
                      {{0, 3}, {1, 0}, {2, 0}}, 12, "BB [[144,12,12]]");
}

CssCode
bb288()
{
    return makeBbCode(12, 12, {{3, 0}, {0, 2}, {0, 7}},
                      {{0, 3}, {1, 0}, {2, 0}}, 18, "BB [[288,12,18]]");
}

CssCode
surface(size_t distance)
{
    CYCLONE_ASSERT(distance >= 2, "surface code needs distance >= 2");
    std::ostringstream label;
    label << "Surface [[" << distance * distance +
        (distance - 1) * (distance - 1) << ",1," << distance << "]]";
    return renamed(
        makeHgpCode(ClassicalCode::repetition(distance), distance),
        label.str());
}

std::vector<CssCode>
allHgpCodes()
{
    std::vector<CssCode> out;
    out.push_back(hgp225());
    out.push_back(hgp400());
    out.push_back(hgp625());
    return out;
}

std::vector<CssCode>
allBbCodes()
{
    std::vector<CssCode> out;
    out.push_back(bb72());
    out.push_back(bb90());
    out.push_back(bb108());
    out.push_back(bb144());
    out.push_back(bb288());
    return out;
}

CssCode
byName(const std::string& name)
{
    if (name == "hgp225")
        return hgp225();
    if (name == "hgp400")
        return hgp400();
    if (name == "hgp625")
        return hgp625();
    if (name == "bb72")
        return bb72();
    if (name == "bb90")
        return bb90();
    if (name == "bb108")
        return bb108();
    if (name == "bb144")
        return bb144();
    if (name == "bb288")
        return bb288();
    CYCLONE_FATAL("unknown code name '" << name << "'");
}

std::vector<std::string>
names()
{
    return {"hgp225", "hgp400", "hgp625", "bb72", "bb90", "bb108",
            "bb144", "bb288"};
}

} // namespace catalog
} // namespace cyclone
