#include "qec/schedule.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/logging.h"
#include "qec/edge_coloring.h"

namespace cyclone {

SyndromeSchedule::SyndromeSchedule(
    std::string policy, std::vector<std::vector<ScheduledGate>> slices)
    : policy_(std::move(policy)), slices_(std::move(slices))
{}

size_t
SyndromeSchedule::totalGates() const
{
    size_t total = 0;
    for (const auto& s : slices_)
        total += s.size();
    return total;
}

bool
SyndromeSchedule::isValidFor(const CssCode& code) const
{
    // Every slice must be conflict-free.
    for (const auto& slice : slices_) {
        std::set<std::pair<int, size_t>> stabs_seen;
        std::set<size_t> data_seen;
        for (const ScheduledGate& g : slice) {
            auto stab_key = std::make_pair(
                g.kind == StabKind::X ? 0 : 1, g.stabIndex);
            if (!stabs_seen.insert(stab_key).second)
                return false;
            if (!data_seen.insert(g.data).second)
                return false;
        }
    }
    // Every Tanner edge appears exactly once.
    std::multiset<std::tuple<int, size_t, size_t>> scheduled;
    for (const auto& slice : slices_) {
        for (const ScheduledGate& g : slice) {
            scheduled.insert(std::make_tuple(
                g.kind == StabKind::X ? 0 : 1, g.stabIndex, g.data));
        }
    }
    std::multiset<std::tuple<int, size_t, size_t>> expected;
    for (size_t r = 0; r < code.numXStabs(); ++r) {
        for (size_t q : code.hx().rowSupport(r))
            expected.insert(std::make_tuple(0, r, q));
    }
    for (size_t r = 0; r < code.numZStabs(); ++r) {
        for (size_t q : code.hz().rowSupport(r))
            expected.insert(std::make_tuple(1, r, q));
    }
    return scheduled == expected;
}

SyndromeSchedule
makeSerialSchedule(const CssCode& code)
{
    std::vector<std::vector<ScheduledGate>> slices;
    for (size_t r = 0; r < code.numXStabs(); ++r) {
        for (size_t q : code.hx().rowSupport(r))
            slices.push_back({{StabKind::X, r, q}});
    }
    for (size_t r = 0; r < code.numZStabs(); ++r) {
        for (size_t q : code.hz().rowSupport(r))
            slices.push_back({{StabKind::Z, r, q}});
    }
    return SyndromeSchedule("serial", std::move(slices));
}

namespace {

/** Edge-color one Tanner graph and bucket its edges into slices. */
std::vector<std::vector<ScheduledGate>>
colorToSlices(const TannerGraph& graph)
{
    std::vector<std::pair<size_t, size_t>> edges;
    edges.reserve(graph.edges().size());
    for (const TannerEdge& e : graph.edges())
        edges.emplace_back(graph.stabVertex(e), e.data);

    std::vector<size_t> colors = colorBipartiteEdges(
        graph.numStabVertices(), graph.numDataVertices(), edges);

    size_t num_colors = 0;
    for (size_t c : colors)
        num_colors = std::max(num_colors, c + 1);

    std::vector<std::vector<ScheduledGate>> slices(num_colors);
    for (size_t e = 0; e < colors.size(); ++e) {
        const TannerEdge& te = graph.edges()[e];
        slices[colors[e]].push_back({te.kind, te.stabIndex, te.data});
    }
    return slices;
}

} // namespace

SyndromeSchedule
makeXThenZSchedule(const CssCode& code)
{
    TannerGraph x_graph(code, true, false);
    TannerGraph z_graph(code, false, true);
    std::vector<std::vector<ScheduledGate>> slices = colorToSlices(x_graph);
    for (auto& s : colorToSlices(z_graph))
        slices.push_back(std::move(s));
    return SyndromeSchedule("x-then-z", std::move(slices));
}

SyndromeSchedule
makeInterleavedSchedule(const CssCode& code)
{
    TannerGraph graph(code, true, true);
    return SyndromeSchedule("interleaved", colorToSlices(graph));
}

} // namespace cyclone
