/**
 * @file
 * Classical binary linear codes, used as seeds for hypergraph product
 * constructions and as decoder test fixtures.
 */

#ifndef CYCLONE_QEC_CLASSICAL_CODE_H
#define CYCLONE_QEC_CLASSICAL_CODE_H

#include <cstddef>
#include <optional>
#include <string>

#include "common/gf2.h"
#include "common/rng.h"

namespace cyclone {

/**
 * A classical binary linear code described by a parity-check matrix.
 *
 * The code is C = ker H. Dimension k = n - rank(H). Distance is computed
 * exactly when k is small (codeword enumeration) and is otherwise
 * estimated as an upper bound.
 */
class ClassicalCode
{
  public:
    /** Wrap a parity-check matrix. */
    explicit ClassicalCode(GF2Matrix h, std::string name = "classical");

    /** [n, 1, n] repetition code (full-circle checks, n-1 x n matrix). */
    static ClassicalCode repetition(size_t n);

    /** [2^r - 1, 2^r - 1 - r, 3] Hamming code. */
    static ClassicalCode hamming(size_t r);

    /**
     * Search for a column-weight-`colWeight` LDPC code with the given
     * length, dimension and minimum distance.
     *
     * The search draws random biregular-ish parity checks seeded from
     * `seed` and accepts the first draw whose rank and exactly-computed
     * distance match. Used to build the HGP seed codes: [12,3,6],
     * [16,4,6] and [20,5,8].
     *
     * @return std::nullopt if no matching code is found within
     *         `maxAttempts` draws.
     */
    static std::optional<ClassicalCode>
    searchLdpc(size_t n, size_t k, size_t d, size_t col_weight,
               uint64_t seed, size_t max_attempts = 4000);

    const GF2Matrix& parityCheck() const { return h_; }
    const std::string& name() const { return name_; }

    /** Block length n. */
    size_t length() const { return h_.cols(); }

    /** Dimension k = n - rank(H). */
    size_t dimension() const { return dimension_; }

    /** Number of parity checks (rows of H, possibly redundant). */
    size_t checks() const { return h_.rows(); }

    /** True if H has full row rank. */
    bool fullRank() const { return h_.rank() == h_.rows(); }

    /**
     * Exact minimum distance by enumerating all 2^k - 1 nonzero
     * codewords. Only call when k <= 20 or so.
     */
    size_t distance() const;

    /** Membership test: H c == 0. */
    bool isCodeword(const BitVec& c) const;

  private:
    GF2Matrix h_;
    std::string name_;
    size_t dimension_ = 0;
};

} // namespace cyclone

#endif // CYCLONE_QEC_CLASSICAL_CODE_H
