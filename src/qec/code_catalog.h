/**
 * @file
 * The named QEC codes evaluated in the paper.
 *
 * HGP codes are built from classical LDPC seeds found by deterministic
 * seeded search (see ClassicalCode::searchLdpc); BB codes use the
 * published polynomial pairs of Bravyi et al. All constructors are
 * deterministic, and tests verify [[n, k]] by rank computation.
 */

#ifndef CYCLONE_QEC_CODE_CATALOG_H
#define CYCLONE_QEC_CODE_CATALOG_H

#include <string>
#include <vector>

#include "qec/css_code.h"

namespace cyclone {
namespace catalog {

/** HGP [[225,9,6]] from a [12,3,6] column-weight-3 LDPC seed. */
CssCode hgp225();

/** HGP [[400,16,6]] from a [16,4,6] seed. */
CssCode hgp400();

/** HGP [[625,25,8]] from a [20,5,8] seed. */
CssCode hgp625();

/** BB [[72,12,6]]: l=6, m=6, A=x^3+y+y^2, B=y^3+x+x^2. */
CssCode bb72();

/** BB [[90,8,10]]: l=15, m=3, A=x^9+y+y^2, B=1+x^2+x^7. */
CssCode bb90();

/** BB [[108,8,10]]: l=9, m=6, A=x^3+y+y^2, B=y^3+x+x^2. */
CssCode bb108();

/** BB [[144,12,12]]: l=12, m=6, A=x^3+y+y^2, B=y^3+x+x^2. */
CssCode bb144();

/** BB [[288,12,18]]: l=12, m=12, A=x^3+y^2+y^7, B=y^3+x+x^2. */
CssCode bb288();

/**
 * Distance-d surface code [[d^2 + (d-1)^2, 1, d]] (the hypergraph
 * product of two repetition codes). Not part of the paper's
 * evaluation set — its local stabilizers are the contrast case for
 * which grid QCCDs are "already fast and sufficient" (Section II-A4).
 */
CssCode surface(size_t distance);

/** The HGP codes of the paper, smallest first. */
std::vector<CssCode> allHgpCodes();

/** The BB codes of the paper, smallest first. */
std::vector<CssCode> allBbCodes();

/**
 * Look a code up by short name: "hgp225", "hgp400", "hgp625", "bb72",
 * "bb90", "bb108", "bb144", "bb288". Throws on unknown names.
 */
CssCode byName(const std::string& name);

/** All short names accepted by byName(). */
std::vector<std::string> names();

} // namespace catalog
} // namespace cyclone

#endif // CYCLONE_QEC_CODE_CATALOG_H
