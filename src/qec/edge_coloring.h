/**
 * @file
 * Proper edge coloring of bipartite multigraphs.
 *
 * By Koenig's theorem a bipartite graph of maximum degree D admits a
 * proper edge coloring with exactly D colors. The constructive algorithm
 * implemented here (alternating-path recoloring) achieves that bound and
 * is what turns a Tanner graph into a set of fully parallel CX
 * timeslices: each color class touches every stabilizer and every data
 * qubit at most once.
 */

#ifndef CYCLONE_QEC_EDGE_COLORING_H
#define CYCLONE_QEC_EDGE_COLORING_H

#include <cstddef>
#include <utility>
#include <vector>

namespace cyclone {

/**
 * Color the edges of a bipartite graph.
 *
 * @param num_left number of left-side vertices
 * @param num_right number of right-side vertices
 * @param edges pairs (left, right), one per edge; parallel edges allowed
 * @return one color index per edge; the number of distinct colors equals
 *         the maximum degree of the graph
 */
std::vector<size_t>
colorBipartiteEdges(size_t num_left, size_t num_right,
                    const std::vector<std::pair<size_t, size_t>>& edges);

/**
 * Verify that a coloring is proper: no two edges sharing a vertex have
 * the same color. Exposed for tests and for validating schedules.
 */
bool
isProperEdgeColoring(size_t num_left, size_t num_right,
                     const std::vector<std::pair<size_t, size_t>>& edges,
                     const std::vector<size_t>& colors);

} // namespace cyclone

#endif // CYCLONE_QEC_EDGE_COLORING_H
