/**
 * @file
 * Bivariate bicycle (BB) codes (Bravyi et al., Nature 627, 2024).
 *
 * A BB code on 2*l*m qubits is defined by two three-term polynomials
 * A and B in commuting cyclic-shift variables x (order l) and y (order
 * m):
 *
 *   Hx = [ A | B ],   Hz = [ B^T | A^T ]
 *
 * where A = sum of monomials x^a y^b given as exponent pairs. BB codes
 * are not edge-colorable, so the scheduling layer measures all X then
 * all Z stabilizers.
 */

#ifndef CYCLONE_QEC_BB_CODE_H
#define CYCLONE_QEC_BB_CODE_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "qec/css_code.h"

namespace cyclone {

/** A monomial x^xExp * y^yExp of a bivariate polynomial. */
struct BbMonomial
{
    size_t xExp = 0;
    size_t yExp = 0;
};

/**
 * Build a bivariate bicycle code from polynomial exponent lists.
 *
 * @param l order of the x cyclic shift
 * @param m order of the y cyclic shift
 * @param a monomials of polynomial A
 * @param b monomials of polynomial B
 * @param nominal_distance published distance (0 = unknown)
 */
CssCode makeBbCode(size_t l, size_t m, const std::vector<BbMonomial>& a,
                   const std::vector<BbMonomial>& b,
                   size_t nominal_distance = 0, std::string name = "");

} // namespace cyclone

#endif // CYCLONE_QEC_BB_CODE_H
