#include "qec/hgp_code.h"

#include <sstream>

namespace cyclone {

CssCode
makeHgpCode(const ClassicalCode& c1, const ClassicalCode& c2,
            size_t nominal_distance)
{
    const GF2Matrix& h1 = c1.parityCheck();
    const GF2Matrix& h2 = c2.parityCheck();
    const size_t n1 = h1.cols();
    const size_t m1 = h1.rows();
    const size_t n2 = h2.cols();
    const size_t m2 = h2.rows();

    GF2Matrix hx = h1.kron(GF2Matrix::identity(n2))
        .hstack(GF2Matrix::identity(m1).kron(h2.transposed()));
    GF2Matrix hz = GF2Matrix::identity(n1).kron(h2)
        .hstack(h1.transposed().kron(GF2Matrix::identity(m2)));

    std::ostringstream name;
    name << "HGP(" << c1.name() << "," << c2.name() << ")";
    return CssCode(hx.toSparse(), hz.toSparse(), name.str(),
                   nominal_distance);
}

CssCode
makeHgpCode(const ClassicalCode& c, size_t nominal_distance)
{
    return makeHgpCode(c, c, nominal_distance);
}

} // namespace cyclone
