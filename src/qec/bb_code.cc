#include "qec/bb_code.h"

#include <sstream>

#include "common/logging.h"

namespace cyclone {

namespace {

/**
 * Dense l*m x l*m matrix of the group-algebra element given by the
 * monomial list: entry (i, j) = 1 iff j = i shifted by some monomial.
 *
 * Row index encodes the group element (ix, iy) as ix * m + iy; the
 * monomial x^a y^b maps it to ((ix + a) mod l, (iy + b) mod m).
 */
GF2Matrix
polynomialMatrix(size_t l, size_t m, const std::vector<BbMonomial>& terms)
{
    const size_t dim = l * m;
    GF2Matrix out(dim, dim);
    for (size_t ix = 0; ix < l; ++ix) {
        for (size_t iy = 0; iy < m; ++iy) {
            size_t row = ix * m + iy;
            for (const BbMonomial& t : terms) {
                size_t jx = (ix + t.xExp) % l;
                size_t jy = (iy + t.yExp) % m;
                // Flip rather than set: repeated monomials cancel mod 2.
                out.row(row).flip(jx * m + jy);
            }
        }
    }
    return out;
}

std::string
polyToString(const std::vector<BbMonomial>& terms)
{
    std::ostringstream os;
    bool first = true;
    for (const BbMonomial& t : terms) {
        if (!first)
            os << "+";
        first = false;
        if (t.xExp == 0 && t.yExp == 0) {
            os << "1";
            continue;
        }
        if (t.xExp > 0) {
            os << "x";
            if (t.xExp > 1)
                os << "^" << t.xExp;
        }
        if (t.yExp > 0) {
            os << "y";
            if (t.yExp > 1)
                os << "^" << t.yExp;
        }
    }
    return os.str();
}

} // namespace

CssCode
makeBbCode(size_t l, size_t m, const std::vector<BbMonomial>& a,
           const std::vector<BbMonomial>& b, size_t nominal_distance,
           std::string name)
{
    CYCLONE_ASSERT(l > 0 && m > 0, "BB code needs positive shift orders");
    GF2Matrix ma = polynomialMatrix(l, m, a);
    GF2Matrix mb = polynomialMatrix(l, m, b);

    GF2Matrix hx = ma.hstack(mb);
    GF2Matrix hz = mb.transposed().hstack(ma.transposed());

    if (name.empty()) {
        std::ostringstream os;
        os << "BB(l=" << l << ",m=" << m << ",A=" << polyToString(a)
           << ",B=" << polyToString(b) << ")";
        name = os.str();
    }
    return CssCode(hx.toSparse(), hz.toSparse(), std::move(name),
                   nominal_distance);
}

} // namespace cyclone
