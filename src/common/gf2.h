/**
 * @file
 * Dense and sparse matrices over GF(2) with the linear algebra needed by
 * the QEC layer: row reduction, rank, nullspace bases, Kronecker products,
 * and block composition.
 *
 * Dense matrices are row-major vectors of BitVec and are used for rank /
 * nullspace computations (codes in this repo have at most ~1300 columns).
 * Sparse matrices store sorted column indices per row and are used for
 * Tanner-graph traversal and decoder adjacency.
 */

#ifndef CYCLONE_COMMON_GF2_H
#define CYCLONE_COMMON_GF2_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.h"

namespace cyclone {

namespace gf2 {

/**
 * XOR `count` words of `src` into `dst` (a GF(2) row addition on
 * bit-packed rows). The workhorse of the OSD elimination inner loop:
 * one call covers a fused column+augmentation row, so the compiler
 * vectorizes a single contiguous stream instead of two strided ones.
 */
inline void
xorWords(uint64_t* dst, const uint64_t* src, size_t count)
{
    for (size_t w = 0; w < count; ++w)
        dst[w] ^= src[w];
}

/**
 * Index of the first set bit of a packed row, scanning word
 * `fromWord` onward, or -1 when the row is zero from there on.
 * Row-reduction loops that clear leading bits in ascending order pass
 * the last cleared bit's word as the hint, turning the rescan of
 * already-cleared leading words into a no-op.
 */
inline int
firstSetBit(const uint64_t* words, size_t count, size_t fromWord = 0)
{
    for (size_t w = fromWord; w < count; ++w) {
        if (words[w])
            return static_cast<int>(
                w * 64 +
                static_cast<size_t>(std::countr_zero(words[w])));
    }
    return -1;
}

} // namespace gf2

class SparseGF2;

/** Dense GF(2) matrix with bit-packed rows. */
class GF2Matrix
{
  public:
    GF2Matrix() = default;

    /** Construct an all-zero matrix. */
    GF2Matrix(size_t rows, size_t cols);

    /** Identity matrix of size n. */
    static GF2Matrix identity(size_t n);

    /** Build from a list of rows given as 0/1 initializer rows. */
    static GF2Matrix
    fromRows(const std::vector<std::vector<int>>& rows, size_t cols);

    size_t rows() const { return rows_.size(); }
    size_t cols() const { return cols_; }

    bool get(size_t r, size_t c) const { return rows_[r].get(c); }
    void set(size_t r, size_t c, bool v) { rows_[r].set(c, v); }

    const BitVec& row(size_t r) const { return rows_[r]; }
    BitVec& row(size_t r) { return rows_[r]; }

    /** Append a row (must have matching column count). */
    void appendRow(const BitVec& row);

    /** Matrix transpose. */
    GF2Matrix transposed() const;

    /** Matrix product over GF(2); cols() must equal other.rows(). */
    GF2Matrix multiply(const GF2Matrix& other) const;

    /** Matrix-vector product over GF(2). */
    BitVec multiply(const BitVec& vec) const;

    /** Kronecker (tensor) product. */
    GF2Matrix kron(const GF2Matrix& other) const;

    /** Horizontal concatenation [this | other]. */
    GF2Matrix hstack(const GF2Matrix& other) const;

    /** Vertical concatenation [this ; other]. */
    GF2Matrix vstack(const GF2Matrix& other) const;

    /** Rank via Gaussian elimination (does not modify this). */
    size_t rank() const;

    /**
     * In-place row echelon form.
     *
     * @return column indices of the pivots, in pivot order.
     */
    std::vector<size_t> rowReduce();

    /** Basis of the right nullspace {x : A x = 0}. */
    std::vector<BitVec> nullspaceBasis() const;

    /**
     * Solve A x = b, returning true and one solution in x on success.
     * Returns false if no solution exists.
     */
    bool solve(const BitVec& b, BitVec& x) const;

    /** True iff every entry is zero. */
    bool isZero() const;

    bool operator==(const GF2Matrix& other) const;

    /** Convert to a sparse representation. */
    SparseGF2 toSparse() const;

  private:
    size_t cols_ = 0;
    std::vector<BitVec> rows_;
};

/** Sparse GF(2) matrix: sorted column indices per row. */
class SparseGF2
{
  public:
    SparseGF2() = default;

    /** Construct an empty matrix of the given shape. */
    SparseGF2(size_t rows, size_t cols);

    size_t rows() const { return rowSupports_.size(); }
    size_t cols() const { return cols_; }

    /** Sorted column indices of row r. */
    const std::vector<size_t>& rowSupport(size_t r) const
    {
        return rowSupports_[r];
    }

    /** Set row r's support (indices are sorted and deduplicated). */
    void setRowSupport(size_t r, std::vector<size_t> support);

    /** Total number of nonzero entries. */
    size_t nnz() const;

    /** Maximum row weight. */
    size_t maxRowWeight() const;

    /** Maximum column weight. */
    size_t maxColWeight() const;

    /** Per-column supports (row indices touching each column). */
    std::vector<std::vector<size_t>> colSupports() const;

    /** Convert to a dense representation. */
    GF2Matrix toDense() const;

    /** Sparse transpose. */
    SparseGF2 transposed() const;

    /** Syndrome of a dense error vector: s = H e. */
    BitVec multiply(const BitVec& e) const;

  private:
    size_t cols_ = 0;
    std::vector<std::vector<size_t>> rowSupports_;
};

} // namespace cyclone

#endif // CYCLONE_COMMON_GF2_H
