#include "common/bit_transpose.h"

#include <cstring>

namespace cyclone {

void
transpose64x64(uint64_t block[64])
{
    // Recursive masked block swap (Hacker's Delight 7-3), adapted to
    // LSB-first bit numbering: at step j, swap the high-j columns of
    // each low row with the low-j columns of its partner row j apart.
    uint64_t mask = 0x00000000ffffffffull;
    for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t =
                ((block[k] >> j) ^ block[k + j]) & mask;
            block[k] ^= t << j;
            block[k + j] ^= t;
        }
    }
}

void
transposeWave64(const uint64_t* rows, size_t num_rows, size_t row_stride,
                uint64_t* out, size_t out_stride)
{
    uint64_t block[64];
    const size_t num_tiles = (num_rows + 63) / 64;
    for (size_t tile = 0; tile < num_tiles; ++tile) {
        const size_t base = tile * 64;
        const size_t fill =
            num_rows - base < 64 ? num_rows - base : 64;
        for (size_t i = 0; i < fill; ++i)
            block[i] = rows[(base + i) * row_stride];
        if (fill < 64)
            std::memset(block + fill, 0, (64 - fill) * sizeof(uint64_t));
        transpose64x64(block);
        for (size_t c = 0; c < 64; ++c)
            out[c * out_stride + tile] = block[c];
    }
}

} // namespace cyclone
