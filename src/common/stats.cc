#include "common/stats.h"

#include <cmath>

namespace cyclone {

RateEstimate
estimateRate(size_t successes, size_t trials)
{
    RateEstimate est;
    est.trials = trials;
    est.successes = successes;
    if (trials == 0)
        return est;
    est.rate = static_cast<double>(successes) / trials;
    est.stderr = std::sqrt(est.rate * (1.0 - est.rate) / trials);
    return est;
}

double
wilsonHalfWidth(size_t successes, size_t trials)
{
    if (trials == 0)
        return 0.0;
    const double z = 1.96;
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double denom = 1.0 + z * z / n;
    const double spread =
        z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
    return spread / denom;
}

} // namespace cyclone
