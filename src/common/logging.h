/**
 * @file
 * Error-reporting macros in the gem5 fatal/panic style.
 *
 * CYCLONE_FATAL is for conditions caused by the user (bad configuration,
 * invalid arguments): it throws std::runtime_error so callers and tests can
 * recover. CYCLONE_PANIC is for internal invariant violations (library
 * bugs): it prints and aborts.
 */

#ifndef CYCLONE_COMMON_LOGGING_H
#define CYCLONE_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cyclone {

/** Builds a formatted location-tagged message. */
inline std::string
detailMessage(const char* kind, const char* file, int line,
              const std::string& what)
{
    std::ostringstream os;
    os << kind << " (" << file << ":" << line << "): " << what;
    return os.str();
}

} // namespace cyclone

/** Report a user-caused error; throws std::runtime_error. */
#define CYCLONE_FATAL(msg)                                                   \
    do {                                                                     \
        std::ostringstream cyclone_fatal_os_;                                \
        cyclone_fatal_os_ << msg;                                            \
        throw std::runtime_error(::cyclone::detailMessage(                   \
            "fatal", __FILE__, __LINE__, cyclone_fatal_os_.str()));          \
    } while (0)

/** Report an internal invariant violation; aborts the process. */
#define CYCLONE_PANIC(msg)                                                   \
    do {                                                                     \
        std::ostringstream cyclone_panic_os_;                                \
        cyclone_panic_os_ << msg;                                            \
        std::fprintf(stderr, "%s\n", ::cyclone::detailMessage(               \
            "panic", __FILE__, __LINE__, cyclone_panic_os_.str()).c_str());  \
        std::abort();                                                        \
    } while (0)

/** Check an invariant; panics with the condition text on failure. */
#define CYCLONE_ASSERT(cond, msg)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            CYCLONE_PANIC("assertion '" #cond "' failed: " << msg);          \
        }                                                                    \
    } while (0)

#endif // CYCLONE_COMMON_LOGGING_H
