/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * buffers. Used to checksum spool records, the coordinator journal,
 * and artifact-store blobs so torn or bit-rotted files are detected
 * and quarantined instead of silently merged.
 */

#ifndef CYCLONE_COMMON_CRC32_H
#define CYCLONE_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cyclone {

/**
 * CRC-32 of `n` bytes at `data`. Pass a previous return value as
 * `seed` to continue a running checksum over split buffers; the
 * default computes a standalone checksum ("123456789" -> 0xCBF43926).
 */
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

/** Convenience overload for strings. */
inline uint32_t
crc32(const std::string& s, uint32_t seed = 0)
{
    return crc32(s.data(), s.size(), seed);
}

} // namespace cyclone

#endif // CYCLONE_COMMON_CRC32_H
