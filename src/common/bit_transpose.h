/**
 * @file
 * Word-level bit-matrix transposition.
 *
 * The batched shot pipeline stores sampled detector outcomes
 * detector-major (one 64-shot word per detector per wave) because the
 * geometric-skip sampler writes whole mechanisms at a time, while the
 * decoder consumes shot-major syndromes. These helpers convert one
 * 64-shot wave between the two layouts with the classic masked-swap
 * 64x64 transpose, so the conversion costs O(rows) word operations
 * instead of O(rows x 64) bit probes.
 */

#ifndef CYCLONE_COMMON_BIT_TRANSPOSE_H
#define CYCLONE_COMMON_BIT_TRANSPOSE_H

#include <cstddef>
#include <cstdint>

namespace cyclone {

/**
 * Transpose a 64x64 bit matrix in place.
 *
 * Bit j of block[i] (LSB first) moves to bit i of block[j].
 */
void transpose64x64(uint64_t block[64]);

/**
 * Transpose one 64-column wave of a row-major packed bit matrix.
 *
 * Input: `rows[r * row_stride]` holds 64 column bits of row r (LSB =
 * column 0); the caller points `rows` at the wave's word of row 0.
 * Output: bit r of `out[c * out_stride + r / 64]` is set iff bit c of
 * row r was set, for every column c in [0, 64). Rows beyond
 * `num_rows` in the final 64-row tile are treated as zero, so the
 * transposed words never carry stale bits past `num_rows`.
 */
void transposeWave64(const uint64_t* rows, size_t num_rows,
                     size_t row_stride, uint64_t* out,
                     size_t out_stride);

} // namespace cyclone

#endif // CYCLONE_COMMON_BIT_TRANSPOSE_H
