/**
 * @file
 * Bit-packed vector over GF(2).
 *
 * BitVec is the workhorse of the QEC linear algebra and of the detector
 * error model machinery: rows of parity-check matrices, Pauli frames, and
 * detector signatures are all BitVecs. Words are uint64_t, least
 * significant bit first.
 */

#ifndef CYCLONE_COMMON_BITVEC_H
#define CYCLONE_COMMON_BITVEC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cyclone {

/** Dynamically sized bit vector with GF(2) arithmetic. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct an all-zero vector of the given bit length. */
    explicit BitVec(size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0)
    {}

    /** Number of bits. */
    size_t size() const { return bits_; }

    /** Whether every bit is zero. */
    bool isZero() const;

    /** Read bit i. */
    bool
    get(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Set bit i to value v. */
    void
    set(size_t i, bool v)
    {
        uint64_t mask = uint64_t(1) << (i & 63);
        if (v)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /** Flip bit i. */
    void
    flip(size_t i)
    {
        words_[i >> 6] ^= uint64_t(1) << (i & 63);
    }

    /** XOR another vector of equal length into this one. */
    BitVec& operator^=(const BitVec& other);

    /** AND another vector of equal length into this one. */
    BitVec& operator&=(const BitVec& other);

    bool operator==(const BitVec& other) const;
    bool operator!=(const BitVec& other) const { return !(*this == other); }

    /** Number of set bits. */
    size_t popcount() const;

    /** Parity (mod-2 sum) of the AND with another vector. */
    bool dotParity(const BitVec& other) const;

    /** Set every bit to zero, keeping the length. */
    void clear();

    /** Resize to the given bit length, zero-filling new bits. */
    void resize(size_t bits);

    /** Indices of set bits in increasing order. */
    std::vector<size_t> onesPositions() const;

    /** String of '0'/'1' characters, index 0 first. */
    std::string toString() const;

    /** 64-bit mixing hash of the contents (for dedup tables). */
    uint64_t hash() const;

    /** Direct word access (for performance-critical inner loops). */
    const std::vector<uint64_t>& words() const { return words_; }
    std::vector<uint64_t>& words() { return words_; }

    /** Number of 64-bit words backing the vector. */
    size_t numWords() const { return words_.size(); }

    /** Read word w (bits 64w .. 64w+63, LSB first). */
    uint64_t word(size_t w) const { return words_[w]; }

    /**
     * Overwrite the contents from `count` raw words without changing
     * the bit length. `count` must match numWords(); bits beyond
     * size() in the last word must already be zero (the batch
     * transpose guarantees this by zero-padding its tiles).
     */
    void assignWords(const uint64_t* src, size_t count);

  private:
    size_t bits_ = 0;
    std::vector<uint64_t> words_;
};

/** XOR of two equal-length vectors. */
BitVec operator^(BitVec lhs, const BitVec& rhs);

} // namespace cyclone

#endif // CYCLONE_COMMON_BITVEC_H
