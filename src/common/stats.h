/**
 * @file
 * Small statistics helpers used by the Monte-Carlo harnesses.
 */

#ifndef CYCLONE_COMMON_STATS_H
#define CYCLONE_COMMON_STATS_H

#include <cstddef>

namespace cyclone {

/** Binomial point estimate with a normal-approximation standard error. */
struct RateEstimate
{
    size_t trials = 0;     ///< Number of Monte-Carlo shots.
    size_t successes = 0;  ///< Number of observed events (e.g. failures).
    double rate = 0.0;     ///< successes / trials.
    double stderr = 0.0;   ///< sqrt(p(1-p)/n).
};

/** Build a RateEstimate from raw counts. */
RateEstimate estimateRate(size_t successes, size_t trials);

/**
 * Wilson score interval half-width at ~95% confidence.
 *
 * More robust than the normal approximation at very low event counts,
 * which is the regime logical-error-rate estimates live in.
 */
double wilsonHalfWidth(size_t successes, size_t trials);

} // namespace cyclone

#endif // CYCLONE_COMMON_STATS_H
