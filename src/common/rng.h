/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All stochastic components of the library (noise sampling, code search,
 * Monte-Carlo experiments) take an explicit Rng so results are reproducible
 * from a seed. The generator is xoshiro256** which is fast, high quality,
 * and trivially splittable for multithreaded sampling.
 */

#ifndef CYCLONE_COMMON_RNG_H
#define CYCLONE_COMMON_RNG_H

#include <cstdint>

namespace cyclone {

/** xoshiro256** pseudo-random generator with helper distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step to decorrelate nearby seeds
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) for bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Bernoulli draw with success probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Number of trials to skip until the next Bernoulli(p) success.
     *
     * Used for fast sparse sampling: returns a geometric variate g >= 0
     * such that trials [i, i+g) fail and trial i+g succeeds.
     */
    uint64_t
    geometricSkip(double p);

    /** Derive an independent generator (for per-thread streams). */
    Rng
    split()
    {
        return Rng(next() ^ 0xd1342543de82ef95ull);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

inline uint64_t
Rng::geometricSkip(double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return ~0ull;
    // Inverse-CDF sampling: floor(log(U) / log(1-p)).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double g = __builtin_log(u) / __builtin_log1p(-p);
    if (g > 9.0e18)
        return ~0ull;
    return static_cast<uint64_t>(g);
}

} // namespace cyclone

#endif // CYCLONE_COMMON_RNG_H
