#include "common/gf2.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

GF2Matrix::GF2Matrix(size_t rows, size_t cols)
    : cols_(cols), rows_(rows, BitVec(cols))
{}

GF2Matrix
GF2Matrix::identity(size_t n)
{
    GF2Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.set(i, i, true);
    return m;
}

GF2Matrix
GF2Matrix::fromRows(const std::vector<std::vector<int>>& rows, size_t cols)
{
    GF2Matrix m(rows.size(), cols);
    for (size_t r = 0; r < rows.size(); ++r) {
        CYCLONE_ASSERT(rows[r].size() == cols,
                       "fromRows: row " << r << " has " << rows[r].size()
                       << " entries, expected " << cols);
        for (size_t c = 0; c < cols; ++c)
            m.set(r, c, rows[r][c] & 1);
    }
    return m;
}

void
GF2Matrix::appendRow(const BitVec& row)
{
    CYCLONE_ASSERT(row.size() == cols_, "appendRow: length " << row.size()
                   << " != cols " << cols_);
    rows_.push_back(row);
}

GF2Matrix
GF2Matrix::transposed() const
{
    GF2Matrix t(cols_, rows());
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rows_[r].onesPositions())
            t.set(c, r, true);
    }
    return t;
}

GF2Matrix
GF2Matrix::multiply(const GF2Matrix& other) const
{
    CYCLONE_ASSERT(cols_ == other.rows(), "multiply: " << cols_
                   << " cols vs " << other.rows() << " rows");
    GF2Matrix out(rows(), other.cols());
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rows_[r].onesPositions())
            out.rows_[r] ^= other.rows_[c];
    }
    return out;
}

BitVec
GF2Matrix::multiply(const BitVec& vec) const
{
    CYCLONE_ASSERT(cols_ == vec.size(), "multiply: " << cols_
                   << " cols vs vector length " << vec.size());
    BitVec out(rows());
    for (size_t r = 0; r < rows(); ++r)
        out.set(r, rows_[r].dotParity(vec));
    return out;
}

GF2Matrix
GF2Matrix::kron(const GF2Matrix& other) const
{
    GF2Matrix out(rows() * other.rows(), cols_ * other.cols());
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rows_[r].onesPositions()) {
            for (size_t r2 = 0; r2 < other.rows(); ++r2) {
                for (size_t c2 : other.rows_[r2].onesPositions()) {
                    out.set(r * other.rows() + r2,
                            c * other.cols() + c2, true);
                }
            }
        }
    }
    return out;
}

GF2Matrix
GF2Matrix::hstack(const GF2Matrix& other) const
{
    CYCLONE_ASSERT(rows() == other.rows(), "hstack: row count mismatch "
                   << rows() << " vs " << other.rows());
    GF2Matrix out(rows(), cols_ + other.cols());
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rows_[r].onesPositions())
            out.set(r, c, true);
        for (size_t c : other.rows_[r].onesPositions())
            out.set(r, cols_ + c, true);
    }
    return out;
}

GF2Matrix
GF2Matrix::vstack(const GF2Matrix& other) const
{
    CYCLONE_ASSERT(cols_ == other.cols_, "vstack: col count mismatch "
                   << cols_ << " vs " << other.cols_);
    GF2Matrix out = *this;
    for (size_t r = 0; r < other.rows(); ++r)
        out.rows_.push_back(other.rows_[r]);
    return out;
}

size_t
GF2Matrix::rank() const
{
    GF2Matrix copy = *this;
    return copy.rowReduce().size();
}

std::vector<size_t>
GF2Matrix::rowReduce()
{
    std::vector<size_t> pivots;
    size_t pivot_row = 0;
    for (size_t col = 0; col < cols_ && pivot_row < rows(); ++col) {
        // Find a row at or below pivot_row with a 1 in this column.
        size_t sel = rows();
        for (size_t r = pivot_row; r < rows(); ++r) {
            if (rows_[r].get(col)) {
                sel = r;
                break;
            }
        }
        if (sel == rows())
            continue;
        std::swap(rows_[pivot_row], rows_[sel]);
        // Eliminate this column from every other row.
        for (size_t r = 0; r < rows(); ++r) {
            if (r != pivot_row && rows_[r].get(col))
                rows_[r] ^= rows_[pivot_row];
        }
        pivots.push_back(col);
        ++pivot_row;
    }
    return pivots;
}

std::vector<BitVec>
GF2Matrix::nullspaceBasis() const
{
    GF2Matrix reduced = *this;
    std::vector<size_t> pivots = reduced.rowReduce();

    std::vector<bool> is_pivot(cols_, false);
    for (size_t c : pivots)
        is_pivot[c] = true;

    std::vector<BitVec> basis;
    for (size_t free_col = 0; free_col < cols_; ++free_col) {
        if (is_pivot[free_col])
            continue;
        BitVec v(cols_);
        v.set(free_col, true);
        // Back-substitute: pivot variable p takes the value of the
        // free column's entry in the pivot's row.
        for (size_t i = 0; i < pivots.size(); ++i) {
            if (reduced.rows_[i].get(free_col))
                v.set(pivots[i], true);
        }
        basis.push_back(std::move(v));
    }
    return basis;
}

bool
GF2Matrix::solve(const BitVec& b, BitVec& x) const
{
    CYCLONE_ASSERT(b.size() == rows(), "solve: rhs length " << b.size()
                   << " != rows " << rows());
    // Row reduce the augmented matrix [A | b].
    GF2Matrix aug(rows(), cols_ + 1);
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rows_[r].onesPositions())
            aug.set(r, c, true);
        aug.set(r, cols_, b.get(r));
    }
    std::vector<size_t> pivots;
    size_t pivot_row = 0;
    for (size_t col = 0; col < cols_ && pivot_row < rows(); ++col) {
        size_t sel = rows();
        for (size_t r = pivot_row; r < rows(); ++r) {
            if (aug.get(r, col)) {
                sel = r;
                break;
            }
        }
        if (sel == rows())
            continue;
        std::swap(aug.rows_[pivot_row], aug.rows_[sel]);
        for (size_t r = 0; r < rows(); ++r) {
            if (r != pivot_row && aug.get(r, col))
                aug.rows_[r] ^= aug.rows_[pivot_row];
        }
        pivots.push_back(col);
        ++pivot_row;
    }
    // Inconsistent if a zero row has rhs 1.
    for (size_t r = pivot_row; r < rows(); ++r) {
        if (aug.get(r, cols_))
            return false;
    }
    x = BitVec(cols_);
    for (size_t i = 0; i < pivots.size(); ++i)
        x.set(pivots[i], aug.get(i, cols_));
    return true;
}

bool
GF2Matrix::isZero() const
{
    for (const BitVec& r : rows_) {
        if (!r.isZero())
            return false;
    }
    return true;
}

bool
GF2Matrix::operator==(const GF2Matrix& other) const
{
    return cols_ == other.cols_ && rows_ == other.rows_;
}

SparseGF2
GF2Matrix::toSparse() const
{
    SparseGF2 s(rows(), cols_);
    for (size_t r = 0; r < rows(); ++r)
        s.setRowSupport(r, rows_[r].onesPositions());
    return s;
}

SparseGF2::SparseGF2(size_t rows, size_t cols)
    : cols_(cols), rowSupports_(rows)
{}

void
SparseGF2::setRowSupport(size_t r, std::vector<size_t> support)
{
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()),
                  support.end());
    if (!support.empty()) {
        CYCLONE_ASSERT(support.back() < cols_, "setRowSupport: index "
                       << support.back() << " >= cols " << cols_);
    }
    rowSupports_[r] = std::move(support);
}

size_t
SparseGF2::nnz() const
{
    size_t total = 0;
    for (const auto& s : rowSupports_)
        total += s.size();
    return total;
}

size_t
SparseGF2::maxRowWeight() const
{
    size_t w = 0;
    for (const auto& s : rowSupports_)
        w = std::max(w, s.size());
    return w;
}

size_t
SparseGF2::maxColWeight() const
{
    std::vector<size_t> weights(cols_, 0);
    for (const auto& s : rowSupports_) {
        for (size_t c : s)
            ++weights[c];
    }
    size_t w = 0;
    for (size_t x : weights)
        w = std::max(w, x);
    return w;
}

std::vector<std::vector<size_t>>
SparseGF2::colSupports() const
{
    std::vector<std::vector<size_t>> cols(cols_);
    for (size_t r = 0; r < rowSupports_.size(); ++r) {
        for (size_t c : rowSupports_[r])
            cols[c].push_back(r);
    }
    return cols;
}

GF2Matrix
SparseGF2::toDense() const
{
    GF2Matrix m(rows(), cols_);
    for (size_t r = 0; r < rows(); ++r) {
        for (size_t c : rowSupports_[r])
            m.set(r, c, true);
    }
    return m;
}

SparseGF2
SparseGF2::transposed() const
{
    SparseGF2 t(cols_, rows());
    auto cols = colSupports();
    for (size_t c = 0; c < cols_; ++c)
        t.setRowSupport(c, cols[c]);
    return t;
}

BitVec
SparseGF2::multiply(const BitVec& e) const
{
    CYCLONE_ASSERT(e.size() == cols_, "multiply: vector length "
                   << e.size() << " != cols " << cols_);
    BitVec s(rows());
    for (size_t r = 0; r < rows(); ++r) {
        bool parity = false;
        for (size_t c : rowSupports_[r])
            parity ^= e.get(c);
        s.set(r, parity);
    }
    return s;
}

} // namespace cyclone
