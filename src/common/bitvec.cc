#include "common/bitvec.h"

#include <bit>

#include "common/logging.h"

namespace cyclone {

bool
BitVec::isZero() const
{
    for (uint64_t w : words_) {
        if (w)
            return false;
    }
    return true;
}

BitVec&
BitVec::operator^=(const BitVec& other)
{
    CYCLONE_ASSERT(bits_ == other.bits_, "BitVec length mismatch in xor: "
                   << bits_ << " vs " << other.bits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

BitVec&
BitVec::operator&=(const BitVec& other)
{
    CYCLONE_ASSERT(bits_ == other.bits_, "BitVec length mismatch in and: "
                   << bits_ << " vs " << other.bits_);
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

bool
BitVec::operator==(const BitVec& other) const
{
    return bits_ == other.bits_ && words_ == other.words_;
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words_)
        total += static_cast<size_t>(std::popcount(w));
    return total;
}

bool
BitVec::dotParity(const BitVec& other) const
{
    CYCLONE_ASSERT(bits_ == other.bits_, "BitVec length mismatch in dot: "
                   << bits_ << " vs " << other.bits_);
    uint64_t acc = 0;
    for (size_t i = 0; i < words_.size(); ++i)
        acc ^= words_[i] & other.words_[i];
    return std::popcount(acc) & 1;
}

void
BitVec::clear()
{
    for (uint64_t& w : words_)
        w = 0;
}

void
BitVec::resize(size_t bits)
{
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
    // Mask off any stale bits beyond the new length.
    if (bits & 63)
        words_.back() &= (uint64_t(1) << (bits & 63)) - 1;
}

void
BitVec::assignWords(const uint64_t* src, size_t count)
{
    CYCLONE_ASSERT(count == words_.size(),
                   "assignWords count mismatch: " << count << " vs "
                   << words_.size());
    for (size_t i = 0; i < count; ++i)
        words_[i] = src[i];
}

std::vector<size_t>
BitVec::onesPositions() const
{
    std::vector<size_t> out;
    for (size_t wi = 0; wi < words_.size(); ++wi) {
        uint64_t w = words_[wi];
        while (w) {
            int b = std::countr_zero(w);
            out.push_back(wi * 64 + static_cast<size_t>(b));
            w &= w - 1;
        }
    }
    return out;
}

std::string
BitVec::toString() const
{
    std::string s(bits_, '0');
    for (size_t i = 0; i < bits_; ++i) {
        if (get(i))
            s[i] = '1';
    }
    return s;
}

uint64_t
BitVec::hash() const
{
    uint64_t h = 0xcbf29ce484222325ull ^ bits_;
    for (uint64_t w : words_) {
        h ^= w;
        h *= 0x100000001b3ull;
        h ^= h >> 29;
    }
    return h;
}

BitVec
operator^(BitVec lhs, const BitVec& rhs)
{
    lhs ^= rhs;
    return lhs;
}

} // namespace cyclone
