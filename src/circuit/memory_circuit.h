/**
 * @file
 * Builder for Z-basis quantum memory experiments (Section V-B).
 *
 * The circuit prepares all data qubits in |0>, runs `rounds` noisy
 * syndrome-extraction rounds, then reads out all data qubits
 * transversally. Each round measures all X stabilizers (prep |+>,
 * CX ancilla->data per schedule slice, MX) and then all Z stabilizers
 * (prep |0>, CX data->ancilla, M) — the same X-rotation-then-Z-rotation
 * order Cyclone executes. Detectors compare consecutive stabilizer
 * outcomes; observables are logical-Z representatives evaluated on the
 * final data readout.
 */

#ifndef CYCLONE_CIRCUIT_MEMORY_CIRCUIT_H
#define CYCLONE_CIRCUIT_MEMORY_CIRCUIT_H

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"
#include "noise/noise_model.h"
#include "noise/pauli_twirl.h"
#include "qec/css_code.h"
#include "qec/schedule.h"

namespace cyclone {

/** Options for buildZMemoryCircuit. */
struct MemoryCircuitOptions
{
    /** Number of noisy syndrome rounds (0 = use the code distance). */
    size_t rounds = 0;

    /** Noise configuration. */
    NoiseModel noise;

    /**
     * Per-data-qubit idle twirls (one per qubit, schedule-derived; see
     * noise/schedule_noise.h). When non-empty this replaces the
     * uniform noise.idle channel: qubit q receives perQubitIdle[q]
     * each round. Size must equal the code's qubit count.
     */
    std::vector<PauliTwirl> perQubitIdle;
};

/**
 * Build the Z-memory experiment circuit for a code.
 *
 * Qubit layout: data qubits [0, n), X ancillas [n, n + mx), Z ancillas
 * [n + mx, n + mx + mz).
 *
 * @param code the CSS code under test
 * @param schedule per-round CX ordering; its slices are projected onto
 *        the X phase and the Z phase (see DESIGN.md)
 * @param options rounds and noise
 */
Circuit buildZMemoryCircuit(const CssCode& code,
                            const SyndromeSchedule& schedule,
                            const MemoryCircuitOptions& options);

/**
 * Build the X-memory experiment circuit: data prepared in |+>^n, X
 * stabilizers deterministic from round one, transversal X-basis
 * readout, logical-X observables. The dual of buildZMemoryCircuit.
 */
Circuit buildXMemoryCircuit(const CssCode& code,
                            const SyndromeSchedule& schedule,
                            const MemoryCircuitOptions& options);

} // namespace cyclone

#endif // CYCLONE_CIRCUIT_MEMORY_CIRCUIT_H
