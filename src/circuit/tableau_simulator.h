/**
 * @file
 * Aaronson-Gottesman (CHP) stabilizer tableau simulator.
 *
 * The Pauli-frame machinery elsewhere in this library is exact *given*
 * that every detector of a circuit is deterministic in the noiseless
 * case. This simulator closes that loop: it executes noiseless CSS
 * circuits with full stabilizer-state semantics — including genuinely
 * random measurement outcomes — so tests can verify that the memory
 * circuits' detectors and observables are in fact deterministic
 * (their measurement parities are constant across random branches).
 *
 * Complexity is the standard O(n^2) per measurement, fine for every
 * code in the catalog at small round counts.
 */

#ifndef CYCLONE_CIRCUIT_TABLEAU_SIMULATOR_H
#define CYCLONE_CIRCUIT_TABLEAU_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "common/rng.h"

namespace cyclone {

/** CHP-style stabilizer state over n qubits, initialized to |0...0>. */
class TableauSimulator
{
  public:
    /**
     * @param num_qubits register size
     * @param rng source of randomness for indeterminate measurements
     */
    TableauSimulator(size_t num_qubits, Rng& rng);

    size_t numQubits() const { return n_; }

    /** Hadamard. */
    void h(size_t q);

    /** Controlled-NOT. */
    void cx(size_t control, size_t target);

    /** Pauli X (used for reset corrections and fault injection). */
    void x(size_t q);

    /** Pauli Z. */
    void z(size_t q);

    /** Z-basis measurement; returns the outcome bit. */
    bool measureZ(size_t q);

    /** X-basis measurement (H - MZ - H). */
    bool measureX(size_t q);

    /** True if a Z measurement of q would be deterministic. */
    bool isZMeasurementDeterministic(size_t q) const;

    /** Reset to |0> (measure, correct). */
    void resetZ(size_t q);

    /** Reset to |+>. */
    void resetX(size_t q);

  private:
    void rowsum(size_t h_row, size_t i_row);

    size_t n_;
    Rng* rng_;
    /** Rows 0..n-1 destabilizers, n..2n-1 stabilizers. */
    std::vector<BitVec> xs_;
    std::vector<BitVec> zs_;
    BitVec phase_;
};

/** Result of checking a circuit's annotations under tableau semantics. */
struct StabilizerCircuitCheck
{
    bool detectorsDeterministic = true;
    bool observablesDeterministic = true;
    size_t shotsChecked = 0;
};

/**
 * Execute a *noiseless* circuit `shots` times with random measurement
 * branches and confirm every detector and observable parity is zero
 * each time (the builder's determinism contract). Error-channel ops
 * must have zero probability / be absent; they are ignored.
 */
StabilizerCircuitCheck
verifyStabilizerCircuit(const Circuit& circuit, size_t shots,
                        uint64_t seed);

} // namespace cyclone

#endif // CYCLONE_CIRCUIT_TABLEAU_SIMULATOR_H
