/**
 * @file
 * Stabilizer circuit intermediate representation for CSS syndrome
 * extraction experiments.
 *
 * The IR supports exactly the operations a CSS memory experiment needs:
 * Z/X-basis resets and measurements, CX, and Pauli error channels, plus
 * DETECTOR / OBSERVABLE annotations referencing absolute measurement
 * indices. This is the subset of Stim's language required by the paper,
 * implemented natively so Pauli-frame simulation and detector error
 * model extraction are exact.
 */

#ifndef CYCLONE_CIRCUIT_CIRCUIT_H
#define CYCLONE_CIRCUIT_CIRCUIT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cyclone {

/** Circuit operation kinds. */
enum class OpKind : uint8_t
{
    ResetZ,       ///< Reset qubit(s) to |0>.
    ResetX,       ///< Reset qubit(s) to |+>.
    MeasureZ,     ///< Z-basis measurement (flipped by X frame).
    MeasureX,     ///< X-basis measurement (flipped by Z frame).
    Cx,           ///< CNOT; targets come in (control, target) pairs.
    XError,       ///< X flip with probability p on each target.
    ZError,       ///< Z flip with probability p on each target.
    Depolarize1,  ///< Uniform single-qubit depolarizing, strength p.
    Depolarize2,  ///< Two-qubit depolarizing on (a, b) pairs, strength p.
    Pauli1,       ///< Biased Pauli channel with (px, py, pz).
    Detector,     ///< Parity of measurement records (targets = indices).
    Observable,   ///< Logical observable; params[0] = observable id.
};

/** One circuit operation. */
struct Op
{
    OpKind kind;
    /** Qubit indices, or measurement-record indices for annotations. */
    std::vector<uint32_t> targets;
    /** Channel probabilities: p in params[0]; Pauli1 uses all three. */
    double params[3] = {0.0, 0.0, 0.0};
};

/**
 * A flat list of operations acting on a fixed-size qubit register.
 *
 * Builder methods keep running counts of measurements, detectors and
 * observables so callers can reference records as they are created.
 */
class Circuit
{
  public:
    /** Create a circuit over `num_qubits` qubits. */
    explicit Circuit(size_t num_qubits);

    size_t numQubits() const { return numQubits_; }
    size_t numMeasurements() const { return numMeasurements_; }
    size_t numDetectors() const { return numDetectors_; }
    size_t numObservables() const { return numObservables_; }
    const std::vector<Op>& ops() const { return ops_; }

    /** Append a Z-basis reset. */
    void resetZ(uint32_t q);
    /** Append an X-basis reset. */
    void resetX(uint32_t q);

    /** Append a Z-basis measurement; returns its record index. */
    size_t measureZ(uint32_t q);
    /** Append an X-basis measurement; returns its record index. */
    size_t measureX(uint32_t q);

    /** Append a CNOT with the given control and target. */
    void cx(uint32_t control, uint32_t target);

    /** Append an X error channel of strength p. */
    void xError(uint32_t q, double p);
    /** Append a Z error channel of strength p. */
    void zError(uint32_t q, double p);
    /** Append single-qubit depolarizing of strength p. */
    void depolarize1(uint32_t q, double p);
    /** Append two-qubit depolarizing of strength p on (a, b). */
    void depolarize2(uint32_t a, uint32_t b, double p);
    /** Append a biased Pauli channel with probabilities (px, py, pz). */
    void pauli1(uint32_t q, double px, double py, double pz);

    /**
     * Append a detector over the given measurement-record indices;
     * returns the detector index.
     */
    size_t addDetector(std::vector<uint32_t> measurement_indices);

    /**
     * Append (or extend) a logical observable over measurement-record
     * indices; `id` must be < 64 (observables are stored as bit masks).
     */
    void addObservable(size_t id,
                       std::vector<uint32_t> measurement_indices);

    /** Count of error-channel operations (noise sites). */
    size_t numNoiseSites() const;

    /** Multi-line human-readable dump (Stim-flavored text). */
    std::string toString() const;

  private:
    size_t numQubits_;
    size_t numMeasurements_ = 0;
    size_t numDetectors_ = 0;
    size_t numObservables_ = 0;
    std::vector<Op> ops_;
};

} // namespace cyclone

#endif // CYCLONE_CIRCUIT_CIRCUIT_H
