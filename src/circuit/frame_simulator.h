/**
 * @file
 * Monte-Carlo Pauli-frame simulator.
 *
 * Tracks, per shot, the X and Z Pauli frame (deviation from the
 * noiseless reference execution) through the circuit and records which
 * measurement outcomes flip. Because every detector and observable in
 * the memory circuits built by this library is deterministic in the
 * noiseless case, detector values equal the parity of measurement
 * flips. Used for validation of the detector-error-model path and as
 * an alternative sampling backend.
 */

#ifndef CYCLONE_CIRCUIT_FRAME_SIMULATOR_H
#define CYCLONE_CIRCUIT_FRAME_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/bitvec.h"
#include "common/rng.h"

namespace cyclone {

/** Result of sampling a circuit's detectors and observables. */
struct DetectorSamples
{
    size_t numDetectors = 0;
    size_t numObservables = 0;
    /** One BitVec of detector values per shot. */
    std::vector<BitVec> detectors;
    /** One observable-flip mask per shot (bit i = observable i). */
    std::vector<uint64_t> observables;
};

/** Pauli-frame sampler for CSS circuits. */
class FrameSimulator
{
  public:
    explicit FrameSimulator(const Circuit& circuit);

    /** Sample `shots` executions, consuming randomness from `rng`. */
    DetectorSamples sample(size_t shots, Rng& rng) const;

    /**
     * Propagate a single deterministic Pauli fault injected before
     * operation `op_index` and return the detector/observable flips it
     * causes. `x_part` / `z_part` select the Pauli (X, Z or Y = both).
     * Used by tests to validate the DEM builder.
     */
    void propagateFault(size_t op_index, uint32_t qubit, bool x_part,
                        bool z_part, BitVec& detector_flips,
                        uint64_t& observable_mask) const;

  private:
    const Circuit& circuit_;
};

} // namespace cyclone

#endif // CYCLONE_CIRCUIT_FRAME_SIMULATOR_H
