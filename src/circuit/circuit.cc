#include "circuit/circuit.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace cyclone {

Circuit::Circuit(size_t num_qubits)
    : numQubits_(num_qubits)
{
    CYCLONE_ASSERT(num_qubits > 0, "circuit needs at least one qubit");
}

void
Circuit::resetZ(uint32_t q)
{
    CYCLONE_ASSERT(q < numQubits_, "resetZ target out of range");
    ops_.push_back({OpKind::ResetZ, {q}, {}});
}

void
Circuit::resetX(uint32_t q)
{
    CYCLONE_ASSERT(q < numQubits_, "resetX target out of range");
    ops_.push_back({OpKind::ResetX, {q}, {}});
}

size_t
Circuit::measureZ(uint32_t q)
{
    CYCLONE_ASSERT(q < numQubits_, "measureZ target out of range");
    ops_.push_back({OpKind::MeasureZ, {q}, {}});
    return numMeasurements_++;
}

size_t
Circuit::measureX(uint32_t q)
{
    CYCLONE_ASSERT(q < numQubits_, "measureX target out of range");
    ops_.push_back({OpKind::MeasureX, {q}, {}});
    return numMeasurements_++;
}

void
Circuit::cx(uint32_t control, uint32_t target)
{
    CYCLONE_ASSERT(control < numQubits_ && target < numQubits_,
                   "cx target out of range");
    CYCLONE_ASSERT(control != target, "cx control equals target");
    ops_.push_back({OpKind::Cx, {control, target}, {}});
}

void
Circuit::xError(uint32_t q, double p)
{
    if (p <= 0.0)
        return;
    ops_.push_back({OpKind::XError, {q}, {p, 0.0, 0.0}});
}

void
Circuit::zError(uint32_t q, double p)
{
    if (p <= 0.0)
        return;
    ops_.push_back({OpKind::ZError, {q}, {p, 0.0, 0.0}});
}

void
Circuit::depolarize1(uint32_t q, double p)
{
    if (p <= 0.0)
        return;
    ops_.push_back({OpKind::Depolarize1, {q}, {p, 0.0, 0.0}});
}

void
Circuit::depolarize2(uint32_t a, uint32_t b, double p)
{
    if (p <= 0.0)
        return;
    CYCLONE_ASSERT(a != b, "depolarize2 on identical qubits");
    ops_.push_back({OpKind::Depolarize2, {a, b}, {p, 0.0, 0.0}});
}

void
Circuit::pauli1(uint32_t q, double px, double py, double pz)
{
    if (px <= 0.0 && py <= 0.0 && pz <= 0.0)
        return;
    ops_.push_back({OpKind::Pauli1, {q}, {px, py, pz}});
}

size_t
Circuit::addDetector(std::vector<uint32_t> measurement_indices)
{
    for (uint32_t m : measurement_indices) {
        CYCLONE_ASSERT(m < numMeasurements_,
                       "detector references future measurement " << m);
    }
    ops_.push_back({OpKind::Detector, std::move(measurement_indices), {}});
    return numDetectors_++;
}

void
Circuit::addObservable(size_t id,
                       std::vector<uint32_t> measurement_indices)
{
    CYCLONE_ASSERT(id < 64, "observable id " << id << " exceeds 63");
    for (uint32_t m : measurement_indices) {
        CYCLONE_ASSERT(m < numMeasurements_,
                       "observable references future measurement " << m);
    }
    Op op{OpKind::Observable, std::move(measurement_indices), {}};
    op.params[0] = static_cast<double>(id);
    ops_.push_back(std::move(op));
    numObservables_ = std::max(numObservables_, id + 1);
}

size_t
Circuit::numNoiseSites() const
{
    size_t count = 0;
    for (const Op& op : ops_) {
        switch (op.kind) {
          case OpKind::XError:
          case OpKind::ZError:
          case OpKind::Depolarize1:
          case OpKind::Depolarize2:
          case OpKind::Pauli1:
            ++count;
            break;
          default:
            break;
        }
    }
    return count;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    for (const Op& op : ops_) {
        switch (op.kind) {
          case OpKind::ResetZ: os << "R"; break;
          case OpKind::ResetX: os << "RX"; break;
          case OpKind::MeasureZ: os << "M"; break;
          case OpKind::MeasureX: os << "MX"; break;
          case OpKind::Cx: os << "CX"; break;
          case OpKind::XError: os << "X_ERROR(" << op.params[0] << ")";
            break;
          case OpKind::ZError: os << "Z_ERROR(" << op.params[0] << ")";
            break;
          case OpKind::Depolarize1:
            os << "DEPOLARIZE1(" << op.params[0] << ")";
            break;
          case OpKind::Depolarize2:
            os << "DEPOLARIZE2(" << op.params[0] << ")";
            break;
          case OpKind::Pauli1:
            os << "PAULI_CHANNEL_1(" << op.params[0] << ","
               << op.params[1] << "," << op.params[2] << ")";
            break;
          case OpKind::Detector: os << "DETECTOR"; break;
          case OpKind::Observable:
            os << "OBSERVABLE_INCLUDE(" << op.params[0] << ")";
            break;
        }
        for (uint32_t t : op.targets)
            os << " " << t;
        os << "\n";
    }
    return os.str();
}

} // namespace cyclone
