#include "circuit/frame_simulator.h"

#include "common/logging.h"

namespace cyclone {

FrameSimulator::FrameSimulator(const Circuit& circuit)
    : circuit_(circuit)
{}

namespace {

/** Single-shot frame state. */
struct Frame
{
    explicit Frame(size_t qubits)
        : x(qubits), z(qubits)
    {}

    BitVec x;
    BitVec z;
};

} // namespace

DetectorSamples
FrameSimulator::sample(size_t shots, Rng& rng) const
{
    DetectorSamples out;
    out.numDetectors = circuit_.numDetectors();
    out.numObservables = circuit_.numObservables();
    out.detectors.reserve(shots);
    out.observables.reserve(shots);

    for (size_t shot = 0; shot < shots; ++shot) {
        Frame frame(circuit_.numQubits());
        BitVec meas_flips(circuit_.numMeasurements());
        BitVec dets(circuit_.numDetectors());
        uint64_t obs = 0;
        size_t meas_index = 0;
        size_t det_index = 0;

        for (const Op& op : circuit_.ops()) {
            switch (op.kind) {
              case OpKind::ResetZ:
              case OpKind::ResetX:
                for (uint32_t q : op.targets) {
                    frame.x.set(q, false);
                    frame.z.set(q, false);
                }
                break;
              case OpKind::MeasureZ:
                meas_flips.set(meas_index++, frame.x.get(op.targets[0]));
                break;
              case OpKind::MeasureX:
                meas_flips.set(meas_index++, frame.z.get(op.targets[0]));
                break;
              case OpKind::Cx: {
                const uint32_t c = op.targets[0];
                const uint32_t t = op.targets[1];
                if (frame.x.get(c))
                    frame.x.flip(t);
                if (frame.z.get(t))
                    frame.z.flip(c);
                break;
              }
              case OpKind::XError:
                if (rng.bernoulli(op.params[0]))
                    frame.x.flip(op.targets[0]);
                break;
              case OpKind::ZError:
                if (rng.bernoulli(op.params[0]))
                    frame.z.flip(op.targets[0]);
                break;
              case OpKind::Depolarize1:
                if (rng.bernoulli(op.params[0])) {
                    // Uniform over X, Y, Z.
                    switch (rng.below(3)) {
                      case 0: frame.x.flip(op.targets[0]); break;
                      case 1: frame.x.flip(op.targets[0]);
                              frame.z.flip(op.targets[0]); break;
                      default: frame.z.flip(op.targets[0]); break;
                    }
                }
                break;
              case OpKind::Depolarize2:
                if (rng.bernoulli(op.params[0])) {
                    // Uniform over the 15 nontrivial two-qubit Paulis.
                    uint64_t pauli = 1 + rng.below(15);
                    const uint32_t a = op.targets[0];
                    const uint32_t b = op.targets[1];
                    // Bits: 0 = Xa, 1 = Za, 2 = Xb, 3 = Zb.
                    if (pauli & 1) frame.x.flip(a);
                    if (pauli & 2) frame.z.flip(a);
                    if (pauli & 4) frame.x.flip(b);
                    if (pauli & 8) frame.z.flip(b);
                }
                break;
              case OpKind::Pauli1: {
                const double u = rng.uniform();
                const double px = op.params[0];
                const double py = op.params[1];
                const double pz = op.params[2];
                if (u < px) {
                    frame.x.flip(op.targets[0]);
                } else if (u < px + py) {
                    frame.x.flip(op.targets[0]);
                    frame.z.flip(op.targets[0]);
                } else if (u < px + py + pz) {
                    frame.z.flip(op.targets[0]);
                }
                break;
              }
              case OpKind::Detector: {
                bool parity = false;
                for (uint32_t m : op.targets)
                    parity ^= meas_flips.get(m);
                dets.set(det_index++, parity);
                break;
              }
              case OpKind::Observable: {
                bool parity = false;
                for (uint32_t m : op.targets)
                    parity ^= meas_flips.get(m);
                if (parity)
                    obs ^= uint64_t(1) << static_cast<uint64_t>(
                        op.params[0]);
                break;
              }
            }
        }
        out.detectors.push_back(std::move(dets));
        out.observables.push_back(obs);
    }
    return out;
}

void
FrameSimulator::propagateFault(size_t op_index, uint32_t qubit,
                               bool x_part, bool z_part,
                               BitVec& detector_flips,
                               uint64_t& observable_mask) const
{
    Frame frame(circuit_.numQubits());
    BitVec meas_flips(circuit_.numMeasurements());
    detector_flips = BitVec(circuit_.numDetectors());
    observable_mask = 0;
    size_t meas_index = 0;
    size_t det_index = 0;
    bool injected = false;

    for (size_t i = 0; i < circuit_.ops().size(); ++i) {
        if (i == op_index && !injected) {
            if (x_part)
                frame.x.flip(qubit);
            if (z_part)
                frame.z.flip(qubit);
            injected = true;
        }
        const Op& op = circuit_.ops()[i];
        switch (op.kind) {
          case OpKind::ResetZ:
          case OpKind::ResetX:
            for (uint32_t q : op.targets) {
                frame.x.set(q, false);
                frame.z.set(q, false);
            }
            break;
          case OpKind::MeasureZ:
            meas_flips.set(meas_index++, frame.x.get(op.targets[0]));
            break;
          case OpKind::MeasureX:
            meas_flips.set(meas_index++, frame.z.get(op.targets[0]));
            break;
          case OpKind::Cx: {
            const uint32_t c = op.targets[0];
            const uint32_t t = op.targets[1];
            if (frame.x.get(c))
                frame.x.flip(t);
            if (frame.z.get(t))
                frame.z.flip(c);
            break;
          }
          case OpKind::Detector: {
            bool parity = false;
            for (uint32_t m : op.targets)
                parity ^= meas_flips.get(m);
            detector_flips.set(det_index++, parity);
            break;
          }
          case OpKind::Observable: {
            bool parity = false;
            for (uint32_t m : op.targets)
                parity ^= meas_flips.get(m);
            if (parity)
                observable_mask ^= uint64_t(1)
                    << static_cast<uint64_t>(op.params[0]);
            break;
          }
          default:
            break; // Noise channels contribute nothing deterministically.
        }
    }
}

} // namespace cyclone
