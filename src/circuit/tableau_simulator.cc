#include "circuit/tableau_simulator.h"

#include "common/logging.h"

namespace cyclone {

TableauSimulator::TableauSimulator(size_t num_qubits, Rng& rng)
    : n_(num_qubits), rng_(&rng), phase_(2 * num_qubits)
{
    CYCLONE_ASSERT(n_ > 0, "tableau needs at least one qubit");
    xs_.assign(2 * n_, BitVec(n_));
    zs_.assign(2 * n_, BitVec(n_));
    for (size_t i = 0; i < n_; ++i) {
        xs_[i].set(i, true);        // destabilizer i = X_i
        zs_[n_ + i].set(i, true);   // stabilizer i = Z_i
    }
}

void
TableauSimulator::h(size_t q)
{
    for (size_t row = 0; row < 2 * n_; ++row) {
        const bool x = xs_[row].get(q);
        const bool z = zs_[row].get(q);
        if (x && z)
            phase_.flip(row);
        xs_[row].set(q, z);
        zs_[row].set(q, x);
    }
}

void
TableauSimulator::cx(size_t control, size_t target)
{
    for (size_t row = 0; row < 2 * n_; ++row) {
        const bool xc = xs_[row].get(control);
        const bool zc = zs_[row].get(control);
        const bool xt = xs_[row].get(target);
        const bool zt = zs_[row].get(target);
        if (xc && zt && (xt == zc))
            phase_.flip(row);
        xs_[row].set(target, xt ^ xc);
        zs_[row].set(control, zc ^ zt);
    }
}

void
TableauSimulator::x(size_t q)
{
    // X_q anticommutes with rows containing Z_q.
    for (size_t row = 0; row < 2 * n_; ++row) {
        if (zs_[row].get(q))
            phase_.flip(row);
    }
}

void
TableauSimulator::z(size_t q)
{
    for (size_t row = 0; row < 2 * n_; ++row) {
        if (xs_[row].get(q))
            phase_.flip(row);
    }
}

void
TableauSimulator::rowsum(size_t h_row, size_t i_row)
{
    // Multiply row h by row i, tracking the phase exponent mod 4.
    int exponent = (phase_.get(h_row) ? 2 : 0) +
                   (phase_.get(i_row) ? 2 : 0);
    for (size_t q = 0; q < n_; ++q) {
        const int x1 = xs_[i_row].get(q), z1 = zs_[i_row].get(q);
        const int x2 = xs_[h_row].get(q), z2 = zs_[h_row].get(q);
        // Aaronson-Gottesman g-function.
        if (x1 == 1 && z1 == 0) {
            exponent += z2 * (2 * x2 - 1);
        } else if (x1 == 0 && z1 == 1) {
            exponent += x2 * (1 - 2 * z2);
        } else if (x1 == 1 && z1 == 1) {
            exponent += z2 - x2;
        }
    }
    exponent = ((exponent % 4) + 4) % 4;
    CYCLONE_ASSERT(exponent == 0 || exponent == 2,
                   "rowsum produced imaginary phase");
    phase_.set(h_row, exponent == 2);
    xs_[h_row] ^= xs_[i_row];
    zs_[h_row] ^= zs_[i_row];
}

bool
TableauSimulator::isZMeasurementDeterministic(size_t q) const
{
    for (size_t p = n_; p < 2 * n_; ++p) {
        if (xs_[p].get(q))
            return false;
    }
    return true;
}

bool
TableauSimulator::measureZ(size_t q)
{
    // Find a stabilizer anticommuting with Z_q.
    size_t pivot = 2 * n_;
    for (size_t p = n_; p < 2 * n_; ++p) {
        if (xs_[p].get(q)) {
            pivot = p;
            break;
        }
    }
    if (pivot < 2 * n_) {
        // Random outcome.
        for (size_t i = 0; i < 2 * n_; ++i) {
            if (i != pivot && xs_[i].get(q))
                rowsum(i, pivot);
        }
        // Destabilizer slot takes the old stabilizer row.
        xs_[pivot - n_] = xs_[pivot];
        zs_[pivot - n_] = zs_[pivot];
        phase_.set(pivot - n_, phase_.get(pivot));
        // New stabilizer = +-Z_q with a random sign.
        const bool outcome = rng_->bernoulli(0.5);
        xs_[pivot].clear();
        zs_[pivot].clear();
        zs_[pivot].set(q, true);
        phase_.set(pivot, outcome);
        return outcome;
    }
    // Deterministic outcome: accumulate into a scratch row. Append a
    // temporary row pair to reuse rowsum.
    xs_.push_back(BitVec(n_));
    zs_.push_back(BitVec(n_));
    phase_.resize(2 * n_ + 1);
    const size_t scratch = 2 * n_;
    for (size_t i = 0; i < n_; ++i) {
        if (xs_[i].get(q))
            rowsum(scratch, i + n_);
    }
    const bool outcome = phase_.get(scratch);
    xs_.pop_back();
    zs_.pop_back();
    phase_.resize(2 * n_);
    return outcome;
}

bool
TableauSimulator::measureX(size_t q)
{
    h(q);
    const bool outcome = measureZ(q);
    h(q);
    return outcome;
}

void
TableauSimulator::resetZ(size_t q)
{
    if (measureZ(q))
        x(q);
}

void
TableauSimulator::resetX(size_t q)
{
    resetZ(q);
    h(q);
}

StabilizerCircuitCheck
verifyStabilizerCircuit(const Circuit& circuit, size_t shots,
                        uint64_t seed)
{
    StabilizerCircuitCheck check;
    Rng rng(seed);
    for (size_t shot = 0; shot < shots; ++shot) {
        TableauSimulator sim(circuit.numQubits(), rng);
        BitVec outcomes(circuit.numMeasurements());
        size_t meas_index = 0;
        for (const Op& op : circuit.ops()) {
            switch (op.kind) {
              case OpKind::ResetZ:
                for (uint32_t q : op.targets)
                    sim.resetZ(q);
                break;
              case OpKind::ResetX:
                for (uint32_t q : op.targets)
                    sim.resetX(q);
                break;
              case OpKind::Cx:
                sim.cx(op.targets[0], op.targets[1]);
                break;
              case OpKind::MeasureZ:
                outcomes.set(meas_index++,
                             sim.measureZ(op.targets[0]));
                break;
              case OpKind::MeasureX:
                outcomes.set(meas_index++,
                             sim.measureX(op.targets[0]));
                break;
              case OpKind::Detector: {
                bool parity = false;
                for (uint32_t m : op.targets)
                    parity ^= outcomes.get(m);
                if (parity)
                    check.detectorsDeterministic = false;
                break;
              }
              case OpKind::Observable: {
                bool parity = false;
                for (uint32_t m : op.targets)
                    parity ^= outcomes.get(m);
                if (parity)
                    check.observablesDeterministic = false;
                break;
              }
              default:
                // Noise channels must be absent in verification mode.
                CYCLONE_ASSERT(op.params[0] <= 0.0 &&
                               op.params[1] <= 0.0 &&
                               op.params[2] <= 0.0,
                               "verifyStabilizerCircuit requires a "
                               "noiseless circuit");
                break;
            }
        }
        ++check.shotsChecked;
    }
    return check;
}

} // namespace cyclone
