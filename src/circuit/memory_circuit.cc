#include "circuit/memory_circuit.h"

#include <vector>

#include "common/logging.h"

namespace cyclone {

namespace {

/**
 * Shared builder for both memory bases.
 *
 * For Z memory the Z stabilizers are deterministic from round one and
 * the final readout is transversal M with logical-Z observables; for
 * X memory the roles are mirrored. The per-round phase order is
 * always X rotation then Z rotation (Cyclone's execution order).
 */
Circuit
buildMemoryCircuit(const CssCode& code, const SyndromeSchedule& schedule,
                   const MemoryCircuitOptions& options, bool z_basis)
{
    const size_t n = code.numQubits();
    const size_t mx = code.numXStabs();
    const size_t mz = code.numZStabs();
    const size_t rounds = options.rounds > 0
        ? options.rounds
        : (code.nominalDistance() > 0 ? code.nominalDistance() : 3);
    const NoiseModel& noise = options.noise;

    CYCLONE_ASSERT(schedule.isValidFor(code),
                   "schedule does not match code " << code.name());
    CYCLONE_ASSERT(options.perQubitIdle.empty() ||
                       options.perQubitIdle.size() == n,
                   "perQubitIdle must have one twirl per data qubit ("
                   << options.perQubitIdle.size() << " vs " << n << ")");

    auto x_anc = [&](size_t i) { return static_cast<uint32_t>(n + i); };
    auto z_anc = [&](size_t i) {
        return static_cast<uint32_t>(n + mx + i);
    };

    Circuit circuit(n + mx + mz);

    // Project the schedule onto per-kind slice lists once.
    std::vector<std::vector<ScheduledGate>> x_slices, z_slices;
    for (const auto& slice : schedule.slices()) {
        std::vector<ScheduledGate> xs, zs;
        for (const ScheduledGate& g : slice) {
            (g.kind == StabKind::X ? xs : zs).push_back(g);
        }
        if (!xs.empty())
            x_slices.push_back(std::move(xs));
        if (!zs.empty())
            z_slices.push_back(std::move(zs));
    }

    // Data preparation in the memory basis.
    for (size_t q = 0; q < n; ++q) {
        const auto qu = static_cast<uint32_t>(q);
        if (z_basis) {
            circuit.resetZ(qu);
            circuit.xError(qu, noise.pPrep());
        } else {
            circuit.resetX(qu);
            circuit.zError(qu, noise.pPrep());
        }
    }

    // Latest ancilla measurement per stabilizer, per kind.
    std::vector<size_t> last_x_meas(mx, SIZE_MAX);
    std::vector<size_t> last_z_meas(mz, SIZE_MAX);

    for (size_t round = 0; round < rounds; ++round) {
        // ---- X rotation: prepare, entangle, measure X ancillas. ----
        for (size_t i = 0; i < mx; ++i) {
            circuit.resetX(x_anc(i));
            circuit.zError(x_anc(i), noise.pPrep());
        }
        for (const auto& slice : x_slices) {
            for (const ScheduledGate& g : slice) {
                const uint32_t anc = x_anc(g.stabIndex);
                const uint32_t dat = static_cast<uint32_t>(g.data);
                circuit.cx(anc, dat);
                circuit.depolarize2(anc, dat, noise.p2());
            }
        }
        std::vector<size_t> x_meas(mx);
        for (size_t i = 0; i < mx; ++i) {
            circuit.zError(x_anc(i), noise.pMeas());
            x_meas[i] = circuit.measureX(x_anc(i));
        }

        // ---- Z rotation: prepare, entangle, measure Z ancillas. ----
        for (size_t i = 0; i < mz; ++i) {
            circuit.resetZ(z_anc(i));
            circuit.xError(z_anc(i), noise.pPrep());
        }
        for (const auto& slice : z_slices) {
            for (const ScheduledGate& g : slice) {
                const uint32_t anc = z_anc(g.stabIndex);
                const uint32_t dat = static_cast<uint32_t>(g.data);
                circuit.cx(dat, anc);
                circuit.depolarize2(dat, anc, noise.p2());
            }
        }
        std::vector<size_t> z_meas(mz);
        for (size_t i = 0; i < mz; ++i) {
            circuit.xError(z_anc(i), noise.pMeas());
            z_meas[i] = circuit.measureZ(z_anc(i));
        }

        // ---- Idle decoherence on data for the round's latency:
        // schedule-derived per-qubit twirls when provided, else the
        // uniform per-round channel. ----
        if (!options.perQubitIdle.empty()) {
            for (size_t q = 0; q < n; ++q) {
                const PauliTwirl& twirl = options.perQubitIdle[q];
                if (twirl.total() > 0.0) {
                    circuit.pauli1(static_cast<uint32_t>(q), twirl.px,
                                   twirl.py, twirl.pz);
                }
            }
        } else if (noise.idle.total() > 0.0) {
            for (size_t q = 0; q < n; ++q) {
                circuit.pauli1(static_cast<uint32_t>(q), noise.idle.px,
                               noise.idle.py, noise.idle.pz);
            }
        }

        // ---- Detectors. ----
        // The memory-basis stabilizers are deterministic from round
        // one; the dual kind only compares consecutive rounds.
        for (size_t i = 0; i < mz; ++i) {
            if (z_basis || last_z_meas[i] != SIZE_MAX) {
                std::vector<uint32_t> refs{
                    static_cast<uint32_t>(z_meas[i])};
                if (last_z_meas[i] != SIZE_MAX)
                    refs.push_back(
                        static_cast<uint32_t>(last_z_meas[i]));
                circuit.addDetector(std::move(refs));
            }
            last_z_meas[i] = z_meas[i];
        }
        for (size_t i = 0; i < mx; ++i) {
            if (!z_basis || last_x_meas[i] != SIZE_MAX) {
                std::vector<uint32_t> refs{
                    static_cast<uint32_t>(x_meas[i])};
                if (last_x_meas[i] != SIZE_MAX)
                    refs.push_back(
                        static_cast<uint32_t>(last_x_meas[i]));
                circuit.addDetector(std::move(refs));
            }
            last_x_meas[i] = x_meas[i];
        }
    }

    // ---- Final transversal data readout in the memory basis. ----
    std::vector<size_t> data_meas(n);
    for (size_t q = 0; q < n; ++q) {
        const auto qu = static_cast<uint32_t>(q);
        if (z_basis) {
            circuit.xError(qu, noise.pMeas());
            data_meas[q] = circuit.measureZ(qu);
        } else {
            circuit.zError(qu, noise.pMeas());
            data_meas[q] = circuit.measureX(qu);
        }
    }

    // Memory-basis stabilizers recomputed from data must match their
    // last ancilla measurement.
    const SparseGF2& closing = z_basis ? code.hz() : code.hx();
    const std::vector<size_t>& closing_meas =
        z_basis ? last_z_meas : last_x_meas;
    for (size_t i = 0; i < closing.rows(); ++i) {
        std::vector<uint32_t> refs{
            static_cast<uint32_t>(closing_meas[i])};
        for (size_t q : closing.rowSupport(i))
            refs.push_back(static_cast<uint32_t>(data_meas[q]));
        circuit.addDetector(std::move(refs));
    }

    // Logical observables of the memory basis.
    const auto& logicals = z_basis ? code.logicalZ() : code.logicalX();
    for (size_t j = 0; j < logicals.size(); ++j) {
        std::vector<uint32_t> refs;
        for (size_t q : logicals[j].onesPositions())
            refs.push_back(static_cast<uint32_t>(data_meas[q]));
        circuit.addObservable(j, std::move(refs));
    }

    return circuit;
}

} // namespace

Circuit
buildZMemoryCircuit(const CssCode& code, const SyndromeSchedule& schedule,
                    const MemoryCircuitOptions& options)
{
    return buildMemoryCircuit(code, schedule, options, true);
}

Circuit
buildXMemoryCircuit(const CssCode& code, const SyndromeSchedule& schedule,
                    const MemoryCircuitOptions& options)
{
    return buildMemoryCircuit(code, schedule, options, false);
}

} // namespace cyclone
