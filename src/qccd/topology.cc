#include "qccd/topology.h"

#include <deque>

#include "common/logging.h"

namespace cyclone {

Topology::Topology(std::string name)
    : name_(std::move(name))
{}

NodeId
Topology::addTrap(size_t capacity)
{
    CYCLONE_ASSERT(capacity >= 1, "trap capacity must be >= 1");
    const NodeId id = nodes_.size();
    nodes_.push_back({NodeKind::Trap, capacity});
    adjacency_.emplace_back();
    traps_.push_back(id);
    return id;
}

NodeId
Topology::addJunction()
{
    const NodeId id = nodes_.size();
    nodes_.push_back({NodeKind::Junction, 0});
    adjacency_.emplace_back();
    junctions_.push_back(id);
    return id;
}

EdgeId
Topology::addEdge(NodeId a, NodeId b)
{
    CYCLONE_ASSERT(a < nodes_.size() && b < nodes_.size(),
                   "edge endpoint out of range");
    CYCLONE_ASSERT(a != b, "self-loop edge");
    const EdgeId id = edges_.size();
    edges_.push_back({a, b});
    adjacency_[a].push_back({b, id});
    adjacency_[b].push_back({a, id});
    return id;
}

size_t
Topology::totalCapacity() const
{
    size_t total = 0;
    for (NodeId t : traps_)
        total += nodes_[t].capacity;
    return total;
}

void
Topology::validate() const
{
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const size_t deg = adjacency_[id].size();
        if (nodes_[id].kind == NodeKind::Trap && deg > 2) {
            CYCLONE_FATAL("trap " << id << " in '" << name_
                          << "' has degree " << deg << " (max 2)");
        }
        if (nodes_[id].kind == NodeKind::Junction && deg > 4) {
            CYCLONE_FATAL("junction " << id << " in '" << name_
                          << "' has degree " << deg << " (max 4)");
        }
    }
}

std::vector<NodeId>
Topology::shortestPath(NodeId from, NodeId to) const
{
    CYCLONE_ASSERT(from < nodes_.size() && to < nodes_.size(),
                   "path endpoint out of range");
    if (from == to)
        return {from};
    std::vector<NodeId> parent(nodes_.size(), SIZE_MAX);
    std::deque<NodeId> frontier{from};
    parent[from] = from;
    while (!frontier.empty()) {
        const NodeId cur = frontier.front();
        frontier.pop_front();
        for (const Neighbor& nb : adjacency_[cur]) {
            if (parent[nb.node] != SIZE_MAX)
                continue;
            parent[nb.node] = cur;
            if (nb.node == to) {
                std::vector<NodeId> path{to};
                NodeId walk = to;
                while (walk != from) {
                    walk = parent[walk];
                    path.push_back(walk);
                }
                return {path.rbegin(), path.rend()};
            }
            frontier.push_back(nb.node);
        }
    }
    return {};
}

} // namespace cyclone
