/**
 * @file
 * QCCD operation timing model (Section II-B1 of the paper).
 *
 * Shuttling primitives: split 80 us, move 10 us, merge 80 us. Junction
 * crossing depends on junction degree: 10 / 100 / 120 us for degrees
 * 2 / 3 / 4. Two-qubit gate time grows with the chain length of the
 * trap executing it, mildly below a knee (~15 ions) and steeply above
 * it ("gate times scale very poorly after capacities greater than
 * around 15", Section IV-A). All constants are tunable; `scale`
 * uniformly shortens gate and shuttling times (the Fig. 18 sweep) and
 * `junctionScale` shortens only junction crossings (the Fig. 9 sweep).
 */

#ifndef CYCLONE_QCCD_DURATIONS_H
#define CYCLONE_QCCD_DURATIONS_H

#include <cstddef>

namespace cyclone {

/**
 * Chain-length-dependent two-qubit gate time model.
 *
 * Frequency-modulated gates keep a near-constant duration for short
 * chains (the paper notes GateSwap cost "is constant for chain length
 * 12 and under"), then degrade polynomially past the knee.
 */
struct GateTimeModel
{
    /** Two-qubit gate time below the knee, microseconds. */
    double baseUs = 120.0;
    /** Chain length beyond which gate times blow up. */
    double kneeLength = 13.0;
    /** Super-knee growth exponent: t = baseUs * (L/knee)^k. */
    double kneeExponent = 2.0;

    /** Two-qubit gate duration for a chain of `chain_length` ions. */
    double twoQubitUs(size_t chain_length) const;
};

/** Complete set of QCCD operation durations. */
struct Durations
{
    double splitUs = 80.0;
    double moveUs = 10.0;
    double mergeUs = 80.0;
    double junctionDeg2Us = 10.0;
    double junctionDeg3Us = 100.0;
    double junctionDeg4Us = 120.0;
    double oneQubitGateUs = 10.0;
    double measureUs = 120.0;
    double prepUs = 10.0;

    GateTimeModel gate;

    /** Uniform gate+shuttle reduction factor (1.0 = nominal). */
    double scale = 1.0;
    /** Additional junction-crossing reduction factor. */
    double junctionScale = 1.0;

    /** Junction crossing time for a junction of the given degree. */
    double junctionCrossUs(size_t degree) const;

    /** Scaled two-qubit gate time at a chain length. */
    double twoQubitGateUs(size_t chain_length) const;

    /** Scaled split time. */
    double split() const { return splitUs * scale; }
    /** Scaled move time (one edge segment). */
    double move() const { return moveUs * scale; }
    /** Scaled merge time. */
    double merge() const { return mergeUs * scale; }
    /** Scaled measurement time. */
    double measure() const { return measureUs * scale; }
    /** Scaled preparation time. */
    double prep() const { return prepUs * scale; }
};

} // namespace cyclone

#endif // CYCLONE_QCCD_DURATIONS_H
