/**
 * @file
 * The device topologies explored in the paper (Figs. 4, 8, 11).
 *
 *  - Baseline grid (Fig. 4b): an l x l grid of traps. Horizontally
 *    adjacent traps are linked through a junction, and those junctions
 *    also chain vertically, giving "additional columns of vertical
 *    junctions between each trap". Horizontal transit beyond one hop
 *    must pass through traps — the source of trap roadblocks.
 *  - Alternate grid (Fig. 4c): rows of traps stitched into a global
 *    serpentine loop with L-shaped (degree-2) junctions at row ends
 *    plus periodic vertical rungs, after [3].
 *  - Ring (Fig. 11a): the Cyclone hardware — traps in a cycle with one
 *    L junction between neighbors.
 *  - Junction mesh (Fig. 8): a g x g all-junction grid with traps
 *    hanging off the perimeter; converts trap roadblocks into junction
 *    roadblocks at quadratic junction cost.
 */

#ifndef CYCLONE_QCCD_TOPOLOGY_BUILDERS_H
#define CYCLONE_QCCD_TOPOLOGY_BUILDERS_H

#include <cstddef>

#include "qccd/topology.h"

namespace cyclone {

/** Build the baseline l x l grid with vertical junction columns. */
Topology buildBaselineGrid(size_t rows, size_t cols, size_t capacity);

/**
 * Build the alternate serpentine grid with L junctions and vertical
 * rungs every `rung_stride` columns (0 disables rungs).
 */
Topology buildAlternateGrid(size_t rows, size_t cols, size_t capacity,
                            size_t rung_stride = 4);

/** Build the Cyclone ring of `num_traps` traps. */
Topology buildRing(size_t num_traps, size_t capacity);

/**
 * Build the mesh junction network for `num_traps` perimeter traps.
 * The mesh is g x g with g = ceil(num_traps / 4) + 1, so every trap
 * attaches to a distinct perimeter junction.
 */
Topology buildJunctionMesh(size_t num_traps, size_t capacity);

} // namespace cyclone

#endif // CYCLONE_QCCD_TOPOLOGY_BUILDERS_H
