#include "qccd/topology_builders.h"

#include <sstream>

#include "common/logging.h"

namespace cyclone {

Topology
buildBaselineGrid(size_t rows, size_t cols, size_t capacity)
{
    CYCLONE_ASSERT(rows >= 1 && cols >= 1, "grid dims must be positive");
    std::ostringstream name;
    name << "baseline-grid-" << rows << "x" << cols;
    Topology topo(name.str());

    // Traps, row major.
    std::vector<std::vector<NodeId>> trap(rows, std::vector<NodeId>(cols));
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c)
            trap[r][c] = topo.addTrap(capacity);
    }
    // A junction between each horizontally adjacent pair, chained
    // vertically into junction columns.
    std::vector<std::vector<NodeId>> junc(
        rows, std::vector<NodeId>(cols > 0 ? cols - 1 : 0));
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c + 1 < cols; ++c) {
            junc[r][c] = topo.addJunction();
            topo.addEdge(trap[r][c], junc[r][c]);
            topo.addEdge(junc[r][c], trap[r][c + 1]);
        }
    }
    for (size_t r = 0; r + 1 < rows; ++r) {
        for (size_t c = 0; c + 1 < cols; ++c)
            topo.addEdge(junc[r][c], junc[r + 1][c]);
    }
    topo.validate();
    return topo;
}

Topology
buildAlternateGrid(size_t rows, size_t cols, size_t capacity,
                   size_t rung_stride)
{
    // Alternating horizontal/vertical corridor grid (Fig. 4c): each
    // row is a corridor of carrier junctions, each carrying one trap
    // (degree 3). Every `rung_stride`-th carrier gives up its trap
    // slot for a vertical rung to the row below (degree 4). Transit
    // never passes through a trap, so all contention is junction
    // contention, and the rungs keep paths O(sqrt(n)).
    CYCLONE_ASSERT(rows >= 1 && cols >= 1, "grid dims must be positive");
    if (rung_stride == 0)
        rung_stride = 4;
    std::ostringstream name;
    name << "alternate-grid-" << rows << "x" << cols;
    Topology topo(name.str());

    const size_t num_traps = rows * cols;
    size_t placed = 0;
    // Carriers per row: one per trap plus one per rung position.
    std::vector<std::vector<NodeId>> carrier(rows);
    std::vector<std::vector<bool>> is_rung(rows);
    for (size_t r = 0; r < rows; ++r) {
        size_t traps_in_row = std::min(cols, num_traps - placed);
        size_t slot = 0;
        size_t row_traps = 0;
        while (row_traps < traps_in_row) {
            const NodeId j = topo.addJunction();
            const bool rung = rows > 1 &&
                slot % (rung_stride + 1) == rung_stride;
            carrier[r].push_back(j);
            is_rung[r].push_back(rung);
            if (!rung) {
                const NodeId t = topo.addTrap(capacity);
                topo.addEdge(t, j);
                ++row_traps;
                ++placed;
            }
            ++slot;
        }
        // Horizontal corridor.
        for (size_t c = 0; c + 1 < carrier[r].size(); ++c)
            topo.addEdge(carrier[r][c], carrier[r][c + 1]);
    }
    // Vertical rungs: connect rung carriers straight down. Rung
    // columns align because every row uses the same stride pattern.
    for (size_t r = 0; r + 1 < rows; ++r) {
        const size_t limit =
            std::min(carrier[r].size(), carrier[r + 1].size());
        for (size_t c = 0; c < limit; ++c) {
            if (is_rung[r][c] && is_rung[r + 1][c])
                topo.addEdge(carrier[r][c], carrier[r + 1][c]);
        }
    }
    // Close the serpentine: link row ends so a global loop exists
    // (L corners, degree <= 3).
    for (size_t r = 0; r + 1 < rows; ++r) {
        if (r % 2 == 0) {
            topo.addEdge(carrier[r].back(), carrier[r + 1].back());
        } else {
            topo.addEdge(carrier[r].front(), carrier[r + 1].front());
        }
    }
    topo.validate();
    return topo;
}

Topology
buildRing(size_t num_traps, size_t capacity)
{
    CYCLONE_ASSERT(num_traps >= 1, "ring needs at least one trap");
    std::ostringstream name;
    name << "ring-" << num_traps;
    Topology topo(name.str());

    std::vector<NodeId> traps;
    traps.reserve(num_traps);
    for (size_t i = 0; i < num_traps; ++i)
        traps.push_back(topo.addTrap(capacity));
    if (num_traps == 1) {
        topo.validate();
        return topo;
    }
    for (size_t i = 0; i < num_traps; ++i) {
        // One L junction between each pair of neighboring traps.
        const NodeId junction = topo.addJunction();
        topo.addEdge(traps[i], junction);
        topo.addEdge(junction, traps[(i + 1) % num_traps]);
    }
    topo.validate();
    return topo;
}

Topology
buildJunctionMesh(size_t num_traps, size_t capacity)
{
    CYCLONE_ASSERT(num_traps >= 1, "mesh needs at least one trap");
    // Mesh side: enough perimeter junctions for all traps.
    size_t g = 2;
    while (4 * (g - 1) < num_traps)
        ++g;
    std::ostringstream name;
    name << "junction-mesh-" << g << "x" << g;
    Topology topo(name.str());

    std::vector<std::vector<NodeId>> junc(g, std::vector<NodeId>(g));
    for (size_t r = 0; r < g; ++r) {
        for (size_t c = 0; c < g; ++c)
            junc[r][c] = topo.addJunction();
    }
    for (size_t r = 0; r < g; ++r) {
        for (size_t c = 0; c < g; ++c) {
            if (c + 1 < g)
                topo.addEdge(junc[r][c], junc[r][c + 1]);
            if (r + 1 < g)
                topo.addEdge(junc[r][c], junc[r + 1][c]);
        }
    }
    // Walk the perimeter clockwise attaching traps.
    std::vector<NodeId> perimeter;
    for (size_t c = 0; c < g; ++c)
        perimeter.push_back(junc[0][c]);
    for (size_t r = 1; r < g; ++r)
        perimeter.push_back(junc[r][g - 1]);
    if (g > 1) {
        for (size_t c = g - 1; c-- > 0;)
            perimeter.push_back(junc[g - 1][c]);
        for (size_t r = g - 1; r-- > 1;)
            perimeter.push_back(junc[r][0]);
    }
    CYCLONE_ASSERT(perimeter.size() >= num_traps,
                   "perimeter too small: " << perimeter.size() << " < "
                   << num_traps);
    for (size_t i = 0; i < num_traps; ++i) {
        const NodeId t = topo.addTrap(capacity);
        topo.addEdge(t, perimeter[i]);
    }
    topo.validate();
    return topo;
}

} // namespace cyclone
