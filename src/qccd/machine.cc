#include "qccd/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

Machine::Machine(const Topology& topology)
    : topology_(&topology), chains_(topology.numNodes())
{}

IonId
Machine::addDataIon(size_t data_index, NodeId trap)
{
    CYCLONE_ASSERT(topology_->isTrap(trap), "ion placed on non-trap");
    const IonId id = ions_.size();
    ions_.push_back({IonRole::Data, data_index, trap});
    chains_[trap].push_back(id);
    return id;
}

IonId
Machine::addAncillaIon(size_t stab_index, NodeId trap)
{
    CYCLONE_ASSERT(topology_->isTrap(trap), "ion placed on non-trap");
    const IonId id = ions_.size();
    ions_.push_back({IonRole::Ancilla, stab_index, trap});
    chains_[trap].push_back(id);
    return id;
}

const std::vector<IonId>&
Machine::chain(NodeId trap) const
{
    return chains_[trap];
}

size_t
Machine::chainLength(NodeId trap) const
{
    return chains_[trap].size();
}

size_t
Machine::freeCapacity(NodeId trap) const
{
    const size_t cap = topology_->node(trap).capacity;
    const size_t len = chains_[trap].size();
    return cap > len ? cap - len : 0;
}

size_t
Machine::distanceFromEdge(IonId id) const
{
    const NodeId trap = ions_[id].trap;
    const auto& chain = chains_[trap];
    const auto it = std::find(chain.begin(), chain.end(), id);
    CYCLONE_ASSERT(it != chain.end(), "ion not found in its chain");
    const size_t pos = static_cast<size_t>(it - chain.begin());
    return std::min(pos, chain.size() - 1 - pos);
}

size_t
Machine::distanceFromEnd(IonId id, bool front_end) const
{
    const NodeId trap = ions_[id].trap;
    const auto& chain = chains_[trap];
    const auto it = std::find(chain.begin(), chain.end(), id);
    CYCLONE_ASSERT(it != chain.end(), "ion not found in its chain");
    const size_t pos = static_cast<size_t>(it - chain.begin());
    return front_end ? pos : chain.size() - 1 - pos;
}

void
Machine::relocate(IonId id, NodeId to_trap, bool at_front)
{
    CYCLONE_ASSERT(topology_->isTrap(to_trap),
                   "relocation target is not a trap");
    const NodeId from = ions_[id].trap;
    auto& src = chains_[from];
    src.erase(std::remove(src.begin(), src.end(), id), src.end());
    auto& dst = chains_[to_trap];
    if (at_front)
        dst.insert(dst.begin(), id);
    else
        dst.push_back(id);
    ions_[id].trap = to_trap;
}

} // namespace cyclone
