/**
 * @file
 * Resource timelines for schedule construction.
 *
 * Every trap, junction and edge is a serially reusable resource with a
 * `busyUntil` time. Compilers plan an operation by querying the
 * earliest feasible start across the resources it touches, and commit
 * by advancing those resources. Waiting caused by a busy resource is
 * what the paper calls a roadblock; the timeline reports wait times so
 * compilers can classify and count them.
 */

#ifndef CYCLONE_QCCD_TIMELINE_H
#define CYCLONE_QCCD_TIMELINE_H

#include <cstddef>
#include <vector>

namespace cyclone {

/** Busy-until timeline over a set of resources. */
class ResourceTimeline
{
  public:
    explicit ResourceTimeline(size_t resources);

    /** Earliest time resource r is free. */
    double freeAt(size_t r) const { return busyUntil_[r]; }

    /**
     * Earliest start >= `earliest` on resource r (without committing).
     */
    double
    plan(size_t r, double earliest) const
    {
        return busyUntil_[r] > earliest ? busyUntil_[r] : earliest;
    }

    /**
     * Reserve resource r for [start, start + duration). `start` must
     * be >= freeAt(r); commit order is the caller's responsibility.
     */
    void reserve(size_t r, double start, double duration);

    /** Latest busy-until time across all resources. */
    double makespan() const;

    /** Reset all resources to free-at-zero. */
    void reset();

    size_t size() const { return busyUntil_.size(); }

  private:
    std::vector<double> busyUntil_;
};

} // namespace cyclone

#endif // CYCLONE_QCCD_TIMELINE_H
