#include "qccd/durations.h"

#include <cmath>

#include "common/logging.h"

namespace cyclone {

double
GateTimeModel::twoQubitUs(size_t chain_length) const
{
    const double len = chain_length < 2 ? 2.0
        : static_cast<double>(chain_length);
    if (len <= kneeLength)
        return baseUs;
    return baseUs * std::pow(len / kneeLength, kneeExponent);
}

double
Durations::junctionCrossUs(size_t degree) const
{
    double base;
    if (degree <= 2)
        base = junctionDeg2Us;
    else if (degree == 3)
        base = junctionDeg3Us;
    else
        base = junctionDeg4Us;
    return base * scale * junctionScale;
}

double
Durations::twoQubitGateUs(size_t chain_length) const
{
    return gate.twoQubitUs(chain_length) * scale;
}

} // namespace cyclone
