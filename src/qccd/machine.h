/**
 * @file
 * Mutable machine state: which ion sits where, in what chain order.
 *
 * Ions are either data qubits (pinned by the mapping) or stabilizer
 * ancillas (the ions that shuttle). Chains are ordered; an ion's
 * distance from the chain edge determines its swap-out cost.
 */

#ifndef CYCLONE_QCCD_MACHINE_H
#define CYCLONE_QCCD_MACHINE_H

#include <cstddef>
#include <vector>

#include "qccd/topology.h"

namespace cyclone {

/** Ion identifier (index into the machine's ion table). */
using IonId = size_t;

/** Ion roles. */
enum class IonRole { Data, Ancilla };

/** One ion. */
struct Ion
{
    IonRole role;
    /** Data-qubit index or stabilizer index, by role. */
    size_t payload;
    /** Trap currently hosting this ion. */
    NodeId trap;
};

/** Placement and chain-order state of all ions on a device. */
class Machine
{
  public:
    explicit Machine(const Topology& topology);

    const Topology& topology() const { return *topology_; }

    /** Create a data ion in `trap`; returns its id. */
    IonId addDataIon(size_t data_index, NodeId trap);

    /** Create an ancilla ion in `trap`; returns its id. */
    IonId addAncillaIon(size_t stab_index, NodeId trap);

    const Ion& ion(IonId id) const { return ions_[id]; }
    size_t numIons() const { return ions_.size(); }

    /**
     * Ions resident in a trap, chain order. Index 0 is the "front"
     * end, which by convention faces the trap's first topology port
     * (its first adjacency entry).
     */
    const std::vector<IonId>& chain(NodeId trap) const;

    /** Number of ions in a trap. */
    size_t chainLength(NodeId trap) const;

    /** Remaining capacity of a trap. */
    size_t freeCapacity(NodeId trap) const;

    /**
     * Distance of an ion from the nearest chain end (0 = at an end).
     */
    size_t distanceFromEdge(IonId id) const;

    /**
     * Distance of an ion from a specific chain end (0 = at that end).
     *
     * @param front_end true for the front (port-0) end
     */
    size_t distanceFromEnd(IonId id, bool front_end) const;

    /**
     * Move an ion to another trap.
     *
     * @param at_front insert at the front (port-0) end when true,
     *        at the back otherwise — the end facing the shuttling
     *        path the ion arrived on
     */
    void relocate(IonId id, NodeId to_trap, bool at_front = false);

  private:
    const Topology* topology_;
    std::vector<Ion> ions_;
    std::vector<std::vector<IonId>> chains_;
};

} // namespace cyclone

#endif // CYCLONE_QCCD_MACHINE_H
