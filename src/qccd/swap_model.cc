#include "qccd/swap_model.h"

namespace cyclone {

double
SwapModel::costUs(size_t distance_from_edge, size_t chain_length) const
{
    if (distance_from_edge == 0)
        return 0.0;
    if (kind_ == SwapKind::GateSwap) {
        // One GateSwap (3 CX gates) moves the ion to an arbitrary
        // position; cost is position independent.
        return 3.0 * durations_.twoQubitGateUs(chain_length);
    }
    // IonSwap: s*d + s*(d-1) + 42 us (paper, Section IV-D).
    const double d = static_cast<double>(distance_from_edge);
    return durations_.split() * d + durations_.split() * (d - 1.0) +
        42.0 * durations_.scale;
}

const char*
SwapModel::name() const
{
    return kind_ == SwapKind::GateSwap ? "GateSwap" : "IonSwap";
}

} // namespace cyclone
