/**
 * @file
 * Intra-trap ion reordering cost models (Section II-B1 / Fig. 21).
 *
 * GateSwap implements a swap as three CX gates, so its cost is three
 * two-qubit gate times at the trap's chain length (constant in the
 * ion's position for chains <= 12 per the paper). IonSwap physically
 * rotates ions and scales with the interaction distance d_l from the
 * chain end: s*d_l + s*(d_l - 1) + 42 us, where s is the split time.
 */

#ifndef CYCLONE_QCCD_SWAP_MODEL_H
#define CYCLONE_QCCD_SWAP_MODEL_H

#include <cstddef>

#include "qccd/durations.h"

namespace cyclone {

/** Swap technique selector. */
enum class SwapKind { GateSwap, IonSwap };

/** Cost model for bringing an ion to a trap's travelling edge. */
class SwapModel
{
  public:
    SwapModel(SwapKind kind, const Durations& durations)
        : kind_(kind), durations_(durations)
    {}

    SwapKind kind() const { return kind_; }

    /**
     * Cost of extracting an ion at distance `distance_from_edge` from
     * the travelling edge of a chain of `chain_length` ions.
     * A distance of 0 means the ion is already at the edge (free).
     */
    double costUs(size_t distance_from_edge, size_t chain_length) const;

    /** Human-readable name ("GateSwap" / "IonSwap"). */
    const char* name() const;

  private:
    SwapKind kind_;
    const Durations& durations_;
};

} // namespace cyclone

#endif // CYCLONE_QCCD_SWAP_MODEL_H
