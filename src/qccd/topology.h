/**
 * @file
 * QCCD device topology: traps and junctions connected by shuttling
 * path segments.
 *
 * Hardware constraints from Section II-B3 are enforced by validate():
 * traps connect to at most two shuttling paths, junctions to at most
 * four. Routing uses breadth-first shortest paths; compilers decide
 * what traversing each node costs (junction crossing vs. the expensive
 * through-trap merge/split that creates trap roadblocks).
 */

#ifndef CYCLONE_QCCD_TOPOLOGY_H
#define CYCLONE_QCCD_TOPOLOGY_H

#include <cstddef>
#include <string>
#include <vector>

namespace cyclone {

/** Node identifier within a Topology. */
using NodeId = size_t;
/** Edge identifier within a Topology. */
using EdgeId = size_t;

/** Node kinds. */
enum class NodeKind { Trap, Junction };

/** One topology node. */
struct TopoNode
{
    NodeKind kind;
    /** Ion capacity (traps only). */
    size_t capacity = 0;
};

/** One undirected shuttling segment. */
struct TopoEdge
{
    NodeId a;
    NodeId b;
};

/** Adjacency entry. */
struct Neighbor
{
    NodeId node;
    EdgeId edge;
};

/** An undirected graph of traps and junctions. */
class Topology
{
  public:
    explicit Topology(std::string name = "topology");

    /** Add a trap with the given ion capacity; returns its id. */
    NodeId addTrap(size_t capacity);

    /** Add a junction; returns its id. */
    NodeId addJunction();

    /** Connect two nodes with a shuttling segment. */
    EdgeId addEdge(NodeId a, NodeId b);

    const std::string& name() const { return name_; }
    size_t numNodes() const { return nodes_.size(); }
    size_t numEdges() const { return edges_.size(); }

    const TopoNode& node(NodeId id) const { return nodes_[id]; }
    const TopoEdge& edge(EdgeId id) const { return edges_[id]; }
    const std::vector<Neighbor>& neighbors(NodeId id) const
    {
        return adjacency_[id];
    }

    size_t degree(NodeId id) const { return adjacency_[id].size(); }

    bool isTrap(NodeId id) const
    {
        return nodes_[id].kind == NodeKind::Trap;
    }

    /** All trap node ids, in creation order. */
    const std::vector<NodeId>& traps() const { return traps_; }
    /** All junction node ids, in creation order. */
    const std::vector<NodeId>& junctions() const { return junctions_; }

    size_t numTraps() const { return traps_.size(); }
    size_t numJunctions() const { return junctions_.size(); }

    /** Total trap capacity. */
    size_t totalCapacity() const;

    /**
     * Enforce hardware degree limits: traps <= 2, junctions <= 4.
     * Throws on violation.
     */
    void validate() const;

    /**
     * Breadth-first shortest path from `from` to `to` (inclusive of
     * both endpoints). Prefers paths through fewer traps when the hop
     * count ties is NOT guaranteed; compilers cost paths themselves.
     * Returns an empty vector if unreachable.
     */
    std::vector<NodeId> shortestPath(NodeId from, NodeId to) const;

  private:
    std::string name_;
    std::vector<TopoNode> nodes_;
    std::vector<TopoEdge> edges_;
    std::vector<std::vector<Neighbor>> adjacency_;
    std::vector<NodeId> traps_;
    std::vector<NodeId> junctions_;
};

} // namespace cyclone

#endif // CYCLONE_QCCD_TOPOLOGY_H
