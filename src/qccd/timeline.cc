#include "qccd/timeline.h"

#include <algorithm>

#include "common/logging.h"

namespace cyclone {

ResourceTimeline::ResourceTimeline(size_t resources)
    : busyUntil_(resources, 0.0)
{}

void
ResourceTimeline::reserve(size_t r, double start, double duration)
{
    CYCLONE_ASSERT(r < busyUntil_.size(), "resource out of range");
    CYCLONE_ASSERT(start + 1e-9 >= busyUntil_[r],
                   "reservation starts before resource is free");
    busyUntil_[r] = start + duration;
}

double
ResourceTimeline::makespan() const
{
    double m = 0.0;
    for (double t : busyUntil_)
        m = std::max(m, t);
    return m;
}

void
ResourceTimeline::reset()
{
    std::fill(busyUntil_.begin(), busyUntil_.end(), 0.0);
}

} // namespace cyclone
