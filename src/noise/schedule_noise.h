/**
 * @file
 * Schedule-derived idle noise: per-qubit Pauli-twirl channels from the
 * TimedSchedule IR.
 *
 * The uniform-latency model twirls the whole round makespan into one
 * idle channel applied to every data qubit. In reality a data qubit
 * decoheres only while nothing is acting on it; qubits whose gates are
 * spread across the round idle less than qubits serviced in one early
 * burst. This module measures each data qubit's actual idle time
 * (makespan minus the time it spends inside counted operations) and
 * twirls that window per qubit, giving the noise model the per-ion
 * resolution the paper's architectural argument is about.
 */

#ifndef CYCLONE_NOISE_SCHEDULE_NOISE_H
#define CYCLONE_NOISE_SCHEDULE_NOISE_H

#include <cstddef>
#include <vector>

#include "compiler/timed_schedule.h"
#include "noise/pauli_twirl.h"

namespace cyclone {

/**
 * Derive one idle twirl per data qubit from a compiled round.
 *
 * Qubit q's idle window is (makespan - busy_q) * latency_scale, where
 * busy_q sums the durations of every counted op involving q; the
 * window is twirled with T1 = T2 = coherenceTimeSeconds(p), exactly as
 * the uniform model twirls the full makespan.
 *
 * @param schedule compiled round IR (ion ids in circuit layout: data
 *        qubits first)
 * @param num_data_qubits data qubits n; must be <= schedule.numIons
 * @param physical_error p for the coherence-time fit, in (0, 1)
 * @param latency_scale multiplier on the idle windows (the campaign's
 *        latencyScale knob); must be finite and >= 0
 * @return one PauliTwirl per data qubit, indexed by qubit
 * @throws std::invalid_argument on invalid inputs
 */
std::vector<PauliTwirl>
perQubitIdleFromSchedule(const TimedSchedule& schedule,
                         size_t num_data_qubits, double physical_error,
                         double latency_scale = 1.0);

} // namespace cyclone

#endif // CYCLONE_NOISE_SCHEDULE_NOISE_H
