/**
 * @file
 * Pauli-twirl approximation of idle decoherence (Geller & Zhou 2013,
 * Tomita & Svore 2014), as used in Section II-C2 of the paper.
 *
 * Amplitude damping (T1) and dephasing (T2) over an idle window t are
 * twirled into a stochastic Pauli channel:
 *
 *   px = py = (1 - exp(-t/T1)) / 4
 *   pz = (1 - exp(-t/T2)) / 2 - (1 - exp(-t/T1)) / 4
 *
 * The paper parameterizes coherence time against the physical error
 * rate with a log fit anchored at (p = 1e-4, T = 100 s) and
 * (p = 1e-3, T = 10 s), i.e. T(p) = 0.01 / p seconds, applied to both
 * T1 (T_a) and T2 (T_b).
 */

#ifndef CYCLONE_NOISE_PAULI_TWIRL_H
#define CYCLONE_NOISE_PAULI_TWIRL_H

namespace cyclone {

/** A stochastic Pauli channel produced by twirling decoherence. */
struct PauliTwirl
{
    double px = 0.0;
    double py = 0.0;
    double pz = 0.0;

    /** Total error probability px + py + pz. */
    double total() const { return px + py + pz; }
};

/**
 * Twirl decoherence over an idle time into a Pauli channel.
 *
 * @param idle_time_us idle duration in microseconds
 * @param t1_s decay time T1 in seconds
 * @param t2_s dephasing time T2 in seconds
 */
PauliTwirl twirlDecoherence(double idle_time_us, double t1_s, double t2_s);

/**
 * The paper's coherence-time fit: T(p) = 0.01 / p seconds, anchored at
 * (1e-4 -> 100 s) and (1e-3 -> 10 s).
 */
double coherenceTimeSeconds(double physical_error);

} // namespace cyclone

#endif // CYCLONE_NOISE_PAULI_TWIRL_H
