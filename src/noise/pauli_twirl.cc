#include "noise/pauli_twirl.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cyclone {

PauliTwirl
twirlDecoherence(double idle_time_us, double t1_s, double t2_s)
{
    CYCLONE_ASSERT(t1_s > 0.0 && t2_s > 0.0,
                   "coherence times must be positive");
    PauliTwirl out;
    if (idle_time_us <= 0.0)
        return out;
    const double t_s = idle_time_us * 1e-6;
    const double damp = 1.0 - std::exp(-t_s / t1_s);
    const double deph = 1.0 - std::exp(-t_s / t2_s);
    out.px = damp / 4.0;
    out.py = damp / 4.0;
    out.pz = std::max(0.0, deph / 2.0 - damp / 4.0);
    return out;
}

double
coherenceTimeSeconds(double physical_error)
{
    CYCLONE_ASSERT(physical_error > 0.0,
                   "physical error rate must be positive");
    // Log-linear fit through (1e-4, 100 s) and (1e-3, 10 s).
    return 0.01 / physical_error;
}

} // namespace cyclone
