/**
 * @file
 * Hardware-aware noise parameters (Section II-C of the paper).
 *
 * The base model is standard circuit-level noise: depolarizing channels
 * after every gate and flip errors around state preparation and
 * measurement, all at the physical error rate p. Latency couples into
 * the model through a per-round Pauli-twirl idle channel derived from
 * the compiled execution time and the coherence times T1/T2.
 */

#ifndef CYCLONE_NOISE_NOISE_MODEL_H
#define CYCLONE_NOISE_NOISE_MODEL_H

#include <cstddef>

#include "noise/pauli_twirl.h"

namespace cyclone {

/** Complete noise configuration for a memory experiment. */
struct NoiseModel
{
    /** Physical error rate p of the base model. */
    double physicalError = 1e-3;

    /** Two-qubit gate depolarizing strength (defaults to p). */
    double twoQubitError = 0.0;

    /** State-preparation flip probability (defaults to p). */
    double prepError = 0.0;

    /** Measurement flip probability (defaults to p). */
    double measError = 0.0;

    /** Per-round idle Pauli-twirl channel (derived from latency). */
    PauliTwirl idle;

    /**
     * Uniform circuit-level model at rate p with no idle channel.
     * Gate/prep/measurement errors all equal p.
     */
    static NoiseModel uniform(double p);

    /**
     * Paper model: base rate p plus idle decoherence for a round
     * latency of `round_latency_us` microseconds, with coherence times
     * taken from the paper's log fit T1 = T2 = 0.01 / p seconds.
     */
    static NoiseModel withLatency(double p, double round_latency_us);

    /** Effective two-qubit error (explicit value or fallback to p). */
    double p2() const
    {
        return twoQubitError > 0.0 ? twoQubitError : physicalError;
    }

    /** Effective preparation error. */
    double pPrep() const
    {
        return prepError > 0.0 ? prepError : physicalError;
    }

    /** Effective measurement error. */
    double pMeas() const
    {
        return measError > 0.0 ? measError : physicalError;
    }
};

} // namespace cyclone

#endif // CYCLONE_NOISE_NOISE_MODEL_H
