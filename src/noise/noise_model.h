/**
 * @file
 * Hardware-aware noise parameters (Section II-C of the paper).
 *
 * The base model is standard circuit-level noise: depolarizing channels
 * after every gate and flip errors around state preparation and
 * measurement, all at the physical error rate p. Latency couples into
 * the model through idle Pauli-twirl channels in one of two modes:
 * uniform (one per-round channel from the compiled makespan, applied
 * to every data qubit) or per-qubit (each data qubit's channel derived
 * from its actual idle windows in the TimedSchedule IR — see
 * noise/schedule_noise.h).
 */

#ifndef CYCLONE_NOISE_NOISE_MODEL_H
#define CYCLONE_NOISE_NOISE_MODEL_H

#include <cstddef>

#include "noise/pauli_twirl.h"

namespace cyclone {

/** How idle decoherence couples into the memory circuit. */
enum class IdleNoiseMode
{
    /** One per-round twirl from the round makespan, same for all. */
    UniformLatency,
    /** Per-data-qubit twirls from measured IR idle windows. */
    PerQubitSchedule,
};

/** Complete noise configuration for a memory experiment. */
struct NoiseModel
{
    /** Physical error rate p of the base model. */
    double physicalError = 1e-3;

    /** Two-qubit gate depolarizing strength (defaults to p). */
    double twoQubitError = 0.0;

    /** State-preparation flip probability (defaults to p). */
    double prepError = 0.0;

    /** Measurement flip probability (defaults to p). */
    double measError = 0.0;

    /** Per-round idle Pauli-twirl channel (derived from latency). */
    PauliTwirl idle;

    /**
     * Uniform circuit-level model at rate p with no idle channel.
     * Gate/prep/measurement errors all equal p.
     *
     * @throws std::invalid_argument unless p is in [0, 1) (p == 0 is
     *         the noiseless circuit)
     */
    static NoiseModel uniform(double p);

    /**
     * Paper model: base rate p plus idle decoherence for a round
     * latency of `round_latency_us` microseconds, with coherence times
     * taken from the paper's log fit T1 = T2 = 0.01 / p seconds.
     *
     * @throws std::invalid_argument unless p is in (0, 1) and the
     *         latency is finite and non-negative
     */
    static NoiseModel withLatency(double p, double round_latency_us);

    /** Effective two-qubit error (explicit value or fallback to p). */
    double p2() const
    {
        return twoQubitError > 0.0 ? twoQubitError : physicalError;
    }

    /** Effective preparation error. */
    double pPrep() const
    {
        return prepError > 0.0 ? prepError : physicalError;
    }

    /** Effective measurement error. */
    double pMeas() const
    {
        return measError > 0.0 ? measError : physicalError;
    }
};

/**
 * Validate a physical error rate: must be finite and in (0, 1).
 *
 * @throws std::invalid_argument otherwise, naming `what` in the message
 */
void validatePhysicalError(double p, const char* what = "physical error rate");

/**
 * Validate a latency/idle duration: must be finite and non-negative.
 *
 * @throws std::invalid_argument otherwise, naming `what` in the message
 */
void validateLatencyUs(double latency_us, const char* what = "latency");

} // namespace cyclone

#endif // CYCLONE_NOISE_NOISE_MODEL_H
