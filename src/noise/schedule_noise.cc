#include "noise/schedule_noise.h"

#include <sstream>
#include <stdexcept>

#include "noise/noise_model.h"

namespace cyclone {

std::vector<PauliTwirl>
perQubitIdleFromSchedule(const TimedSchedule& schedule,
                         size_t num_data_qubits, double physical_error,
                         double latency_scale)
{
    validatePhysicalError(physical_error);
    validateLatencyUs(latency_scale, "latency scale");
    if (num_data_qubits > schedule.numIons) {
        std::ostringstream msg;
        msg << "schedule tracks " << schedule.numIons
            << " ions but " << num_data_qubits
            << " data qubits were requested";
        throw std::invalid_argument(msg.str());
    }

    const double t_coh = coherenceTimeSeconds(physical_error);
    const std::vector<double> idle = schedule.ionIdleUs();
    std::vector<PauliTwirl> out(num_data_qubits);
    for (size_t q = 0; q < num_data_qubits; ++q)
        out[q] = twirlDecoherence(idle[q] * latency_scale, t_coh, t_coh);
    return out;
}

} // namespace cyclone
