#include "noise/noise_model.h"

namespace cyclone {

NoiseModel
NoiseModel::uniform(double p)
{
    NoiseModel m;
    m.physicalError = p;
    return m;
}

NoiseModel
NoiseModel::withLatency(double p, double round_latency_us)
{
    NoiseModel m;
    m.physicalError = p;
    const double t_coh = coherenceTimeSeconds(p);
    m.idle = twirlDecoherence(round_latency_us, t_coh, t_coh);
    return m;
}

} // namespace cyclone
