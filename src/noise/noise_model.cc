#include "noise/noise_model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cyclone {

void
validatePhysicalError(double p, const char* what)
{
    if (!std::isfinite(p) || p <= 0.0 || p >= 1.0) {
        std::ostringstream msg;
        msg << what << " must be in (0, 1), got " << p;
        throw std::invalid_argument(msg.str());
    }
}

void
validateLatencyUs(double latency_us, const char* what)
{
    if (!std::isfinite(latency_us) || latency_us < 0.0) {
        std::ostringstream msg;
        msg << what << " must be finite and >= 0 microseconds, got "
            << latency_us;
        throw std::invalid_argument(msg.str());
    }
}

NoiseModel
NoiseModel::uniform(double p)
{
    // p == 0 is the noiseless circuit (used by exactness tests).
    if (!std::isfinite(p) || p < 0.0 || p >= 1.0) {
        std::ostringstream msg;
        msg << "physical error rate must be in [0, 1), got " << p;
        throw std::invalid_argument(msg.str());
    }
    NoiseModel m;
    m.physicalError = p;
    return m;
}

NoiseModel
NoiseModel::withLatency(double p, double round_latency_us)
{
    validatePhysicalError(p);
    validateLatencyUs(round_latency_us, "round latency");
    NoiseModel m;
    m.physicalError = p;
    const double t_coh = coherenceTimeSeconds(p);
    m.idle = twirlDecoherence(round_latency_us, t_coh, t_coh);
    return m;
}

} // namespace cyclone
