/**
 * @file
 * Tests for the EJF compiler family: schedule completeness, resource
 * validity, and the contention relationships the paper reports.
 */

#include <gtest/gtest.h>

#include "compiler/baseline2.h"
#include "compiler/baseline3.h"
#include "compiler/baseline_ejf.h"
#include "compiler/dynamic_grid.h"
#include "compiler/ideal.h"
#include "compiler/mesh_junction.h"
#include "qccd/topology_builders.h"
#include "qec/classical_code.h"
#include "qec/code_catalog.h"
#include "qec/hgp_code.h"
#include "qec/schedule.h"

namespace cyclone {
namespace {

CssCode
surface13()
{
    return makeHgpCode(ClassicalCode::repetition(3), 3);
}

TEST(Ejf, CompilesAllGates)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(4, 4, 5);
    CompileResult r = compileEjf(code, sched, grid, {});
    EXPECT_EQ(r.gateOps, code.hx().nnz() + code.hz().nnz());
    EXPECT_GT(r.execTimeUs, 0.0);
    EXPECT_GE(r.serialized.total(), r.execTimeUs);
    EXPECT_EQ(r.numTraps, 16u);
    EXPECT_EQ(r.numAncilla, code.numStabs());
}

TEST(Ejf, SerializedBreakdownComponentsPositive)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(4, 4, 5);
    CompileResult r = compileEjf(code, sched, grid, {});
    EXPECT_GT(r.serialized.gateUs, 0.0);
    EXPECT_GT(r.serialized.shuttleUs, 0.0);
    EXPECT_GT(r.serialized.measureUs, 0.0);
    // Gate time: every CX at some chain length >= base gate time.
    Durations dur;
    EXPECT_GE(r.serialized.gateUs,
              static_cast<double>(r.gateOps) * dur.gate.baseUs);
}

TEST(Ejf, ParallelFractionBounded)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    CompileResult r = compileEjf(code, sched, grid, {});
    EXPECT_GT(r.parallelFraction(), 0.0);
    EXPECT_LE(r.parallelFraction(), 1.0);
}

TEST(Ejf, GridRoadblocksAppearOnBigCodes)
{
    // The paper's core observation: non-topological codes on grids
    // hit trap roadblocks.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    CompileResult r = compileEjf(code, sched, grid, {});
    EXPECT_GT(r.trapRoadblocks, 0u);
}

TEST(Ejf, WiderWindowNeverSlower)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(4, 4, 5);
    EjfOptions narrow;
    narrow.candidateWindow = 1;
    EjfOptions wide;
    wide.candidateWindow = 16;
    CompileResult rn = compileEjf(code, sched, grid, narrow);
    CompileResult rw = compileEjf(code, sched, grid, wide);
    // Lookahead helps (or at least does not hurt much).
    EXPECT_LE(rw.execTimeUs, rn.execTimeUs * 1.10);
}

TEST(Ejf, ScaleReducesExecTime)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(4, 4, 5);
    EjfOptions fast;
    fast.durations.scale = 0.5;
    CompileResult nominal = compileEjf(code, sched, grid, {});
    CompileResult scaled = compileEjf(code, sched, grid, fast);
    EXPECT_LT(scaled.execTimeUs, nominal.execTimeUs);
    EXPECT_NEAR(scaled.execTimeUs, nominal.execTimeUs * 0.5,
                nominal.execTimeUs * 0.05);
}

TEST(DynamicGrid, SlowerThanStaticBaselineOnGrid)
{
    // Fig. 4a / Fig. 6: dynamic timeslices on a grid roadblock so
    // badly they lose to the static EJF baseline.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    CompileResult stat = compileEjf(code, sched, grid, {});
    CompileResult dyn = compileDynamicGrid(code, sched, grid, {});
    EXPECT_GT(dyn.execTimeUs, stat.execTimeUs);
    EXPECT_EQ(dyn.gateOps, stat.gateOps);
}

TEST(MeshJunction, ConvertsTrapToJunctionRoadblocks)
{
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    CompileResult r = compileMeshJunction(code, sched, {});
    EXPECT_EQ(r.gateOps, code.hx().nnz() + code.hz().nnz());
    EXPECT_GT(r.junctionRoadblocks, 0u);
    // With one data per trap, through-trap transits are impossible.
    EXPECT_EQ(r.trapRoadblocks, 0u);
}

TEST(MeshJunction, FasterJunctionsHelp)
{
    // Fig. 9 mechanics: scaling junction crossing down speeds the
    // mesh design up substantially.
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    EjfOptions nominal;
    EjfOptions fast;
    fast.durations.junctionScale = 0.1;
    CompileResult slow = compileMeshJunction(code, sched, nominal);
    CompileResult quick = compileMeshJunction(code, sched, fast);
    EXPECT_LT(quick.execTimeUs, slow.execTimeUs * 0.7);
}

TEST(Baseline23, DifferentPoliciesDifferentSchedules)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    CompileResult b1 = compileEjf(code, sched, grid, {});
    CompileResult b2 = compileBaseline2(code, sched, grid, {});
    CompileResult b3 = compileBaseline3(code, sched, grid, {});
    EXPECT_EQ(b1.gateOps, b2.gateOps);
    EXPECT_EQ(b1.gateOps, b3.gateOps);
    // All complete; schedules differ in makespan or movement volume.
    const bool differs = b1.execTimeUs != b2.execTimeUs ||
        b2.execTimeUs != b3.execTimeUs ||
        b1.shuttleOps != b2.shuttleOps ||
        b2.shuttleOps != b3.shuttleOps;
    EXPECT_TRUE(differs);
    // The shuttle-minimizing and locality policies should not move
    // more than plain EJF.
    EXPECT_LE(b2.shuttleOps, b1.shuttleOps * 1.2);
    EXPECT_LE(b3.shuttleOps, b1.shuttleOps * 1.2);
}

TEST(Ideal, SpeedupMatchesDepthRatio)
{
    CssCode code = catalog::hgp225();
    SyndromeSchedule inter = makeInterleavedSchedule(code);
    IdealLatency lat = idealLatencies(code, inter);
    EXPECT_EQ(lat.gates, inter.totalGates());
    EXPECT_EQ(lat.depth, inter.depth());
    EXPECT_GT(lat.speedup, 10.0);
    EXPECT_LT(lat.parallelUs, lat.serialUs);
}

TEST(Ideal, SpeedupGrowsWithCodeSize)
{
    // Fig. 3: the parallel/serial gap widens with code size.
    IdealLatency small = idealLatencies(
        catalog::bb72(), makeXThenZSchedule(catalog::bb72()));
    IdealLatency large = idealLatencies(
        catalog::bb288(), makeXThenZSchedule(catalog::bb288()));
    EXPECT_GT(large.speedup, small.speedup);
}

TEST(Ideal, PseudoOptEdgeCount)
{
    CssCode code = surface13();
    const size_t edges = pseudoOptEdgeCount(code);
    EXPECT_GT(edges, 0u);
    // No more edges than total support pairs.
    size_t upper = 0;
    for (size_t r = 0; r < code.numXStabs(); ++r)
        upper += code.hx().rowSupport(r).size();
    for (size_t r = 0; r < code.numZStabs(); ++r)
        upper += code.hz().rowSupport(r).size();
    EXPECT_LE(edges, upper);
}

TEST(Ejf, AlternateGridNeverPassesThroughTraps)
{
    // The alternate grid hangs every trap off the corridor, so all
    // contention is junction contention.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildAlternateGrid(15, 15, 5);
    CompileResult r = compileEjf(code, sched, grid, {});
    EXPECT_EQ(r.trapRoadblocks, 0u);
    EXPECT_GT(r.junctionRoadblocks, 0u);
}

TEST(Ejf, SwapKindChangesBaselineSchedule)
{
    // Fig. 21 left half: the baseline prefers IonSwap.
    CssCode code = catalog::hgp225();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    Topology grid = buildBaselineGrid(15, 15, 5);
    EjfOptions gate_swap;
    gate_swap.swap = SwapKind::GateSwap;
    EjfOptions ion_swap;
    ion_swap.swap = SwapKind::IonSwap;
    CompileResult g = compileEjf(code, sched, grid, gate_swap);
    CompileResult i = compileEjf(code, sched, grid, ion_swap);
    EXPECT_LT(i.serialized.swapUs, g.serialized.swapUs);
    EXPECT_LE(i.execTimeUs, g.execTimeUs * 1.05);
}

TEST(Ejf, RingTopologyCausesHeavyTrapRoadblocks)
{
    // Fig. 6 bottom-left: static EJF on a circle is disastrous
    // because every long route passes through traps.
    CssCode code = surface13();
    SyndromeSchedule sched = makeXThenZSchedule(code);
    const size_t x = 12;
    Topology ring = buildRing(x, 8);
    EjfOptions opts;
    opts.dataPerTrap = 2;
    CompileResult r = compileEjf(code, sched, ring, opts);
    EXPECT_GT(r.trapRoadblocks, 0u);
    EXPECT_GT(r.trapRoadblocks + r.rebalances,
              r.junctionRoadblocks);
}

} // namespace
} // namespace cyclone
