/**
 * @file
 * Tests for resource timelines, machine state and swap models.
 */

#include <gtest/gtest.h>

#include "qccd/machine.h"
#include "qccd/swap_model.h"
#include "qccd/timeline.h"
#include "qccd/topology_builders.h"

namespace cyclone {
namespace {

TEST(Timeline, PlanAndReserve)
{
    ResourceTimeline tl(3);
    EXPECT_DOUBLE_EQ(tl.plan(0, 5.0), 5.0);
    tl.reserve(0, 5.0, 10.0);
    EXPECT_DOUBLE_EQ(tl.freeAt(0), 15.0);
    EXPECT_DOUBLE_EQ(tl.plan(0, 5.0), 15.0);
    EXPECT_DOUBLE_EQ(tl.plan(0, 20.0), 20.0);
    EXPECT_DOUBLE_EQ(tl.plan(1, 0.0), 0.0);
}

TEST(Timeline, MakespanAndReset)
{
    ResourceTimeline tl(2);
    tl.reserve(0, 0.0, 7.0);
    tl.reserve(1, 3.0, 9.0);
    EXPECT_DOUBLE_EQ(tl.makespan(), 12.0);
    tl.reset();
    EXPECT_DOUBLE_EQ(tl.makespan(), 0.0);
}

TEST(TimelineDeath, RejectsOverlappingReservation)
{
    ResourceTimeline tl(1);
    tl.reserve(0, 0.0, 10.0);
    EXPECT_DEATH(tl.reserve(0, 5.0, 1.0), "before resource is free");
}

TEST(Machine, ChainOrderAndCapacity)
{
    Topology topo = buildRing(3, 4);
    Machine m(topo);
    NodeId t0 = topo.traps()[0];
    IonId d0 = m.addDataIon(0, t0);
    IonId d1 = m.addDataIon(1, t0);
    IonId a0 = m.addAncillaIon(0, t0);
    EXPECT_EQ(m.chainLength(t0), 3u);
    EXPECT_EQ(m.freeCapacity(t0), 1u);
    ASSERT_EQ(m.chain(t0).size(), 3u);
    EXPECT_EQ(m.chain(t0)[0], d0);
    EXPECT_EQ(m.chain(t0)[1], d1);
    EXPECT_EQ(m.chain(t0)[2], a0);
    EXPECT_EQ(m.ion(a0).role, IonRole::Ancilla);
    EXPECT_EQ(m.ion(d1).payload, 1u);
}

TEST(Machine, DistanceFromEdges)
{
    Topology topo = buildRing(3, 8);
    Machine m(topo);
    NodeId t0 = topo.traps()[0];
    IonId ions[5];
    for (size_t i = 0; i < 5; ++i)
        ions[i] = m.addDataIon(i, t0);
    EXPECT_EQ(m.distanceFromEdge(ions[0]), 0u);
    EXPECT_EQ(m.distanceFromEdge(ions[2]), 2u);
    EXPECT_EQ(m.distanceFromEdge(ions[4]), 0u);
    EXPECT_EQ(m.distanceFromEnd(ions[0], true), 0u);
    EXPECT_EQ(m.distanceFromEnd(ions[0], false), 4u);
    EXPECT_EQ(m.distanceFromEnd(ions[4], true), 4u);
    EXPECT_EQ(m.distanceFromEnd(ions[4], false), 0u);
}

TEST(Machine, RelocateFrontAndBack)
{
    Topology topo = buildRing(3, 4);
    Machine m(topo);
    NodeId t0 = topo.traps()[0];
    NodeId t1 = topo.traps()[1];
    IonId d0 = m.addDataIon(0, t1);
    IonId a0 = m.addAncillaIon(0, t0);
    IonId a1 = m.addAncillaIon(1, t0);
    m.relocate(a0, t1, false); // back
    EXPECT_EQ(m.ion(a0).trap, t1);
    EXPECT_EQ(m.chain(t1).back(), a0);
    m.relocate(a1, t1, true); // front
    EXPECT_EQ(m.chain(t1).front(), a1);
    EXPECT_EQ(m.chain(t1)[1], d0);
    EXPECT_EQ(m.chainLength(t0), 0u);
    EXPECT_EQ(m.freeCapacity(t1), 1u);
}

TEST(SwapModel, GateSwapConstantInPosition)
{
    Durations dur;
    SwapModel swap(SwapKind::GateSwap, dur);
    const double c1 = swap.costUs(1, 6);
    const double c4 = swap.costUs(4, 6);
    EXPECT_DOUBLE_EQ(c1, c4);
    EXPECT_DOUBLE_EQ(c1, 3.0 * dur.twoQubitGateUs(6));
}

TEST(SwapModel, GateSwapGrowsWithChainPastKnee)
{
    Durations dur;
    SwapModel swap(SwapKind::GateSwap, dur);
    EXPECT_GT(swap.costUs(1, 40), swap.costUs(1, 6));
}

TEST(SwapModel, IonSwapFormula)
{
    Durations dur;
    SwapModel swap(SwapKind::IonSwap, dur);
    // s*d + s*(d-1) + 42 with s = 80.
    EXPECT_DOUBLE_EQ(swap.costUs(1, 6), 80.0 * 1 + 80.0 * 0 + 42.0);
    EXPECT_DOUBLE_EQ(swap.costUs(3, 6), 80.0 * 3 + 80.0 * 2 + 42.0);
}

TEST(SwapModel, AtEdgeIsFree)
{
    Durations dur;
    for (SwapKind kind : {SwapKind::GateSwap, SwapKind::IonSwap}) {
        SwapModel swap(kind, dur);
        EXPECT_DOUBLE_EQ(swap.costUs(0, 6), 0.0);
    }
}

TEST(SwapModel, CrossoverMatchesPaperFig21)
{
    // Near the chain edge IonSwap is cheaper; deep in a chain it is
    // costlier than a GateSwap — the paper's Fig. 21 tradeoff.
    Durations dur;
    SwapModel ion(SwapKind::IonSwap, dur);
    SwapModel gate(SwapKind::GateSwap, dur);
    EXPECT_LT(ion.costUs(1, 6), gate.costUs(1, 6));
    EXPECT_GT(ion.costUs(4, 6), gate.costUs(4, 6));
}

TEST(SwapModel, Names)
{
    Durations dur;
    EXPECT_STREQ(SwapModel(SwapKind::GateSwap, dur).name(), "GateSwap");
    EXPECT_STREQ(SwapModel(SwapKind::IonSwap, dur).name(), "IonSwap");
}

} // namespace
} // namespace cyclone
